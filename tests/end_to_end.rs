//! Cross-crate integration tests: the full calibrate → quantize → infer →
//! evaluate pipeline, spanning numerics, quant, baselines, model, and core.

use mant::baselines::{BitFusionQuantizer, TenderQuantizer};
use mant::core::Pipeline;
use mant::model::{ActMode, FfnKind, KvMode, ModelConfig};
use mant::quant::{Granularity, MantWeightQuantizer};

/// A second, larger model size for the cross-size tests: 2× hidden width,
/// one more layer than `sim_llama`.
fn sim_llama_large() -> ModelConfig {
    ModelConfig {
        name: "sim-llama-large".to_owned(),
        hidden: 512,
        heads: 8,
        kv_heads: 8,
        layers: 3,
        ffn: 1024,
        vocab: 512,
        ffn_kind: FfnKind::GatedSilu,
    }
}

#[test]
fn calibrated_pipeline_end_to_end() {
    let mut pipe = Pipeline::new(&ModelConfig::sim_llama(), 2024);
    let calib = pipe.calibrate(40);
    assert!(calib.kv_group_count() > 0);

    let quantized = pipe.quantize_w4(64);
    let fp = pipe.evaluate(pipe.reference(), ActMode::None, KvMode::Fp16, 24);
    let w4 = pipe.evaluate(&quantized, ActMode::None, KvMode::Fp16, 24);
    let w4a8 = pipe.evaluate(
        &quantized,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Fp16,
        24,
    );
    let full = pipe.evaluate(
        &quantized,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        24,
    );
    // Monotone degradation chain, no blowups.
    assert!((fp.ppl - fp.ppl_fp).abs() < 1e-9);
    assert!(w4.ppl >= fp.ppl);
    assert!(
        w4a8.ppl < fp.ppl * 2.0,
        "W4A8 {} vs FP {}",
        w4a8.ppl,
        fp.ppl
    );
    assert!(
        full.ppl < fp.ppl * 2.5,
        "full stack {} vs FP {}",
        full.ppl,
        fp.ppl
    );
}

#[test]
fn mant_beats_baselines_at_w4() {
    let pipe = Pipeline::new(&ModelConfig::sim_llama(), 31);
    let mant = pipe.quantize_w4(64);
    let int4 = pipe.quantize_with(&BitFusionQuantizer::new(4, Granularity::Group(64)));
    let tender = pipe.quantize_with(&TenderQuantizer::w4(64));

    let p = |m| pipe.evaluate(m, ActMode::None, KvMode::Fp16, 32).ppl;
    let mant_ppl = p(&mant);
    assert!(
        mant_ppl <= p(&int4) * 1.001,
        "MANT {} vs INT4 {}",
        mant_ppl,
        p(&int4)
    );
    assert!(
        mant_ppl <= p(&tender) * 1.001,
        "MANT {} vs Tender {}",
        mant_ppl,
        p(&tender)
    );
}

#[test]
fn opt_style_models_run_too() {
    let pipe = Pipeline::new(&ModelConfig::sim_opt(), 77);
    let q = pipe.quantize_w4(64);
    let rep = pipe.evaluate(
        &q,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        16,
    );
    assert!(rep.ppl.is_finite());
    assert!(rep.ppl >= rep.ppl_fp);
}

#[test]
fn parallel_encode_deterministic_at_two_model_sizes() {
    for (cfg, seed) in [(ModelConfig::sim_llama(), 91u64), (sim_llama_large(), 92)] {
        let pipe = Pipeline::new(&cfg, seed);
        let q = MantWeightQuantizer::new(64);
        let bits = |m: &mant::tensor::Matrix| -> Vec<u32> {
            m.as_slice().iter().map(|v| v.to_bits()).collect()
        };

        // Serial and parallel encode engines must agree bit-for-bit on
        // every projection of the model.
        for layer in &pipe.reference().weights.layers {
            for w in [
                &layer.wq,
                &layer.wk,
                &layer.wv,
                &layer.wo,
                &layer.w_up,
                &layer.w_down,
            ] {
                let ser = q.quantize(w).expect("group divides width").dequantize();
                let par = q.par_quantize(w).expect("group divides width").dequantize();
                assert_eq!(bits(&ser), bits(&par), "{}: engine divergence", cfg.name);
            }
        }

        // And the whole pipeline (which routes through the parallel
        // engine) must be reproducible run-to-run.
        let a = pipe.quantize_w4(64);
        let b = pipe.quantize_w4(64);
        for (la, lb) in a.weights.layers.iter().zip(b.weights.layers.iter()) {
            assert_eq!(bits(&la.wq), bits(&lb.wq), "{}: run-to-run drift", cfg.name);
            assert_eq!(
                bits(&la.w_down),
                bits(&lb.w_down),
                "{}: run-to-run drift",
                cfg.name
            );
        }
    }
}

#[test]
fn pipeline_monotonic_at_two_model_sizes() {
    for (cfg, seed) in [(ModelConfig::sim_llama(), 93u64), (sim_llama_large(), 94)] {
        let mut pipe = Pipeline::new(&cfg, seed);
        let calib = pipe.calibrate(40);
        assert!(calib.kv_group_count() > 0, "{}: no KV samples", cfg.name);

        let quantized = pipe.quantize_w4(64);
        let fp = pipe.evaluate(pipe.reference(), ActMode::None, KvMode::Fp16, 20);
        let w4 = pipe.evaluate(&quantized, ActMode::None, KvMode::Fp16, 20);
        let w4a8 = pipe.evaluate(
            &quantized,
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Fp16,
            20,
        );
        let full = pipe.evaluate(
            &quantized,
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Mant4 { group: 64 },
            20,
        );
        // The degradation chain holds at both sizes: FP is the fixed
        // point, and each additional quantization stage stays bounded.
        assert!((fp.ppl - fp.ppl_fp).abs() < 1e-9, "{}", cfg.name);
        assert!(
            w4.ppl >= fp.ppl,
            "{}: W4 {} vs FP {}",
            cfg.name,
            w4.ppl,
            fp.ppl
        );
        assert!(
            w4a8.ppl < fp.ppl * 2.0,
            "{}: W4A8 {} vs FP {}",
            cfg.name,
            w4a8.ppl,
            fp.ppl
        );
        assert!(
            full.ppl < fp.ppl * 2.5,
            "{}: full stack {} vs FP {}",
            cfg.name,
            full.ppl,
            fp.ppl
        );
    }
}

#[test]
fn generation_with_full_quantization_stays_reasonable() {
    let pipe = Pipeline::new(&ModelConfig::sim_llama(), 55);
    let q = pipe.quantize_w4(64);
    let fidelity = pipe.evaluate_generation(
        &q,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        10,
        24,
    );
    assert!((0.0..=1.0).contains(&fidelity));
    assert!(fidelity > 0.2, "fidelity collapsed: {fidelity}");
}

//! Cross-crate integration tests: the full calibrate → quantize → infer →
//! evaluate pipeline, spanning numerics, quant, baselines, model, and core.

use mant::baselines::{BitFusionQuantizer, TenderQuantizer};
use mant::core::Pipeline;
use mant::model::{
    run_sequence, run_sequence_packed, ActMode, FfnKind, KvMode, ModelConfig, TransformerModel,
};
use mant::quant::{Granularity, MantWeightQuantizer};

/// A second, larger model size for the cross-size tests: 2× hidden width,
/// one more layer than `sim_llama`.
fn sim_llama_large() -> ModelConfig {
    ModelConfig {
        name: "sim-llama-large".to_owned(),
        hidden: 512,
        heads: 8,
        kv_heads: 8,
        layers: 3,
        ffn: 1024,
        vocab: 512,
        ffn_kind: FfnKind::GatedSilu,
    }
}

#[test]
fn calibrated_pipeline_end_to_end() {
    let mut pipe = Pipeline::new(&ModelConfig::sim_llama(), 2024);
    let calib = pipe.calibrate(40);
    assert!(calib.kv_group_count() > 0);

    let quantized = pipe.quantize_w4(64);
    let fp = pipe.evaluate(pipe.reference(), ActMode::None, KvMode::Fp16, 24);
    let w4 = pipe.evaluate(&quantized, ActMode::None, KvMode::Fp16, 24);
    let w4a8 = pipe.evaluate(
        &quantized,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Fp16,
        24,
    );
    let full = pipe.evaluate(
        &quantized,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        24,
    );
    // Monotone degradation chain, no blowups.
    assert!((fp.ppl - fp.ppl_fp).abs() < 1e-9);
    assert!(w4.ppl >= fp.ppl);
    assert!(
        w4a8.ppl < fp.ppl * 2.0,
        "W4A8 {} vs FP {}",
        w4a8.ppl,
        fp.ppl
    );
    assert!(
        full.ppl < fp.ppl * 2.5,
        "full stack {} vs FP {}",
        full.ppl,
        fp.ppl
    );
}

#[test]
fn mant_beats_baselines_at_w4() {
    let pipe = Pipeline::new(&ModelConfig::sim_llama(), 31);
    let mant = pipe.quantize_w4(64);
    let int4 = pipe.quantize_with(&BitFusionQuantizer::new(4, Granularity::Group(64)));
    let tender = pipe.quantize_with(&TenderQuantizer::w4(64));

    let p = |m| pipe.evaluate(m, ActMode::None, KvMode::Fp16, 32).ppl;
    let mant_ppl = p(&mant);
    assert!(
        mant_ppl <= p(&int4) * 1.001,
        "MANT {} vs INT4 {}",
        mant_ppl,
        p(&int4)
    );
    assert!(
        mant_ppl <= p(&tender) * 1.001,
        "MANT {} vs Tender {}",
        mant_ppl,
        p(&tender)
    );
}

#[test]
fn opt_style_models_run_too() {
    let pipe = Pipeline::new(&ModelConfig::sim_opt(), 77);
    let q = pipe.quantize_w4(64);
    let rep = pipe.evaluate(
        &q,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        16,
    );
    assert!(rep.ppl.is_finite());
    assert!(rep.ppl >= rep.ppl_fp);
}

#[test]
fn parallel_encode_deterministic_at_two_model_sizes() {
    for (cfg, seed) in [(ModelConfig::sim_llama(), 91u64), (sim_llama_large(), 92)] {
        let pipe = Pipeline::new(&cfg, seed);
        let q = MantWeightQuantizer::new(64);
        let bits = |m: &mant::tensor::Matrix| -> Vec<u32> {
            m.as_slice().iter().map(|v| v.to_bits()).collect()
        };

        // Serial and parallel encode engines must agree bit-for-bit on
        // every projection of the model.
        for layer in &pipe.reference().weights.layers {
            for w in [
                &layer.wq,
                &layer.wk,
                &layer.wv,
                &layer.wo,
                &layer.w_up,
                &layer.w_down,
            ] {
                let ser = q.quantize(w).expect("group divides width").dequantize();
                let par = q.par_quantize(w).expect("group divides width").dequantize();
                assert_eq!(bits(&ser), bits(&par), "{}: engine divergence", cfg.name);
            }
        }

        // And the whole pipeline (which routes through the parallel
        // engine) must be reproducible run-to-run.
        let a = pipe.quantize_w4(64);
        let b = pipe.quantize_w4(64);
        for (la, lb) in a.weights.layers.iter().zip(b.weights.layers.iter()) {
            assert_eq!(bits(&la.wq), bits(&lb.wq), "{}: run-to-run drift", cfg.name);
            assert_eq!(
                bits(&la.w_down),
                bits(&lb.w_down),
                "{}: run-to-run drift",
                cfg.name
            );
        }
    }
}

#[test]
fn pipeline_monotonic_at_two_model_sizes() {
    for (cfg, seed) in [(ModelConfig::sim_llama(), 93u64), (sim_llama_large(), 94)] {
        let mut pipe = Pipeline::new(&cfg, seed);
        let calib = pipe.calibrate(40);
        assert!(calib.kv_group_count() > 0, "{}: no KV samples", cfg.name);

        let quantized = pipe.quantize_w4(64);
        let fp = pipe.evaluate(pipe.reference(), ActMode::None, KvMode::Fp16, 20);
        let w4 = pipe.evaluate(&quantized, ActMode::None, KvMode::Fp16, 20);
        let w4a8 = pipe.evaluate(
            &quantized,
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Fp16,
            20,
        );
        let full = pipe.evaluate(
            &quantized,
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Mant4 { group: 64 },
            20,
        );
        // The degradation chain holds at both sizes: FP is the fixed
        // point, and each additional quantization stage stays bounded.
        assert!((fp.ppl - fp.ppl_fp).abs() < 1e-9, "{}", cfg.name);
        assert!(
            w4.ppl >= fp.ppl,
            "{}: W4 {} vs FP {}",
            cfg.name,
            w4.ppl,
            fp.ppl
        );
        assert!(
            w4a8.ppl < fp.ppl * 2.0,
            "{}: W4A8 {} vs FP {}",
            cfg.name,
            w4a8.ppl,
            fp.ppl
        );
        assert!(
            full.ppl < fp.ppl * 2.5,
            "{}: full stack {} vs FP {}",
            cfg.name,
            full.ppl,
            fp.ppl
        );
    }
}

#[test]
fn backend_logits_equivalence_at_two_model_sizes() {
    // The tentpole invariant of the execution-backend refactor: at both
    // model sizes, running the quantized backend (integer GEMVs over
    // packed groups) reproduces the reference backend over the dequantized
    // twin with the bit-compatible A8 activation quantization, up to
    // accumulation order.
    for (cfg, seed) in [(ModelConfig::sim_llama(), 95u64), (sim_llama_large(), 96)] {
        let m = TransformerModel::synthesize(&cfg, seed);
        let packed = m.pack_weights(64).expect("64 divides every width");
        let twin = packed.to_model(&m);
        let tokens: Vec<usize> = (0..24).map(|i| (i * 37) % cfg.vocab).collect();
        let act = ActMode::IntGroup { bits: 8, group: 64 };

        let reference = run_sequence(&twin, act, KvMode::Fp16, &tokens);
        let quantized = run_sequence_packed(&m, &packed, act, KvMode::Fp16, &tokens);
        let norm: f64 = reference
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        let rel = reference.distance(&quantized) / norm;
        // Pure accumulation-order noise (integer-psum/f64 vs f32 sums),
        // amplified through softmax and residual feedback — it grows with
        // depth (~1e-4 at 2 layers, ~1e-3 at 3), far below any real
        // quantization effect.
        assert!(rel < 5e-3, "{}: backend divergence {rel}", cfg.name);

        // With the quantized KV cache the backends additionally differ by
        // INT8 query/probability rounding inside attention; the end-to-end
        // drift stays far below the 4-bit cache's own cost vs FP16.
        let kv = KvMode::Mant4 { group: 64 };
        let dequant_path = run_sequence(&twin, act, kv, &tokens);
        let fused_path = run_sequence_packed(&m, &packed, act, kv, &tokens);
        let rel_kv = dequant_path.distance(&fused_path) / norm;
        assert!(rel_kv < 0.3, "{}: fused KV divergence {rel_kv}", cfg.name);
    }
}

#[test]
fn packed_pipeline_evaluates_all_modes() {
    // The Pipeline backend knob end to end: calibrated pack, quantized
    // backend evaluation with FP16 and MANT4 caches, twin consistency.
    let mut pipe = Pipeline::new(&ModelConfig::sim_llama(), 97);
    pipe.calibrate(40);
    let packed = pipe.pack_w4(64);
    let fake = pipe.quantize_w4(64);
    let act = ActMode::IntGroup { bits: 8, group: 64 };

    let rep_fake = pipe.evaluate(&fake, act, KvMode::Fp16, 20);
    let rep_packed = pipe.evaluate_packed(&packed, act, KvMode::Fp16, 20);
    assert!(
        (rep_fake.ppl - rep_packed.ppl).abs() < rep_fake.ppl * 5e-3,
        "fake {} vs packed {}",
        rep_fake.ppl,
        rep_packed.ppl
    );

    let rep_kv = pipe.evaluate_packed(&packed, act, KvMode::Mant4 { group: 64 }, 20);
    assert!(rep_kv.ppl.is_finite());
    assert!(rep_kv.ppl >= rep_kv.ppl_fp);
    assert!(
        rep_kv.ppl < rep_fake.ppl_fp * 2.5,
        "quantized-backend full stack blew up: {} vs floor {}",
        rep_kv.ppl,
        rep_fake.ppl_fp
    );
}

#[test]
fn generation_with_full_quantization_stays_reasonable() {
    let pipe = Pipeline::new(&ModelConfig::sim_llama(), 55);
    let q = pipe.quantize_w4(64);
    let fidelity = pipe.evaluate_generation(
        &q,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        10,
        24,
    );
    assert!((0.0..=1.0).contains(&fidelity));
    assert!(fidelity > 0.2, "fidelity collapsed: {fidelity}");
}

//! Integration tests of the quantization stack against the numeric layer:
//! the fused integer GEMM, the KV engines inside a real attention loop,
//! and storage accounting consistency across crates.

use mant::model::{ActMode, KvMode, ModelConfig, TransformerModel};
use mant::numerics::Mant;
use mant::quant::{
    mant_gemm, quantize_activations_int8, CandidateSet, KCacheQuantizer, MantWeightQuantizer,
    VCacheQuantizer, VarianceMap,
};
use mant::tensor::{gemm, TensorGenerator};

#[test]
fn fused_gemm_tracks_fp32_through_the_whole_stack() {
    let mut gen = TensorGenerator::new(404);
    let x = gen.activation_matrix(6, 512, 1.0, 0.01, 12.0);
    let w = gen.group_diverse_matrix(32, 512, 64, 0.05);
    let xq = quantize_activations_int8(&x, 64).expect("group divides width");
    let wq = MantWeightQuantizer::new(64)
        .quantize(&w)
        .expect("group divides width");
    let fused = mant_gemm(&xq, &wq).expect("shapes agree");
    let exact = gemm(&x, &w.transpose());
    let norm: f64 = exact
        .as_slice()
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt();
    let rel = exact.distance(&fused) / norm;
    assert!(rel < 0.12, "W4A8 relative error {rel}");
}

#[test]
fn kv_engines_inside_attention_preserve_logit_quality() {
    let model = TransformerModel::synthesize(&ModelConfig::sim_llama(), 88);
    let tokens: Vec<usize> = (0..64).map(|i| (i * 101) % model.config.vocab).collect();
    let fp = mant::model::layers::run_sequence(&model, ActMode::None, KvMode::Fp16, &tokens);
    let kv4 = mant::model::layers::run_sequence(
        &model,
        ActMode::None,
        KvMode::Mant4 { group: 64 },
        &tokens,
    );
    let norm: f64 = fp
        .as_slice()
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt();
    assert!(fp.distance(&kv4) / norm < 0.6);
}

#[test]
fn storage_accounting_is_consistent() {
    // 4 bits + 24/group from numerics → quant → model-level weight sizes.
    let mut gen = TensorGenerator::new(123);
    let w = gen.group_diverse_matrix(16, 256, 64, 0.02);
    let wq = MantWeightQuantizer::new(64)
        .quantize(&w)
        .expect("valid group");
    let expected_bits = 16 * 256 * 4 + 16 * 4 * 24;
    assert_eq!(wq.storage_bits(), expected_bits);

    let vmap = VarianceMap::analytic(&CandidateSet::paper()).expect("non-empty");
    let mut kq = KCacheQuantizer::new(256, 64, vmap.clone()).expect("valid");
    let mut vq = VCacheQuantizer::new(256, 64, vmap).expect("valid");
    for _ in 0..64 {
        kq.push(&vec![0.5; 256]);
        vq.push(&vec![0.5; 256]);
    }
    assert_eq!(kq.storage_bits(), 64 * 256 * 4 + 64 * 4 * 24);
    // One committed V window: 4-bit codes + per-channel metadata.
    assert_eq!(vq.storage_bits(), 64 * 256 * 4 + 256 * 24);
}

#[test]
fn every_paper_coefficient_runs_the_full_path() {
    // Each candidate in the paper set must encode, decode, and fuse.
    for &a in &mant::quant::search::PAPER_A_SET {
        let m = Mant::new(a).expect("paper set is valid");
        let code = m.encode(-37.5);
        let v = m.decode(code);
        assert!(v < 0, "a={a}");
        let fused = m.combine_psums(
            5 * i64::from(Mant::psum1_operand(code)),
            5 * i64::from(Mant::psum2_operand(code)),
        );
        assert_eq!(fused, 5 * i64::from(v), "a={a}");
    }
}

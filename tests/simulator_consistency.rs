//! Integration tests tying the simulator to the model configurations and
//! the paper's headline performance claims.

use mant::model::ModelConfig;
use mant::sim::{
    area_report, attention_gemms, linear_gemms, run_gemm, run_model, AcceleratorConfig, EnergyModel,
};

#[test]
fn headline_speedup_and_energy_claims() {
    // Abstract: "on average 2.99× (up to 4.46×) speedup and 2.81× (up to
    // 4.10×) energy reduction to the state-of-the-art LLM accelerator
    // [Tender] in different sequence lengths."
    let em = EnergyModel::default();
    let cfg = ModelConfig::llama_7b();
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    for seq in [2048usize, 8192, 32768, 131072] {
        let mant = run_model(&AcceleratorConfig::mant(), &em, &cfg, seq).total();
        let tender = run_model(&AcceleratorConfig::tender(), &em, &cfg, seq).total();
        speedups.push(mant.speedup_over(&tender));
        energies.push(tender.energy.total() / mant.energy.total());
    }
    let avg_speedup = speedups.iter().product::<f64>().powf(0.25);
    let max_speedup = speedups.iter().cloned().fold(0.0, f64::max);
    let avg_energy = energies.iter().product::<f64>().powf(0.25);
    let max_energy = energies.iter().cloned().fold(0.0, f64::max);
    // Our attention model is compute-bound at very long sequences (the
    // paper's is closer to memory-bound there), so the long-seq ratios run
    // somewhat higher — see EXPERIMENTS.md. Shape and band preserved.
    assert!(
        (2.0..=5.0).contains(&avg_speedup),
        "avg speedup {avg_speedup}"
    );
    assert!(
        (3.0..=9.0).contains(&max_speedup),
        "max speedup {max_speedup}"
    );
    assert!((1.5..=5.0).contains(&avg_energy), "avg energy {avg_energy}");
    assert!((2.0..=8.0).contains(&max_energy), "max energy {max_energy}");
    // Speedup grows with sequence length (attention dominance).
    assert!(speedups.windows(2).all(|w| w[1] >= w[0]), "{speedups:?}");
}

#[test]
fn simulator_workloads_match_model_configs() {
    for cfg in [
        ModelConfig::llama_7b(),
        ModelConfig::llama_65b(),
        ModelConfig::opt_6_7b(),
    ] {
        let lin = linear_gemms(&cfg, 1);
        let macs: f64 = lin.iter().map(|g| g.macs()).sum();
        assert!(
            (macs - cfg.linear_params() as f64).abs() < 1.0,
            "{}",
            cfg.name
        );
        let att = attention_gemms(&cfg, 4096);
        assert_eq!(att.len(), 2);
    }
}

#[test]
fn iso_area_configurations() {
    // All synthesized cores within 12% of each other, with shared buffers.
    let reports = area_report();
    let areas: Vec<f64> = reports.iter().map(|r| r.core_mm2()).collect();
    let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = areas.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.12);
    // And the simulator's accelerators all get the same lane budget.
    for acc in AcceleratorConfig::paper_set() {
        assert_eq!(acc.lanes_4x4, 4096);
    }
}

#[test]
fn quantization_overhead_is_hidden_for_typical_gemms() {
    // Sec. VII-C: "the non-overlapped quantization overhead occupies 0.3%"
    // for a (2048×4096)·(4096×4096) GEMM. With K/rows ≥ 12 the divider is
    // fully hidden in our model.
    let em = EnergyModel::default();
    let mant = AcceleratorConfig::mant();
    let g = mant_sim_gemm(2048, 4096, 4096);
    let with = run_gemm(&mant, &em, &g);
    let mut no_group = mant.clone();
    no_group.group_size = None;
    let without = run_gemm(&no_group, &em, &g);
    let overhead = (with.cycles as f64 - without.cycles as f64) / without.cycles as f64;
    assert!(overhead.abs() < 0.005, "overhead {overhead}");
}

fn mant_sim_gemm(m: usize, k: usize, n: usize) -> mant::sim::Gemm {
    mant::sim::Gemm {
        name: "test".to_owned(),
        m,
        k,
        n,
        count: 1,
        phase: mant::sim::workload::Phase::Linear,
    }
}

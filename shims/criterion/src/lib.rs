//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion API the workspace benches use: `Criterion`
//! with builder-style config, `benchmark_group` / `bench_function` /
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//! Bench targets must set `harness = false` (as with real criterion).
//!
//! Measurement is simple but honest: a short warm-up, then timed batches
//! until the measurement window or an iteration cap is exhausted, with the
//! mean time per iteration reported on stdout. Results are also recorded
//! so bench code can compute ratios (e.g. serial vs parallel speedup) via
//! [`Criterion::last_mean_ns`].

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed iterations.
    pub iterations: u64,
}

/// The benchmark driver. Mirrors criterion's builder API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    max_iterations: u64,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(200),
            max_iterations: 100_000,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (kept for API compatibility; the
    /// shim times one contiguous run).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Caps the number of timed iterations per benchmark (shim extension;
    /// bounds memory growth for stateful benchmarked closures).
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_owned(), f);
        self
    }

    /// The mean ns/iter of the most recent benchmark whose id contains
    /// `needle`, if any (shim extension used to report speedup ratios).
    pub fn last_mean_ns(&self, needle: &str) -> Option<f64> {
        self.measurements
            .iter()
            .rev()
            .find(|m| m.id.contains(needle))
            .map(|m| m.mean_ns)
    }

    /// All measurements recorded so far (shim extension).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            max_iterations: self.max_iterations,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let iters = bencher.iterations.max(1);
        let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
        println!(
            "{id:<48} {:>14} ns/iter  ({iters} iters)",
            format_num(mean_ns)
        );
        self.measurements.push(Measurement {
            id,
            mean_ns,
            iterations: iters,
        });
    }
}

fn format_num(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        let v = ns.round() as u64;
        let s = v.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; times repeated calls of `f`.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    max_iterations: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement window or iteration cap
    /// is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: at least one call, then until the warm-up window closes
        // (iteration-capped so stateful closures can't grow unboundedly).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time || warm_iters >= self.max_iterations {
                break;
            }
        }
        let start = Instant::now();
        let mut n: u64 = 0;
        'outer: while start.elapsed() < self.measurement_time {
            // Check the clock every few iterations to keep per-iter overhead low.
            for _ in 0..8 {
                black_box(f());
                n += 1;
                if n >= self.max_iterations {
                    break 'outer;
                }
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = n;
    }
}

/// Declares a group of benchmark targets, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given benchmark groups (bench targets must set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
            .max_iterations(1000);
        let mut g = c.benchmark_group("grp");
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        let m = c.last_mean_ns("grp/sum").expect("recorded");
        assert!(m > 0.0);
        assert_eq!(c.measurements().len(), 1);
    }

    #[test]
    fn iteration_cap_binds() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_secs(5))
            .warm_up_time(Duration::ZERO)
            .max_iterations(10);
        c.bench_function("capped", |b| b.iter(|| 1u64 + 1));
        assert_eq!(c.measurements()[0].iterations, 10);
    }
}

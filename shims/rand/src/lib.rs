//! Minimal, offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::{random, random_range}` over the primitive types that appear in
//! the codebase. The generator is xoshiro256++ seeded via splitmix64 — not
//! bit-compatible with the real `StdRng` (ChaCha12), but a high-quality
//! deterministic stream, which is all the synthetic-tensor code requires.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Constructs the RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, full range for integers).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                (lo + below(rng, (hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value sampled from the type's standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value sampled uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's ChaCha12
    /// `StdRng`; streams differ but quality is comparable for simulation).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, per the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z) = (a.random::<f64>(), b.random::<f64>(), c.random::<f64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean = 0.0f64;
        for _ in 0..10_000 {
            let u: f32 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let n = rng.random_range(5usize..9);
            assert!((5..9).contains(&n));
            let f = rng.random_range(-0.6f32..0.6);
            assert!((-0.6..0.6).contains(&f));
            mean += f64::from(u);
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }
}

//! Minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the workspace's property tests use:
//! range strategies over primitives, `collection::vec`, `prop_map`,
//! `ProptestConfig::with_cases`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Generation is deterministic: every test derives its RNG seed from its
//! own module path and name, so failures reproduce exactly across runs.
//! There is no shrinking; the failure report prints the generated inputs
//! instead.

use std::ops::{Range, RangeInclusive};

/// Error type carried by `prop_assert!` failures (a formatted message).
pub type TestCaseError = String;

/// Subset of proptest's runner configuration: only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic 64-bit RNG (splitmix64 core) used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test's module path + name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then a splitmix scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, bound) for non-zero `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator. Mirrors proptest's `Strategy` with generation only
/// (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64();
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// Tuple strategies: each element generates independently, in order —
// matching real proptest's tuple composition.
macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Always generates a clone of the given value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner internals referenced by generated code.
pub mod test_runner {
    pub use super::{TestCaseError, TestRng};
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::{Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format_args!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), file!(), line!(), l, r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), file!(), line!(),
                format_args!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Defines property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(-1.0f32..1.0, 1..64)) {
///         prop_assert!(v.len() < 64);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // ---- internal: bind one `name in strategy` argument at a time ----
    (@bind $rng:ident $inputs:ident,) => {};
    (@bind $rng:ident $inputs:ident, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $inputs.push(format!("{} = {:?}", stringify!($name), $name));
        $crate::proptest!(@bind $rng $inputs, $($($rest)*)?);
    };
    (@bind $rng:ident $inputs:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $inputs.push(format!("{} = {:?}", stringify!($name), $name));
        $crate::proptest!(@bind $rng $inputs, $($($rest)*)?);
    };

    // ---- internal: emit each test function ----
    (@funcs $cfg:expr;) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                let mut inputs: Vec<String> = Vec::new();
                $crate::proptest!(@bind rng inputs, $($args)*);
                let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n  {}",
                        case + 1, cfg.cases, msg, inputs.join("\n  ")
                    );
                }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };

    // ---- entry points ----
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = crate::Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&crate::collection::vec(0.0f32..1.0, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact =
            crate::Strategy::generate(&crate::collection::vec(0.0f32..1.0, 7usize), &mut rng);
        assert_eq!(exact.len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end, including `mut` bindings.
        #[test]
        fn macro_end_to_end(mut v in crate::collection::vec(1i64..=9, 1..8), k in 0u8..4) {
            v.push(i64::from(k));
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied(), Some(i64::from(k)), "k={}", k);
        }
    }
}

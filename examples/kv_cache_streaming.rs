//! Real-time KV-cache quantization, token by token: the K cache quantizes
//! spatially (whole groups per arriving key vector), the V cache runs the
//! paper's two-phase temporal scheme (INT8 process window + variance-based
//! coefficient selection on commit, Fig. 8). The decode loop then attends
//! both ways — dequantizing the whole cache per step vs consuming the
//! packed groups incrementally — and reports the per-step speedup.
//!
//! Run with `cargo run --release --example kv_cache_streaming`.

use std::time::Instant;

use mant::quant::kv::{attention_dequantize, attention_incremental};
use mant::quant::{CandidateSet, KCacheQuantizer, VCacheQuantizer, VarianceMap};
use mant::tensor::{mse, Matrix, TensorGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 256; // head_dim × heads
    let group = 64;
    let vmap = VarianceMap::analytic(&CandidateSet::paper())?;

    let mut k_cache = KCacheQuantizer::new(dim, group, vmap.clone())?;
    let mut v_cache = VCacheQuantizer::new(dim, group, vmap)?;
    let mut gen = TensorGenerator::new(99);

    // Prefill: a 128-token prompt arrives as matrices.
    let k_prefill = gen.group_diverse_matrix(128, dim, group, 0.5);
    let v_prefill = gen.group_diverse_matrix(128, dim, group, 0.5);
    k_cache.prefill(&k_prefill);
    v_cache.prefill(&v_prefill);
    println!(
        "after prefill: {} keys cached, {} V windows committed, {} V rows staged in INT8",
        k_cache.len(),
        v_cache.committed_windows(),
        v_cache.window_len()
    );

    // Decode: one K/V vector per generated token.
    let mut k_rows = k_prefill.clone();
    let mut v_rows = v_prefill.clone();
    for step in 0..96 {
        let k: Vec<f32> = (0..dim).map(|_| gen.standard_normal() * 0.5).collect();
        let v: Vec<f32> = (0..dim).map(|_| gen.standard_normal() * 0.5).collect();
        k_cache.push(&k);
        v_cache.push(&v);
        k_rows.push_row(&k);
        v_rows.push_row(&v);
        if (step + 1) % 32 == 0 {
            println!(
                "decode step {:>3}: V windows committed {}, staged rows {}",
                step + 1,
                v_cache.committed_windows(),
                v_cache.window_len()
            );
        }
    }

    // Accuracy of the whole cache after 128 + 96 tokens.
    let rel = |orig: &Matrix, deq: &Matrix| -> f64 {
        mse(orig.as_slice(), deq.as_slice())
            / mse(orig.as_slice(), &vec![0.0; orig.len()]).max(1e-30)
    };
    println!(
        "\nK cache: {} vectors at {:.3} bits/element, relative error {:.4}%",
        k_cache.len(),
        k_cache.storage_bits() as f64 / (k_cache.len() * dim) as f64,
        100.0 * rel(&k_rows, &k_cache.dequantize())
    );
    println!(
        "V cache: {} vectors at {:.3} bits/element, relative error {:.4}%",
        v_cache.len(),
        v_cache.storage_bits() as f64 / (v_cache.len() * dim) as f64,
        100.0 * rel(&v_rows, &v_cache.dequantize())
    );
    println!("(the staged INT8 tail keeps the newest tokens at higher fidelity,");
    println!(" which the paper argues helps generation quality)");

    // --- One attention step, two execution backends ---
    // Reference path: dequantize the full cache (seq × dim matrices) and
    // attend in f32. Incremental path: quantize the query to INT8 groups
    // and consume the packed codes in place (fused_dot / attend). Both use
    // the shared cache-level attention helpers from `mant::quant::kv` —
    // the same code the model runner and the decode bench execute.
    let seq = k_cache.len();
    let heads = dim / group; // head_dim = one quantization group
    let q: Vec<f32> = (0..dim).map(|_| gen.standard_normal()).collect();
    let dequantize_step = || attention_dequantize(&q, &k_cache, &v_cache, heads, heads, group);
    let incremental_step = || attention_incremental(&q, &k_cache, &v_cache, heads, heads, group);
    let time_best = |f: &dyn Fn() -> Vec<f32>| -> (f64, Vec<f32>) {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            out = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, out)
    };
    let (t_deq, y_deq) = time_best(&dequantize_step);
    let (t_inc, y_inc) = time_best(&incremental_step);
    let norm: f32 = y_deq.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
    let diff: f32 = y_deq
        .iter()
        .zip(y_inc.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    println!(
        "\nattention step over {seq} cached tokens:\n  dequantize path  {:.3} ms (materializes two {seq}x{dim} matrices)\n  incremental path {:.3} ms (packed groups in place) -> {:.2}x per-step speedup, rel diff {:.4}",
        t_deq * 1e3,
        t_inc * 1e3,
        t_deq / t_inc,
        diff / norm
    );
    Ok(())
}

//! Shared-prefix serving over the copy-on-write paged KV pool: N personas
//! answering M requests each over one common system prompt. Requests with
//! an identical block-aligned prompt prefix map it onto the *same*
//! physical packed MANT4 blocks (refcounted, copy-on-write), skip that
//! prefill entirely, and — by the engine's bit-exactness contract — still
//! produce byte-identical token streams to both the one-request-at-a-time
//! baseline and the PR 3 whole-lifetime-reservation engine.
//!
//! Run with `cargo run --release --example serving_prefix`.

use mant::core::Pipeline;
use mant::model::{ActMode, KvMode, ModelConfig};
use mant::serve::{
    requests_from_shared_trace, sequential_generate, AdmissionPolicy, ServeConfig, ServeEngine,
};
use mant::sim::{shared_prefix_trace, LengthDist, SharedPrefixConfig};

fn main() {
    let config = ModelConfig::sim_llama();
    println!(
        "model: {} ({} hidden, {} heads, {} layers, vocab {})",
        config.name, config.hidden, config.heads, config.layers, config.vocab
    );

    let mut pipe = Pipeline::new(&config, 7);
    pipe.calibrate(48);
    let packed = pipe.pack_w4(64);
    let model = pipe.reference();
    let act = ActMode::None;
    // KV group 16 → 16-token pool blocks: a 64-token system prompt spans
    // four shareable blocks.
    let kv = KvMode::Mant4 { group: 16 };

    let shared_cfg = SharedPrefixConfig {
        personas: 2,
        requests_per_persona: 3,
        system_prompt_len: 64,
        persona_prompt_len: 16,
        unique_prompt_len: LengthDist::Uniform { lo: 2, hi: 8 },
        output: LengthDist::Fixed(16),
        arrivals_per_iter: 0.04,
        seed: 31,
    };
    let trace = shared_prefix_trace(&shared_cfg);
    let requests = requests_from_shared_trace(&shared_cfg, &trace, config.vocab, 32);
    println!(
        "trace: {} personas x {} requests over a {}-token system prompt \
         (+{}-token persona blocks)",
        shared_cfg.personas,
        shared_cfg.requests_per_persona,
        shared_cfg.system_prompt_len,
        shared_cfg.persona_prompt_len,
    );

    let mut engine = ServeEngine::new(
        model,
        &packed,
        ServeConfig {
            max_batch: 6,
            pool_blocks: 64,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 8,
            },
            prefix_sharing: true,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();

    let ttft = report.ttft_percentiles().expect("requests completed");
    let queue = report.queueing_percentiles().expect("requests completed");
    println!("\nCoW engine (watermark admission, prefix sharing):");
    println!(
        "  aggregate throughput      : {:.1} generated tok/s ({:.1} tok/s incl. prefill)",
        report.tokens_per_sec(),
        report.total_tokens_per_sec()
    );
    println!(
        "  prefix cache              : {:.0}% hit rate ({} of {} prefill tokens from shared blocks)",
        report.prefix_hit_rate() * 100.0,
        report.prefix_cached_tokens,
        report.prefill_tokens,
    );
    println!(
        "  concurrency               : peak {} running, occupancy {:.2}, peak {}/{} blocks",
        report.peak_running,
        report.mean_batch_occupancy,
        report.peak_used_blocks,
        report.pool_blocks,
    );
    println!(
        "  preemptions               : {} ({} recomputed tokens)",
        report.preemptions, report.recomputed_tokens
    );
    println!(
        "  TTFT  p50/p95/max         : {:.0} / {:.0} / {:.0} iterations",
        ttft.p50, ttft.p95, ttft.max
    );
    println!(
        "  queueing delay p50/p95/max: {:.0} / {:.0} / {:.0} iterations (submit → admission)",
        queue.p50, queue.p95, queue.max
    );

    // The PR 3 discipline on the same pool, for comparison.
    let mut reserve_engine = ServeEngine::new(
        model,
        &packed,
        ServeConfig {
            max_batch: 6,
            pool_blocks: 64,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Reserve,
            prefix_sharing: false,
            speculative: None,
        },
    );
    for r in &requests {
        reserve_engine.submit(r.clone());
    }
    let reserve = reserve_engine.run_to_completion();
    println!("\nwhole-lifetime reservation engine (same pool, no sharing):");
    println!(
        "  aggregate throughput      : {:.1} generated tok/s, peak {} running",
        reserve.tokens_per_sec(),
        reserve.peak_running
    );
    println!(
        "  CoW + sharing wins        : {:.2}x aggregate tokens/s",
        report.tokens_per_sec() / reserve.tokens_per_sec()
    );

    // Bit-exactness: sharing changed the schedule, not one token.
    let (outputs, _) = sequential_generate(model, &packed, act, kv, &requests);
    let identical = report
        .completions
        .iter()
        .all(|c| c.tokens == outputs[c.id as usize])
        && reserve
            .completions
            .iter()
            .all(|c| c.tokens == outputs[c.id as usize]);
    println!("  outputs identical across all three engines: {identical}");
    assert!(identical, "prefix sharing must not change greedy outputs");
}

//! The serving stack behind a real network edge: replay a seeded Poisson
//! trace against the `mant-gateway` HTTP/SSE front-end over loopback
//! sockets, measure TTFT and end-to-end latency *at the socket* (what a
//! client actually experiences, scheduler and wire included), and verify
//! the streamed tokens are byte-identical to an in-process engine run —
//! then force an overload to show explicit 429 load shedding, wall-clock
//! deadline expiry, and a graceful drain on shutdown.
//!
//! Run with `cargo run --release --example gateway`.

use std::io::Write;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use mant::gateway::{client, GatewayConfig, Terminal};
use mant::model::{ActMode, KvMode, ModelConfig, TransformerModel};
use mant::serve::{
    requests_from_trace, sequential_generate, AdmissionPolicy, GenRequest, Percentiles,
    ServeConfig, ServeEngine,
};
use mant::sim::{poisson_trace, trace_tokens, LengthDist, TraceConfig};

fn body_json(req: &GenRequest, deadline_ms: Option<u64>) -> String {
    let toks: Vec<String> = req.prompt.iter().map(|t| t.to_string()).collect();
    match deadline_ms {
        None => format!(
            "{{\"prompt\":[{}],\"max_new_tokens\":{}}}",
            toks.join(","),
            req.max_new_tokens
        ),
        Some(ms) => format!(
            "{{\"prompt\":[{}],\"max_new_tokens\":{},\"deadline_ms\":{ms}}}",
            toks.join(","),
            req.max_new_tokens
        ),
    }
}

/// Polls `/metrics` until the accepted count reaches `n`.
fn wait_accepted(addr: SocketAddr, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let (_, metrics) = client::get(addr, "/metrics").expect("metrics endpoint");
        if metrics.contains(&format!("mant_gateway_accepted_total {n}\n")) {
            return;
        }
        thread::sleep(Duration::from_millis(2));
    }
    panic!("gateway never accepted {n} submissions");
}

fn main() {
    let config = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&config, 7);
    let packed = model.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Mant4 { group: 64 };
    let serve_cfg = ServeConfig {
        max_batch: 4,
        pool_blocks: 64,
        block_tokens: 64,
        act,
        kv,
        admission: AdmissionPolicy::Watermark {
            watermark_blocks: 4,
        },
        prefix_sharing: false,
        speculative: None,
    };
    println!(
        "model: {} ({} hidden, {} layers, vocab {})",
        config.name, config.hidden, config.layers, config.vocab
    );

    // ---- Phase 1: Poisson trace over real sockets, vs in-process ----
    let trace = poisson_trace(&TraceConfig {
        requests: 12,
        arrivals_per_iter: 0.25,
        prompt: LengthDist::Uniform { lo: 12, hi: 48 },
        output: LengthDist::Uniform { lo: 10, hi: 24 },
        seed: 11,
    });
    let requests = requests_from_trace(&trace, config.vocab, 12);
    println!(
        "\ntrace: {} requests, {} total tokens, last arrival at iteration {}",
        requests.len(),
        trace_tokens(&trace),
        trace.last().map_or(0, |r| r.arrival_iter),
    );

    // The in-process oracle: the engine's bit-exactness contract says the
    // gateway's streams must equal these token-for-token, regardless of
    // how socket arrival order perturbs the batching schedule.
    let (oracle, _) = sequential_generate(&model, &packed, act, kv, &requests);
    let mut engine = ServeEngine::new(&model, &packed, serve_cfg);
    for r in &requests {
        engine.submit(r.clone());
    }
    let in_process = engine.run_to_completion();

    let ((outcomes, prom), report) =
        mant::gateway::serve(&model, &packed, GatewayConfig::new(serve_cfg), |gw| {
            let addr = gw.addr();
            // Replay the trace's arrival offsets in wall time (2 ms per
            // trace iteration), one client thread per request.
            let handles: Vec<_> = requests
                .iter()
                .map(|r| {
                    let at = Duration::from_millis(2 * r.arrival_iter);
                    let body = body_json(r, None);
                    thread::spawn(move || {
                        thread::sleep(at);
                        client::generate(addr, &body).expect("generate stream")
                    })
                })
                .collect();
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // Scrape Prometheus text while the gateway is still up — this
            // is exactly what a `curl :port/metrics` scrape would see.
            let (status, prom) = client::get(addr, "/metrics").expect("metrics scrape");
            assert_eq!(status, 200);
            (outcomes, prom)
        })
        .expect("gateway run");

    let mut identical = true;
    for (i, out) in outcomes.iter().enumerate() {
        assert_eq!(out.terminal, Terminal::Done, "request {i} did not finish");
        identical &= out.tokens == oracle[i];
        let from_engine = in_process
            .completions
            .iter()
            .find(|c| c.id == i as u64)
            .expect("in-process completion");
        assert_eq!(
            out.tokens, from_engine.tokens,
            "socket stream {i} diverged from the in-process engine"
        );
    }
    assert!(identical, "socket streams must match the sequential oracle");
    assert_eq!(report.serve.completions.len(), requests.len());
    assert_eq!(report.rejected_busy, 0);

    // Socket-measured latency: timed at the client from request write to
    // first token / terminal event — wire, parser, queue, and engine all
    // included (the in-engine percentiles count iterations, not wall).
    let ttft_ms: Vec<f64> = outcomes
        .iter()
        .map(|o| o.ttft.expect("streamed").as_secs_f64() * 1e3)
        .collect();
    let e2e_ms: Vec<f64> = outcomes.iter().map(|o| o.e2e.as_secs_f64() * 1e3).collect();
    let ttft = Percentiles::from_samples(&ttft_ms).expect("non-empty");
    let e2e = Percentiles::from_samples(&e2e_ms).expect("non-empty");
    println!(
        "\ngateway over loopback sockets ({} workers, queue depth 32):",
        4
    );
    println!(
        "  engine throughput         : {:.1} generated tok/s ({:.1} incl. prefill)",
        report.serve.tokens_per_sec(),
        report.serve.total_tokens_per_sec()
    );
    println!(
        "  socket TTFT p50/p95/max   : {:.1} / {:.1} / {:.1} ms",
        ttft.p50, ttft.p95, ttft.max
    );
    println!(
        "  socket E2E  p50/p95/max   : {:.1} / {:.1} / {:.1} ms",
        e2e.p50, e2e.p95, e2e.max
    );
    println!("  streams byte-identical to in-process engine and sequential oracle: true");

    // The live scrape must be well-formed Prometheus exposition text — run
    // it through the same parser the tests use, then show a few series.
    let series = mant::trace::parse_text(&prom).expect("well-formed Prometheus text");
    println!(
        "\n/metrics scrape ({} series parsed cleanly):",
        series.len()
    );
    for line in prom.lines().filter(|l| {
        l.starts_with("mant_requests_total")
            || l.starts_with("mant_ttft_seconds_count")
            || l.starts_with("mant_e2e_seconds_count")
            || l.starts_with("mant_tokens_generated_total")
    }) {
        println!("  {line}");
    }

    // The engine-side wall-clock breakdown rides on the report whether or
    // not tracing was on: histogram-backed TTFT and tick-phase medians.
    let bd = &report.serve.breakdown;
    let ms = |h: &mant::trace::Hist| h.quantile(0.5).map_or(0.0, |ns| ns / 1e6);
    println!("\nengine latency breakdown (histogram p50, ms):");
    println!(
        "  ttft {:.2} | e2e {:.2} | queue_wait {:.3}",
        ms(&bd.ttft),
        ms(&bd.e2e),
        ms(&bd.queue_wait)
    );
    println!(
        "  tick {:.2} = expire {:.3} + admit {:.3} + compose {:.3} + step {:.2} + advance {:.3}",
        ms(&bd.tick),
        ms(&bd.expire),
        ms(&bd.admit),
        ms(&bd.compose),
        ms(&bd.step),
        ms(&bd.advance)
    );

    // With MANT_TRACE=1 the run also captured structured trace events;
    // prove they nest correctly (and, with MANT_TRACE_OUT set, a Chrome
    // trace JSON was written by the gateway on shutdown).
    if !report.trace_events.is_empty() {
        let spans =
            mant::trace::validate_spans(&report.trace_events).expect("spans nest correctly");
        println!("\ntracing: {spans} spans captured and validated across threads");
        if let Ok(path) = std::env::var("MANT_TRACE_OUT") {
            println!("  chrome trace written to {path} (load in about://tracing)");
        }
    }

    // ---- Phase 2: forced overload — shedding and deadline expiry ----
    let mk = |id: u64, plen: usize, max_new: usize| GenRequest {
        id,
        prompt: (0..plen)
            .map(|t| (id as usize * 131 + t * 29 + 1) % 512)
            .collect(),
        max_new_tokens: max_new,
        arrival_iter: 0,
        deadline_iter: None,
    };
    let ((sheds, expired_seen), overload) = mant::gateway::serve(
        &model,
        &packed,
        GatewayConfig {
            queue_depth: 1,
            ..GatewayConfig::new(ServeConfig {
                max_batch: 1,
                ..serve_cfg
            })
        },
        |gw| {
            let addr = gw.addr();
            // Pin the single lane with a long generation; its client never
            // reads and is dropped at the end (testing client-gone cancel).
            let pin_body = body_json(&mk(0, 8, 400), None);
            let mut pin = std::net::TcpStream::connect(addr).unwrap();
            write!(
                pin,
                "POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{pin_body}",
                pin_body.len()
            )
            .unwrap();
            pin.flush().unwrap();
            wait_accepted(addr, 1);
            // A 1 ms wall deadline, queued behind a pinned lane: expires in
            // the scheduler without the model ever seeing its prompt.
            let doomed_body = body_json(&mk(1, 12, 16), Some(1));
            let doomed = thread::spawn(move || client::generate(addr, &doomed_body).unwrap());
            let expired_seen = doomed.join().unwrap().terminal == Terminal::Expired;
            // Burst 8 more: the lane is pinned, the scheduler slot refills
            // instantly, the channel holds one — the rest shed with 429.
            let burst: Vec<_> = (2..10u64)
                .map(|id| {
                    let body = body_json(&mk(id, 10, 6), None);
                    thread::spawn(move || client::generate(addr, &body).unwrap())
                })
                .collect();
            thread::sleep(Duration::from_millis(100));
            drop(pin); // release the lane so admitted burst work can drain
            let outcomes: Vec<_> = burst.into_iter().map(|h| h.join().unwrap()).collect();
            let sheds = outcomes.iter().filter(|o| o.status == 429).count();
            for out in outcomes.iter().filter(|o| o.status != 429) {
                assert_eq!(out.terminal, Terminal::Done, "admitted work completes");
            }
            (sheds, expired_seen)
        },
    )
    .expect("overload run");

    assert!(sheds >= 1, "an overloaded queue must shed with 429");
    assert!(expired_seen, "the deadline request must expire, not run");
    assert_eq!(overload.serve.expired_requests, 1);
    assert_eq!(
        overload.serve.cancelled_requests, 1,
        "pin cancelled on disconnect"
    );
    assert_eq!(overload.rejected_busy as usize, sheds);
    assert_eq!(
        overload.serve.rejected_requests,
        (overload.rejected_busy + overload.rejected_shutdown) as usize
    );
    println!("\nforced overload (1-slot queue, 1-lane engine, pinned by a silent client):");
    println!(
        "  shed with 429             : {sheds} of 8 burst submissions (no buffering, no stall)"
    );
    println!("  wall-deadline expiry      : 1 queued request expired unticked");
    println!(
        "  client-gone cancel        : {} sequence cancelled, blocks freed mid-flight",
        overload.serve.cancelled_requests
    );

    // ---- Phase 3: graceful shutdown drains in-flight streams ----
    let (drained, shutdown_report) =
        mant::gateway::serve(&model, &packed, GatewayConfig::new(serve_cfg), |gw| {
            let addr = gw.addr();
            let body = body_json(&mk(0, 10, 24), None);
            let t = thread::spawn(move || client::generate(addr, &body).unwrap());
            wait_accepted(addr, 1);
            gw.shutdown(); // signal while the stream is mid-flight
            t.join().unwrap()
        })
        .expect("shutdown run");
    assert_eq!(drained.terminal, Terminal::Done);
    assert_eq!(drained.tokens.len(), 24);
    assert_eq!(shutdown_report.serve.completions.len(), 1);
    println!("\ngraceful shutdown:");
    println!(
        "  in-flight stream drained to `done` ({} tokens) after shutdown signal",
        drained.tokens.len()
    );
    println!("\nall gateway invariants held");
}

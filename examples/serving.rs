//! Continuous-batching serving over the quantized backend: calibrate and
//! pack a model, generate a seeded Poisson request trace, serve it with
//! the `mant-serve` engine (paged packed KV pool, multi-query packed
//! GEMMs, mixed prefill+decode batches), and compare aggregate throughput
//! and per-request latency against the sequential one-request-at-a-time
//! baseline — which, by the batch runner's bit-exactness contract,
//! produces byte-identical token streams.
//!
//! Run with `cargo run --release --example serving`.

use mant::core::Pipeline;
use mant::model::{synthesize_speculative_pair, ActMode, DraftConfig, KvMode, ModelConfig};
use mant::serve::{
    requests_from_trace, sequential_generate, AdmissionPolicy, ServeConfig, ServeEngine,
    SpeculativeConfig,
};
use mant::sim::{poisson_trace, trace_tokens, LengthDist, TraceConfig};

fn main() {
    let config = ModelConfig::sim_llama();
    println!(
        "model: {} ({} hidden, {} heads, {} layers, vocab {})",
        config.name, config.hidden, config.heads, config.layers, config.vocab
    );

    // Calibrated 4-bit packing, as in `llm_inference`.
    let mut pipe = Pipeline::new(&config, 7);
    pipe.calibrate(48);
    let packed = pipe.pack_w4(64);
    let model = pipe.reference();
    let act = ActMode::None;
    let kv = KvMode::Mant4 { group: 64 };

    // A multi-tenant workload: Poisson arrivals, mixed prompt lengths.
    let trace = poisson_trace(&TraceConfig {
        requests: 10,
        arrivals_per_iter: 0.2,
        prompt: LengthDist::Uniform { lo: 32, hi: 96 },
        output: LengthDist::Uniform { lo: 16, hi: 32 },
        seed: 11,
    });
    let requests = requests_from_trace(&trace, config.vocab, 12);
    println!(
        "trace: {} requests, {} total tokens, last arrival at iteration {}",
        requests.len(),
        trace_tokens(&trace),
        trace.last().map_or(0, |r| r.arrival_iter),
    );

    let serve_cfg = ServeConfig {
        max_batch: 4,
        pool_blocks: 96,
        block_tokens: 64,
        act,
        kv,
        admission: AdmissionPolicy::Watermark {
            watermark_blocks: 4,
        },
        prefix_sharing: false,
        speculative: None,
    };
    let mut engine = ServeEngine::new(model, &packed, serve_cfg);
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();

    let ttft = report.ttft_percentiles().expect("requests completed");
    let e2e = report.e2e_percentiles().expect("requests completed");
    let queue = report.queueing_percentiles().expect("requests completed");
    let ms_per_iter = report.wall_seconds * 1e3 / report.busy_iterations.max(1) as f64;
    println!("\ncontinuous-batching engine (max_batch 4, watermark admission, CoW MANT4 KV pool):");
    println!(
        "  aggregate throughput      : {:.1} generated tok/s ({:.1} tok/s incl. prefill)",
        report.tokens_per_sec(),
        report.total_tokens_per_sec()
    );
    println!(
        "  batch occupancy           : {:.2} sequences/iteration over {} busy iterations",
        report.mean_batch_occupancy, report.busy_iterations
    );
    let block_kib = report.block_bits as f64 / 8.0 / 1024.0;
    println!(
        "  paged KV pool             : peak {}/{} blocks ({:.1} KiB packed of {:.1} KiB)",
        report.peak_used_blocks,
        report.pool_blocks,
        report.peak_used_blocks as f64 * block_kib,
        report.pool_blocks as f64 * block_kib,
    );
    println!(
        "  TTFT  p50/p95/max         : {:.0} / {:.0} / {:.0} iterations (~{:.0} / {:.0} / {:.0} ms)",
        ttft.p50,
        ttft.p95,
        ttft.max,
        ttft.p50 * ms_per_iter,
        ttft.p95 * ms_per_iter,
        ttft.max * ms_per_iter,
    );
    println!(
        "  E2E   p50/p95/max         : {:.0} / {:.0} / {:.0} iterations",
        e2e.p50, e2e.p95, e2e.max
    );
    println!(
        "  queueing delay p50/p95/max: {:.0} / {:.0} / {:.0} iterations (submit → admission)",
        queue.p50, queue.p95, queue.max
    );
    println!(
        "  concurrency / preemptions : peak {} running, {} preemptions ({} recomputed tokens)",
        report.peak_running, report.preemptions, report.recomputed_tokens
    );

    // Sequential baseline: same requests, one at a time.
    let (outputs, seq_secs) = sequential_generate(model, &packed, act, kv, &requests);
    let seq_tps = report.generated_tokens as f64 / seq_secs;
    println!("\nsequential baseline (one request at a time):");
    println!("  aggregate throughput      : {seq_tps:.1} generated tok/s");
    println!(
        "  continuous batching wins  : {:.2}x aggregate tokens/s",
        report.tokens_per_sec() / seq_tps
    );
    println!(
        "  packed-kernel tokens/s    : {:.1} batched / {seq_tps:.1} sequential (both paths \
         consume nibble-packed groups via the pair-LUT kernels)",
        report.tokens_per_sec(),
    );

    // Bit-exactness: batching changed the schedule, not one token.
    let identical = report
        .completions
        .iter()
        .all(|c| c.tokens == outputs[c.id as usize]);
    println!("  outputs identical to batch: {identical}");
    assert!(identical, "serving must not change greedy outputs");

    // Speculative decoding: a one-layer draft model proposes draft_k
    // candidates per round and the target confirms them in a single
    // batched verify pass — the multi-row GEMM shape the decode-once
    // kernels amortize — so decode-phase sequences emit several tokens
    // per target pass. Greedy outputs must not move by a byte.
    let (target, draft) = synthesize_speculative_pair(
        &config,
        7,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    );
    let spec_packed = target.pack_weights(64).expect("target packs");
    let draft_packed = draft.pack_weights(64).expect("draft packs");
    let spec_cfg = ServeConfig {
        speculative: Some(SpeculativeConfig { draft_k: 4 }),
        ..serve_cfg
    };
    let mut engine =
        ServeEngine::new_with_draft(&target, &spec_packed, &draft, &draft_packed, spec_cfg);
    for r in &requests {
        engine.submit(r.clone());
    }
    let spec_report = engine.run_to_completion();
    let spec = spec_report
        .speculation
        .expect("speculative engine reports stats");
    let per_round = |h: &mant::trace::Hist| h.mean().unwrap_or(0.0) / 1e6;
    println!("\nspeculative decoding (1-layer draft, draft_k 4, same watermark engine):");
    println!(
        "  rounds / acceptance       : {} draft-and-verify rounds, {:.1}% of {} candidates \
         accepted",
        spec.rounds,
        spec.acceptance_rate() * 100.0,
        spec.drafted,
    );
    println!(
        "  tokens per verify pass    : {:.2} emitted (accepted + bonus) per batched target step",
        spec.emitted_tokens() as f64 / spec.rounds.max(1) as f64,
    );
    println!(
        "  round phases (mean)       : draft {:.2} ms, verify {:.2} ms, rollback {:.3} ms",
        per_round(&spec.draft_ns),
        per_round(&spec.verify_ns),
        per_round(&spec.rollback_ns),
    );
    let (spec_baseline, _) = sequential_generate(&target, &spec_packed, act, kv, &requests);
    let spec_identical = spec_report
        .completions
        .iter()
        .all(|c| c.tokens == spec_baseline[c.id as usize]);
    println!("  outputs identical to baseline: {spec_identical}");
    assert!(
        spec_identical,
        "speculative serving must not change greedy outputs"
    );
}

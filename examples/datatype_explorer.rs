//! Explore the MANT family: sweep the coefficient `a` and see the grid
//! morph from PoT through float-like and NormalFloat-like to INT-like
//! (paper Figs. 5–6).
//!
//! Run with `cargo run --release --example datatype_explorer`.

use mant::numerics::{flint4_grid, fp4_e2m1_grid, int4_grid, nf4_paper_grid, pot4_grid, Mant};
use mant::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("normalized positive levels as a sweeps 0 -> 127:\n");
    for a in [0u32, 5, 17, 25, 40, 60, 90, 127] {
        let m = Mant::new(a)?;
        let max = m.max_level() as f32;
        let levels: Vec<String> = m
            .levels()
            .iter()
            .map(|&l| format!("{:.3}", l as f32 / max))
            .collect();
        println!("  a={a:<3} [{}]", levels.join(", "));
    }

    println!("\nbest-fit coefficients for classic data types:");
    let targets: [(&str, Grid); 5] = [
        ("PoT", pot4_grid()),
        ("float E2M1", fp4_e2m1_grid()),
        ("NF4", nf4_paper_grid()),
        ("flint", flint4_grid()),
        ("INT4", int4_grid()),
    ];
    for (name, grid) in targets {
        let positive: Vec<f32> = grid
            .normalized()
            .points()
            .iter()
            .copied()
            .filter(|&p| p >= 0.0)
            .collect();
        let fitted = Mant::approximate(&positive);
        println!("  {:<11} -> a = {}", name, fitted.coefficient());
    }

    println!("\nquantizing one Gaussian group with each coefficient:");
    let data: Vec<f32> = {
        use mant::tensor::TensorGenerator;
        let mut g = TensorGenerator::new(5);
        (0..64).map(|_| g.standard_normal()).collect()
    };
    for a in [0u32, 17, 25, 60, 120] {
        let m = Mant::new(a)?;
        let err = m.grid().mse(&data);
        println!("  a={a:<3} group MSE {err:.6}");
    }
    println!("(a medium coefficient wins on Gaussian data, exactly why the");
    println!(" framework searches per group)");
    Ok(())
}

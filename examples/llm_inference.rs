//! End-to-end quantized LLM inference: calibrate, quantize weights to
//! 4-bit MANT, run a decode loop with W4A8 linear layers and a 4-bit MANT
//! KV cache, and compare against the FP32 reference.
//!
//! Run with `cargo run --release --example llm_inference`.

use mant::core::Pipeline;
use mant::model::{ActMode, KvMode, ModelConfig};

fn main() {
    let config = ModelConfig::sim_llama();
    println!(
        "model: {} ({} hidden, {} heads, {} layers, vocab {})",
        config.name, config.hidden, config.heads, config.layers, config.vocab
    );

    // Calibrate on a synthetic token stream (the paper uses Pile subsets).
    let mut pipe = Pipeline::new(&config, 7);
    let calib = pipe.calibrate(48);
    println!(
        "calibrated on 48 tokens: {} KV groups sampled",
        calib.kv_group_count()
    );

    // Quantize weights with the calibration-weighted coefficient search.
    let quantized = pipe.quantize_w4(64);

    // Evaluate the paper's headline configurations.
    let configs = [
        ("W4A16 (weights only)      ", ActMode::None, KvMode::Fp16),
        (
            "W4A8                      ",
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Fp16,
        ),
        (
            "W4A8 + 4-bit MANT KV cache",
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Mant4 { group: 64 },
        ),
    ];
    let fp = pipe.evaluate(pipe.reference(), ActMode::None, KvMode::Fp16, 32);
    println!("\nperplexity proxy (lower is better):");
    println!("  FP16 reference            : {:.3}", fp.ppl_fp);
    for (label, act, kv) in configs {
        let rep = pipe.evaluate(&quantized, act, kv, 32);
        println!("  {label}: {:.3}  (+{:.3})", rep.ppl, rep.loss());
    }

    // Generation: how often does the quantized model agree with the
    // reference's greedy choices over a 48-token generation?
    let fidelity = pipe.evaluate_generation(
        &quantized,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        12,
        48,
    );
    println!(
        "\ngreedy-decode agreement with FP16 over 48 tokens: {:.1}%",
        fidelity * 100.0
    );
}

//! End-to-end quantized LLM inference: calibrate, quantize weights to
//! 4-bit MANT, run a decode loop with W4A8 linear layers and a 4-bit MANT
//! KV cache, and compare against the FP32 reference — then switch to the
//! **quantized execution backend**, which consumes the packed groups
//! directly (fused integer GEMVs, incremental KV attention) and measure
//! its per-step decode speedup over the dequantize path.
//!
//! Run with `cargo run --release --example llm_inference`.

use std::time::Instant;

use mant::core::Pipeline;
use mant::model::{ActMode, KvMode, ModelConfig};

fn main() {
    let config = ModelConfig::sim_llama();
    println!(
        "model: {} ({} hidden, {} heads, {} layers, vocab {})",
        config.name, config.hidden, config.heads, config.layers, config.vocab
    );

    // Calibrate on a synthetic token stream (the paper uses Pile subsets).
    let mut pipe = Pipeline::new(&config, 7);
    let calib = pipe.calibrate(48);
    println!(
        "calibrated on 48 tokens: {} KV groups sampled",
        calib.kv_group_count()
    );

    // Quantize weights with the calibration-weighted coefficient search.
    let quantized = pipe.quantize_w4(64);

    // Evaluate the paper's headline configurations.
    let configs = [
        ("W4A16 (weights only)      ", ActMode::None, KvMode::Fp16),
        (
            "W4A8                      ",
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Fp16,
        ),
        (
            "W4A8 + 4-bit MANT KV cache",
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Mant4 { group: 64 },
        ),
    ];
    let fp = pipe.evaluate(pipe.reference(), ActMode::None, KvMode::Fp16, 32);
    println!("\nperplexity proxy (lower is better):");
    println!("  FP16 reference            : {:.3}", fp.ppl_fp);
    for (label, act, kv) in configs {
        let rep = pipe.evaluate(&quantized, act, kv, 32);
        println!("  {label}: {:.3}  (+{:.3})", rep.ppl, rep.loss());
    }

    // Generation: how often does the quantized model agree with the
    // reference's greedy choices over a 48-token generation?
    let fidelity = pipe.evaluate_generation(
        &quantized,
        ActMode::IntGroup { bits: 8, group: 64 },
        KvMode::Mant4 { group: 64 },
        12,
        48,
    );
    println!(
        "\ngreedy-decode agreement with FP16 over 48 tokens: {:.1}%",
        fidelity * 100.0
    );

    // --- Quantized execution backend ---
    // Pack the same calibrated W4 weights; the forward pass now dispatches
    // every matvec to the fused integer GEMV and attends over packed KV
    // groups without dequantizing anything.
    let packed = pipe.pack_w4(64);
    let act = ActMode::IntGroup { bits: 8, group: 64 };
    let kv = KvMode::Mant4 { group: 64 };
    let rep_fake = pipe.evaluate(&quantized, act, kv, 32);
    let rep_packed = pipe.evaluate_packed(&packed, act, kv, 32);
    println!("\nexecution backends (same packed weights, same modes):");
    println!("  fake-quantize (reference) : ppl {:.3}", rep_fake.ppl);
    println!("  quantized (integer psums) : ppl {:.3}", rep_packed.ppl);

    // Per-step decode timing at three context depths: the reference
    // backend dequantizes the whole KV cache every step (per-step cost
    // grows with everything cached so far), while the quantized backend
    // consumes the nibble-packed groups in place through the pair-LUT
    // kernels. Since PR 5 the packed backend wins at *every* depth —
    // including short context, where the unpacked integer GEMV used to
    // lose to f32 (0.73x then; ~1.4x now) — and the incremental attention
    // win still grows with the cache. (`cargo bench --bench
    // decode_throughput` isolates the attention step: ~7-8x at seq
    // 256-1024.)
    let tokens: Vec<usize> = (0..1024).map(|i| (i * 37) % config.vocab).collect();
    let windows = [(0usize, 64usize), (448, 512), (960, 1024)];
    // Every token is fed to the runner (the KV cache must actually reach
    // the labeled depths); only the window slices are timed.
    let time_decode = |mut step: Box<dyn FnMut(usize) -> Vec<f32>>| -> Vec<f64> {
        let mut per_window = vec![0.0f64; windows.len()];
        for (i, &t) in tokens.iter().enumerate() {
            let timed = windows.iter().position(|&(lo, hi)| (lo..hi).contains(&i));
            let t0 = Instant::now();
            std::hint::black_box(step(t));
            if let Some(w) = timed {
                per_window[w] += t0.elapsed().as_secs_f64();
            }
        }
        for (w, &(lo, hi)) in windows.iter().enumerate() {
            per_window[w] /= (hi - lo) as f64;
        }
        per_window
    };
    let mut ref_runner = quantized.runner(act, kv);
    let t_ref = time_decode(Box::new(move |t| ref_runner.step(t)));
    let model = pipe.reference();
    let mut packed_runner = model.packed_runner(&packed, act, kv);
    let t_packed = time_decode(Box::new(move |t| packed_runner.step(t)));
    // Absolute decode rates alongside the ratios: the speedup numbers are
    // unitless and hard to compare across machines, so report tokens/s
    // for both backends at every context depth.
    println!("per-step decode time (dequantize path vs quantized backend):");
    for (i, (lo, hi)) in windows.iter().enumerate() {
        println!(
            "  context {:>3}..{:<3}: {:.2} ms ({:>5.1} tok/s) vs {:.2} ms ({:>5.1} tok/s)  ({:.2}x)",
            lo,
            hi,
            t_ref[i] * 1e3,
            1.0 / t_ref[i],
            t_packed[i] * 1e3,
            1.0 / t_packed[i],
            t_ref[i] / t_packed[i]
        );
    }
    // The packed-kernel decode rate is the serving baseline every later
    // perf PR measures against: nibble-packed weights/KV consumed through
    // the 256-entry pair-LUT kernels (one byte load per code pair, i32
    // in-group accumulation).
    println!(
        "packed-kernel decode baseline: {:.1} tok/s at context 64, {:.1} tok/s at context 1024",
        1.0 / t_packed[0],
        1.0 / t_packed[windows.len() - 1],
    );
}

//! Quickstart: group-quantize a weight tensor with MANT and inspect what
//! the framework chose.
//!
//! Run with `cargo run --release --example quickstart`.

use mant::prelude::*;
use mant::quant::{mant_gemm, quantize_activations_int8, MantWeightQuantizer};
use mant::tensor::{gemm, mse, TensorGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The MANT numeric type: one 8-bit coefficient `a` selects a grid.
    let mant = Mant::new(17)?;
    println!("MANT(a=17) levels: {:?}", mant.levels());
    println!(
        "  encode(-60.0) -> {:?} -> {}",
        mant.encode(-60.0),
        mant.decode(mant.encode(-60.0))
    );

    // 2. Quantize a group-diverse weight matrix (the distribution shape
    //    real LLM weights have — every 64-element group looks different).
    let mut gen = TensorGenerator::new(42);
    let w = gen.group_diverse_matrix(64, 512, 64, 0.02);
    let quantizer = MantWeightQuantizer::new(64);
    let wq = quantizer.quantize(&w)?;
    println!(
        "\nquantized 64x512 weights at {:.3} bits/element",
        wq.bits_per_element()
    );
    println!("selected data types per group:");
    for (label, count) in wq.dtype_histogram() {
        println!("  {label:>6}: {count} groups");
    }
    let err = mse(w.as_slice(), wq.dequantize().as_slice());
    let power = mse(w.as_slice(), &vec![0.0; w.len()]);
    println!("relative quantization error: {:.4}%", 100.0 * err / power);

    // 3. Decode-free integer GEMM (paper Eq. (5)): activations in INT8,
    //    weights in 4-bit MANT, no dequantization step.
    let x = gen.activation_matrix(4, 512, 1.0, 0.01, 15.0);
    let xq = quantize_activations_int8(&x, 64)?;
    let y_fused = mant_gemm(&xq, &wq)?;
    let y_exact = gemm(&x, &w.transpose());
    let rel = y_exact.distance(&y_fused)
        / y_exact
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
    println!(
        "\nfused W4A8 integer GEMM vs FP32: relative error {:.3}%",
        rel * 100.0
    );
    Ok(())
}

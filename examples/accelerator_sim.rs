//! Run the systolic-array accelerator model: compare MANT against the
//! paper's baselines on LLaMA-7B at several sequence lengths.
//!
//! Run with `cargo run --release --example accelerator_sim`.

use mant::model::ModelConfig;
use mant::sim::{area_report, run_model, AcceleratorConfig, EnergyModel};

fn main() {
    let cfg = ModelConfig::llama_7b();
    let em = EnergyModel::default();

    println!("synthesized core areas (28 nm, paper Tbl. IV):");
    for r in area_report() {
        println!("  {:<8} {:.3} mm^2", r.name, r.core_mm2());
    }

    for seq in [2048usize, 32768] {
        println!("\nLLaMA-7B, sequence length {seq} (prefill, batch 1):");
        println!(
            "  {:<10} {:>12} {:>12} {:>10} {:>10}",
            "accel", "linear ms", "attn ms", "speedup", "energy"
        );
        let runs: Vec<_> = AcceleratorConfig::paper_set()
            .into_iter()
            .map(|acc| {
                let run = run_model(&acc, &em, &cfg, seq);
                (acc.name.clone(), run)
            })
            .collect();
        let base = runs.last().expect("paper set is non-empty").1.total();
        for (name, run) in &runs {
            let total = run.total();
            println!(
                "  {:<10} {:>12.2} {:>12.2} {:>9.2}x {:>9.2}x",
                name,
                run.linear.time_ms(1.0),
                run.attention.time_ms(1.0),
                total.speedup_over(&base),
                base.energy.total() / total.energy.total(),
            );
        }
        println!("  (speedup/energy relative to BitFusion; baselines compute");
        println!("   attention in FP16 because they cannot quantize the KV cache)");
    }
}

//! Facade crate for the M-ANT reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! downstream users need a single dependency. See the workspace README for
//! the architecture overview and `DESIGN.md` for the experiment index.

pub use mant_baselines as baselines;
pub use mant_core as core;
pub use mant_gateway as gateway;
pub use mant_model as model;
pub use mant_numerics as numerics;
pub use mant_quant as quant;
pub use mant_serve as serve;
pub use mant_sim as sim;
pub use mant_tensor as tensor;
pub use mant_trace as trace;

/// Convenience re-exports of the types used in almost every program.
pub mod prelude {
    pub use mant_numerics::{DataType, Grid, Mant, MantCode, NumericsError};
}

//! Batch-capable execution over the quantized backend — the model-side
//! engine of the continuous-batching serving runtime.
//!
//! A [`BatchRunner`] owns one paged KV-cache pool (`mant_quant::pool`) and
//! a slab of per-sequence sessions; every [`BatchRunner::step`] processes
//! one token for each listed session in a single fused pass:
//!
//! - linear projections run the **multi-query packed GEMM**
//!   ([`crate::QuantizedLinear::matmul`]): each weight group is decoded to
//!   integer operands once and swept across the whole batch's INT8
//!   activations, amortizing the per-group overhead a lone GEMV pays;
//! - attention runs per sequence over its own pooled packed cache
//!   ([`mant_quant::pool::attention_incremental_paged`]) — ragged context
//!   lengths batch naturally because `Q·Kᵀ`/`P·V` never materialize a
//!   rectangular score matrix;
//! - the f32 LM head runs the batched matvec
//!   ([`mant_tensor::matvec_batch`]).
//!
//! Every per-sequence floating-point operation is executed in the same
//! order as the sequential [`crate::ModelRunner`] on the same backend, so
//! a batch of N sequences produces logits **bit-identical** to N
//! independent single-sequence runs at every step — sequences can join
//! and leave the batch at any iteration without perturbing the others.
//!
//! # Prefix sharing
//!
//! Packed KV blocks are immutable once full, so the runner can snapshot a
//! session's cache state at a block boundary ([`BatchRunner::register_prefix`])
//! and later open new sessions **on top of those very blocks**
//! ([`BatchRunner::create_session_with_prefix`]): requests with a common
//! system prompt skip recomputing the shared prefill entirely, and the
//! continuation is bit-identical to a from-scratch run because the
//! snapshot captures exactly the deterministic per-sequence state (block
//! list + V staging scales) a fresh prefill of the same tokens would
//! reach. [`BatchRunner::fork_session`] is the general primitive: a live
//! session forked at *any* length, copy-on-write on the trailing partial
//! block.

use std::collections::HashMap;
use std::time::Instant;

use mant_quant::pool::{attention_incremental_paged, KvCachePool, PagedKvCache, PoolConfig};
use mant_quant::{quantize_vector_int8, QuantizedVector, VarianceMap};
use mant_tensor::matvec_batch;
use mant_tensor::ops::{gelu, rmsnorm, silu};

use crate::backend::PackedWeights;
use crate::config::FfnKind;
use crate::eval::argmax;
use crate::layers::{ActMode, KvMode, TransformerModel};

/// Handle to one generation session inside a [`BatchRunner`]. Carries a
/// nonce so a handle kept past [`BatchRunner::end_session`] is detected
/// rather than silently aliasing a recycled slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId {
    slot: usize,
    nonce: u64,
}

/// Per-sequence state: one pooled KV cache per layer.
struct Session {
    nonce: u64,
    caches: Vec<PagedKvCache>,
    seq_len: usize,
}

/// Outcome of one [`BatchRunner::speculate_step`].
#[derive(Clone, Debug)]
pub struct SpecOutcome {
    /// Tokens appended to the canonical greedy stream, in order: the
    /// draft candidates the target confirmed, then the target's own
    /// argmax at the first divergence (or at the bonus position after a
    /// full acceptance). Never empty. The **last** entry has not been
    /// fed through either model yet — it is the next pending input,
    /// exactly like the latest argmax a sequential greedy loop holds.
    pub tokens: Vec<usize>,
    /// Draft candidates proposed this step (the `k` passed in).
    pub drafted: usize,
    /// Leading draft candidates the target's own argmax confirmed.
    pub accepted: usize,
    /// Wall nanoseconds spent in the `k` single-token draft passes.
    pub draft_ns: u64,
    /// Wall nanoseconds spent in the one batched k-token verify pass.
    pub verify_ns: u64,
    /// Wall nanoseconds spent rolling both caches back past the
    /// divergence.
    pub rollback_ns: u64,
}

/// Per-layer f32 rows captured during a speculative span for checkpoint
/// rollback: `capture[layer]` accumulates one `(k_row, v_row)` pair per
/// processed token.
type KvCapture = Vec<Vec<(Vec<f32>, Vec<f32>)>>;

/// One registered prompt prefix: the exact token chain (hash collisions
/// are verified away) plus per-layer cache snapshots holding the shared
/// blocks alive. Snapshots are taken at block boundaries, where the V
/// staging window is empty and the only carried per-sequence state is the
/// deterministic channel-scale vector — which is why a session forked
/// from a snapshot continues bit-identically to a from-scratch prefill.
struct PrefixEntry {
    tokens: Vec<usize>,
    caches: Vec<PagedKvCache>,
    /// Last-used tick for LRU eviction under pool pressure.
    lru: u64,
}

/// FNV-1a over a token chain — the prefix-trie key.
fn prefix_hash(tokens: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &t in tokens {
        h ^= t as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Continuous-batching executor over the quantized backend: shared packed
/// weights, a paged KV-cache pool, and a session slab. See the module docs
/// for the execution contract.
pub struct BatchRunner<'m> {
    model: &'m TransformerModel,
    packed: &'m PackedWeights,
    kmap: VarianceMap,
    vmap: VarianceMap,
    kv_group: usize,
    pool: KvCachePool,
    slots: Vec<Option<Session>>,
    free_slots: Vec<usize>,
    next_nonce: u64,
    /// Prefix trie: hash of a block-aligned token chain → shared blocks.
    prefixes: HashMap<u64, PrefixEntry>,
    /// Monotone clock for prefix LRU bookkeeping.
    prefix_clock: u64,
}

impl TransformerModel {
    /// Creates a batch runner over the quantized execution backend with a
    /// paged KV pool of `blocks` blocks of `block_tokens` token slots
    /// (per sequence, per layer). Mode validation is exactly
    /// [`TransformerModel::packed_runner`]'s; additionally `kv` must be a
    /// quantized cache mode ([`KvMode::Int4`] / [`KvMode::Mant4`]) — the
    /// paged pool stores packed groups, not f32 rows. For
    /// [`KvMode::Mant4`] the self-calibrated variance maps are shared with
    /// the sequential runner (cached per model instance), so both engines
    /// quantize identically.
    ///
    /// # Panics
    ///
    /// Panics on any shape/mode mismatch [`TransformerModel::packed_runner`]
    /// rejects, on `kv == KvMode::Fp16`, or on an invalid pool geometry
    /// (`block_tokens` must be a positive multiple of the KV group size).
    pub fn batch_runner<'m>(
        &'m self,
        packed: &'m PackedWeights,
        act: ActMode,
        kv: KvMode,
        blocks: usize,
        block_tokens: usize,
    ) -> BatchRunner<'m> {
        self.validate_packed_setup(packed, act, kv);
        let (kv_group, kmap, vmap) = match kv {
            KvMode::Fp16 => panic!(
                "the batch runner serves packed caches only; pick a quantized KV mode \
                 (KvMode::Int4 / KvMode::Mant4)"
            ),
            KvMode::Int4 { group } => {
                let map = crate::layers::int4_kv_map();
                (group, map.clone(), map)
            }
            KvMode::Mant4 { group } => {
                let (kmap, vmap) = self.kv_maps(group);
                (group, kmap, vmap)
            }
        };
        let pool = KvCachePool::new(PoolConfig {
            kv_dim: self.config.kv_dim(),
            group_size: kv_group,
            block_tokens,
            blocks,
        })
        .expect("valid paged-pool geometry");
        BatchRunner {
            model: self,
            packed,
            kmap,
            vmap,
            kv_group,
            pool,
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_nonce: 0,
            prefixes: HashMap::new(),
            prefix_clock: 0,
        }
    }
}

impl BatchRunner<'_> {
    /// Opens a session. No pool block is reserved until its first step.
    pub fn create_session(&mut self) -> SessionId {
        let caches = (0..self.model.config.layers)
            .map(|_| PagedKvCache::new(&self.pool, self.kmap.clone(), self.vmap.clone()))
            .collect();
        self.insert_session(caches, 0)
    }

    fn insert_session(&mut self, caches: Vec<PagedKvCache>, seq_len: usize) -> SessionId {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let session = Session {
            nonce,
            caches,
            seq_len,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = Some(session);
                slot
            }
            None => {
                self.slots.push(Some(session));
                self.slots.len() - 1
            }
        };
        SessionId { slot, nonce }
    }

    /// Forks a live session at its current length: the child shares every
    /// cache block (copy-on-write past the fork point) and continues
    /// bit-identically to an independent sequence fed the same tokens.
    /// Allocates no pool block.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is stale or unknown.
    pub fn fork_session(&mut self, parent: SessionId) -> SessionId {
        self.check(parent);
        let (slots, pool) = (&self.slots, &mut self.pool);
        let p = slots[parent.slot].as_ref().expect("checked above");
        let caches: Vec<PagedKvCache> = p.caches.iter().map(|c| c.fork(pool)).collect();
        let seq_len = p.seq_len;
        self.insert_session(caches, seq_len)
    }

    /// Registers `id`'s current cache state as a shareable prompt prefix
    /// for `tokens` — the session must have processed exactly those
    /// tokens, and their count must be a positive multiple of the pool's
    /// block size (so every shared block is full and immutable, and the V
    /// staging window is empty). The snapshot holds the blocks alive (via
    /// refcounts) even after the donor session ends. Returns `false` if
    /// the prefix was already registered (nothing is re-snapshotted).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale/unknown, if `tokens.len()` differs from the
    /// session's length, or if the length is not block-aligned.
    pub fn register_prefix(&mut self, id: SessionId, tokens: &[usize]) -> bool {
        self.check(id);
        let bt = self.pool.block_tokens();
        assert!(
            !tokens.is_empty() && tokens.len().is_multiple_of(bt),
            "a shareable prefix must be a positive multiple of the block size ({bt} tokens), \
             got {}",
            tokens.len()
        );
        let session = self.slots[id.slot].as_ref().expect("checked above");
        assert_eq!(
            session.seq_len,
            tokens.len(),
            "prefix registration must happen exactly at the boundary the session sits on"
        );
        let h = prefix_hash(tokens);
        if let Some(entry) = self.prefixes.get(&h) {
            assert_eq!(entry.tokens, tokens, "prefix hash collision");
            return false;
        }
        let (slots, pool) = (&self.slots, &mut self.pool);
        let caches: Vec<PagedKvCache> = slots[id.slot]
            .as_ref()
            .expect("checked above")
            .caches
            .iter()
            .map(|c| c.fork(pool))
            .collect();
        self.prefix_clock += 1;
        self.prefixes.insert(
            h,
            PrefixEntry {
                tokens: tokens.to_vec(),
                caches,
                lru: self.prefix_clock,
            },
        );
        true
    }

    /// Length of the longest registered prefix of `tokens` (0 if none).
    /// Only block-aligned lengths can match, and the stored token chain is
    /// compared exactly, so a hash collision can never alias prefixes.
    pub fn cached_prefix_len(&self, tokens: &[usize]) -> usize {
        let bt = self.pool.block_tokens();
        let mut k = (tokens.len() / bt) * bt;
        while k > 0 {
            if let Some(entry) = self.prefixes.get(&prefix_hash(&tokens[..k])) {
                if entry.tokens == tokens[..k] {
                    return k;
                }
            }
            k -= bt;
        }
        0
    }

    /// Opens a session seeded from the longest registered prefix of
    /// `tokens`: the new session starts at that length, sharing the
    /// prefix's physical blocks (no pool allocation, no recompute), and is
    /// bit-identical from there on to a fresh session fed the same
    /// tokens. Returns the session and the number of tokens already
    /// cached (0 when nothing matched — then this is exactly
    /// [`BatchRunner::create_session`]).
    pub fn create_session_with_prefix(&mut self, tokens: &[usize]) -> (SessionId, usize) {
        let k = self.cached_prefix_len(tokens);
        if k == 0 {
            return (self.create_session(), 0);
        }
        self.prefix_clock += 1;
        let clock = self.prefix_clock;
        let entry = self
            .prefixes
            .get_mut(&prefix_hash(&tokens[..k]))
            .expect("lookup just matched");
        entry.lru = clock;
        let pool = &mut self.pool;
        let caches: Vec<PagedKvCache> = entry.caches.iter().map(|c| c.fork(pool)).collect();
        (self.insert_session(caches, k), k)
    }

    /// Drops the least-recently-used prefix snapshot **whose eviction
    /// frees at least one block** (it solely holds some block); snapshots
    /// that only alias blocks still held by live sessions or longer
    /// snapshots cost nothing and are kept — they are what makes
    /// preemption recovery cheap. Returns `false` when no registered
    /// snapshot would free memory. The serving engine calls this under
    /// pool pressure before resorting to preempting a running sequence;
    /// once nothing is running, every remaining snapshot is a sole holder,
    /// so repeated calls always drain the cache completely.
    pub fn evict_lru_prefix(&mut self) -> bool {
        let mut candidates: Vec<(u64, u64)> = self
            .prefixes
            .iter()
            .filter(|(_, e)| e.caches.iter().any(|c| c.holds_sole_reference(&self.pool)))
            .map(|(&h, e)| (e.lru, h))
            .collect();
        candidates.sort_unstable();
        let Some(&(_, h)) = candidates.first() else {
            return false;
        };
        let mut entry = self.prefixes.remove(&h).expect("key just found");
        for cache in &mut entry.caches {
            cache.release(&mut self.pool);
        }
        true
    }

    /// Registered prefix snapshots.
    pub fn prefix_entries(&self) -> usize {
        self.prefixes.len()
    }

    /// Free blocks the next [`BatchRunner::step`] will consume for session
    /// `id` — fresh boundary blocks plus copy-on-write copies, summed over
    /// layers. The watermark scheduler sums this across the batch to
    /// decide whether an iteration can proceed or must preempt.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or unknown.
    pub fn blocks_needed_for_step(&self, id: SessionId) -> usize {
        self.check(id);
        self.slots[id.slot]
            .as_ref()
            .expect("checked above")
            .caches
            .iter()
            .map(|c| c.blocks_needed_for_push(&self.pool))
            .sum()
    }

    /// Closes a session, returning every cache block it held to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or unknown.
    pub fn end_session(&mut self, id: SessionId) {
        self.check(id);
        let mut session = self.slots[id.slot].take().expect("checked above");
        for cache in &mut session.caches {
            cache.release(&mut self.pool);
        }
        self.free_slots.push(id.slot);
    }

    /// Number of open sessions.
    pub fn active_sessions(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Tokens processed so far by session `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or unknown.
    pub fn seq_len(&self, id: SessionId) -> usize {
        self.check(id);
        self.slots[id.slot].as_ref().expect("checked above").seq_len
    }

    /// The shared paged KV-cache pool (free/used blocks, bit accounting).
    pub fn pool(&self) -> &KvCachePool {
        &self.pool
    }

    /// Pool blocks one sequence needs over its whole lifetime to cache
    /// `tokens` tokens — one paged cache per layer. The quantity admission
    /// control reserves up front so a step can never exhaust the pool.
    pub fn blocks_for_request(&self, tokens: usize) -> usize {
        self.model.config.layers * self.pool.blocks_for_tokens(tokens)
    }

    /// Processes one token for every listed session in a single fused
    /// batch iteration (mixed prefill/decode: each session just feeds
    /// whatever its next token is) and returns next-token logits per
    /// entry, in order. Per-sequence results are bit-identical to the
    /// sequential [`TransformerModel::packed_runner`] fed the same tokens.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty, lists a session twice, holds a stale
    /// [`SessionId`] or an out-of-vocabulary token — or if the pool runs
    /// out of blocks mid-step, which admission control
    /// ([`BatchRunner::blocks_for_request`] against
    /// [`KvCachePool::free_blocks`]) must prevent.
    pub fn step(&mut self, batch: &[(SessionId, usize)]) -> Vec<Vec<f32>> {
        // Chaos seam: the induced panic lands before any session or pool
        // mutation, so a catch_unwind caller sees fully consistent state.
        #[cfg(feature = "fault-inject")]
        if mant_trace::fault::fire(mant_trace::fault::site::BATCH_STEP) {
            panic!("injected fault: batch.step");
        }
        assert!(!batch.is_empty(), "empty batch");
        let cfg = &self.model.config;
        for (i, &(id, token)) in batch.iter().enumerate() {
            self.check(id);
            assert!(token < cfg.vocab, "token {token} out of vocabulary");
            assert!(
                batch[..i].iter().all(|&(other, _)| other != id),
                "session listed twice in one batch iteration"
            );
        }
        let w = &self.model.weights;
        let g = self.packed.group_size();

        // Per-tick aggregate kernel buckets: when tracing is on, each
        // kernel family accumulates nanoseconds across all layers and one
        // span per bucket is emitted at the end of the step — never one
        // per call.
        let prof = mant_trace::enabled();
        let (mut t_gemm, mut t_attn, mut t_kv, mut t_gemv) = (0u64, 0u64, 0u64, 0u64);

        let mut xs: Vec<Vec<f32>> = batch
            .iter()
            .map(|&(_, token)| w.embedding.row(token).to_vec())
            .collect();

        for (li, layer) in w.layers.iter().enumerate() {
            let pl = &self.packed.layers()[li];

            // --- Attention block ---
            let xqs = quantize_batch(xs.iter().map(|x| rmsnorm(x, &layer.attn_norm, 1e-5)), g);
            let (qs, ks, vs) = timed(prof, &mut t_gemm, || {
                (pl.wq.matmul(&xqs), pl.wk.matmul(&xqs), pl.wv.matmul(&xqs))
            });
            let (slots, pool) = (&mut self.slots, &mut self.pool);
            timed(prof, &mut t_kv, || {
                for (i, &(id, _)) in batch.iter().enumerate() {
                    let session = slots[id.slot].as_mut().expect("validated above");
                    if let Err(e) = session.caches[li].push(pool, &ks[i], &vs[i]) {
                        panic!(
                            "{e} during a batch step; admission control must reserve \
                             blocks_for_request() blocks before scheduling a sequence"
                        );
                    }
                }
            });
            let attns: Vec<Vec<f32>> = timed(prof, &mut t_attn, || {
                batch
                    .iter()
                    .zip(qs.iter())
                    .map(|(&(id, _), q)| {
                        let session = self.slots[id.slot].as_ref().expect("validated above");
                        attention_incremental_paged(
                            q,
                            &session.caches[li],
                            &self.pool,
                            cfg.heads,
                            cfg.kv_heads,
                            cfg.head_dim(),
                        )
                    })
                    .collect()
            });
            let attns_q = quantize_batch(attns.into_iter(), g);
            let os = timed(prof, &mut t_gemm, || pl.wo.matmul(&attns_q));
            for (x, o) in xs.iter_mut().zip(os.iter()) {
                for (xi, oi) in x.iter_mut().zip(o.iter()) {
                    *xi += oi;
                }
            }

            // --- FFN block ---
            let xnq = quantize_batch(xs.iter().map(|x| rmsnorm(x, &layer.ffn_norm, 1e-5)), g);
            let hs: Vec<Vec<f32>> = match cfg.ffn_kind {
                FfnKind::GatedSilu => {
                    let gate_w = pl.w_gate.as_ref().expect("gated model packs a gate");
                    let (gates, ups) = timed(prof, &mut t_gemm, || {
                        (gate_w.matmul(&xnq), pl.w_up.matmul(&xnq))
                    });
                    gates
                        .iter()
                        .zip(ups.iter())
                        .map(|(gate, up)| {
                            gate.iter()
                                .zip(up.iter())
                                .map(|(&gv, &uv)| silu(gv) * uv)
                                .collect()
                        })
                        .collect()
                }
                FfnKind::PlainGelu => {
                    let ups = timed(prof, &mut t_gemm, || pl.w_up.matmul(&xnq));
                    ups.iter()
                        .map(|up| up.iter().map(|&u| gelu(u)).collect())
                        .collect()
                }
            };
            let hs_q = quantize_batch(hs.into_iter(), g);
            let ffs = timed(prof, &mut t_gemm, || pl.w_down.matmul(&hs_q));
            for (x, ff) in xs.iter_mut().zip(ffs.iter()) {
                for (xi, fi) in x.iter_mut().zip(ff.iter()) {
                    *xi += fi;
                }
            }
        }

        for &(id, _) in batch {
            self.slots[id.slot]
                .as_mut()
                .expect("validated above")
                .seq_len += 1;
        }
        let finals: Vec<Vec<f32>> = xs.iter().map(|x| rmsnorm(x, &w.final_norm, 1e-5)).collect();
        let final_refs: Vec<&[f32]> = finals.iter().map(Vec::as_slice).collect();
        let logits = timed(prof, &mut t_gemv, || matvec_batch(&w.lm_head, &final_refs));
        if prof {
            // Laid end-to-end ending now, so the buckets nest inside the
            // caller's enclosing step span.
            mant_trace::tail_spans(&[
                ("kernel.gemm", t_gemm),
                ("kernel.attn", t_attn),
                ("kernel.kv_quant", t_kv),
                ("kernel.gemv", t_gemv),
            ]);
        }
        logits
    }

    /// Processes `tokens` consecutive tokens for **one** session in a
    /// single fused pass — the prefill-shaped run speculative
    /// verification uses to turn k decode GEMVs into k-column GEMMs —
    /// and returns one logit row per token, bit-identical to feeding the
    /// same tokens through [`BatchRunner::step`] one at a time.
    ///
    /// Within each layer the cache interleaves push and attend per
    /// token, so token `i` attends over exactly the rows a sequential
    /// run would hold and every V-window commit fires at the same row
    /// count; layer-major order changes nothing a causal transformer can
    /// observe.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale/unknown, `tokens` is empty or holds an
    /// out-of-vocabulary token, or the pool runs out of blocks — the
    /// caller budgets via [`BatchRunner::blocks_needed_for_spec_step`].
    pub fn step_multi(&mut self, id: SessionId, tokens: &[usize]) -> Vec<Vec<f32>> {
        self.step_multi_impl(id, tokens, None)
    }

    fn step_multi_impl(
        &mut self,
        id: SessionId,
        tokens: &[usize],
        mut capture: Option<&mut KvCapture>,
    ) -> Vec<Vec<f32>> {
        assert!(!tokens.is_empty(), "empty token run");
        self.check(id);
        let cfg = &self.model.config;
        for &t in tokens {
            assert!(t < cfg.vocab, "token {t} out of vocabulary");
        }
        let w = &self.model.weights;
        let g = self.packed.group_size();
        if let Some(cap) = capture.as_deref_mut() {
            if cap.is_empty() {
                cap.resize(w.layers.len(), Vec::new());
            }
        }

        let prof = mant_trace::enabled();
        let (mut t_gemm, mut t_attn, mut t_kv, mut t_gemv) = (0u64, 0u64, 0u64, 0u64);

        let mut xs: Vec<Vec<f32>> = tokens
            .iter()
            .map(|&t| w.embedding.row(t).to_vec())
            .collect();

        for (li, layer) in w.layers.iter().enumerate() {
            let pl = &self.packed.layers()[li];

            // --- Attention block ---
            let xqs = quantize_batch(xs.iter().map(|x| rmsnorm(x, &layer.attn_norm, 1e-5)), g);
            let (qs, ks, vs) = timed(prof, &mut t_gemm, || {
                (pl.wq.matmul(&xqs), pl.wk.matmul(&xqs), pl.wv.matmul(&xqs))
            });
            if let Some(cap) = capture.as_deref_mut() {
                cap[li].extend(
                    ks.iter()
                        .zip(vs.iter())
                        .map(|(k, v)| (k.clone(), v.clone())),
                );
            }
            let mut attns: Vec<Vec<f32>> = Vec::with_capacity(tokens.len());
            let (slots, pool) = (&mut self.slots, &mut self.pool);
            for i in 0..tokens.len() {
                timed(prof, &mut t_kv, || {
                    let session = slots[id.slot].as_mut().expect("validated above");
                    if let Err(e) = session.caches[li].push(pool, &ks[i], &vs[i]) {
                        panic!(
                            "{e} during a multi-token step; the caller must budget \
                             blocks_needed_for_spec_step() free blocks before speculating"
                        );
                    }
                });
                attns.push(timed(prof, &mut t_attn, || {
                    let session = slots[id.slot].as_ref().expect("validated above");
                    attention_incremental_paged(
                        &qs[i],
                        &session.caches[li],
                        pool,
                        cfg.heads,
                        cfg.kv_heads,
                        cfg.head_dim(),
                    )
                }));
            }
            let attns_q = quantize_batch(attns.into_iter(), g);
            let os = timed(prof, &mut t_gemm, || pl.wo.matmul(&attns_q));
            for (x, o) in xs.iter_mut().zip(os.iter()) {
                for (xi, oi) in x.iter_mut().zip(o.iter()) {
                    *xi += oi;
                }
            }

            // --- FFN block ---
            let xnq = quantize_batch(xs.iter().map(|x| rmsnorm(x, &layer.ffn_norm, 1e-5)), g);
            let hs: Vec<Vec<f32>> = match cfg.ffn_kind {
                FfnKind::GatedSilu => {
                    let gate_w = pl.w_gate.as_ref().expect("gated model packs a gate");
                    let (gates, ups) = timed(prof, &mut t_gemm, || {
                        (gate_w.matmul(&xnq), pl.w_up.matmul(&xnq))
                    });
                    gates
                        .iter()
                        .zip(ups.iter())
                        .map(|(gate, up)| {
                            gate.iter()
                                .zip(up.iter())
                                .map(|(&gv, &uv)| silu(gv) * uv)
                                .collect()
                        })
                        .collect()
                }
                FfnKind::PlainGelu => {
                    let ups = timed(prof, &mut t_gemm, || pl.w_up.matmul(&xnq));
                    ups.iter()
                        .map(|up| up.iter().map(|&u| gelu(u)).collect())
                        .collect()
                }
            };
            let hs_q = quantize_batch(hs.into_iter(), g);
            let ffs = timed(prof, &mut t_gemm, || pl.w_down.matmul(&hs_q));
            for (x, ff) in xs.iter_mut().zip(ffs.iter()) {
                for (xi, fi) in x.iter_mut().zip(ff.iter()) {
                    *xi += fi;
                }
            }
        }

        self.slots[id.slot]
            .as_mut()
            .expect("validated above")
            .seq_len += tokens.len();
        let finals: Vec<Vec<f32>> = xs.iter().map(|x| rmsnorm(x, &w.final_norm, 1e-5)).collect();
        let final_refs: Vec<&[f32]> = finals.iter().map(Vec::as_slice).collect();
        let logits = timed(prof, &mut t_gemv, || matvec_batch(&w.lm_head, &final_refs));
        if prof {
            mant_trace::tail_spans(&[
                ("kernel.gemm", t_gemm),
                ("kernel.attn", t_attn),
                ("kernel.kv_quant", t_kv),
                ("kernel.gemv", t_gemv),
            ]);
        }
        logits
    }

    /// Rolls one session back to its first `len` tokens — every layer
    /// cache (CoW-aware, staging replayed bit-exactly per
    /// [`PagedKvCache::truncate`]) plus the session length.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale/unknown, `len` exceeds the session
    /// length, or the cut lands strictly inside a committed V window.
    pub fn truncate_session(&mut self, id: SessionId, len: usize) {
        self.check(id);
        let (slots, pool) = (&mut self.slots, &mut self.pool);
        let session = slots[id.slot].as_mut().expect("checked above");
        assert!(
            len <= session.seq_len,
            "truncate length {len} exceeds session length {}",
            session.seq_len
        );
        for cache in &mut session.caches {
            cache.truncate(pool, len);
        }
        session.seq_len = len;
    }

    /// Free blocks a [`BatchRunner::speculate_step`] of `k` candidates
    /// may consume **in this runner** for session `id`: the k-push burst
    /// per layer, with the copy-on-write charge forced whenever the step
    /// will fork a rollback checkpoint (the fork shares the trailing
    /// partial block, so the span's first push must copy it). The
    /// serving engine budgets this against the target and the draft
    /// pool separately before scheduling speculation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or unknown.
    pub fn blocks_needed_for_spec_step(&self, id: SessionId, k: usize) -> usize {
        self.check(id);
        let session = self.slots[id.slot].as_ref().expect("checked above");
        let ckpt = Self::needs_checkpoint(session.seq_len, k, self.kv_group);
        session
            .caches
            .iter()
            .map(|c| c.blocks_needed_for_pushes(&self.pool, k, ckpt))
            .sum()
    }

    /// Whether a k-candidate speculative span starting at length `n` can
    /// demand a rollback below a V window committed *during* the span —
    /// the condition under which [`BatchRunner::speculate_step`] forks
    /// checkpoint caches before touching the pool. At least one token is
    /// always emitted, so a cut below `n + 1` never happens.
    fn needs_checkpoint(n: usize, k: usize, group: usize) -> bool {
        (n + k) / group * group > n + 1
    }

    /// One draft-and-verify round for session `id` (the target) against
    /// `draft_id` in `draft` (the cheap model, kept in token lockstep):
    ///
    /// 1. **Draft**: feed the pending token `cur` and then each greedy
    ///    draft prediction through the draft model, `k` single-token
    ///    passes, yielding candidates `d_1..d_k`.
    /// 2. **Verify**: feed `[cur, d_1..d_{k-1}]` through the target in
    ///    one [`BatchRunner::step_multi`] pass — a k-column GEMM where
    ///    sequential decode would pay k GEMVs. Row `i`'s argmax is the
    ///    target's own next token after the true greedy prefix, because
    ///    every earlier candidate in the run was confirmed before row
    ///    `i` is consumed (accept-longest-prefix).
    /// 3. **Rollback**: both caches hold `n + k` rows but the canonical
    ///    stream keeps `n + tokens.len()`; the rejected tail is
    ///    discarded via [`PagedKvCache::truncate`], or — when the cut
    ///    would land under a V window committed during the span, which
    ///    quantized state cannot replay — by reinstalling checkpoint
    ///    caches forked at `n` and re-pushing the captured f32 rows.
    ///
    /// Greedy byte-identity: every emitted token is the argmax of target
    /// logits computed over exactly the true greedy prefix, so the
    /// emitted stream equals sequential target-only greedy decode
    /// bit-for-bit regardless of what the draft proposes; the draft only
    /// decides how many tokens each round yields (1 to `k`).
    ///
    /// # Panics
    ///
    /// Panics if either session is stale/unknown, the sessions are not
    /// at the same length, `k` is zero, `cur` is out of vocabulary, or
    /// either pool runs out of blocks
    /// ([`BatchRunner::blocks_needed_for_spec_step`] on both runners is
    /// the budget).
    pub fn speculate_step(
        &mut self,
        id: SessionId,
        cur: usize,
        draft: &mut BatchRunner<'_>,
        draft_id: SessionId,
        k: usize,
    ) -> SpecOutcome {
        // Chaos seam: as in [`BatchRunner::step`], the induced panic
        // precedes every mutation of either runner.
        #[cfg(feature = "fault-inject")]
        if mant_trace::fault::fire(mant_trace::fault::site::SPEC_STEP) {
            panic!("injected fault: batch.spec_step");
        }
        assert!(k >= 1, "speculation needs at least one draft candidate");
        self.check(id);
        draft.check(draft_id);
        let n = self.slots[id.slot].as_ref().expect("checked above").seq_len;
        let dn = draft.slots[draft_id.slot]
            .as_ref()
            .expect("checked above")
            .seq_len;
        assert_eq!(n, dn, "draft session out of lockstep with the target");
        let ckpt_t = Self::needs_checkpoint(n, k, self.kv_group);
        let ckpt_d = Self::needs_checkpoint(n, k, draft.kv_group);

        // Draft phase: greedy self-feeding. inputs[i] is what gets fed
        // (cur, then every candidate but the last); drafts[i] is the
        // candidate argmax'd out of pass i.
        let t0 = Instant::now();
        let draft_ckpt = ckpt_d.then(|| draft.fork_caches(draft_id));
        let mut draft_cap: KvCapture = Vec::new();
        let mut inputs = Vec::with_capacity(k);
        let mut drafts = Vec::with_capacity(k);
        let mut fed = cur;
        for _ in 0..k {
            inputs.push(fed);
            let cap = if ckpt_d { Some(&mut draft_cap) } else { None };
            let logits = draft.step_multi_impl(draft_id, &[fed], cap);
            fed = argmax(&logits[0]);
            // Chaos seam: corrupt the candidate *after* the draft argmax.
            // Safe by construction — verification compares target argmax
            // against the candidate, so a corrupted draft can only shrink
            // the accepted prefix, never change emitted tokens.
            #[cfg(feature = "fault-inject")]
            if let Some(off) =
                mant_trace::fault::payload(mant_trace::fault::site::SPEC_DRAFT_CORRUPT)
            {
                let vocab = self.model.config.vocab;
                fed = (fed + 1 + off as usize % (vocab - 1)) % vocab;
            }
            drafts.push(fed);
        }
        let draft_ns = t0.elapsed().as_nanos() as u64;

        // Verify: all k candidate positions in one batched target pass.
        let t1 = Instant::now();
        let target_ckpt = ckpt_t.then(|| self.fork_caches(id));
        let mut target_cap: KvCapture = Vec::new();
        let cap = if ckpt_t { Some(&mut target_cap) } else { None };
        let rows = self.step_multi_impl(id, &inputs, cap);
        let mut tokens = Vec::with_capacity(k);
        let mut accepted = 0usize;
        for (row, &d) in rows.iter().zip(drafts.iter()) {
            let y = argmax(row);
            tokens.push(y);
            if y != d {
                break;
            }
            accepted += 1;
        }
        let verify_ns = t1.elapsed().as_nanos() as u64;

        // Rollback: keep the accepted prefix plus the pending token's
        // fed predecessors; the last emitted token is pending, not fed.
        let t2 = Instant::now();
        let keep = n + tokens.len();
        self.settle(id, n, keep, k, target_ckpt, &target_cap);
        draft.settle(draft_id, n, keep, k, draft_ckpt, &draft_cap);
        let rollback_ns = t2.elapsed().as_nanos() as u64;

        SpecOutcome {
            tokens,
            drafted: k,
            accepted,
            draft_ns,
            verify_ns,
            rollback_ns,
        }
    }

    /// Forks every layer cache of `id` in place (refcount bumps only) —
    /// the rollback checkpoint a speculative span takes before it may
    /// cut below a committed V window.
    fn fork_caches(&mut self, id: SessionId) -> Vec<PagedKvCache> {
        let (slots, pool) = (&mut self.slots, &mut self.pool);
        let session = slots[id.slot].as_ref().expect("checked above");
        session.caches.iter().map(|c| c.fork(pool)).collect()
    }

    /// Finishes a speculative span at `keep` rows. While the cut stays
    /// at or above every window committed during the span,
    /// [`PagedKvCache::truncate`]'s staging replay is bit-exact and any
    /// checkpoint is simply released. A deeper cut cannot be replayed
    /// from quantized state (committing a V window re-encodes it
    /// lossily), so the checkpoint caches — forked at `n`, untouched
    /// since — are reinstalled and fed the captured f32 rows up to
    /// `keep`: exactly the push sequence a sequential run performs, and
    /// therefore bit-identical to one.
    fn settle(
        &mut self,
        id: SessionId,
        n: usize,
        keep: usize,
        k: usize,
        ckpt: Option<Vec<PagedKvCache>>,
        cap: &KvCapture,
    ) {
        let g = self.kv_group;
        let (slots, pool) = (&mut self.slots, &mut self.pool);
        let session = slots[id.slot].as_mut().expect("checked above");
        let committed_after = (n + k) / g * g;
        if keep >= committed_after {
            if keep < n + k {
                for cache in &mut session.caches {
                    cache.truncate(pool, keep);
                }
                session.seq_len = keep;
            }
            if let Some(mut caches) = ckpt {
                for c in &mut caches {
                    c.release(pool);
                }
            }
            return;
        }
        let fresh = ckpt.expect("a checkpoint is always forked when an interior cut is possible");
        debug_assert_eq!(
            cap.len(),
            session.caches.len(),
            "capture covers every layer"
        );
        for (slot_cache, (mut cache, rows)) in session
            .caches
            .iter_mut()
            .zip(fresh.into_iter().zip(cap.iter()))
        {
            slot_cache.release(pool);
            for (k_row, v_row) in &rows[..keep - n] {
                cache
                    .push(pool, k_row, v_row)
                    .expect("re-pushing rows the span already held cannot exhaust the pool");
            }
            *slot_cache = cache;
        }
        session.seq_len = keep;
    }

    /// The KV quantization group size.
    pub fn kv_group(&self) -> usize {
        self.kv_group
    }

    fn check(&self, id: SessionId) {
        let live = self
            .slots
            .get(id.slot)
            .and_then(Option::as_ref)
            .is_some_and(|s| s.nonce == id.nonce);
        assert!(live, "stale or unknown session {id:?}");
    }
}

/// Quantizes a batch of activation vectors to group-wise INT8 at the
/// packed group size — the same per-vector call the sequential runner
/// makes.
fn quantize_batch(xs: impl Iterator<Item = Vec<f32>>, group: usize) -> Vec<QuantizedVector> {
    xs.map(|x| quantize_vector_int8(&x, group).expect("group size divides the activation length"))
        .collect()
}

/// Runs `f`, adding its wall nanoseconds into `acc` when `prof` is on —
/// the accumulator behind the per-tick kernel buckets. With profiling off
/// this is a plain call: no clock reads.
#[inline]
fn timed<T>(prof: bool, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if !prof {
        return f();
    }
    let t0 = std::time::Instant::now();
    let out = f();
    *acc += t0.elapsed().as_nanos() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::layers::run_sequence_packed;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn batch_step_bit_identical_to_sequential_runs() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 31);
        let packed = m.pack_weights(64).unwrap();
        let kv = KvMode::Mant4 { group: 64 };
        let streams: [Vec<usize>; 3] = [
            (0..12).map(|i| (i * 37) % 512).collect(),
            (0..12).map(|i| (i * 53 + 7) % 512).collect(),
            (0..12).map(|i| (i * 11 + 100) % 512).collect(),
        ];
        let mut br = m.batch_runner(&packed, ActMode::None, kv, 64, 64);
        let ids: Vec<SessionId> = (0..3).map(|_| br.create_session()).collect();
        let mut batched_logits: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 3];
        for t in 0..12 {
            let batch: Vec<(SessionId, usize)> = ids
                .iter()
                .zip(streams.iter())
                .map(|(&id, s)| (id, s[t]))
                .collect();
            for (i, logits) in br.step(&batch).into_iter().enumerate() {
                batched_logits[i].push(logits);
            }
        }
        for (stream, got) in streams.iter().zip(batched_logits.iter()) {
            let solo = run_sequence_packed(&m, &packed, ActMode::None, kv, stream);
            for (t, logits) in got.iter().enumerate() {
                assert_eq!(
                    bits(logits),
                    bits(solo.row(t)),
                    "batch diverged from sequential at step {t}"
                );
            }
        }
    }

    #[test]
    fn sessions_join_and_leave_without_perturbing_others() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 32);
        let packed = m.pack_weights(64).unwrap();
        let kv = KvMode::Mant4 { group: 64 };
        let a_stream: Vec<usize> = (0..10).map(|i| (i * 29) % 512).collect();
        let b_stream: Vec<usize> = (0..6).map(|i| (i * 31 + 3) % 512).collect();
        let c_stream: Vec<usize> = (0..5).map(|i| (i * 41 + 9) % 512).collect();

        let mut br = m.batch_runner(&packed, ActMode::None, kv, 64, 64);
        let a = br.create_session();
        let b = br.create_session();
        let mut a_got = Vec::new();
        // A and B run together for 4 steps …
        for t in 0..4 {
            let out = br.step(&[(a, a_stream[t]), (b, b_stream[t])]);
            a_got.push(out[0].clone());
        }
        // … B leaves mid-decode, C joins (recycling B's blocks), A carries on.
        for t in 4..6 {
            let out = br.step(&[(a, a_stream[t]), (b, b_stream[t])]);
            a_got.push(out[0].clone());
        }
        br.end_session(b);
        let c = br.create_session();
        for t in 6..10 {
            let out = br.step(&[(c, c_stream[t - 6]), (a, a_stream[t])]);
            a_got.push(out[1].clone());
        }
        let solo = run_sequence_packed(&m, &packed, ActMode::None, kv, &a_stream);
        for (t, logits) in a_got.iter().enumerate() {
            assert_eq!(
                bits(logits),
                bits(solo.row(t)),
                "ragged batch broke A at {t}"
            );
        }
        assert_eq!(br.active_sessions(), 2);
        assert_eq!(br.seq_len(c), 4);
    }

    #[test]
    #[should_panic(expected = "stale or unknown session")]
    fn stale_session_detected() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 33);
        let packed = m.pack_weights(64).unwrap();
        let mut br = m.batch_runner(&packed, ActMode::None, KvMode::Mant4 { group: 64 }, 8, 64);
        let a = br.create_session();
        br.end_session(a);
        let _ = br.create_session(); // recycles the slot with a new nonce
        let _ = br.step(&[(a, 1)]);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_session_rejected() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 34);
        let packed = m.pack_weights(64).unwrap();
        let mut br = m.batch_runner(&packed, ActMode::None, KvMode::Mant4 { group: 64 }, 8, 64);
        let a = br.create_session();
        let _ = br.step(&[(a, 1), (a, 2)]);
    }

    #[test]
    #[should_panic(expected = "quantized KV mode")]
    fn fp16_kv_rejected() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 35);
        let packed = m.pack_weights(64).unwrap();
        let _ = m.batch_runner(&packed, ActMode::None, KvMode::Fp16, 8, 64);
    }

    #[test]
    fn forked_session_diverges_bit_identically_to_independent_runs() {
        // Fork a live session mid-block and continue parent and child on
        // different tokens: each must match a from-scratch sequential run
        // of its own full stream, bit for bit (copy-on-write isolation).
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 40);
        let packed = m.pack_weights(64).unwrap();
        let kv = KvMode::Mant4 { group: 64 };
        let prefix: Vec<usize> = (0..7).map(|i| (i * 43 + 3) % 512).collect();
        let a_tail: Vec<usize> = (0..5).map(|i| (i * 17 + 1) % 512).collect();
        let b_tail: Vec<usize> = (0..5).map(|i| (i * 59 + 8) % 512).collect();

        let mut br = m.batch_runner(&packed, ActMode::None, kv, 64, 64);
        let a = br.create_session();
        for &t in &prefix {
            br.step(&[(a, t)]);
        }
        let used_before = br.pool().used_blocks();
        let b = br.fork_session(a);
        assert_eq!(
            br.pool().used_blocks(),
            used_before,
            "fork allocates nothing"
        );
        assert_eq!(br.seq_len(b), prefix.len());

        let mut a_got = Vec::new();
        let mut b_got = Vec::new();
        for t in 0..5 {
            let out = br.step(&[(a, a_tail[t]), (b, b_tail[t])]);
            a_got.push(out[0].clone());
            b_got.push(out[1].clone());
        }
        for (tail, got) in [(&a_tail, &a_got), (&b_tail, &b_got)] {
            let full: Vec<usize> = prefix.iter().chain(tail.iter()).copied().collect();
            let solo = run_sequence_packed(&m, &packed, ActMode::None, kv, &full);
            for (t, logits) in got.iter().enumerate() {
                assert_eq!(
                    bits(logits),
                    bits(solo.row(prefix.len() + t)),
                    "fork diverged from independent run at step {t}"
                );
            }
        }
    }

    #[test]
    fn prefix_snapshot_skips_prefill_bit_exactly() {
        // Register block-aligned prefixes from a donor session, then open
        // a new session on top of the longest match: it starts at the
        // shared length with zero new blocks and continues bit-identically
        // to a from-scratch run of the whole stream. Int4 KV at group 16
        // keeps blocks 16 tokens, so the test stays fast.
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 41);
        let packed = m.pack_weights(64).unwrap();
        let kv = KvMode::Int4 { group: 16 };
        let bt = 16usize;
        let shared: Vec<usize> = (0..2 * bt).map(|i| (i * 13 + 5) % 512).collect();
        let tail: Vec<usize> = (0..6).map(|i| (i * 7 + 2) % 512).collect();

        let mut br = m.batch_runner(&packed, ActMode::None, kv, 64, bt);
        let donor = br.create_session();
        for (i, &t) in shared.iter().enumerate() {
            br.step(&[(donor, t)]);
            let done = i + 1;
            if done.is_multiple_of(bt) {
                assert!(br.register_prefix(donor, &shared[..done]));
                assert!(
                    !br.register_prefix(donor, &shared[..done]),
                    "re-register is a no-op"
                );
            }
        }
        br.end_session(donor);
        assert_eq!(br.prefix_entries(), 2);
        assert!(
            br.pool().used_blocks() > 0,
            "snapshots keep the shared blocks alive past the donor"
        );

        let full: Vec<usize> = shared.iter().chain(tail.iter()).copied().collect();
        assert_eq!(br.cached_prefix_len(&full), 2 * bt);
        let used_before = br.pool().used_blocks();
        let (sid, cached) = br.create_session_with_prefix(&full);
        assert_eq!(cached, 2 * bt);
        assert_eq!(br.seq_len(sid), 2 * bt);
        assert_eq!(
            br.pool().used_blocks(),
            used_before,
            "hit allocates nothing"
        );

        let solo = run_sequence_packed(&m, &packed, ActMode::None, kv, &full);
        for (t, &tok) in tail.iter().enumerate() {
            let logits = br.step(&[(sid, tok)]);
            assert_eq!(
                bits(&logits[0]),
                bits(solo.row(2 * bt + t)),
                "prefix-seeded session diverged at step {t}"
            );
        }
        br.end_session(sid);

        // A miss (different tokens) shares nothing.
        let other: Vec<usize> = (0..40).map(|i| (i * 31 + 9) % 512).collect();
        assert_eq!(br.cached_prefix_len(&other), 0);

        // LRU eviction releases the snapshots' hold block by block.
        assert!(br.evict_lru_prefix());
        assert!(br.evict_lru_prefix());
        assert!(!br.evict_lru_prefix());
        assert_eq!(br.pool().used_blocks(), 0);
    }

    #[test]
    fn step_need_accounting_covers_boundaries() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 42);
        let packed = m.pack_weights(64).unwrap();
        let mut br = m.batch_runner(&packed, ActMode::None, KvMode::Int4 { group: 16 }, 16, 16);
        let a = br.create_session();
        assert_eq!(
            br.blocks_needed_for_step(a),
            2,
            "first step: one block per layer"
        );
        br.step(&[(a, 1)]);
        assert_eq!(br.blocks_needed_for_step(a), 0, "mid-block steps are free");
        for t in 1..16 {
            br.step(&[(a, t % 512)]);
        }
        assert_eq!(
            br.blocks_needed_for_step(a),
            2,
            "boundary: one per layer again"
        );
    }

    #[test]
    fn step_multi_bit_identical_to_sequential_steps() {
        // A 5-token run from row 14 crosses the 16-row V window boundary,
        // so a commit fires mid-run; the fused pass must still match
        // token-by-token stepping bit for bit.
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 50);
        let packed = m.pack_weights(64).unwrap();
        let kv = KvMode::Int4 { group: 16 };
        let mut br = m.batch_runner(&packed, ActMode::None, kv, 64, 16);
        let a = br.create_session();
        let b = br.create_session();
        let prefix: Vec<usize> = (0..14).map(|i| (i * 23 + 1) % 512).collect();
        let run: Vec<usize> = (0..5).map(|i| (i * 61 + 4) % 512).collect();
        for &t in &prefix {
            br.step(&[(a, t), (b, t)]);
        }
        let multi = br.step_multi(a, &run);
        assert_eq!(multi.len(), run.len());
        for (t, &tok) in run.iter().enumerate() {
            let solo = br.step(&[(b, tok)]);
            assert_eq!(
                bits(&multi[t]),
                bits(&solo[0]),
                "step_multi diverged at token {t}"
            );
        }
        assert_eq!(br.seq_len(a), prefix.len() + run.len());
        // Both sessions continue identically afterwards.
        let am = br.step(&[(a, 9)]);
        let bm = br.step(&[(b, 9)]);
        assert_eq!(bits(&am[0]), bits(&bm[0]));
    }

    #[test]
    fn speculate_step_stream_matches_sequential_greedy() {
        // A 3-layer target with its 1-layer draft truncation; a live tail
        // keeps agreement partial so both the accept and reject paths
        // run, and the sweep over prompt lengths and k moves the
        // speculative span across 16-row V window boundaries — covering
        // the staging-truncate rollback and the checkpoint rollback.
        let mut cfg = ModelConfig::sim_llama();
        cfg.layers = 3;
        let spec = crate::synth::DraftConfig {
            layers: 1,
            tail_block_ratio: 0.25,
        };
        let (target, draft) = crate::synth::synthesize_speculative_pair(&cfg, 60, &spec);
        let t_packed = target.pack_weights(64).unwrap();
        let d_packed = draft.pack_weights(64).unwrap();
        let kv = KvMode::Int4 { group: 16 };
        for (prompt_len, k) in [(5usize, 2usize), (9, 3), (14, 5), (16, 4)] {
            let prompt: Vec<usize> = (0..prompt_len).map(|i| (i * 29 + 11) % 512).collect();
            let gen_len = 24;

            // Sequential greedy reference on the target alone.
            let mut seq = target.batch_runner(&t_packed, ActMode::None, kv, 96, 16);
            let s = seq.create_session();
            let mut logits = Vec::new();
            for &t in &prompt {
                logits = seq.step(&[(s, t)]);
            }
            let mut expect = vec![argmax(&logits[0])];
            while expect.len() < gen_len {
                let l = seq.step(&[(s, *expect.last().unwrap())]);
                expect.push(argmax(&l[0]));
            }

            // Speculative decode over the same prompt.
            let mut tr = target.batch_runner(&t_packed, ActMode::None, kv, 96, 16);
            let mut dr = draft.batch_runner(&d_packed, ActMode::None, kv, 96, 16);
            let tid = tr.create_session();
            let did = dr.create_session();
            let mut logits = Vec::new();
            for &t in &prompt {
                logits = tr.step(&[(tid, t)]);
                dr.step(&[(did, t)]);
            }
            let mut got = vec![argmax(&logits[0])];
            while got.len() < gen_len {
                let cur = *got.last().unwrap();
                let out = tr.speculate_step(tid, cur, &mut dr, did, k);
                assert!(!out.tokens.is_empty());
                assert!(out.accepted <= out.drafted);
                got.extend(out.tokens);
                assert_eq!(tr.seq_len(tid), dr.seq_len(did), "lockstep broken");
            }
            got.truncate(gen_len);
            assert_eq!(
                got, expect,
                "speculative stream diverged (prompt {prompt_len}, k {k})"
            );
            // No block may leak through checkpoint forks or rollbacks.
            tr.end_session(tid);
            dr.end_session(did);
            assert_eq!(tr.pool().used_blocks(), 0);
            assert_eq!(dr.pool().used_blocks(), 0);
        }
    }

    #[test]
    fn speculate_step_high_agreement_accepts_most_candidates() {
        // A near-inert tail makes the draft track the target closely
        // under Int4 KV (shared fixed variance map), so acceptance must
        // stay high. (An exactly-zero tail ratio cannot be used here:
        // the MANT W4 grid has no zero code, so packed zeroed tail
        // projections are *not* inert — see `DraftConfig`.)
        let mut cfg = ModelConfig::sim_llama();
        cfg.layers = 2;
        let spec = crate::synth::DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        };
        let (target, draft) = crate::synth::synthesize_speculative_pair(&cfg, 61, &spec);
        let t_packed = target.pack_weights(64).unwrap();
        let d_packed = draft.pack_weights(64).unwrap();
        let kv = KvMode::Int4 { group: 16 };
        let mut tr = target.batch_runner(&t_packed, ActMode::None, kv, 96, 16);
        let mut dr = draft.batch_runner(&d_packed, ActMode::None, kv, 96, 16);
        let tid = tr.create_session();
        let did = dr.create_session();
        let prompt: Vec<usize> = (0..6).map(|i| (i * 17 + 2) % 512).collect();
        let mut logits = Vec::new();
        for &t in &prompt {
            logits = tr.step(&[(tid, t)]);
            dr.step(&[(did, t)]);
        }
        let mut cur = argmax(&logits[0]);
        let (mut drafted, mut accepted) = (0usize, 0usize);
        for _ in 0..6 {
            let out = tr.speculate_step(tid, cur, &mut dr, did, 4);
            drafted += out.drafted;
            accepted += out.accepted;
            cur = *out.tokens.last().unwrap();
        }
        assert_eq!(drafted, 24);
        assert!(
            accepted * 2 >= drafted,
            "near-inert tail must keep acceptance high: {accepted}/{drafted}"
        );
        tr.end_session(tid);
        dr.end_session(did);
        assert_eq!(tr.pool().used_blocks(), 0);
        assert_eq!(dr.pool().used_blocks(), 0);
    }

    #[test]
    fn session_lifecycle_frees_blocks() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 36);
        let packed = m.pack_weights(64).unwrap();
        let mut br = m.batch_runner(&packed, ActMode::None, KvMode::Mant4 { group: 64 }, 8, 64);
        assert_eq!(br.blocks_for_request(65), 4); // 2 layers × ⌈65/64⌉ blocks
        let a = br.create_session();
        assert_eq!(br.pool().used_blocks(), 0, "no block before the first step");
        let _ = br.step(&[(a, 5)]);
        assert_eq!(br.pool().used_blocks(), 2); // one per layer
        br.end_session(a);
        assert_eq!(br.pool().used_blocks(), 0);
        assert_eq!(br.active_sessions(), 0);
    }
}

//! Execution backends: packed-weight storage and dispatch.
//!
//! The paper's central hardware claim (Sec. IV) is that MANT executes
//! *without dequantization*: Eq. (5) splits every group dot product into a
//! multiply-accumulate and a shift-accumulate lane, recombined once per
//! group. This module gives the model runner that execution path in
//! software:
//!
//! - [`QuantizedLinear`] holds one projection's packed 4-bit groups and
//!   answers matvecs through the fused integer GEMV (`mant_quant::fused`);
//! - [`PackedWeights`] mirrors the model's layer structure with packed
//!   projections (embedding, norms, and LM head stay f32, matching the
//!   paper's "linear layer" quantization scope);
//! - [`ExecutionBackend`] names the two engines a runner can drive: the
//!   f32 [`ExecutionBackend::Reference`] path over (fake-quantized) dense
//!   weights, and the [`ExecutionBackend::Quantized`] path that consumes
//!   packed groups end to end — linear layers via [`QuantizedLinear`], the
//!   KV cache via the incremental `fused_dot`/`attend` group APIs.

use mant_quant::{
    mant_gemv, mant_gemv_batch, quantize_vector_int8, MantQuantizedMatrix, MantWeightQuantizer,
    QuantError, QuantizedVector,
};
use mant_tensor::Matrix;

use crate::config::FfnKind;
use crate::layers::{Proj, TransformerModel};

/// Which execution engine a [`crate::ModelRunner`] drives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionBackend {
    /// f32 matvecs over dense (optionally fake-quantized) weights, with
    /// quantized KV caches dequantized to matrices before attention.
    #[default]
    Reference,
    /// Fused integer execution over packed groups: INT8 activations ×
    /// 4-bit packed weights via the two-psum kernels, and incremental
    /// attention that consumes K/V cache groups in place.
    Quantized,
}

/// One linear projection stored as packed 4-bit MANT/INT4 groups,
/// dispatching matvecs to the fused integer GEMV — never dequantized on
/// the forward path.
#[derive(Clone, Debug)]
pub struct QuantizedLinear {
    packed: MantQuantizedMatrix,
}

impl QuantizedLinear {
    /// Wraps a packed matrix.
    pub fn new(packed: MantQuantizedMatrix) -> Self {
        QuantizedLinear { packed }
    }

    /// Number of output channels.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Accumulation-dimension length.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// The quantization group size.
    pub fn group_size(&self) -> usize {
        self.packed.group_size()
    }

    /// The underlying packed matrix.
    pub fn packed(&self) -> &MantQuantizedMatrix {
        &self.packed
    }

    /// `y = W · x` over packed groups: per-group integer psums plus one
    /// `s_x · s_w` multiply (Eq. (5)).
    ///
    /// # Panics
    ///
    /// Panics if `x`'s length or group size disagrees with the weights.
    pub fn matvec(&self, x: &QuantizedVector) -> Vec<f32> {
        mant_gemv(x, &self.packed).expect("activation layout matches packed weights")
    }

    /// Quantizes `x` at the weight group size, then runs the fused GEMV.
    ///
    /// # Panics
    ///
    /// Panics if the group size does not divide `x.len()`.
    pub fn matvec_f32(&self, x: &[f32]) -> Vec<f32> {
        let xq = quantize_vector_int8(x, self.group_size())
            .expect("group size divides the activation length");
        self.matvec(&xq)
    }

    /// Multi-query matmul: `y_i = W · x_i` for a whole continuous batch of
    /// independently quantized activations through the decode-pass GEMM
    /// ([`mant_gemv_batch`]) — each weight group is decoded once and swept
    /// across every sequence, amortizing the per-group overhead that makes
    /// the software GEMV lose at batch 1. `out[i]` is bit-identical to
    /// `self.matvec(&xs[i])`.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length or group size disagrees with the
    /// weights.
    pub fn matmul(&self, xs: &[QuantizedVector]) -> Vec<Vec<f32>> {
        mant_gemv_batch(xs, &self.packed).expect("activation layout matches packed weights")
    }

    /// Dequantizes to a dense matrix (for the reference twin and tests —
    /// never called on the quantized forward path).
    pub fn dequantize(&self) -> Matrix {
        self.packed.dequantize()
    }

    /// Storage bits of the packed representation.
    pub fn storage_bits(&self) -> usize {
        self.packed.storage_bits()
    }
}

/// Packed projections of one transformer layer.
#[derive(Clone, Debug)]
pub struct PackedLayer {
    /// Query projection.
    pub wq: QuantizedLinear,
    /// Key projection.
    pub wk: QuantizedLinear,
    /// Value projection.
    pub wv: QuantizedLinear,
    /// Attention output projection.
    pub wo: QuantizedLinear,
    /// FFN gate (absent for [`FfnKind::PlainGelu`] models).
    pub w_gate: Option<QuantizedLinear>,
    /// FFN up projection.
    pub w_up: QuantizedLinear,
    /// FFN down projection.
    pub w_down: QuantizedLinear,
}

/// All linear-layer weights of a model in packed form — what the quantized
/// execution backend holds instead of dense f32 matrices.
#[derive(Clone, Debug)]
pub struct PackedWeights {
    layers: Vec<PackedLayer>,
    group_size: usize,
}

impl PackedWeights {
    /// Per-layer packed projections.
    pub fn layers(&self) -> &[PackedLayer] {
        &self.layers
    }

    /// The quantization group size shared by every projection.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Total packed storage in bits across all projections.
    pub fn storage_bits(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.wq.storage_bits()
                    + l.wk.storage_bits()
                    + l.wv.storage_bits()
                    + l.wo.storage_bits()
                    + l.w_gate.as_ref().map_or(0, QuantizedLinear::storage_bits)
                    + l.w_up.storage_bits()
                    + l.w_down.storage_bits()
            })
            .sum()
    }

    /// The fake-quantize twin: a dense model whose linear weights are the
    /// dequantized packed groups. Running it on the reference backend is
    /// mathematically the same computation as the quantized backend (same
    /// quantized values, f32 instead of integer accumulation) — the anchor
    /// for the backend-equivalence tests.
    pub fn to_model(&self, reference: &TransformerModel) -> TransformerModel {
        assert_eq!(
            self.layers.len(),
            reference.config.layers,
            "packed weights and reference model disagree on depth"
        );
        let mut out = reference.clone();
        for (dst, src) in out.weights.layers.iter_mut().zip(self.layers.iter()) {
            dst.wq = src.wq.dequantize();
            dst.wk = src.wk.dequantize();
            dst.wv = src.wv.dequantize();
            dst.wo = src.wo.dequantize();
            if let Some(g) = &src.w_gate {
                dst.w_gate = g.dequantize();
            }
            dst.w_up = src.w_up.dequantize();
            dst.w_down = src.w_down.dequantize();
        }
        out
    }
}

impl TransformerModel {
    /// Packs every linear projection into 4-bit MANT/INT4 groups with the
    /// plain (weight-MSE) coefficient search.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` does not
    /// divide every projection's inner dimension.
    pub fn pack_weights(&self, group_size: usize) -> Result<PackedWeights, QuantError> {
        self.pack_weights_with(group_size, |_, _| MantWeightQuantizer::new(group_size))
    }

    /// Packs every linear projection, constructing the quantizer per
    /// `(layer, projection)` — the hook through which the pipeline threads
    /// per-layer, per-projection calibration moments into the search.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` does not
    /// divide every projection's inner dimension, or any error the
    /// supplied quantizers produce.
    pub fn pack_weights_with<F>(
        &self,
        group_size: usize,
        make: F,
    ) -> Result<PackedWeights, QuantError>
    where
        F: Fn(usize, Proj) -> MantWeightQuantizer,
    {
        let pack = |li: usize, proj: Proj, w: &Matrix| -> Result<QuantizedLinear, QuantError> {
            let q = make(li, proj);
            debug_assert_eq!(q.group_size(), group_size, "quantizer group size drift");
            Ok(QuantizedLinear::new(q.par_quantize(w)?))
        };
        let mut layers = Vec::with_capacity(self.config.layers);
        for (li, l) in self.weights.layers.iter().enumerate() {
            layers.push(PackedLayer {
                wq: pack(li, Proj::Q, &l.wq)?,
                wk: pack(li, Proj::K, &l.wk)?,
                wv: pack(li, Proj::V, &l.wv)?,
                wo: pack(li, Proj::O, &l.wo)?,
                w_gate: if self.config.ffn_kind == FfnKind::GatedSilu {
                    Some(pack(li, Proj::Gate, &l.w_gate)?)
                } else {
                    None
                },
                w_up: pack(li, Proj::Up, &l.w_up)?,
                w_down: pack(li, Proj::Down, &l.w_down)?,
            });
        }
        Ok(PackedWeights { layers, group_size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn pack_roundtrip_shapes_and_storage() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 21);
        let packed = m.pack_weights(64).unwrap();
        assert_eq!(packed.layers().len(), 2);
        assert_eq!(packed.group_size(), 64);
        let l0 = &packed.layers()[0];
        assert_eq!(l0.wq.rows(), 256);
        assert_eq!(l0.wq.cols(), 256);
        assert!(l0.w_gate.is_some());
        assert_eq!(l0.w_down.cols(), 512);
        // ~4.375 bits/element across all linear params.
        let params = m.config.linear_params();
        let bpe = packed.storage_bits() as f64 / params as f64;
        assert!((4.3..4.5).contains(&bpe), "bits/element {bpe}");
    }

    #[test]
    fn packed_twin_equals_fake_quantized_model() {
        // Dequantizing the packed weights reproduces exactly what the
        // fake-quantize path computes with the same (plain) quantizer.
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 22);
        let packed = m.pack_weights(64).unwrap();
        let twin = packed.to_model(&m);
        let fake = m.quantize_weights(&MantWeightQuantizer::new(64));
        for (a, b) in twin.weights.layers.iter().zip(fake.weights.layers.iter()) {
            assert_eq!(a.wq.as_slice(), b.wq.as_slice());
            assert_eq!(a.w_down.as_slice(), b.w_down.as_slice());
        }
        // Embedding and head stay untouched.
        assert_eq!(
            twin.weights.embedding.as_slice(),
            m.weights.embedding.as_slice()
        );
        assert_eq!(
            twin.weights.lm_head.as_slice(),
            m.weights.lm_head.as_slice()
        );
    }

    #[test]
    fn matmul_bit_identical_to_matvec() {
        use mant_quant::quantize_vector_int8;
        use mant_tensor::TensorGenerator;
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 26);
        let packed = m.pack_weights(64).unwrap();
        let lin = &packed.layers()[0].wq;
        let mut gen = TensorGenerator::new(26);
        let xs: Vec<_> = (0..4)
            .map(|_| {
                let x: Vec<f32> = (0..lin.cols()).map(|_| gen.standard_normal()).collect();
                quantize_vector_int8(&x, 64).unwrap()
            })
            .collect();
        let batched = lin.matmul(&xs);
        for (x, y) in xs.iter().zip(batched.iter()) {
            assert_eq!(y, &lin.matvec(x), "multi-query matmul drifted from matvec");
        }
    }

    #[test]
    fn plain_gelu_models_have_no_gate() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_opt(), 23);
        let packed = m.pack_weights(64).unwrap();
        assert!(packed.layers()[0].w_gate.is_none());
    }

    #[test]
    fn bad_group_size_rejected() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 24);
        assert!(m.pack_weights(96).is_err());
    }
}

//! Calibration over synthetic token streams (the paper's Pile subsets).
//!
//! Calibration serves two consumers:
//!
//! 1. **Weight search** (Eq. (6)): per-projection second moments `E[x_j²]`
//!    of the activations feeding each weight column, used by
//!    [`mant_quant::MantWeightQuantizer::with_calibration`];
//! 2. **KV variance map** (Sec. V-C): sampled K/V groups from which
//!    [`mant_quant::VarianceMap::from_calibration`] derives its
//!    variance→`a` ranges.

use std::collections::HashMap;

use mant_quant::{CandidateSet, QuantError, VarianceMap};
use mant_tensor::TensorGenerator;

use crate::layers::{ActMode, ForwardObserver, KvMode, Proj, TransformerModel};

/// Collected calibration statistics.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-(layer, projection) running sums of `x²` and sample counts.
    moments: HashMap<(usize, Proj), (Vec<f64>, usize)>,
    /// Sampled K groups (each of `group_size` elements).
    k_groups: Vec<Vec<f32>>,
    /// Sampled V elements per channel window (built like the V engine:
    /// consecutive vectors stacked per channel).
    v_groups: Vec<Vec<f32>>,
    group_size: usize,
    v_window: Vec<Vec<f32>>,
}

impl Calibration {
    fn new(group_size: usize) -> Self {
        Calibration {
            moments: HashMap::new(),
            k_groups: Vec::new(),
            v_groups: Vec::new(),
            group_size,
            v_window: Vec::new(),
        }
    }

    /// Second moments `E[x_j²]` for the inputs of `(layer, proj)`, or
    /// `None` if never observed.
    pub fn col_moments(&self, layer: usize, proj: Proj) -> Option<Vec<f32>> {
        self.moments.get(&(layer, proj)).map(|(sums, n)| {
            sums.iter()
                .map(|&s| (s / (*n).max(1) as f64) as f32)
                .collect()
        })
    }

    /// The sampled KV groups (K spatial groups and V temporal groups).
    pub fn kv_groups(&self) -> impl Iterator<Item = &[f32]> {
        self.k_groups
            .iter()
            .map(|g| g.as_slice())
            .chain(self.v_groups.iter().map(|g| g.as_slice()))
    }

    /// Builds the variance→`a` map from the sampled KV groups.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn variance_map(&self, set: &CandidateSet) -> Result<VarianceMap, QuantError> {
        VarianceMap::from_calibration(self.kv_groups(), set)
    }

    /// Number of sampled KV groups.
    pub fn kv_group_count(&self) -> usize {
        self.k_groups.len() + self.v_groups.len()
    }
}

impl ForwardObserver for Calibration {
    fn on_linear_input(&mut self, layer: usize, proj: Proj, x: &[f32]) {
        let entry = self
            .moments
            .entry((layer, proj))
            .or_insert_with(|| (vec![0.0; x.len()], 0));
        for (s, &v) in entry.0.iter_mut().zip(x.iter()) {
            *s += f64::from(v) * f64::from(v);
        }
        entry.1 += 1;
    }

    fn on_kv_vectors(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        // Sample layer 0 only: enough signal, bounded memory.
        if layer != 0 {
            return;
        }
        for group in k.chunks_exact(self.group_size) {
            self.k_groups.push(group.to_vec());
        }
        // Stack V vectors; emit per-channel temporal groups when the
        // window fills, mirroring the V engine's group structure.
        self.v_window.push(v.to_vec());
        if self.v_window.len() == self.group_size {
            let dim = v.len();
            for c in 0..dim {
                self.v_groups
                    .push(self.v_window.iter().map(|row| row[c]).collect());
            }
            self.v_window.clear();
        }
    }
}

/// Runs `n_tokens` of a synthetic calibration stream through the model,
/// collecting activation moments and KV groups.
pub fn calibrate(model: &TransformerModel, n_tokens: usize, seed: u64) -> Calibration {
    let group = 64.min(model.config.head_dim());
    let mut calib = Calibration::new(group);
    let mut gen = TensorGenerator::new(seed);
    let mut runner = model.runner(ActMode::None, KvMode::Fp16);
    for _ in 0..n_tokens {
        let t = gen.token(model.config.vocab);
        runner.step_observed(t, &mut calib);
    }
    calib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn moments_cover_all_projections() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 5);
        let calib = calibrate(&m, 8, 1);
        for proj in [Proj::Q, Proj::K, Proj::V, Proj::O, Proj::Gate, Proj::Up, Proj::Down] {
            let mom = calib.col_moments(0, proj);
            assert!(mom.is_some(), "{proj:?} missing");
            let mom = mom.unwrap();
            assert!(mom.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
        assert!(calib.col_moments(0, Proj::Q).unwrap().len() == 256);
        assert!(calib.col_moments(5, Proj::Q).is_none());
    }

    #[test]
    fn outlier_channels_show_in_moments() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 5);
        let calib = calibrate(&m, 12, 2);
        let mom = calib.col_moments(0, Proj::Q).unwrap();
        let max = mom.iter().cloned().fold(0.0f32, f32::max);
        let mut sorted = mom.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(max > 20.0 * median, "max {max} vs median {median}");
    }

    #[test]
    fn kv_groups_sampled_and_map_builds() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 5);
        let calib = calibrate(&m, 70, 3);
        // 70 tokens × (256/64) K groups + one 64-token V window × 256 channels.
        assert!(calib.kv_group_count() > 300, "{}", calib.kv_group_count());
        let map = calib.variance_map(&CandidateSet::paper()).unwrap();
        assert_eq!(map.entries().len(), CandidateSet::paper().len());
    }
}

//! Calibration over synthetic token streams (the paper's Pile subsets).
//!
//! Calibration serves two consumers:
//!
//! 1. **Weight search** (Eq. (6)): per-projection second moments `E[x_j²]`
//!    of the activations feeding each weight column, used by
//!    [`mant_quant::MantWeightQuantizer::with_calibration`];
//! 2. **KV variance map** (Sec. V-C): sampled K/V groups from which
//!    [`mant_quant::VarianceMap::from_calibration`] derives its
//!    variance→`a` ranges.

use std::collections::HashMap;

use mant_quant::{CandidateSet, QuantError, VarianceMap};
use mant_tensor::TensorGenerator;

use crate::layers::{ActMode, ForwardObserver, KvMode, Proj, TransformerModel};

/// Collected calibration statistics.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-(layer, projection) running sums of `x²` and sample counts.
    moments: HashMap<(usize, Proj), (Vec<f64>, usize)>,
    /// Per-layer running sums of `q²` (query outputs) and sample counts,
    /// for score-weighted K-cache calibration.
    q_moments: HashMap<usize, (Vec<f64>, usize)>,
    /// Sampled K groups as `(layer, column offset, values)` (each of
    /// `group_size` elements).
    k_groups: Vec<(usize, usize, Vec<f32>)>,
    /// Sampled V elements per channel window (built like the V engine:
    /// consecutive vectors stacked per channel).
    v_groups: Vec<Vec<f32>>,
    group_size: usize,
    /// Attention head width, for folding query moments onto KV heads.
    head_dim: usize,
    /// Width of the K/V projections (`kv_heads × head_dim`).
    kv_dim: usize,
    /// Per-layer staging windows for V temporal grouping.
    v_window: Vec<Vec<Vec<f32>>>,
}

impl Calibration {
    fn new(group_size: usize, head_dim: usize, kv_dim: usize) -> Self {
        Calibration {
            moments: HashMap::new(),
            q_moments: HashMap::new(),
            k_groups: Vec::new(),
            v_groups: Vec::new(),
            group_size,
            head_dim,
            kv_dim,
            v_window: Vec::new(),
        }
    }

    /// Second moments `E[x_j²]` for the inputs of `(layer, proj)`, or
    /// `None` if never observed.
    pub fn col_moments(&self, layer: usize, proj: Proj) -> Option<Vec<f32>> {
        self.moments.get(&(layer, proj)).map(|(sums, n)| {
            sums.iter()
                .map(|&s| (s / (*n).max(1) as f64) as f32)
                .collect()
        })
    }

    /// The sampled KV groups (K spatial groups and V temporal groups).
    pub fn kv_groups(&self) -> impl Iterator<Item = &[f32]> {
        self.k_groups
            .iter()
            .map(|(_, _, g)| g.as_slice())
            .chain(self.v_groups.iter().map(|g| g.as_slice()))
    }

    /// Builds the variance→`a` map from the sampled KV groups.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn variance_map(&self, set: &CandidateSet) -> Result<VarianceMap, QuantError> {
        VarianceMap::from_calibration(self.kv_groups(), set)
    }

    /// Builds a variance→`a` map from the K spatial groups alone. K and V
    /// groups have very different shapes (64 contiguous head-dim elements
    /// vs one channel stacked over 64 decode steps), so per-tensor maps
    /// select markedly better than a shared one. Each K group's candidate
    /// errors are weighted by the calibration second moments `E[q_j²]` of
    /// the query positions multiplying it in `Q·Kᵀ` — the diagonal
    /// surrogate of Eq. (6) applied to the attention scores. Queries carry
    /// outlier channels, so score error is dominated by a few positions
    /// that plain MSE underweights.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn k_variance_map_weighted(&self, set: &CandidateSet) -> Result<VarianceMap, QuantError> {
        // Materialize per-layer E[q²] vectors folded onto the KV-head
        // layout (under GQA several query heads share one KV head, so
        // their moments sum at matching within-head offsets).
        let q_mom: HashMap<usize, Vec<f32>> = self
            .q_moments
            .iter()
            .map(|(&layer, (sums, n))| {
                let mut folded = vec![0.0f64; self.kv_dim];
                let q_heads = (sums.len() / self.head_dim).max(1);
                let kv_heads = (self.kv_dim / self.head_dim).max(1);
                let share = (q_heads / kv_heads).max(1);
                for (p, &s) in sums.iter().enumerate() {
                    let kv_head = (p / self.head_dim) / share;
                    folded[kv_head * self.head_dim + p % self.head_dim] += s;
                }
                let m = folded
                    .iter()
                    .map(|&s| (s / (*n).max(1) as f64) as f32)
                    .collect();
                (layer, m)
            })
            .collect();
        let items = self.k_groups.iter().map(|(layer, off, g)| {
            let w = q_mom.get(layer).and_then(|m| m.get(*off..*off + g.len()));
            (g.as_slice(), w)
        });
        VarianceMap::from_calibration_weighted(items, set)
    }

    /// Builds a variance→`a` map from the V temporal groups alone.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn v_variance_map(&self, set: &CandidateSet) -> Result<VarianceMap, QuantError> {
        VarianceMap::from_calibration(self.v_groups.iter().map(Vec::as_slice), set)
    }

    /// Number of sampled KV groups.
    pub fn kv_group_count(&self) -> usize {
        self.k_groups.len() + self.v_groups.len()
    }
}

impl ForwardObserver for Calibration {
    fn on_linear_input(&mut self, layer: usize, proj: Proj, x: &[f32]) {
        let entry = self
            .moments
            .entry((layer, proj))
            .or_insert_with(|| (vec![0.0; x.len()], 0));
        for (s, &v) in entry.0.iter_mut().zip(x.iter()) {
            *s += f64::from(v) * f64::from(v);
        }
        entry.1 += 1;
    }

    fn on_query_vector(&mut self, layer: usize, q: &[f32]) {
        let entry = self
            .q_moments
            .entry(layer)
            .or_insert_with(|| (vec![0.0; q.len()], 0));
        for (s, &v) in entry.0.iter_mut().zip(q.iter()) {
            *s += f64::from(v) * f64::from(v);
        }
        entry.1 += 1;
    }

    fn on_kv_vectors(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        // Sample every layer: per-layer K/V statistics differ enough that a
        // single-layer sample miscalibrates the variance→type table for the
        // rest of the stack. Memory stays bounded by the token budget.
        for (gi, group) in k.chunks_exact(self.group_size).enumerate() {
            self.k_groups
                .push((layer, gi * self.group_size, group.to_vec()));
        }
        // Stack V vectors per layer; emit per-channel temporal groups when
        // a layer's window fills, mirroring the V engine's group structure.
        while self.v_window.len() <= layer {
            self.v_window.push(Vec::new());
        }
        let window = &mut self.v_window[layer];
        window.push(v.to_vec());
        if window.len() == self.group_size {
            let dim = v.len();
            for c in 0..dim {
                self.v_groups
                    .push(window.iter().map(|row| row[c]).collect());
            }
            window.clear();
        }
    }
}

/// Runs `n_tokens` of a synthetic calibration stream through the model,
/// collecting activation moments and KV groups at the default group size
/// (`min(64, head_dim)`).
pub fn calibrate(model: &TransformerModel, n_tokens: usize, seed: u64) -> Calibration {
    calibrate_with_group(model, n_tokens, seed, 64.min(model.config.head_dim()))
}

/// Like [`calibrate`], sampling K groups and V windows at an explicit
/// `group_size` — it must match the group size the runtime KV quantizers
/// will use, or the variance→type tables are built from the wrong group
/// statistics.
pub fn calibrate_with_group(
    model: &TransformerModel,
    n_tokens: usize,
    seed: u64,
    group_size: usize,
) -> Calibration {
    let mut calib = Calibration::new(group_size, model.config.head_dim(), model.config.kv_dim());
    let mut gen = TensorGenerator::new(seed);
    let mut runner = model.runner(ActMode::None, KvMode::Fp16);
    for _ in 0..n_tokens {
        let t = gen.token(model.config.vocab);
        runner.step_observed(t, &mut calib);
    }
    calib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn moments_cover_all_projections() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 5);
        let calib = calibrate(&m, 8, 1);
        for proj in [
            Proj::Q,
            Proj::K,
            Proj::V,
            Proj::O,
            Proj::Gate,
            Proj::Up,
            Proj::Down,
        ] {
            let mom = calib.col_moments(0, proj);
            assert!(mom.is_some(), "{proj:?} missing");
            let mom = mom.unwrap();
            assert!(mom.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
        assert!(calib.col_moments(0, Proj::Q).unwrap().len() == 256);
        assert!(calib.col_moments(5, Proj::Q).is_none());
    }

    #[test]
    fn outlier_channels_show_in_moments() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 5);
        let calib = calibrate(&m, 12, 2);
        let mom = calib.col_moments(0, Proj::Q).unwrap();
        let max = mom.iter().cloned().fold(0.0f32, f32::max);
        let mut sorted = mom.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(max > 20.0 * median, "max {max} vs median {median}");
    }

    #[test]
    fn kv_groups_sampled_and_map_builds() {
        let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), 5);
        let calib = calibrate(&m, 70, 3);
        // 70 tokens × (256/64) K groups + one 64-token V window × 256 channels.
        assert!(calib.kv_group_count() > 300, "{}", calib.kv_group_count());
        let map = calib.variance_map(&CandidateSet::paper()).unwrap();
        assert_eq!(map.entries().len(), CandidateSet::paper().len());
    }
}

//! Seeded synthesis of transformer weights with LLM-like distributions.
//!
//! Two distributional facts are planted deliberately (both documented in
//! the substitution table of `DESIGN.md`):
//!
//! 1. every linear weight exhibits **group-level diversity** (Fig. 3) via
//!    [`TensorGenerator::group_diverse_matrix`];
//! 2. the activation stream carries **outlier channels** — a small set of
//!    channels with 10–40× magnitudes, implemented as outliers in the
//!    embedding columns and norm gains (the mechanism behind LayerNorm
//!    outliers reported by LLM.int8/SmoothQuant). These are what break
//!    tensor-wise 4-bit activation quantization for ANT/OliVe in Tbl. II.

use mant_tensor::{Matrix, TensorGenerator};

use crate::config::ModelConfig;
use crate::layers::{LayerWeights, TransformerModel, TransformerWeights};

/// Fraction of hidden channels that are outliers.
const OUTLIER_CHANNEL_FRAC: f64 = 0.004;
/// Magnitude multiplier of outlier channels.
const OUTLIER_GAIN: f32 = 15.0;
/// Relative token-to-token variation of outlier channels. Real LLM outlier
/// features are *systematic*: large, nearly token-independent values
/// (LLM.int8's emergent features). Keeping them near-constant makes them
/// carry little task information — so what breaks tensor-wise low-bit
/// quantization is the crushed bulk, exactly as in trained models.
const OUTLIER_JITTER: f32 = 0.05;
/// Norm-gain amplification on the same outlier channels.
const NORM_OUTLIER_GAIN: f32 = 8.0;

/// Synthesizes a model with LLM-like tensor statistics from a seed.
pub fn synthesize(config: &ModelConfig, seed: u64) -> TransformerModel {
    let mut gen = TensorGenerator::new(seed);
    let hidden = config.hidden;
    let group = 64.min(hidden);
    // Outlier channel mask shared across the residual stream. The *count*
    // is deterministic (real LLMs above ~1B parameters always have a
    // stable set of emergent outlier channels); positions are seeded.
    let outlier_count = ((hidden as f64 * OUTLIER_CHANNEL_FRAC).round() as usize).max(2);
    let mut outlier = vec![false; hidden];
    let mut placed = 0;
    while placed < outlier_count {
        let c = gen.token(hidden);
        if !outlier[c] {
            outlier[c] = true;
            placed += 1;
        }
    }

    let weight_scale = 1.0 / (hidden as f32).sqrt();
    // Real transformers are residual-dominated: each block contributes a
    // modest increment on top of the stream. Scaling the output projections
    // down reproduces that, and keeps the model's sensitivity to weight
    // perturbations in the regime real PTQ results live in (without it, a
    // random network amplifies 4-bit error into decorrelated logits).
    let residual_damping = 0.4;
    let mut layers = Vec::with_capacity(config.layers);
    for _ in 0..config.layers {
        let wq = gen.group_diverse_matrix(hidden, hidden, group, weight_scale);
        let wk = gen.group_diverse_matrix(config.kv_dim(), hidden, group, weight_scale);
        let wv = gen.group_diverse_matrix(config.kv_dim(), hidden, group, weight_scale);
        let wo = gen.group_diverse_matrix(hidden, hidden, group, weight_scale * residual_damping);
        let ffn_scale = 1.0 / (hidden as f32).sqrt();
        let down_scale = residual_damping / (config.ffn as f32).sqrt();
        let w_gate = gen.group_diverse_matrix(config.ffn, hidden, group, ffn_scale);
        let w_up = gen.group_diverse_matrix(config.ffn, hidden, group, ffn_scale);
        let w_down = gen.group_diverse_matrix(hidden, config.ffn, group, down_scale);
        let attn_norm = norm_gain(&mut gen, &outlier);
        let ffn_norm = norm_gain(&mut gen, &outlier);
        layers.push(LayerWeights {
            attn_norm,
            ffn_norm,
            wq,
            wk,
            wv,
            wo,
            w_gate,
            w_up,
            w_down,
        });
    }

    // Embedding with outlier channels: outlier columns carry large,
    // nearly constant values of a per-channel fixed sign.
    let outlier_sign: Vec<f32> = (0..hidden)
        .map(|_| {
            if gen.uniform(0.0, 1.0) < 0.5 {
                -1.0
            } else {
                1.0
            }
        })
        .collect();
    let embedding = Matrix::from_fn(config.vocab, hidden, |_, c| {
        if outlier[c] {
            outlier_sign[c] * OUTLIER_GAIN * 0.05 * (1.0 + OUTLIER_JITTER * gen.standard_normal())
        } else {
            gen.sample(mant_tensor::DistributionKind::Gaussian, 0.05)
        }
    });
    // Peaked LM head so logits have enough spread that the perplexity proxy
    // is sensitive to quantization error (see eval module docs). Plain
    // Gaussian: the LM head is never quantized, and heavy-tailed rows would
    // let a single token dominate the softmax (a degenerate proxy).
    let lm_head = gen.matrix(
        config.vocab,
        hidden,
        mant_tensor::DistributionKind::Gaussian,
        3.0 * weight_scale,
    );
    let final_norm = norm_gain(&mut gen, &outlier);

    let mut model = TransformerModel {
        config: config.clone(),
        weights: TransformerWeights {
            embedding,
            layers,
            final_norm,
            lm_head,
        },
        kv_map_cache: Default::default(),
    };
    normalize_dynamics(&mut model, seed ^ 0x5eed);
    model
}

/// Target ratio of block-contribution norm to residual norm. Kept small
/// enough that quantization error stays out of the logit-decorrelation
/// regime (where every method saturates at the same huge proxy PPL and
/// orderings become noise) — trained LLMs live in this regime too.
const BLOCK_RATIO: f32 = 0.15;
/// Target standard deviation of the output logits.
const LOGIT_STD: f32 = 2.0;

/// Rescales output projections and the LM head so the synthetic model has
/// transformer-like dynamics: a residual-dominated stream (each block adds
/// ~[`BLOCK_RATIO`] of the stream's norm) and logits whose softmax is
/// neither uniform nor one-hot. Without this, a random network amplifies
/// quantization error into decorrelated outputs, which no trained LLM does.
fn normalize_dynamics(model: &mut TransformerModel, probe_seed: u64) {
    use crate::layers::{ActMode, ForwardObserver, KvMode, Proj};

    #[derive(Default)]
    struct Probe {
        /// Per (layer, is_ffn): sums of block/residual ratios and counts.
        ratios: Vec<(f64, usize)>,
        logit_sq: f64,
        logit_count: usize,
    }
    impl ForwardObserver for Probe {
        fn on_block_contribution(
            &mut self,
            layer: usize,
            proj: Proj,
            residual_norm: f32,
            block_norm: f32,
        ) {
            let idx = layer * 2 + usize::from(proj == Proj::Down);
            if idx >= self.ratios.len() {
                self.ratios.resize(idx + 1, (0.0, 0));
            }
            if residual_norm > 0.0 {
                self.ratios[idx].0 += f64::from(block_norm / residual_norm);
                self.ratios[idx].1 += 1;
            }
        }
    }

    let probe_tokens: Vec<usize> = {
        let mut gen = TensorGenerator::new(probe_seed);
        (0..6).map(|_| gen.token(model.config.vocab)).collect()
    };
    let run_probe = |model: &TransformerModel| -> Probe {
        let mut p = Probe::default();
        let mut runner = model.runner(ActMode::None, KvMode::Fp16);
        for &t in &probe_tokens {
            let logits = runner.step_observed(t, &mut p);
            let mean: f64 = logits.iter().map(|&v| f64::from(v)).sum::<f64>() / logits.len() as f64;
            p.logit_sq += logits
                .iter()
                .map(|&v| (f64::from(v) - mean) * (f64::from(v) - mean))
                .sum::<f64>()
                / logits.len() as f64;
            p.logit_count += 1;
        }
        p
    };

    // Two passes: the first pass changes downstream statistics, the second
    // converges the ratios.
    for _ in 0..2 {
        let probe = run_probe(model);
        for (li, layer) in model.weights.layers.iter_mut().enumerate() {
            for (slot, is_ffn) in [(2 * li, false), (2 * li + 1, true)] {
                let Some(&(sum, n)) = probe.ratios.get(slot) else {
                    continue;
                };
                if n == 0 {
                    continue;
                }
                let ratio = (sum / n as f64) as f32;
                if ratio <= 0.0 {
                    continue;
                }
                let s = BLOCK_RATIO / ratio;
                if is_ffn {
                    layer.w_down = layer.w_down.map(|v| v * s);
                } else {
                    layer.wo = layer.wo.map(|v| v * s);
                }
            }
        }
    }
    let probe = run_probe(model);
    if probe.logit_count > 0 {
        let std = (probe.logit_sq / probe.logit_count as f64).sqrt() as f32;
        if std > 0.0 {
            let s = LOGIT_STD / std;
            model.weights.lm_head = model.weights.lm_head.map(|v| v * s);
        }
    }
}

/// RMSNorm gain near 1 with the outlier channels amplified (the LayerNorm
/// gain outliers documented by SmoothQuant, on the same channel mask).
fn norm_gain(gen: &mut TensorGenerator, outlier: &[bool]) -> Vec<f32> {
    outlier
        .iter()
        .map(|&o| {
            let base = 1.0 + 0.1 * gen.standard_normal();
            if o {
                base * NORM_OUTLIER_GAIN
            } else {
                base
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use mant_tensor::abs_max;

    #[test]
    fn deterministic_given_seed() {
        let a = synthesize(&ModelConfig::sim_llama(), 9);
        let b = synthesize(&ModelConfig::sim_llama(), 9);
        assert_eq!(
            a.weights.layers[0].wq.as_slice(),
            b.weights.layers[0].wq.as_slice()
        );
        let c = synthesize(&ModelConfig::sim_llama(), 10);
        assert_ne!(
            a.weights.layers[0].wq.as_slice(),
            c.weights.layers[0].wq.as_slice()
        );
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::sim_llama();
        let m = synthesize(&cfg, 1);
        assert_eq!(m.weights.layers.len(), cfg.layers);
        let l = &m.weights.layers[0];
        assert_eq!(l.wq.shape(), (cfg.hidden, cfg.hidden));
        assert_eq!(l.w_gate.shape(), (cfg.ffn, cfg.hidden));
        assert_eq!(l.w_down.shape(), (cfg.hidden, cfg.ffn));
        assert_eq!(m.weights.embedding.shape(), (cfg.vocab, cfg.hidden));
        assert_eq!(m.weights.lm_head.shape(), (cfg.vocab, cfg.hidden));
    }

    #[test]
    fn norm_gains_have_outliers() {
        let m = synthesize(&ModelConfig::sim_llama(), 2);
        let gains = &m.weights.layers[0].attn_norm;
        let max = abs_max(gains);
        let median = {
            let mut s: Vec<f32> = gains.iter().map(|g| g.abs()).collect();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(max > 5.0 * median, "max {max} vs median {median}");
    }
}

//! Seeded synthesis of transformer weights with LLM-like distributions.
//!
//! Two distributional facts are planted deliberately (both documented in
//! the substitution table of `DESIGN.md`):
//!
//! 1. every linear weight exhibits **group-level diversity** (Fig. 3) via
//!    [`TensorGenerator::group_diverse_matrix`];
//! 2. the activation stream carries **outlier channels** — a small set of
//!    channels with 10–40× magnitudes, implemented as outliers in the
//!    embedding columns and norm gains (the mechanism behind LayerNorm
//!    outliers reported by LLM.int8/SmoothQuant). These are what break
//!    tensor-wise 4-bit activation quantization for ANT/OliVe in Tbl. II.

use mant_tensor::{Matrix, TensorGenerator};

use crate::config::ModelConfig;
use crate::layers::{LayerWeights, TransformerModel, TransformerWeights};

/// Fraction of hidden channels that are outliers.
const OUTLIER_CHANNEL_FRAC: f64 = 0.004;
/// Magnitude multiplier of outlier channels.
const OUTLIER_GAIN: f32 = 15.0;
/// Relative token-to-token variation of outlier channels. Real LLM outlier
/// features are *systematic*: large, nearly token-independent values
/// (LLM.int8's emergent features). Keeping them near-constant makes them
/// carry little task information — so what breaks tensor-wise low-bit
/// quantization is the crushed bulk, exactly as in trained models.
const OUTLIER_JITTER: f32 = 0.05;
/// Norm-gain amplification on the same outlier channels.
const NORM_OUTLIER_GAIN: f32 = 8.0;

/// Synthesizes a model with LLM-like tensor statistics from a seed.
pub fn synthesize(config: &ModelConfig, seed: u64) -> TransformerModel {
    let mut model = synthesize_raw(config, seed);
    normalize_dynamics(&mut model, seed ^ 0x5eed, &vec![BLOCK_RATIO; config.layers]);
    model
}

/// Shape of the cheap draft model carved out of a target synthesis by
/// [`synthesize_speculative_pair`].
#[derive(Clone, Copy, Debug)]
pub struct DraftConfig {
    /// Leading transformer layers the draft keeps (`1..=config.layers`).
    pub layers: usize,
    /// Block-contribution ratio assigned to the target's *tail* layers —
    /// the layers the draft does not see. `0.0` makes the tail exactly
    /// inert (its output projections are zeroed), so on the FP32
    /// reference path draft and target logits coincide bit-for-bit;
    /// raising it makes the tail matter and lowers greedy agreement. The
    /// leading layers keep the standard ratio, so the knob tunes
    /// *agreement* without degrading the draft itself.
    ///
    /// Note the `0.0` endpoint is FP32-only: the MANT W4 grid has no zero
    /// code (and an all-zero group still gets a unit scale), so *packed*
    /// tail layers cannot be exactly inert — a zeroed projection packs to
    /// small nonzero weights. Packed/speculative workloads should use a
    /// small positive ratio (e.g. `0.02`–`0.05`) and expect high-but-
    /// imperfect agreement.
    pub tail_block_ratio: f32,
}

/// Synthesizes a deterministic (target, draft) pair for speculative
/// decoding: one target synthesis whose tail layers carry
/// [`DraftConfig::tail_block_ratio`] of the stream, and a draft that is
/// its exact truncation — shared embedding, the first
/// [`DraftConfig::layers`] transformer layers, final norm, and LM head,
/// in the same vocabulary. Draft agreement with the target is therefore
/// tunable (and reproducible from the seed) through the tail ratio alone.
///
/// # Panics
///
/// Panics if `draft.layers` is zero or not strictly smaller than
/// `config.layers`, or if the tail ratio is negative or non-finite.
pub fn synthesize_speculative_pair(
    config: &ModelConfig,
    seed: u64,
    draft: &DraftConfig,
) -> (TransformerModel, TransformerModel) {
    assert!(
        draft.layers >= 1 && draft.layers < config.layers,
        "draft must keep between 1 and layers-1 leading layers, got {} of {}",
        draft.layers,
        config.layers
    );
    assert!(
        draft.tail_block_ratio >= 0.0 && draft.tail_block_ratio.is_finite(),
        "tail block ratio must be finite and non-negative"
    );
    let mut target = synthesize_raw(config, seed);
    let mut ratios = vec![BLOCK_RATIO; config.layers];
    for r in ratios.iter_mut().skip(draft.layers) {
        *r = draft.tail_block_ratio;
    }
    normalize_dynamics_sequential(&mut target, seed ^ 0x5eed, &ratios);

    let mut draft_config = config.clone();
    draft_config.layers = draft.layers;
    let draft_model = TransformerModel {
        config: draft_config,
        weights: TransformerWeights {
            embedding: target.weights.embedding.clone(),
            layers: target.weights.layers[..draft.layers].to_vec(),
            final_norm: target.weights.final_norm.clone(),
            lm_head: target.weights.lm_head.clone(),
        },
        kv_map_cache: Default::default(),
    };
    (target, draft_model)
}

/// Raw weight synthesis — everything except the dynamics normalization
/// pass, which the public entry points run with their own per-layer
/// block-ratio profile.
fn synthesize_raw(config: &ModelConfig, seed: u64) -> TransformerModel {
    let mut gen = TensorGenerator::new(seed);
    let hidden = config.hidden;
    let group = 64.min(hidden);
    // Outlier channel mask shared across the residual stream. The *count*
    // is deterministic (real LLMs above ~1B parameters always have a
    // stable set of emergent outlier channels); positions are seeded.
    let outlier_count = ((hidden as f64 * OUTLIER_CHANNEL_FRAC).round() as usize).max(2);
    let mut outlier = vec![false; hidden];
    let mut placed = 0;
    while placed < outlier_count {
        let c = gen.token(hidden);
        if !outlier[c] {
            outlier[c] = true;
            placed += 1;
        }
    }

    let weight_scale = 1.0 / (hidden as f32).sqrt();
    // Real transformers are residual-dominated: each block contributes a
    // modest increment on top of the stream. Scaling the output projections
    // down reproduces that, and keeps the model's sensitivity to weight
    // perturbations in the regime real PTQ results live in (without it, a
    // random network amplifies 4-bit error into decorrelated logits).
    let residual_damping = 0.4;
    let mut layers = Vec::with_capacity(config.layers);
    for _ in 0..config.layers {
        let wq = gen.group_diverse_matrix(hidden, hidden, group, weight_scale);
        let wk = gen.group_diverse_matrix(config.kv_dim(), hidden, group, weight_scale);
        let wv = gen.group_diverse_matrix(config.kv_dim(), hidden, group, weight_scale);
        let wo = gen.group_diverse_matrix(hidden, hidden, group, weight_scale * residual_damping);
        let ffn_scale = 1.0 / (hidden as f32).sqrt();
        let down_scale = residual_damping / (config.ffn as f32).sqrt();
        let w_gate = gen.group_diverse_matrix(config.ffn, hidden, group, ffn_scale);
        let w_up = gen.group_diverse_matrix(config.ffn, hidden, group, ffn_scale);
        let w_down = gen.group_diverse_matrix(hidden, config.ffn, group, down_scale);
        let attn_norm = norm_gain(&mut gen, &outlier);
        let ffn_norm = norm_gain(&mut gen, &outlier);
        layers.push(LayerWeights {
            attn_norm,
            ffn_norm,
            wq,
            wk,
            wv,
            wo,
            w_gate,
            w_up,
            w_down,
        });
    }

    // Embedding with outlier channels: outlier columns carry large,
    // nearly constant values of a per-channel fixed sign.
    let outlier_sign: Vec<f32> = (0..hidden)
        .map(|_| {
            if gen.uniform(0.0, 1.0) < 0.5 {
                -1.0
            } else {
                1.0
            }
        })
        .collect();
    let embedding = Matrix::from_fn(config.vocab, hidden, |_, c| {
        if outlier[c] {
            outlier_sign[c] * OUTLIER_GAIN * 0.05 * (1.0 + OUTLIER_JITTER * gen.standard_normal())
        } else {
            gen.sample(mant_tensor::DistributionKind::Gaussian, 0.05)
        }
    });
    // Peaked LM head so logits have enough spread that the perplexity proxy
    // is sensitive to quantization error (see eval module docs). Plain
    // Gaussian: the LM head is never quantized, and heavy-tailed rows would
    // let a single token dominate the softmax (a degenerate proxy).
    let lm_head = gen.matrix(
        config.vocab,
        hidden,
        mant_tensor::DistributionKind::Gaussian,
        3.0 * weight_scale,
    );
    let final_norm = norm_gain(&mut gen, &outlier);

    TransformerModel {
        config: config.clone(),
        weights: TransformerWeights {
            embedding,
            layers,
            final_norm,
            lm_head,
        },
        kv_map_cache: Default::default(),
    }
}

/// Target ratio of block-contribution norm to residual norm. Kept small
/// enough that quantization error stays out of the logit-decorrelation
/// regime (where every method saturates at the same huge proxy PPL and
/// orderings become noise) — trained LLMs live in this regime too.
const BLOCK_RATIO: f32 = 0.15;
/// Target standard deviation of the output logits.
const LOGIT_STD: f32 = 2.0;

/// Rescales output projections and the LM head so the synthetic model has
/// transformer-like dynamics: a residual-dominated stream (layer `li`'s
/// blocks each add ~`block_ratios[li]` of the stream's norm) and logits
/// whose softmax is neither uniform nor one-hot. Without this, a random
/// network amplifies quantization error into decorrelated outputs, which
/// no trained LLM does. A ratio of exactly `0.0` zeroes the layer's output
/// projections outright — a measured-ratio rescale can only approach zero,
/// and [`synthesize_speculative_pair`] needs the tail *exactly* inert for
/// its FP32 bit-identity endpoint.
fn normalize_dynamics(model: &mut TransformerModel, probe_seed: u64, block_ratios: &[f32]) {
    let probe_tokens = dynamics_probe_tokens(model, probe_seed);
    // Two passes: the first pass changes downstream statistics, the second
    // converges the ratios. (Exact only for uniform profiles — see
    // `normalize_dynamics_sequential`.)
    for _ in 0..2 {
        let probe = run_probe(model, &probe_tokens);
        for (li, layer) in model.weights.layers.iter_mut().enumerate() {
            let target = block_ratios[li];
            if target <= 0.0 {
                layer.wo = layer.wo.map(|_| 0.0);
                layer.w_down = layer.w_down.map(|_| 0.0);
                continue;
            }
            for (slot, is_ffn) in [(2 * li, false), (2 * li + 1, true)] {
                let Some(s) = probe.rescale_for(slot, target) else {
                    continue;
                };
                if is_ffn {
                    layer.w_down = layer.w_down.map(|v| v * s);
                } else {
                    layer.wo = layer.wo.map(|v| v * s);
                }
            }
        }
    }
    scale_lm_head(model, &probe_tokens);
}

/// Per-slot exact variant of [`normalize_dynamics`] for **non-uniform**
/// block-ratio profiles ([`synthesize_speculative_pair`]'s tail profile).
///
/// The two-pass scheme measures every block under one probe and rescales
/// them simultaneously; because RMSNorm makes each block's output
/// magnitude-invariant to its input, rescaling any upstream block shifts
/// every downstream residual norm — and therefore every downstream
/// measured ratio — by the same large factor, so simultaneous updates
/// only settle when all targets are equal. Here each slot is probed and
/// rescaled with every upstream slot already final: a block's
/// contribution is linear in its own output projection and its incoming
/// residual does not depend on it, so a single update per slot (in
/// stream order) lands each measured ratio exactly on target.
/// (`synthesize` keeps the legacy two-pass scheme so existing
/// synthesized models stay bit-identical.)
fn normalize_dynamics_sequential(
    model: &mut TransformerModel,
    probe_seed: u64,
    block_ratios: &[f32],
) {
    let probe_tokens = dynamics_probe_tokens(model, probe_seed);
    debug_assert_eq!(block_ratios.len(), model.weights.layers.len());
    for (li, &target) in block_ratios.iter().enumerate() {
        if target <= 0.0 {
            let layer = &mut model.weights.layers[li];
            layer.wo = layer.wo.map(|_| 0.0);
            layer.w_down = layer.w_down.map(|_| 0.0);
            continue;
        }
        for is_ffn in [false, true] {
            let probe = run_probe(model, &probe_tokens);
            let Some(s) = probe.rescale_for(2 * li + usize::from(is_ffn), target) else {
                continue;
            };
            let layer = &mut model.weights.layers[li];
            if is_ffn {
                layer.w_down = layer.w_down.map(|v| v * s);
            } else {
                layer.wo = layer.wo.map(|v| v * s);
            }
        }
    }
    scale_lm_head(model, &probe_tokens);
}

/// Probe statistics gathered over a short FP32 forward run.
#[derive(Default)]
struct Probe {
    /// Per (layer, is_ffn): sums of block/residual ratios and counts.
    ratios: Vec<(f64, usize)>,
    logit_sq: f64,
    logit_count: usize,
}

impl Probe {
    /// The multiplicative rescale that moves `slot`'s measured block ratio
    /// onto `target`, or `None` if the slot was never (usefully) observed.
    fn rescale_for(&self, slot: usize, target: f32) -> Option<f32> {
        let &(sum, n) = self.ratios.get(slot)?;
        if n == 0 {
            return None;
        }
        let ratio = (sum / n as f64) as f32;
        if ratio <= 0.0 {
            return None;
        }
        Some(target / ratio)
    }
}

impl crate::layers::ForwardObserver for Probe {
    fn on_block_contribution(
        &mut self,
        layer: usize,
        proj: crate::layers::Proj,
        residual_norm: f32,
        block_norm: f32,
    ) {
        let idx = layer * 2 + usize::from(proj == crate::layers::Proj::Down);
        if idx >= self.ratios.len() {
            self.ratios.resize(idx + 1, (0.0, 0));
        }
        if residual_norm > 0.0 {
            self.ratios[idx].0 += f64::from(block_norm / residual_norm);
            self.ratios[idx].1 += 1;
        }
    }
}

fn dynamics_probe_tokens(model: &TransformerModel, probe_seed: u64) -> Vec<usize> {
    let mut gen = TensorGenerator::new(probe_seed);
    (0..6).map(|_| gen.token(model.config.vocab)).collect()
}

fn run_probe(model: &TransformerModel, probe_tokens: &[usize]) -> Probe {
    use crate::layers::{ActMode, KvMode};
    let mut p = Probe::default();
    let mut runner = model.runner(ActMode::None, KvMode::Fp16);
    for &t in probe_tokens {
        let logits = runner.step_observed(t, &mut p);
        let mean: f64 = logits.iter().map(|&v| f64::from(v)).sum::<f64>() / logits.len() as f64;
        p.logit_sq += logits
            .iter()
            .map(|&v| (f64::from(v) - mean) * (f64::from(v) - mean))
            .sum::<f64>()
            / logits.len() as f64;
        p.logit_count += 1;
    }
    p
}

fn scale_lm_head(model: &mut TransformerModel, probe_tokens: &[usize]) {
    let probe = run_probe(model, probe_tokens);
    if probe.logit_count > 0 {
        let std = (probe.logit_sq / probe.logit_count as f64).sqrt() as f32;
        if std > 0.0 {
            let s = LOGIT_STD / std;
            model.weights.lm_head = model.weights.lm_head.map(|v| v * s);
        }
    }
}

/// RMSNorm gain near 1 with the outlier channels amplified (the LayerNorm
/// gain outliers documented by SmoothQuant, on the same channel mask).
fn norm_gain(gen: &mut TensorGenerator, outlier: &[bool]) -> Vec<f32> {
    outlier
        .iter()
        .map(|&o| {
            let base = 1.0 + 0.1 * gen.standard_normal();
            if o {
                base * NORM_OUTLIER_GAIN
            } else {
                base
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use mant_tensor::abs_max;

    #[test]
    fn deterministic_given_seed() {
        let a = synthesize(&ModelConfig::sim_llama(), 9);
        let b = synthesize(&ModelConfig::sim_llama(), 9);
        assert_eq!(
            a.weights.layers[0].wq.as_slice(),
            b.weights.layers[0].wq.as_slice()
        );
        let c = synthesize(&ModelConfig::sim_llama(), 10);
        assert_ne!(
            a.weights.layers[0].wq.as_slice(),
            c.weights.layers[0].wq.as_slice()
        );
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::sim_llama();
        let m = synthesize(&cfg, 1);
        assert_eq!(m.weights.layers.len(), cfg.layers);
        let l = &m.weights.layers[0];
        assert_eq!(l.wq.shape(), (cfg.hidden, cfg.hidden));
        assert_eq!(l.w_gate.shape(), (cfg.ffn, cfg.hidden));
        assert_eq!(l.w_down.shape(), (cfg.hidden, cfg.ffn));
        assert_eq!(m.weights.embedding.shape(), (cfg.vocab, cfg.hidden));
        assert_eq!(m.weights.lm_head.shape(), (cfg.vocab, cfg.hidden));
    }

    #[test]
    fn speculative_pair_tail_ratio_tunes_agreement() {
        use crate::layers::{run_sequence, ActMode, KvMode};
        let mut cfg = ModelConfig::sim_llama();
        cfg.layers = 3;
        let tokens: Vec<usize> = (0..10).map(|i| (i * 37 + 3) % cfg.vocab).collect();

        // Inert tail: the draft is an exact functional copy of the target.
        let inert = DraftConfig {
            layers: 1,
            tail_block_ratio: 0.0,
        };
        let (target, draft) = synthesize_speculative_pair(&cfg, 11, &inert);
        assert_eq!(target.config.layers, 3);
        assert_eq!(draft.config.layers, 1);
        let t_logits = run_sequence(&target, ActMode::None, KvMode::Fp16, &tokens);
        let d_logits = run_sequence(&draft, ActMode::None, KvMode::Fp16, &tokens);
        assert_eq!(
            t_logits.as_slice(),
            d_logits.as_slice(),
            "a zero tail ratio must make target and draft logits coincide"
        );

        // A live tail makes the target's extra layers matter.
        let live = DraftConfig {
            layers: 1,
            tail_block_ratio: 0.3,
        };
        let (target, draft) = synthesize_speculative_pair(&cfg, 11, &live);
        let t_logits = run_sequence(&target, ActMode::None, KvMode::Fp16, &tokens);
        let d_logits = run_sequence(&draft, ActMode::None, KvMode::Fp16, &tokens);
        assert_ne!(
            t_logits.as_slice(),
            d_logits.as_slice(),
            "a live tail must separate target and draft"
        );

        // Determinism of the pair construction.
        let (t2, d2) = synthesize_speculative_pair(&cfg, 11, &live);
        assert_eq!(
            target.weights.layers[2].wo.as_slice(),
            t2.weights.layers[2].wo.as_slice()
        );
        assert_eq!(
            draft.weights.lm_head.as_slice(),
            d2.weights.lm_head.as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "draft must keep")]
    fn speculative_pair_rejects_full_depth_draft() {
        let cfg = ModelConfig::sim_llama();
        let _ = synthesize_speculative_pair(
            &cfg,
            1,
            &DraftConfig {
                layers: cfg.layers,
                tail_block_ratio: 0.0,
            },
        );
    }

    #[test]
    fn norm_gains_have_outliers() {
        let m = synthesize(&ModelConfig::sim_llama(), 2);
        let gains = &m.weights.layers[0].attn_norm;
        let max = abs_max(gains);
        let median = {
            let mut s: Vec<f32> = gains.iter().map(|g| g.abs()).collect();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(max > 5.0 * median, "max {max} vs median {median}");
    }
}

//! The transformer model, its step-wise runner, and quantized execution.

use mant_numerics::fp16::quantize_fp16;
use mant_numerics::int::quantize_symmetric_int;
use mant_quant::kv as kvq;
use mant_quant::{
    quantize_vector_int8, CandidateSet, FakeQuantizer, KCacheQuantizer, VCacheQuantizer,
    VarianceMap,
};
use mant_tensor::ops::{gelu, rmsnorm, silu, softmax_inplace};
use mant_tensor::par::par_map_slice;
use mant_tensor::{abs_max, matvec, Matrix};

use crate::backend::{ExecutionBackend, PackedWeights};
use crate::config::{FfnKind, ModelConfig};
use crate::synth;

/// Weights of one transformer layer. All linear weights are stored
/// `out × in` (rows are output channels, the accumulation dimension is
/// contiguous — the layout every quantizer in this workspace expects).
#[derive(Clone, Debug)]
pub struct LayerWeights {
    /// Attention-block RMSNorm gain.
    pub attn_norm: Vec<f32>,
    /// FFN-block RMSNorm gain.
    pub ffn_norm: Vec<f32>,
    /// Query projection (`hidden × hidden`).
    pub wq: Matrix,
    /// Key projection.
    pub wk: Matrix,
    /// Value projection.
    pub wv: Matrix,
    /// Output projection.
    pub wo: Matrix,
    /// FFN gate projection (`ffn × hidden`; unused for [`FfnKind::PlainGelu`]).
    pub w_gate: Matrix,
    /// FFN up projection (`ffn × hidden`).
    pub w_up: Matrix,
    /// FFN down projection (`hidden × ffn`).
    pub w_down: Matrix,
}

/// All model weights.
#[derive(Clone, Debug)]
pub struct TransformerWeights {
    /// Token embedding (`vocab × hidden`).
    pub embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head (`vocab × hidden`).
    pub lm_head: Matrix,
}

/// Lazily built calibrated KV variance maps `(K map, V map)`, keyed by
/// group size.
type KvMapCache = std::sync::Mutex<std::collections::HashMap<usize, (VarianceMap, VarianceMap)>>;

/// A complete model: configuration plus weights.
#[derive(Debug)]
pub struct TransformerModel {
    /// Shape description.
    pub config: ModelConfig,
    /// Weights.
    pub weights: TransformerWeights,
    /// Per-instance cache of self-calibrated KV variance maps (the maps
    /// are a pure function of the weights and the group size, so each
    /// model computes them at most once per group size).
    pub(crate) kv_map_cache: KvMapCache,
}

impl Clone for TransformerModel {
    fn clone(&self) -> Self {
        // The cache is deliberately NOT cloned: callers clone precisely to
        // mutate weights (quantize_weights), which invalidates the maps.
        TransformerModel {
            config: self.config.clone(),
            weights: self.weights.clone(),
            kv_map_cache: KvMapCache::default(),
        }
    }
}

/// Identifies a linear projection for observers and calibration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proj {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Attention output projection.
    O,
    /// FFN gate.
    Gate,
    /// FFN up.
    Up,
    /// FFN down.
    Down,
}

/// Hook into the forward pass (used by calibration).
pub trait ForwardObserver {
    /// Called with the input vector of every linear projection.
    fn on_linear_input(&mut self, _layer: usize, _proj: Proj, _x: &[f32]) {}
    /// Called with the new K and V vectors of every layer, every step.
    fn on_kv_vectors(&mut self, _layer: usize, _k: &[f32], _v: &[f32]) {}
    /// Called with the query vector of every layer, every step (used to
    /// gather `E[q_j²]` for score-weighted K-cache calibration, Eq. (6)).
    fn on_query_vector(&mut self, _layer: usize, _q: &[f32]) {}
    /// Called after each residual block with the L2 norms of the incoming
    /// residual stream and of the block's contribution (`proj` is
    /// [`Proj::O`] for attention, [`Proj::Down`] for the FFN).
    fn on_block_contribution(
        &mut self,
        _layer: usize,
        _proj: Proj,
        _residual_norm: f32,
        _block_norm: f32,
    ) {
    }
}

/// A no-op observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ForwardObserver for NullObserver {}

/// Runtime activation quantization applied before every linear projection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActMode {
    /// FP32/FP16 activations (the W-only configurations).
    None,
    /// Group-wise symmetric INT along the vector (MANT's A8 mode).
    IntGroup {
        /// Bit width (4 or 8).
        bits: u8,
        /// Group size.
        group: usize,
    },
    /// One scale for the whole activation vector (ANT/OliVe's tensor-wise
    /// activations — this is what outlier channels break).
    IntTensor {
        /// Bit width (4 or 8).
        bits: u8,
    },
    /// OliVe's runtime activation handling: tensor-wise INT with
    /// outlier-victim pairs (outliers survive in `abfloat`, their
    /// neighbors are sacrificed).
    OliveTensor {
        /// Bit width (4 or 8).
        bits: u8,
    },
    /// Tender's runtime activation handling: channels are reordered by
    /// magnitude into chunks so outliers share scales with each other
    /// (modeled by sorting the vector by |x| before grouping).
    SortedGroup {
        /// Bit width (4 or 8).
        bits: u8,
        /// Group (chunk) size after reordering.
        group: usize,
    },
    /// MXFP4 activations: E2M1 elements under an E8M0 (power-of-two)
    /// block scale.
    MxfpGroup {
        /// Block size (32 in the OCP spec).
        group: usize,
    },
}

/// KV-cache handling during inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvMode {
    /// Full-precision cache (baselines' unquantized attention).
    Fp16,
    /// Real-time group-wise INT4 (K spatial, V two-phase temporal).
    Int4 {
        /// Group size.
        group: usize,
    },
    /// Real-time group-wise 4-bit MANT via variance selection.
    Mant4 {
        /// Group size.
        group: usize,
    },
}

// A handful of instances exist (one per layer), so the size spread
// between the matrix and quantizer variants is irrelevant; boxing would
// only add a pointer chase to the decode hot loop.
#[allow(clippy::large_enum_variant)]
enum LayerKvCache {
    Fp {
        k: Matrix,
        v: Matrix,
    },
    Quant {
        k: KCacheQuantizer,
        v: VCacheQuantizer,
    },
}

/// Step-wise (token-at-a-time) executor with a per-layer KV cache.
///
/// # Example
///
/// ```
/// use mant_model::{ActMode, KvMode, ModelConfig, TransformerModel};
///
/// let model = TransformerModel::synthesize(&ModelConfig::sim_llama(), 7);
/// let mut runner = model.runner(ActMode::None, KvMode::Fp16);
/// let logits = runner.step(42);
/// assert_eq!(logits.len(), model.config.vocab);
/// ```
pub struct ModelRunner<'m> {
    model: &'m TransformerModel,
    act: ActMode,
    caches: Vec<LayerKvCache>,
    seq_len: usize,
    /// Packed linear weights when driving [`ExecutionBackend::Quantized`];
    /// `None` selects the f32 reference backend over the model's dense
    /// weights.
    packed: Option<&'m PackedWeights>,
}

impl TransformerModel {
    /// Synthesizes a model with LLM-like statistics (see [`crate::synth`]).
    pub fn synthesize(config: &ModelConfig, seed: u64) -> Self {
        synth::synthesize(config, seed)
    }

    /// Returns a copy whose linear-layer weights are fake-quantized with
    /// `q` (embedding, norms, and LM head stay full precision, matching the
    /// paper's "linear layer" quantization scope).
    ///
    /// The projections are quantized in parallel (scoped threads, one work
    /// item per projection), on top of whatever row-level parallelism the
    /// quantizer itself runs; results are written back in a fixed order,
    /// so output is deterministic for any deterministic quantizer.
    pub fn quantize_weights(&self, q: &(dyn FakeQuantizer + Sync)) -> TransformerModel {
        let gated = self.config.ffn_kind == FfnKind::GatedSilu;
        let jobs: Vec<&Matrix> = self
            .weights
            .layers
            .iter()
            .flat_map(|l| {
                let mut v = vec![&l.wq, &l.wk, &l.wv, &l.wo];
                if gated {
                    v.push(&l.w_gate);
                }
                v.push(&l.w_up);
                v.push(&l.w_down);
                v
            })
            .collect();
        let mut quantized = par_map_slice(&jobs, |w| q.fake_quantize(w)).into_iter();
        let mut out = self.clone();
        let mut next = || quantized.next().expect("job list covers every projection");
        for l in &mut out.weights.layers {
            l.wq = next();
            l.wk = next();
            l.wv = next();
            l.wo = next();
            if gated {
                l.w_gate = next();
            }
            l.w_up = next();
            l.w_down = next();
        }
        out
    }

    /// The self-calibrated KV variance maps `(K map, V map)` for `group`,
    /// built on first use and cached per model instance.
    ///
    /// For the adaptive MANT KV mode the variance→`a` tables are
    /// calibrated on this model's own K/V tensors (paper Sec. V-C:
    /// "sample the K and V tensors through a calibration dataset") with
    /// one short FP16 stream at the *same* group size the runtime
    /// quantizers will use — separate maps for the spatially-grouped K
    /// cache and the temporally-grouped V cache, whose group statistics
    /// differ fundamentally.
    pub(crate) fn kv_maps(&self, group: usize) -> (VarianceMap, VarianceMap) {
        let mut cache = self.kv_map_cache.lock().expect("KV map cache poisoned");
        if let Some(maps) = cache.get(&group) {
            return maps.clone();
        }
        let set = CandidateSet::paper();
        // One V window (`group` tokens) plus a few extra for K coverage.
        let calib = crate::calib::calibrate_with_group(self, group + 8, 0xca11b, group);
        let maps = (
            calib
                .k_variance_map_weighted(&set)
                .expect("paper set is non-empty"),
            calib.v_variance_map(&set).expect("paper set is non-empty"),
        );
        cache.insert(group, maps.clone());
        maps
    }

    /// Creates a fresh runner with the given runtime quantization modes.
    pub fn runner(&self, act: ActMode, kv: KvMode) -> ModelRunner<'_> {
        let kv_dim = self.config.kv_dim();
        let mant_maps = match kv {
            KvMode::Mant4 { group } => Some(self.kv_maps(group)),
            _ => None,
        };
        let int_map = match kv {
            KvMode::Int4 { .. } => Some(int4_kv_map()),
            _ => None,
        };
        let caches = (0..self.config.layers)
            .map(|_| match kv {
                KvMode::Fp16 => LayerKvCache::Fp {
                    k: Matrix::zeros(0, kv_dim),
                    v: Matrix::zeros(0, kv_dim),
                },
                KvMode::Int4 { group } => {
                    let vmap = int_map.as_ref().expect("map built for Int4");
                    LayerKvCache::Quant {
                        k: KCacheQuantizer::new(kv_dim, group, vmap.clone())
                            .expect("group divides the KV width"),
                        v: VCacheQuantizer::new(kv_dim, group, vmap.clone())
                            .expect("group is positive"),
                    }
                }
                KvMode::Mant4 { group } => {
                    let (kmap, vmap) = mant_maps.as_ref().expect("maps built for Mant4");
                    LayerKvCache::Quant {
                        k: KCacheQuantizer::new(kv_dim, group, kmap.clone())
                            .expect("group divides the KV width"),
                        v: VCacheQuantizer::new(kv_dim, group, vmap.clone())
                            .expect("group is positive"),
                    }
                }
            })
            .collect();
        ModelRunner {
            model: self,
            act,
            caches,
            seq_len: 0,
            packed: None,
        }
    }

    /// Creates a runner on the **quantized execution backend**: every
    /// linear projection dispatches to the fused integer GEMV over
    /// `packed`, and quantized KV caches are consumed group-wise (fused
    /// `Q·Kᵀ` dots, psum-based `P·V`) — the forward pass never
    /// dequantizes a weight matrix or a cache.
    ///
    /// The integer datapath inherently runs INT8 activations at the packed
    /// group size (the paper's A8), so `act` must be [`ActMode::None`] or
    /// the matching [`ActMode::IntGroup`]; both execute identically.
    ///
    /// # Panics
    ///
    /// Panics if `packed` does not match the model's shape, if `act` is an
    /// unsupported mode, or if a quantized `kv` mode's group size does not
    /// divide the head dimension (the alignment the fused attention needs).
    pub fn packed_runner<'m>(
        &'m self,
        packed: &'m PackedWeights,
        act: ActMode,
        kv: KvMode,
    ) -> ModelRunner<'m> {
        self.validate_packed_setup(packed, act, kv);
        let mut runner = self.runner(act, kv);
        runner.packed = Some(packed);
        runner
    }

    /// The shape/mode validation shared by [`TransformerModel::packed_runner`]
    /// and the batch runner; panics with the messages both document.
    pub(crate) fn validate_packed_setup(&self, packed: &PackedWeights, act: ActMode, kv: KvMode) {
        assert_eq!(
            packed.layers().len(),
            self.config.layers,
            "packed weights and model disagree on layer count"
        );
        for l in packed.layers() {
            assert_eq!(
                (l.wq.rows(), l.wq.cols()),
                (self.config.hidden, self.config.hidden),
                "packed Q projection shape mismatch"
            );
            // K/V rows depend on the GQA factor, so a packed set from a
            // model with different kv_heads must be rejected here rather
            // than deep inside the cache engines.
            assert_eq!(
                (l.wk.rows(), l.wv.rows()),
                (self.config.kv_dim(), self.config.kv_dim()),
                "packed K/V projection shape mismatch (GQA factor differs?)"
            );
            assert_eq!(
                (l.w_down.rows(), l.w_down.cols()),
                (self.config.hidden, self.config.ffn),
                "packed down projection shape mismatch"
            );
        }
        match act {
            ActMode::None => {}
            ActMode::IntGroup { bits: 8, group } if group == packed.group_size() => {}
            _ => panic!(
                "the quantized backend runs INT8 activations at the packed group size \
                 ({}); pass ActMode::None or the matching ActMode::IntGroup",
                packed.group_size()
            ),
        }
        if let KvMode::Int4 { group } | KvMode::Mant4 { group } = kv {
            assert!(
                self.config.head_dim().is_multiple_of(group),
                "fused attention needs the KV group size ({group}) to divide the head \
                 dimension ({})",
                self.config.head_dim()
            );
        }
    }
}

impl ModelRunner<'_> {
    /// Number of tokens processed so far.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The execution backend this runner drives.
    pub fn backend(&self) -> ExecutionBackend {
        if self.packed.is_some() {
            ExecutionBackend::Quantized
        } else {
            ExecutionBackend::Reference
        }
    }

    /// Processes one token, returning the next-token logits.
    pub fn step(&mut self, token: usize) -> Vec<f32> {
        self.step_observed(token, &mut NullObserver)
    }

    /// Processes one token with a forward observer attached.
    ///
    /// # Panics
    ///
    /// Panics if `token >= vocab`.
    pub fn step_observed(&mut self, token: usize, obs: &mut dyn ForwardObserver) -> Vec<f32> {
        let cfg = &self.model.config;
        assert!(token < cfg.vocab, "token {token} out of vocabulary");
        let w = &self.model.weights;
        let mut x: Vec<f32> = w.embedding.row(token).to_vec();

        for (li, layer) in w.layers.iter().enumerate() {
            // `self.packed` is a Copy reference with the runner's lifetime,
            // so the per-layer handle stays independent of later `self`
            // borrows.
            let packed_layer = self.packed.map(|p| (&p.layers()[li], p.group_size()));

            // --- Attention block ---
            let xn = rmsnorm(&x, &layer.attn_norm, 1e-5);
            obs.on_linear_input(li, Proj::Q, &xn);
            obs.on_linear_input(li, Proj::K, &xn);
            obs.on_linear_input(li, Proj::V, &xn);
            let (q, k, v) = match packed_layer {
                None => {
                    let xq = self.quantize_act(&xn);
                    (
                        matvec(&layer.wq, &xq),
                        matvec(&layer.wk, &xq),
                        matvec(&layer.wv, &xq),
                    )
                }
                Some((pl, g)) => {
                    let xq = quantize_vector_int8(&xn, g).expect("group size divides hidden");
                    (pl.wq.matvec(&xq), pl.wk.matvec(&xq), pl.wv.matvec(&xq))
                }
            };
            obs.on_query_vector(li, &q);
            obs.on_kv_vectors(li, &k, &v);

            let fused_attention = packed_layer.is_some();
            let attn = match &mut self.caches[li] {
                LayerKvCache::Fp { k: kc, v: vc } => {
                    kc.push_row(&k);
                    vc.push_row(&v);
                    attention(cfg, &q, kc, vc)
                }
                LayerKvCache::Quant { k: kc, v: vc } => {
                    kc.push(&k);
                    vc.push(&v);
                    if fused_attention {
                        // Quantized backend: consume packed cache groups in
                        // place — no per-step full-cache dequantization.
                        kvq::attention_incremental(
                            &q,
                            kc,
                            vc,
                            cfg.heads,
                            cfg.kv_heads,
                            cfg.head_dim(),
                        )
                    } else {
                        // Reference backend: materialize the dequantized
                        // cache (the path the decode bench measures against).
                        kvq::attention_dequantize(
                            &q,
                            kc,
                            vc,
                            cfg.heads,
                            cfg.kv_heads,
                            cfg.head_dim(),
                        )
                    }
                }
            };
            obs.on_linear_input(li, Proj::O, &attn);
            let o = match packed_layer {
                None => {
                    let attn_q = self.quantize_act(&attn);
                    matvec(&layer.wo, &attn_q)
                }
                Some((pl, _)) => pl.wo.matvec_f32(&attn),
            };
            obs.on_block_contribution(li, Proj::O, l2(&x), l2(&o));
            for (xi, oi) in x.iter_mut().zip(o.iter()) {
                *xi += oi;
            }

            // --- FFN block ---
            let xn = rmsnorm(&x, &layer.ffn_norm, 1e-5);
            let ff = match cfg.ffn_kind {
                FfnKind::GatedSilu => {
                    obs.on_linear_input(li, Proj::Gate, &xn);
                    obs.on_linear_input(li, Proj::Up, &xn);
                    let (gate, up) = match packed_layer {
                        None => {
                            let xnq = self.quantize_act(&xn);
                            (matvec(&layer.w_gate, &xnq), matvec(&layer.w_up, &xnq))
                        }
                        Some((pl, g)) => {
                            let xnq =
                                quantize_vector_int8(&xn, g).expect("group size divides hidden");
                            let gate_w = pl.w_gate.as_ref().expect("gated model packs a gate");
                            (gate_w.matvec(&xnq), pl.w_up.matvec(&xnq))
                        }
                    };
                    let h: Vec<f32> = gate
                        .iter()
                        .zip(up.iter())
                        .map(|(&g, &u)| silu(g) * u)
                        .collect();
                    obs.on_linear_input(li, Proj::Down, &h);
                    match packed_layer {
                        None => {
                            let hq = self.quantize_act(&h);
                            matvec(&layer.w_down, &hq)
                        }
                        Some((pl, _)) => pl.w_down.matvec_f32(&h),
                    }
                }
                FfnKind::PlainGelu => {
                    obs.on_linear_input(li, Proj::Up, &xn);
                    let up = match packed_layer {
                        None => {
                            let xnq = self.quantize_act(&xn);
                            matvec(&layer.w_up, &xnq)
                        }
                        Some((pl, g)) => {
                            let xnq =
                                quantize_vector_int8(&xn, g).expect("group size divides hidden");
                            pl.w_up.matvec(&xnq)
                        }
                    };
                    let h: Vec<f32> = up.iter().map(|&u| gelu(u)).collect();
                    obs.on_linear_input(li, Proj::Down, &h);
                    match packed_layer {
                        None => {
                            let hq = self.quantize_act(&h);
                            matvec(&layer.w_down, &hq)
                        }
                        Some((pl, _)) => pl.w_down.matvec_f32(&h),
                    }
                }
            };
            obs.on_block_contribution(li, Proj::Down, l2(&x), l2(&ff));
            for (xi, fi) in x.iter_mut().zip(ff.iter()) {
                *xi += fi;
            }
        }

        self.seq_len += 1;
        let xn = rmsnorm(&x, &w.final_norm, 1e-5);
        matvec(&w.lm_head, &xn)
    }

    /// Applies the runtime activation quantization mode.
    fn quantize_act(&self, x: &[f32]) -> Vec<f32> {
        match self.act {
            ActMode::None => x.to_vec(),
            ActMode::IntTensor { bits } => fake_int_quantize(x, bits, x.len()),
            ActMode::IntGroup { bits, group } => fake_int_quantize(x, bits, group),
            ActMode::OliveTensor { bits } => {
                use mant_baselines::OliveQuantizer;
                use mant_quant::{FakeQuantizer, Granularity};
                let q = if bits == 8 {
                    OliveQuantizer::w8(Granularity::Channel)
                } else {
                    OliveQuantizer::w4(Granularity::Channel)
                };
                q.fake_quantize(&Matrix::from_vec(1, x.len(), x.to_vec()))
                    .into_vec()
            }
            ActMode::MxfpGroup { group } => {
                use mant_numerics::{e8m0_quantize_scale, fp4_e2m1_grid};
                let grid = fp4_e2m1_grid();
                let elem_max = grid.max_abs();
                let mut out = Vec::with_capacity(x.len());
                for chunk in x.chunks(group.max(1)) {
                    let amax = abs_max(chunk);
                    if amax == 0.0 {
                        out.extend(chunk.iter().copied());
                        continue;
                    }
                    let scale = e8m0_quantize_scale(amax / elem_max);
                    for &v in chunk {
                        out.push(grid.quantize(v / scale) * scale);
                    }
                }
                out
            }
            ActMode::SortedGroup { bits, group } => {
                // Sort indices by magnitude, quantize in that order, undo.
                let mut order: Vec<usize> = (0..x.len()).collect();
                order.sort_by(|&a, &b| x[b].abs().partial_cmp(&x[a].abs()).expect("finite acts"));
                let sorted: Vec<f32> = order.iter().map(|&i| x[i]).collect();
                let quantized = fake_int_quantize(&sorted, bits, group);
                let mut out = vec![0.0f32; x.len()];
                for (pos, &i) in order.iter().enumerate() {
                    out[i] = quantized[pos];
                }
                out
            }
        }
    }
}

/// The analytic INT-only variance map of the [`KvMode::Int4`] cache mode
/// — one definition shared by the sequential runner and the batch runner,
/// so both engines quantize Int4 caches identically.
pub(crate) fn int4_kv_map() -> VarianceMap {
    let set = CandidateSet::custom(&[], true).expect("INT-only set is valid");
    VarianceMap::analytic(&set).expect("set is non-empty")
}

/// L2 norm of a vector.
fn l2(x: &[f32]) -> f32 {
    x.iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt() as f32
}

/// Multi-head attention of one query vector against the cached K/V.
/// With `kv_heads < heads`, query heads share K/V heads (GQA; one shared
/// head is MQA).
fn attention(cfg: &ModelConfig, q: &[f32], k_all: &Matrix, v_all: &Matrix) -> Vec<f32> {
    let hd = cfg.head_dim();
    let seq = k_all.rows();
    let queries_per_kv = cfg.heads / cfg.kv_heads;
    let mut out = vec![0.0f32; cfg.hidden];
    let scale = 1.0 / (hd as f32).sqrt();
    for h in 0..cfg.heads {
        let lo = h * hd;
        let hi = lo + hd;
        let kv_lo = (h / queries_per_kv) * hd;
        let kv_hi = kv_lo + hd;
        let qh = &q[lo..hi];
        let mut scores: Vec<f32> = (0..seq)
            .map(|t| {
                let kh = &k_all.row(t)[kv_lo..kv_hi];
                qh.iter().zip(kh.iter()).map(|(&a, &b)| a * b).sum::<f32>() * scale
            })
            .collect();
        softmax_inplace(&mut scores);
        let oh = &mut out[lo..hi];
        for (t, &s) in scores.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let vh = &v_all.row(t)[kv_lo..kv_hi];
            for (o, &v) in oh.iter_mut().zip(vh.iter()) {
                *o += s * v;
            }
        }
    }
    out
}

/// Symmetric INT fake quantization of a vector in groups of `group`. The
/// scale is FP16-rounded like every stored scale in the quant crate
/// (Eq. (4)), so this is bit-compatible with the INT8 codes the quantized
/// execution backend feeds its integer kernels.
fn fake_int_quantize(x: &[f32], bits: u8, group: usize) -> Vec<f32> {
    let imax = ((1i32 << (bits - 1)) - 1) as f32;
    let mut out = Vec::with_capacity(x.len());
    for chunk in x.chunks(group.max(1)) {
        let amax = abs_max(chunk);
        if amax == 0.0 {
            out.extend(chunk.iter().copied());
            continue;
        }
        let scale = quantize_fp16(amax / imax).max(f32::MIN_POSITIVE);
        for &v in chunk {
            out.push(quantize_symmetric_int(v / scale, imax as i32) as f32 * scale);
        }
    }
    out
}

/// Convenience: run a full token sequence, returning logits per position.
pub fn run_sequence(
    model: &TransformerModel,
    act: ActMode,
    kv: KvMode,
    tokens: &[usize],
) -> Matrix {
    collect_logits(model.runner(act, kv), tokens)
}

/// [`run_sequence`] on the quantized execution backend: the forward pass
/// consumes `packed` groups end to end (see
/// [`TransformerModel::packed_runner`]).
pub fn run_sequence_packed(
    model: &TransformerModel,
    packed: &PackedWeights,
    act: ActMode,
    kv: KvMode,
    tokens: &[usize],
) -> Matrix {
    collect_logits(model.packed_runner(packed, act, kv), tokens)
}

fn collect_logits(mut runner: ModelRunner<'_>, tokens: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(0, runner.model.config.vocab);
    for &t in tokens {
        let logits = runner.step(t);
        out.push_row(&logits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_quant::MantWeightQuantizer;

    fn model() -> TransformerModel {
        TransformerModel::synthesize(&ModelConfig::sim_llama(), 3)
    }

    #[test]
    fn step_produces_finite_logits() {
        let m = model();
        let mut r = m.runner(ActMode::None, KvMode::Fp16);
        for t in [1usize, 5, 9, 200] {
            let logits = r.step(t);
            assert_eq!(logits.len(), m.config.vocab);
            assert!(logits.iter().all(|v| v.is_finite()));
        }
        assert_eq!(r.seq_len(), 4);
    }

    #[test]
    fn logits_depend_on_history() {
        let m = model();
        let mut a = m.runner(ActMode::None, KvMode::Fp16);
        let mut b = m.runner(ActMode::None, KvMode::Fp16);
        a.step(1);
        b.step(2);
        let la = a.step(3);
        let lb = b.step(3);
        assert_ne!(la, lb, "attention must consult the cache");
    }

    #[test]
    fn quantized_kv_close_to_fp() {
        let m = model();
        let tokens: Vec<usize> = (0..40).map(|i| (i * 37) % 512).collect();
        let fp = run_sequence(&m, ActMode::None, KvMode::Fp16, &tokens);
        let mant = run_sequence(&m, ActMode::None, KvMode::Mant4 { group: 64 }, &tokens);
        let rel = fp.distance(&mant)
            / fp.as_slice()
                .iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt();
        // 4-bit KV perturbs attention scores through the softmax; the
        // logit-level distortion stays bounded well below sign-flipping.
        assert!(rel < 0.6, "relative logit distortion {rel}");
    }

    #[test]
    fn mant_kv_beats_int_kv() {
        // A single trajectory's distance to the FP run is dominated by
        // accumulated feedback drift (each cached K/V vector was computed
        // from earlier quantized attention outputs), making a one-model
        // comparison a coin flip even when per-step cache fidelity differs
        // by 2–4×. Aggregate across models so the mechanism — adaptive
        // per-group types beating fixed INT4 — dominates the noise.
        let tokens: Vec<usize> = (0..48).map(|i| (i * 53) % 512).collect();
        let (mut d_mant, mut d_int) = (0.0f64, 0.0f64);
        for seed in [1u64, 3, 5] {
            let m = TransformerModel::synthesize(&ModelConfig::sim_llama(), seed);
            let fp = run_sequence(&m, ActMode::None, KvMode::Fp16, &tokens);
            let mant = run_sequence(&m, ActMode::None, KvMode::Mant4 { group: 64 }, &tokens);
            let int4 = run_sequence(&m, ActMode::None, KvMode::Int4 { group: 64 }, &tokens);
            d_mant += fp.distance(&mant);
            d_int += fp.distance(&int4);
        }
        assert!(
            d_mant < d_int * 1.1,
            "MANT KV {d_mant} should not lose to INT KV {d_int}"
        );
    }

    #[test]
    fn weight_quantization_perturbs_but_preserves() {
        let m = model();
        let q = m.quantize_weights(&MantWeightQuantizer::new(64));
        let tokens: Vec<usize> = (0..16).map(|i| (i * 31) % 512).collect();
        let fp = run_sequence(&m, ActMode::None, KvMode::Fp16, &tokens);
        let qd = run_sequence(&q, ActMode::None, KvMode::Fp16, &tokens);
        assert_ne!(fp.as_slice(), qd.as_slice());
        let rel = fp.distance(&qd)
            / fp.as_slice()
                .iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt();
        assert!(rel < 0.5, "W4 distortion too large: {rel}");
    }

    #[test]
    fn tensor_act_int4_much_worse_than_group_int8() {
        // The outlier-channel mechanism: per-vector INT4 activations are
        // badly hurt; group-wise INT8 is near-lossless (Tbl. II's story).
        let m = model();
        let tokens: Vec<usize> = (0..16).map(|i| (i * 29) % 512).collect();
        let fp = run_sequence(&m, ActMode::None, KvMode::Fp16, &tokens);
        let a4 = run_sequence(&m, ActMode::IntTensor { bits: 4 }, KvMode::Fp16, &tokens);
        let a8 = run_sequence(
            &m,
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Fp16,
            &tokens,
        );
        let d4 = fp.distance(&a4);
        let d8 = fp.distance(&a8);
        assert!(d4 > d8 * 5.0, "tensor-A4 {d4} vs group-A8 {d8}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn bad_token_panics() {
        let m = model();
        let mut r = m.runner(ActMode::None, KvMode::Fp16);
        let _ = r.step(100_000);
    }

    #[test]
    fn gqa_runs_and_shrinks_kv() {
        let cfg = ModelConfig::sim_llama().with_gqa(2);
        assert_eq!(cfg.kv_dim(), 128);
        let m = TransformerModel::synthesize(&cfg, 17);
        assert_eq!(m.weights.layers[0].wk.shape(), (128, 256));
        let tokens: Vec<usize> = (0..12).map(|i| (i * 41) % 512).collect();
        let fp = run_sequence(&m, ActMode::None, KvMode::Fp16, &tokens);
        assert!(fp.as_slice().iter().all(|v| v.is_finite()));
        // GQA composes with real-time MANT KV quantization.
        let kv4 = run_sequence(&m, ActMode::None, KvMode::Mant4 { group: 64 }, &tokens);
        let norm: f64 = fp
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        assert!(fp.distance(&kv4) / norm < 0.6);
    }

    #[test]
    fn mqa_single_kv_head() {
        let cfg = ModelConfig::sim_llama().with_gqa(1);
        let m = TransformerModel::synthesize(&cfg, 18);
        let mut r = m.runner(ActMode::None, KvMode::Fp16);
        let logits = r.step(3);
        assert_eq!(logits.len(), 512);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "must divide heads")]
    fn gqa_validation() {
        let _ = ModelConfig::sim_llama().with_gqa(3);
    }

    #[test]
    fn quantized_backend_matches_reference_twin() {
        // The quantized backend (integer GEMVs over packed groups) must
        // reproduce the reference backend run over the dequantized twin
        // with the bit-compatible A8 fake quantization — the two paths
        // compute the same math with different accumulation.
        let m = model();
        let packed = m.pack_weights(64).unwrap();
        let twin = packed.to_model(&m);
        let tokens: Vec<usize> = (0..24).map(|i| (i * 37) % 512).collect();
        let act = ActMode::IntGroup { bits: 8, group: 64 };
        let reference = run_sequence(&twin, act, KvMode::Fp16, &tokens);
        let quantized = run_sequence_packed(&m, &packed, act, KvMode::Fp16, &tokens);
        let norm: f64 = reference
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        let rel = reference.distance(&quantized) / norm;
        assert!(rel < 1e-3, "backend divergence {rel}");
    }

    #[test]
    fn quantized_backend_reports_itself() {
        let m = model();
        let packed = m.pack_weights(64).unwrap();
        let r = m.packed_runner(&packed, ActMode::None, KvMode::Mant4 { group: 64 });
        assert_eq!(r.backend(), crate::backend::ExecutionBackend::Quantized);
        let r = m.runner(ActMode::None, KvMode::Fp16);
        assert_eq!(r.backend(), crate::backend::ExecutionBackend::Reference);
    }

    #[test]
    fn fused_kv_attention_close_to_dequantize_path() {
        // Same packed weights, same quantized KV mode; the only difference
        // is the incremental integer attention (plus its INT8 query/prob
        // quantization, which is near-lossless).
        let m = model();
        let packed = m.pack_weights(64).unwrap();
        let twin = packed.to_model(&m);
        let tokens: Vec<usize> = (0..32).map(|i| (i * 41) % 512).collect();
        let act = ActMode::IntGroup { bits: 8, group: 64 };
        let kv = KvMode::Mant4 { group: 64 };
        let dequant_path = run_sequence(&twin, act, kv, &tokens);
        let fused_path = run_sequence_packed(&m, &packed, act, kv, &tokens);
        let norm: f64 = dequant_path
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        let rel = dequant_path.distance(&fused_path) / norm;
        // Per-step the integer attention is within INT8 rounding of the
        // dequantize path (verified tightly in mant-quant's fused_dot /
        // attend tests); end-to-end, cache feedback amplifies those
        // rounding-level differences along the trajectory, so the bound
        // here is well below the 0.6 the 4-bit cache itself costs vs FP16
        // but far above per-step epsilon.
        assert!(rel < 0.3, "fused KV attention drifted: {rel}");
    }

    #[test]
    fn fused_attention_supports_gqa() {
        let cfg = ModelConfig::sim_llama().with_gqa(2);
        let m = TransformerModel::synthesize(&cfg, 19);
        let packed = m.pack_weights(64).unwrap();
        let tokens: Vec<usize> = (0..12).map(|i| (i * 13) % 512).collect();
        let logits = run_sequence_packed(
            &m,
            &packed,
            ActMode::None,
            KvMode::Mant4 { group: 64 },
            &tokens,
        );
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "packed K/V projection shape mismatch")]
    fn packed_runner_rejects_mismatched_gqa_factor() {
        // Same hidden/ffn shapes, different kv_heads: wq/w_down validate,
        // but the K/V projections must be caught up front.
        let gqa = TransformerModel::synthesize(&ModelConfig::sim_llama().with_gqa(2), 25);
        let packed = gqa.pack_weights(64).unwrap();
        let plain = model();
        let _ = plain.packed_runner(&packed, ActMode::None, KvMode::Fp16);
    }

    #[test]
    #[should_panic(expected = "INT8 activations at the packed group size")]
    fn packed_runner_rejects_foreign_act_modes() {
        let m = model();
        let packed = m.pack_weights(64).unwrap();
        let _ = m.packed_runner(&packed, ActMode::IntTensor { bits: 4 }, KvMode::Fp16);
    }

    #[test]
    #[should_panic(expected = "to divide the head dimension")]
    fn packed_runner_rejects_misaligned_kv_groups() {
        let m = model();
        let packed = m.pack_weights(64).unwrap();
        // Group 48 does not divide head_dim 64 → the fused attention
        // cannot align cache groups to heads.
        let _ = m.packed_runner(&packed, ActMode::None, KvMode::Mant4 { group: 48 });
    }
}

//! Evaluation proxies: perplexity and generation fidelity.
//!
//! With synthetic weights there is no WikiText ground truth, so we measure
//! what PTQ perplexity deltas actually measure — *output distortion caused
//! by quantization* — directly against the FP32 reference model:
//!
//! `PPL_proxy(q) = exp( mean_t  CE( softmax(ref_logits_t), softmax(q_logits_t) ) )`
//!
//! For the reference itself this reduces to `exp(mean entropy)`, the floor
//! playing FP16's role in the tables; every quantization error strictly
//! increases it. Ordering and rough ratios between methods transfer; the
//! absolute values are not WikiText PPLs (see DESIGN.md substitutions).

use mant_tensor::ops::{cross_entropy, softmax_inplace};
use mant_tensor::{Matrix, TensorGenerator};

use crate::backend::PackedWeights;
use crate::layers::{run_sequence, run_sequence_packed, ActMode, KvMode, TransformerModel};

/// Perplexity-proxy numbers for one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PplReport {
    /// The quantized model's proxy perplexity (lower is better).
    pub ppl: f64,
    /// The FP reference floor (`exp(mean entropy)`).
    pub ppl_fp: f64,
}

impl PplReport {
    /// The loss over the FP floor, the quantity Fig. 2 plots.
    pub fn loss(&self) -> f64 {
        self.ppl - self.ppl_fp
    }
}

/// Deterministic evaluation token stream.
pub fn eval_tokens(vocab: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut gen = TensorGenerator::new(seed);
    (0..n).map(|_| gen.token(vocab)).collect()
}

/// Computes the perplexity proxy of `quantized` (with runtime modes `act`,
/// `kv`) against the FP `reference` on `tokens`.
///
/// # Panics
///
/// Panics if the models have different vocabularies or `tokens` is empty.
pub fn perplexity_proxy(
    reference: &TransformerModel,
    quantized: &TransformerModel,
    act: ActMode,
    kv: KvMode,
    tokens: &[usize],
) -> PplReport {
    assert_eq!(
        reference.config.vocab, quantized.config.vocab,
        "vocabulary mismatch"
    );
    assert!(!tokens.is_empty(), "evaluation needs at least one token");
    let q_logits = run_sequence(quantized, act, kv, tokens);
    ppl_from_logits(reference, &q_logits, tokens)
}

/// [`perplexity_proxy`] for the quantized execution backend: the measured
/// logits come from running `reference`'s non-linear structure over
/// `packed` groups end to end (fused integer GEMVs, incremental KV
/// attention) — the configuration a MANT accelerator would actually
/// execute.
///
/// # Panics
///
/// Panics if `tokens` is empty, or on any shape/mode mismatch
/// [`TransformerModel::packed_runner`] rejects.
pub fn perplexity_proxy_packed(
    reference: &TransformerModel,
    packed: &PackedWeights,
    act: ActMode,
    kv: KvMode,
    tokens: &[usize],
) -> PplReport {
    assert!(!tokens.is_empty(), "evaluation needs at least one token");
    let q_logits = run_sequence_packed(reference, packed, act, kv, tokens);
    ppl_from_logits(reference, &q_logits, tokens)
}

fn ppl_from_logits(reference: &TransformerModel, q_logits: &Matrix, tokens: &[usize]) -> PplReport {
    let ref_logits = run_sequence(reference, ActMode::None, KvMode::Fp16, tokens);
    let mut ce_sum = 0.0f64;
    let mut h_sum = 0.0f64;
    for t in 0..tokens.len() {
        let mut p = ref_logits.row(t).to_vec();
        softmax_inplace(&mut p);
        let mut q = q_logits.row(t).to_vec();
        softmax_inplace(&mut q);
        ce_sum += cross_entropy(&p, &q);
        h_sum += cross_entropy(&p, &p);
    }
    let n = tokens.len() as f64;
    PplReport {
        ppl: (ce_sum / n).exp(),
        ppl_fp: (h_sum / n).exp(),
    }
}

/// Generation-fidelity proxy for the KV-cache experiments (Tbl. III):
/// teacher-forced greedy agreement over a held-out continuation. Both
/// models consume `prompt` and then the same `gen_len` continuation tokens
/// (derived deterministically from the prompt); at every decode step we
/// compare the quantized model's argmax against the FP reference's. Plays
/// the role of BLEU/F1: 1.0 = identical greedy behaviour.
///
/// (Free-running self-generation is deliberately avoided: greedy decode of
/// a synthetic LM collapses into short token cycles, where an infinitesimal
/// perturbation phase-shifts the cycle and scores 0 despite near-identical
/// logits.)
///
/// # Panics
///
/// Panics if `prompt` is empty or `gen_len` is zero.
pub fn generation_fidelity(
    reference: &TransformerModel,
    quantized: &TransformerModel,
    act: ActMode,
    kv: KvMode,
    prompt: &[usize],
    gen_len: usize,
) -> f64 {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    assert!(gen_len > 0, "generation length must be positive");

    let continuation_seed = prompt.iter().fold(0x51_7cc1u64, |h, &t| {
        h.wrapping_mul(31).wrapping_add(t as u64)
    });
    let continuation = eval_tokens(reference.config.vocab, gen_len, continuation_seed);

    let mut ref_runner = reference.runner(ActMode::None, KvMode::Fp16);
    let mut q_runner = quantized.runner(act, kv);
    for &t in prompt {
        ref_runner.step(t);
        q_runner.step(t);
    }
    let mut matches = 0usize;
    for &t in &continuation {
        let ref_logits = ref_runner.step(t);
        let q_logits = q_runner.step(t);
        if argmax(&ref_logits) == argmax(&q_logits) {
            matches += 1;
        }
    }
    matches as f64 / gen_len as f64
}

/// Greedy token choice over a logit vector. Ties break toward the
/// **lowest index** (the first maximum wins, via a strict `>` sweep).
///
/// This is the one argmax every greedy consumer shares — the serving
/// engine, the sequential baseline, the fidelity proxy, and the
/// speculative verifier ([`crate::BatchRunner::speculate_step`]). A
/// private copy with a different tie rule would silently break the
/// byte-identity contracts between them.
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use mant_quant::MantWeightQuantizer;

    fn model() -> TransformerModel {
        TransformerModel::synthesize(&ModelConfig::sim_llama(), 7)
    }

    #[test]
    fn reference_achieves_the_floor() {
        let m = model();
        let tokens = eval_tokens(m.config.vocab, 12, 1);
        let rep = perplexity_proxy(&m, &m, ActMode::None, KvMode::Fp16, &tokens);
        assert!((rep.ppl - rep.ppl_fp).abs() < 1e-9);
        assert!(rep.ppl_fp >= 1.0);
    }

    #[test]
    fn quantization_increases_ppl() {
        let m = model();
        let tokens = eval_tokens(m.config.vocab, 16, 2);
        let q = m.quantize_weights(&MantWeightQuantizer::new(64));
        let rep = perplexity_proxy(&m, &q, ActMode::None, KvMode::Fp16, &tokens);
        assert!(rep.loss() > 0.0, "loss {}", rep.loss());
        // W4 MANT keeps the proxy within a small multiple of the FP floor
        // (the catastrophic configurations blow out to 100×+).
        assert!(
            rep.ppl < rep.ppl_fp * 8.0,
            "ppl {} vs floor {}",
            rep.ppl,
            rep.ppl_fp
        );
    }

    #[test]
    fn cruder_quantization_hurts_more() {
        let m = model();
        let tokens = eval_tokens(m.config.vocab, 16, 3);
        let w4 = m.quantize_weights(&MantWeightQuantizer::new(64));
        let rep_w4 = perplexity_proxy(&m, &w4, ActMode::None, KvMode::Fp16, &tokens);
        let rep_a4 = perplexity_proxy(
            &m,
            &w4,
            ActMode::IntTensor { bits: 4 },
            KvMode::Fp16,
            &tokens,
        );
        assert!(
            rep_a4.loss() > rep_w4.loss() * 2.0,
            "W4A4-tensor {} vs W4 {}",
            rep_a4.loss(),
            rep_w4.loss()
        );
    }

    #[test]
    fn generation_fidelity_bounds() {
        let m = model();
        let prompt = eval_tokens(m.config.vocab, 8, 4);
        let perfect = generation_fidelity(&m, &m, ActMode::None, KvMode::Fp16, &prompt, 10);
        assert_eq!(perfect, 1.0);
        let q = m.quantize_weights(&MantWeightQuantizer::new(64));
        let f = generation_fidelity(
            &m,
            &q,
            ActMode::IntGroup { bits: 8, group: 64 },
            KvMode::Mant4 { group: 64 },
            &prompt,
            10,
        );
        assert!((0.0..=1.0).contains(&f));
        // Fully quantized (W4A8 + 4-bit KV) argmax agreement on a 512-way
        // vocabulary: well above chance (~0.002), below perfect.
        assert!(f > 0.2, "fidelity collapsed: {f}");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_tokens_panics() {
        let m = model();
        let _ = perplexity_proxy(&m, &m, ActMode::None, KvMode::Fp16, &[]);
    }
}

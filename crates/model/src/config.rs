//! Model shape presets.
//!
//! Full-size configurations carry the real LLaMA/OPT dimensions — the
//! simulator workloads (Figs. 12–14) need exact GEMM shapes — while the
//! `sim_*` presets are scaled-down models that fit in milliseconds of CPU
//! time for the accuracy experiments (Tbls. II–V), preserving the ratios
//! that matter (head dim ≥ one group, gated vs plain FFN).

/// The feed-forward block family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FfnKind {
    /// LLaMA-style gated SiLU: `down(silu(gate(x)) ⊙ up(x))`.
    GatedSilu,
    /// OPT-style plain GELU: `down(gelu(up(x)))`.
    PlainGelu,
}

/// Transformer shape description.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Human-readable name used in report tables.
    pub name: String,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// Number of key/value heads (`heads % kv_heads == 0`); fewer than
    /// `heads` gives grouped-query attention (GQA), `1` gives MQA —
    /// KV-cache reductions the paper lists as combinable with
    /// quantization (Sec. II-C).
    pub kv_heads: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// FFN family.
    pub ffn_kind: FfnKind,
}

impl ModelConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Width of the K/V projections: `kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Converts the config to grouped-query attention with `kv_heads`
    /// key/value heads.
    ///
    /// # Panics
    ///
    /// Panics if `kv_heads` is zero or does not divide `heads`.
    pub fn with_gqa(mut self, kv_heads: usize) -> Self {
        assert!(
            kv_heads > 0 && self.heads.is_multiple_of(kv_heads),
            "kv_heads {kv_heads} must divide heads {}",
            self.heads
        );
        self.kv_heads = kv_heads;
        self
    }

    /// LLaMA-7B: 4096 hidden, 32 heads, 32 layers, 11008 FFN.
    pub fn llama_7b() -> Self {
        Self::llama("LLaMA-7B", 4096, 32, 32, 11008)
    }

    /// LLaMA-13B: 5120 hidden, 40 heads, 40 layers, 13824 FFN.
    pub fn llama_13b() -> Self {
        Self::llama("LLaMA-13B", 5120, 40, 40, 13824)
    }

    /// LLaMA-30B: 6656 hidden, 52 heads, 60 layers, 17920 FFN.
    pub fn llama_30b() -> Self {
        Self::llama("LLaMA-30B", 6656, 52, 60, 17920)
    }

    /// LLaMA-65B: 8192 hidden, 64 heads, 80 layers, 22016 FFN.
    pub fn llama_65b() -> Self {
        Self::llama("LLaMA-65B", 8192, 64, 80, 22016)
    }

    /// LLaMA-2-7B (same shapes as LLaMA-7B).
    pub fn llama2_7b() -> Self {
        Self::llama("LLaMA-2-7B", 4096, 32, 32, 11008)
    }

    /// LLaMA-2-13B (same shapes as LLaMA-13B).
    pub fn llama2_13b() -> Self {
        Self::llama("LLaMA-2-13B", 5120, 40, 40, 13824)
    }

    /// OPT-6.7B: 4096 hidden, 32 heads, 32 layers, 16384 FFN, GELU.
    pub fn opt_6_7b() -> Self {
        ModelConfig {
            name: "OPT-6.7B".to_owned(),
            hidden: 4096,
            heads: 32,
            kv_heads: 32,
            layers: 32,
            ffn: 16384,
            vocab: 50272,
            ffn_kind: FfnKind::PlainGelu,
        }
    }

    /// OPT-13B: 5120 hidden, 40 heads, 40 layers, 20480 FFN, GELU.
    pub fn opt_13b() -> Self {
        ModelConfig {
            name: "OPT-13B".to_owned(),
            hidden: 5120,
            heads: 40,
            kv_heads: 40,
            layers: 40,
            ffn: 20480,
            vocab: 50272,
            ffn_kind: FfnKind::PlainGelu,
        }
    }

    /// A fast LLaMA-style model for accuracy experiments: 256 hidden,
    /// 4 heads (head dim 64 = one quantization group), 2 layers.
    pub fn sim_llama() -> Self {
        ModelConfig {
            name: "sim-llama".to_owned(),
            hidden: 256,
            heads: 4,
            kv_heads: 4,
            layers: 2,
            ffn: 512,
            vocab: 512,
            ffn_kind: FfnKind::GatedSilu,
        }
    }

    /// A fast OPT-style model (plain GELU FFN).
    pub fn sim_opt() -> Self {
        ModelConfig {
            name: "sim-opt".to_owned(),
            hidden: 256,
            heads: 4,
            kv_heads: 4,
            layers: 2,
            ffn: 512,
            vocab: 512,
            ffn_kind: FfnKind::PlainGelu,
        }
    }

    /// A scaled-down accuracy stand-in for any full config: keeps the name
    /// (for table rows) and FFN kind, replaces dimensions with sim-size
    /// values scaled by the full model's depth so bigger models stay
    /// "bigger" (more layers → more accumulated quantization error, which
    /// is the cross-model trend in Tbl. II).
    pub fn sim_proxy(&self) -> Self {
        let layers = (self.layers / 16).clamp(2, 5);
        ModelConfig {
            name: self.name.clone(),
            hidden: 256,
            heads: 4,
            kv_heads: 4.min(self.kv_heads.max(1)),
            layers,
            ffn: 512,
            vocab: 512,
            ffn_kind: self.ffn_kind,
        }
    }

    /// The linear-layer GEMM shapes `(name, K, N)` of one transformer
    /// layer (weights are `N × K`), used by the accelerator workloads.
    pub fn linear_layer_shapes(&self) -> Vec<(&'static str, usize, usize)> {
        match self.ffn_kind {
            FfnKind::GatedSilu => vec![
                ("q", self.hidden, self.hidden),
                ("k", self.hidden, self.kv_dim()),
                ("v", self.hidden, self.kv_dim()),
                ("o", self.hidden, self.hidden),
                ("gate", self.hidden, self.ffn),
                ("up", self.hidden, self.ffn),
                ("down", self.ffn, self.hidden),
            ],
            FfnKind::PlainGelu => vec![
                ("q", self.hidden, self.hidden),
                ("k", self.hidden, self.kv_dim()),
                ("v", self.hidden, self.kv_dim()),
                ("o", self.hidden, self.hidden),
                ("up", self.hidden, self.ffn),
                ("down", self.ffn, self.hidden),
            ],
        }
    }

    /// Total linear-layer parameters across all layers.
    pub fn linear_params(&self) -> usize {
        self.linear_layer_shapes()
            .iter()
            .map(|&(_, k, n)| k * n)
            .sum::<usize>()
            * self.layers
    }

    fn llama(name: &str, hidden: usize, heads: usize, layers: usize, ffn: usize) -> Self {
        ModelConfig {
            name: name.to_owned(),
            hidden,
            heads,
            kv_heads: heads,
            layers,
            ffn,
            vocab: 32000,
            ffn_kind: FfnKind::GatedSilu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama7b_shapes() {
        let c = ModelConfig::llama_7b();
        assert_eq!(c.head_dim(), 128);
        assert_eq!(c.linear_layer_shapes().len(), 7);
        // ~6.5B linear params for LLaMA-7B.
        let p = c.linear_params();
        assert!((6.0e9..7.0e9).contains(&(p as f64)), "{p}");
    }

    #[test]
    fn opt_uses_plain_ffn() {
        let c = ModelConfig::opt_6_7b();
        assert_eq!(c.ffn_kind, FfnKind::PlainGelu);
        assert_eq!(c.linear_layer_shapes().len(), 6);
    }

    #[test]
    fn sim_models_are_small_and_divisible() {
        for c in [ModelConfig::sim_llama(), ModelConfig::sim_opt()] {
            assert_eq!(c.hidden % c.heads, 0);
            assert_eq!(c.head_dim() % 64, 0); // one full group per head
            assert!(c.linear_params() < 3_000_000);
        }
    }

    #[test]
    fn sim_proxy_scales_depth() {
        let small = ModelConfig::llama_7b().sim_proxy();
        let big = ModelConfig::llama_65b().sim_proxy();
        assert!(big.layers > small.layers);
        assert_eq!(big.name, "LLaMA-65B");
    }
}

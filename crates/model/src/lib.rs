//! Synthetic transformer inference substrate for the M-ANT evaluation.
//!
//! The paper evaluates on LLaMA-1/2 and OPT checkpoints; this crate
//! substitutes synthetic models whose tensors reproduce the distributional
//! structure those results depend on (see `DESIGN.md`): per-group diversity
//! in the weights, outlier channels in the activation stream (via
//! embedding and norm-gain outliers), and dynamically generated KV caches.
//!
//! - [`config`]: model shape presets (real LLaMA/OPT dimensions for the
//!   simulator workloads, scaled "sim" sizes for fast accuracy runs);
//! - [`synth`]: seeded weight synthesis;
//! - [`layers`]: the FP32 reference model, a step-wise [`ModelRunner`] with
//!   pluggable activation quantization and KV-cache modes, and forward
//!   observers for calibration;
//! - [`backend`]: the execution-backend layer — [`PackedWeights`] /
//!   [`QuantizedLinear`] packed storage and the dispatch that lets the
//!   runner execute entirely over packed groups (fused integer GEMV,
//!   incremental KV attention) without dequantizing;
//! - [`batch`]: the continuous-batching [`BatchRunner`] — per-sequence
//!   sessions over a paged packed KV pool, multi-query packed GEMMs, and
//!   a step contract bit-identical to N independent sequential runs;
//! - [`eval`]: the perplexity proxy and generation-fidelity metrics;
//! - [`calib`]: calibration over synthetic token streams (KV variance maps
//!   and activation second moments).

pub mod backend;
pub mod batch;
pub mod calib;
pub mod config;
pub mod eval;
pub mod layers;
pub mod synth;

pub use backend::{ExecutionBackend, PackedLayer, PackedWeights, QuantizedLinear};
pub use batch::{BatchRunner, SessionId, SpecOutcome};
pub use calib::{calibrate, Calibration};
pub use config::{FfnKind, ModelConfig};
pub use eval::{argmax, generation_fidelity, perplexity_proxy, perplexity_proxy_packed, PplReport};
pub use layers::{
    run_sequence, run_sequence_packed, ActMode, ForwardObserver, KvMode, LayerWeights, ModelRunner,
    Proj, TransformerModel, TransformerWeights,
};
pub use synth::{synthesize_speculative_pair, DraftConfig};

//! Nibble packing: two 4-bit codes per byte.
//!
//! This is the **working** representation of every 4-bit code buffer in
//! the workspace — weight matrices, the K cache, committed V windows, and
//! the paged pool's blocks all store genuinely packed nibbles, the memory
//! layout the accelerator's weight buffer holds. The packed kernels in
//! [`mod@crate::kernels`] consume a byte (a code pair) at a time through a
//! 256-entry pair-decode table, so nothing on the hot path ever unpacks.

/// Packs 4-bit codes into bytes, first code in the low nibble. An odd
/// trailing code occupies a final byte's low nibble with a zero high
/// nibble.
///
/// Every input must already be a 4-bit code (`< 16`): a high bit here is
/// an encoder bug, and silently masking it would truncate the error into
/// plausible-looking data. Debug builds assert; release builds mask so the
/// packed buffer stays well-formed either way.
pub fn pack_nibbles(codes: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; codes.len().div_ceil(2)];
    pack_nibbles_into(codes, &mut out);
    out
}

/// [`pack_nibbles`] into a caller-provided buffer of exactly
/// `codes.len().div_ceil(2)` bytes — the non-allocating variant the
/// streaming KV encoders use to write straight into pool blocks.
///
/// # Panics
///
/// Panics if `out` is not exactly `codes.len().div_ceil(2)` bytes long;
/// debug-asserts every code is 4-bit (see [`pack_nibbles`]).
pub fn pack_nibbles_into(codes: &[u8], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        codes.len().div_ceil(2),
        "packed output length mismatch"
    );
    debug_assert!(
        codes.iter().all(|&c| c < 16),
        "pack_nibbles fed a non-4-bit code: encoder bug upstream"
    );
    let mut pairs = codes.chunks_exact(2);
    for (o, pair) in out.iter_mut().zip(pairs.by_ref()) {
        *o = (pair[0] & 0x0f) | ((pair[1] & 0x0f) << 4);
    }
    if let [last] = pairs.remainder() {
        out[codes.len() / 2] = last & 0x0f;
    }
}

/// Unpacks bytes into 4-bit codes (one per output byte). `count` bounds
/// the number of codes recovered (to drop an odd-length pad nibble).
pub fn unpack_nibbles(packed: &[u8], count: usize) -> Vec<u8> {
    assert!(packed.len() * 2 >= count, "packed buffer too short");
    let mut out = Vec::with_capacity(count);
    // Full bytes first — both nibbles written with no per-push length
    // check — then the odd tail's low nibble.
    for &b in &packed[..count / 2] {
        out.push(b & 0x0f);
        out.push(b >> 4);
    }
    if count % 2 == 1 {
        out.push(packed[count / 2] & 0x0f);
    }
    out
}

/// Iterator over the 4-bit codes of a packed buffer without allocating.
#[derive(Clone, Debug)]
pub struct NibbleIter<'a> {
    packed: &'a [u8],
    index: usize,
    count: usize,
}

impl<'a> NibbleIter<'a> {
    /// Creates an iterator yielding `count` codes from `packed`.
    ///
    /// # Panics
    ///
    /// Panics if `packed` holds fewer than `count` nibbles.
    pub fn new(packed: &'a [u8], count: usize) -> Self {
        assert!(packed.len() * 2 >= count, "packed buffer too short");
        NibbleIter {
            packed,
            index: 0,
            count,
        }
    }
}

impl Iterator for NibbleIter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.index >= self.count {
            return None;
        }
        let byte = self.packed[self.index / 2];
        let nib = if self.index.is_multiple_of(2) {
            byte & 0x0f
        } else {
            byte >> 4
        };
        self.index += 1;
        Some(nib)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.count - self.index;
        (rem, Some(rem))
    }

    // Specialized so iterator-based consumers (`.sum()`, `.collect()`,
    // `for_each`) walk whole bytes instead of paying the per-item parity
    // branch of `next()`.
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, u8) -> B,
    {
        let mut acc = init;
        let mut index = self.index;
        // Align to a byte boundary if the iterator was left mid-byte.
        if index % 2 == 1 && index < self.count {
            acc = f(acc, self.packed[index / 2] >> 4);
            index += 1;
        }
        for &b in &self.packed[index / 2..self.count / 2] {
            acc = f(acc, b & 0x0f);
            acc = f(acc, b >> 4);
        }
        if self.count % 2 == 1 && index < self.count {
            acc = f(acc, self.packed[self.count / 2] & 0x0f);
        }
        acc
    }
}

impl ExactSizeIterator for NibbleIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_even_and_odd() {
        for len in [0usize, 1, 2, 7, 8, 63, 64, 65] {
            let codes: Vec<u8> = (0..len).map(|i| (i % 16) as u8).collect();
            let packed = pack_nibbles(&codes);
            assert_eq!(packed.len(), len.div_ceil(2));
            assert_eq!(unpack_nibbles(&packed, len), codes, "len {len}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-4-bit code")]
    fn high_bits_rejected_in_debug() {
        // Packing used to silently mask high bits, which would have
        // truncated an encoder bug into plausible data. Debug builds (and
        // therefore the test suite) reject it loudly.
        let _ = pack_nibbles(&[0xff, 0xf3]);
    }

    #[test]
    fn pack_into_matches_alloc_path() {
        for len in [1usize, 2, 5, 8, 33] {
            let codes: Vec<u8> = (0..len).map(|i| ((i * 5) % 16) as u8).collect();
            let mut buf = vec![0xaau8; len.div_ceil(2)];
            pack_nibbles_into(&codes, &mut buf);
            assert_eq!(buf, pack_nibbles(&codes), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn pack_into_wrong_size_rejected() {
        pack_nibbles_into(&[1, 2, 3], &mut [0u8; 1]);
    }

    #[test]
    fn iterator_matches_unpack() {
        let codes: Vec<u8> = (0..33).map(|i| ((i * 7) % 16) as u8).collect();
        let packed = pack_nibbles(&codes);
        let via_iter: Vec<u8> = NibbleIter::new(&packed, codes.len()).collect();
        assert_eq!(via_iter, codes);
        assert_eq!(NibbleIter::new(&packed, 33).len(), 33);
    }

    #[test]
    fn fold_matches_next_from_any_offset() {
        let codes: Vec<u8> = (0..37).map(|i| ((i * 11) % 16) as u8).collect();
        let packed = pack_nibbles(&codes);
        for count in [0usize, 1, 2, 7, 36, 37] {
            for skip in 0..count.min(5) {
                let mut it = NibbleIter::new(&packed, count);
                for _ in 0..skip {
                    it.next();
                }
                let via_fold: Vec<u8> = it.fold(Vec::new(), |mut v, n| {
                    v.push(n);
                    v
                });
                assert_eq!(via_fold, codes[skip..count], "count {count} skip {skip}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn iterator_bounds_checked() {
        let _ = NibbleIter::new(&[0u8], 3);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_bounds_checked() {
        let _ = unpack_nibbles(&[0u8], 3);
    }

    #[test]
    fn packing_halves_storage() {
        let codes = vec![0x5u8; 4096];
        assert_eq!(pack_nibbles(&codes).len(), 2048);
    }
}

//! Nibble packing: two 4-bit codes per byte.
//!
//! The rest of the workspace stores 4-bit codes one-per-byte for
//! simplicity and accounts for storage arithmetically; this module provides
//! the real packed representation a deployment would ship — the memory
//! layout the accelerator's weight buffer actually holds.

/// Packs 4-bit codes (low nibble of each input byte) into bytes, first
/// code in the low nibble. An odd trailing code occupies a final byte's
/// low nibble with a zero high nibble.
pub fn pack_nibbles(codes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len().div_ceil(2));
    for pair in codes.chunks(2) {
        let lo = pair[0] & 0x0f;
        let hi = pair.get(1).copied().unwrap_or(0) & 0x0f;
        out.push(lo | (hi << 4));
    }
    out
}

/// Unpacks bytes into 4-bit codes (one per output byte). `count` bounds
/// the number of codes recovered (to drop an odd-length pad nibble).
pub fn unpack_nibbles(packed: &[u8], count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(count);
    for &b in packed {
        if out.len() < count {
            out.push(b & 0x0f);
        }
        if out.len() < count {
            out.push(b >> 4);
        }
    }
    out
}

/// Iterator over the 4-bit codes of a packed buffer without allocating.
#[derive(Clone, Debug)]
pub struct NibbleIter<'a> {
    packed: &'a [u8],
    index: usize,
    count: usize,
}

impl<'a> NibbleIter<'a> {
    /// Creates an iterator yielding `count` codes from `packed`.
    ///
    /// # Panics
    ///
    /// Panics if `packed` holds fewer than `count` nibbles.
    pub fn new(packed: &'a [u8], count: usize) -> Self {
        assert!(packed.len() * 2 >= count, "packed buffer too short");
        NibbleIter {
            packed,
            index: 0,
            count,
        }
    }
}

impl Iterator for NibbleIter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.index >= self.count {
            return None;
        }
        let byte = self.packed[self.index / 2];
        let nib = if self.index.is_multiple_of(2) {
            byte & 0x0f
        } else {
            byte >> 4
        };
        self.index += 1;
        Some(nib)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.count - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NibbleIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_even_and_odd() {
        for len in [0usize, 1, 2, 7, 8, 63, 64, 65] {
            let codes: Vec<u8> = (0..len).map(|i| (i % 16) as u8).collect();
            let packed = pack_nibbles(&codes);
            assert_eq!(packed.len(), len.div_ceil(2));
            assert_eq!(unpack_nibbles(&packed, len), codes, "len {len}");
        }
    }

    #[test]
    fn high_bits_are_masked() {
        let packed = pack_nibbles(&[0xff, 0xf3]);
        assert_eq!(packed, vec![0x3f]);
    }

    #[test]
    fn iterator_matches_unpack() {
        let codes: Vec<u8> = (0..33).map(|i| ((i * 7) % 16) as u8).collect();
        let packed = pack_nibbles(&codes);
        let via_iter: Vec<u8> = NibbleIter::new(&packed, codes.len()).collect();
        assert_eq!(via_iter, codes);
        assert_eq!(NibbleIter::new(&packed, 33).len(), 33);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn iterator_bounds_checked() {
        let _ = NibbleIter::new(&[0u8], 3);
    }

    #[test]
    fn packing_halves_storage() {
        let codes = vec![0x5u8; 4096];
        assert_eq!(pack_nibbles(&codes).len(), 2048);
    }
}

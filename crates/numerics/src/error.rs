//! Error type for numeric-format construction and encoding.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or using a numeric format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A MANT coefficient `a` outside the supported range.
    ///
    /// The paper constrains `a < 128` so that it can be stored in 8 bits
    /// (Sec. IV-A: "we constrain the data range of a within 128").
    InvalidCoefficient {
        /// The rejected coefficient.
        a: u32,
    },
    /// A quantization grid with no representable points.
    EmptyGrid,
    /// A grid point that is not a finite number.
    NonFiniteGridPoint,
    /// An `abfloat` configuration whose exponent range is unrepresentable.
    InvalidAbFloat {
        /// Number of exponent bits requested.
        exp_bits: u8,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::InvalidCoefficient { a } => {
                write!(f, "MANT coefficient {a} exceeds the 8-bit limit (a < 128)")
            }
            NumericsError::EmptyGrid => write!(f, "quantization grid has no points"),
            NumericsError::NonFiniteGridPoint => {
                write!(f, "quantization grid contains a non-finite point")
            }
            NumericsError::InvalidAbFloat { exp_bits } => {
                write!(
                    f,
                    "abfloat with {exp_bits} exponent bits is unrepresentable"
                )
            }
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let msgs = [
            NumericsError::InvalidCoefficient { a: 200 }.to_string(),
            NumericsError::EmptyGrid.to_string(),
            NumericsError::NonFiniteGridPoint.to_string(),
            NumericsError::InvalidAbFloat { exp_bits: 9 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}

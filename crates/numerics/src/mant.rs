//! The MANT numeric type: `value = ±(a·|i| + 2^|i|)`, `i ∈ [0, 7]`.
//!
//! MANT (mathematically adaptive numerical type) is the paper's core
//! contribution (Sec. IV). A single 8-bit coefficient `a`, stored once per
//! quantization group, selects one member of a continuous family of 4-bit
//! grids:
//!
//! - `a = 0` is exactly PoT (power-of-two),
//! - `a ≈ 17` matches a 4-bit float (E2M1) distribution,
//! - `a ≈ 25` matches NormalFloat,
//! - large `a` approaches a uniform (INT-like) distribution.
//!
//! Crucially, decoding fuses into integer arithmetic: for an activation `x`,
//! `x · (a·i + 2^i) = a·(x·i) + (x << i)`, so a multiply-accumulate lane
//! (`psum1 = Σ x·i`) and a shift-accumulate lane (`psum2 = Σ x·2^i`) replace
//! any dequantization step (paper Eq. (5)).

use crate::error::NumericsError;
use crate::grid::Grid;

/// Magnitude codes span `i ∈ [0, 7]` (sign-magnitude INT4).
pub const MAG_CODES: u8 = 8;

/// Largest magnitude code (`|INT|` ranges over `[0, 7]`).
pub const MAX_MAG: u8 = MAG_CODES - 1;

/// Exclusive upper bound on the coefficient `a` (8-bit encoding, Sec. IV-A).
pub const MAX_COEFFICIENT: u32 = 128;

/// A sign-magnitude MANT code: 1 sign bit + 3 magnitude bits.
///
/// Unlike two's-complement INT4, the magnitude 0 code is *not* the value
/// zero: it decodes to `±(a·0 + 2^0) = ±1`, so all 16 codes are distinct
/// values (Fig. 6 counts 16 points for every 4-bit type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MantCode {
    /// True if the encoded value is negative.
    pub negative: bool,
    /// Magnitude code `i ∈ [0, 7]`.
    pub magnitude: u8,
}

impl MantCode {
    /// Creates a code, clamping `magnitude` to [`MAX_MAG`].
    pub fn new(negative: bool, magnitude: u8) -> Self {
        MantCode {
            negative,
            magnitude: magnitude.min(MAX_MAG),
        }
    }

    /// Packs the code into the low 4 bits of a byte (sign in bit 3).
    pub fn to_bits(self) -> u8 {
        ((self.negative as u8) << 3) | (self.magnitude & 0x7)
    }

    /// Unpacks a code from the low 4 bits of a byte.
    pub fn from_bits(bits: u8) -> Self {
        MantCode {
            negative: bits & 0x8 != 0,
            magnitude: bits & 0x7,
        }
    }

    /// The signed magnitude as an `i8` in `[-7, 7]` (loses the ±0 split).
    pub fn signed_magnitude(self) -> i8 {
        let m = self.magnitude as i8;
        if self.negative {
            -m
        } else {
            m
        }
    }
}

/// One member of the MANT family, identified by its coefficient `a`.
///
/// # Example
///
/// ```
/// use mant_numerics::Mant;
///
/// let pot = Mant::new(0)?; // a = 0 degenerates to PoT
/// assert_eq!(pot.levels(), [1, 2, 4, 8, 16, 32, 64, 128]);
/// # Ok::<(), mant_numerics::NumericsError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mant {
    a: u32,
}

impl Mant {
    /// Creates a MANT type with coefficient `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidCoefficient`] if `a >= 128`; the paper
    /// encodes `a` in 8 bits of per-group metadata and observes the grid
    /// shape saturates beyond 128 (Sec. IV-A).
    pub fn new(a: u32) -> Result<Self, NumericsError> {
        if a >= MAX_COEFFICIENT {
            return Err(NumericsError::InvalidCoefficient { a });
        }
        Ok(Mant { a })
    }

    /// The coefficient `a`.
    pub fn coefficient(&self) -> u32 {
        self.a
    }

    /// The integer level for magnitude code `i`: `a·i + 2^i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    pub fn level(&self, i: u8) -> u32 {
        assert!(i <= MAX_MAG, "MANT magnitude code {i} exceeds 7");
        self.a * u32::from(i) + (1u32 << i)
    }

    /// All eight positive levels in increasing order.
    pub fn levels(&self) -> [u32; 8] {
        let mut out = [0u32; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.level(i as u8);
        }
        out
    }

    /// The largest positive level, `7a + 128`.
    pub fn max_level(&self) -> u32 {
        self.level(MAX_MAG)
    }

    /// Encodes the magnitude code whose level is nearest to `m ≥ 0`.
    ///
    /// Ties round toward the smaller level. Negative or NaN input encodes to
    /// magnitude 0.
    pub fn encode_magnitude(&self, m: f32) -> u8 {
        if m.is_nan() || m <= 0.0 {
            return 0;
        }
        let mut best = 0u8;
        let mut best_err = (m - self.level(0) as f32).abs();
        for i in 1..MAG_CODES {
            let err = (m - self.level(i) as f32).abs();
            if err < best_err {
                best = i;
                best_err = err;
            }
        }
        best
    }

    /// Encodes `x` to the nearest MANT code (sign handled separately).
    pub fn encode(&self, x: f32) -> MantCode {
        MantCode {
            negative: x.is_sign_negative(),
            magnitude: self.encode_magnitude(x.abs()),
        }
    }

    /// Decodes a code to its signed integer value `±(a·i + 2^i)`.
    pub fn decode(&self, code: MantCode) -> i32 {
        let v = self.level(code.magnitude) as i32;
        if code.negative {
            -v
        } else {
            v
        }
    }

    /// Rounds `x` to the nearest representable MANT value (unscaled).
    pub fn quantize(&self, x: f32) -> f32 {
        self.decode(self.encode(x)) as f32
    }

    /// The signed contribution of `code` to the multiply lane:
    /// `psum1` accumulates `x · (±i)` (paper Eq. (5)).
    pub fn psum1_operand(code: MantCode) -> i32 {
        i32::from(code.signed_magnitude())
    }

    /// The signed contribution of `code` to the shift lane:
    /// `psum2` accumulates `x · (±2^i)` (paper Eq. (5)).
    pub fn psum2_operand(code: MantCode) -> i32 {
        let v = 1i32 << code.magnitude;
        if code.negative {
            -v
        } else {
            v
        }
    }

    /// Recombines the two partial sums: `a·psum1 + psum2` equals
    /// `Σ x·(±(a·i + 2^i))` exactly, in integer arithmetic.
    pub fn combine_psums(&self, psum1: i64, psum2: i64) -> i64 {
        i64::from(self.a) * psum1 + psum2
    }

    /// The full symmetric 16-point grid for this coefficient.
    pub fn grid(&self) -> Grid {
        let mags: Vec<f32> = self.levels().iter().map(|&l| l as f32).collect();
        Grid::symmetric(&mags).expect("MANT levels are finite and non-empty")
    }

    /// Variance of the normalized grid points (max scaled to 1).
    ///
    /// The KV-cache engine selects `a` by matching the variance of the
    /// normalized data group against per-`a` variance ranges (Sec. V-C);
    /// this is the grid-side statistic those ranges are anchored to.
    pub fn normalized_grid_variance(&self) -> f64 {
        let g = self.grid().normalized();
        let pts = g.points();
        let n = pts.len() as f64;
        let mean: f64 = pts.iter().map(|&p| p as f64).sum::<f64>() / n;
        pts.iter()
            .map(|&p| {
                let d = p as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n
    }

    /// Finds the coefficient whose normalized levels best approximate the
    /// given positive `target_levels` (max-normalized internally), in the
    /// least-squares sense. This reproduces the paper's Fig. 5 fits
    /// (`a ≈ 17` for 4-bit float, `a ≈ 25` for NormalFloat).
    ///
    /// # Panics
    ///
    /// Panics if `target_levels` is empty or its maximum is not positive.
    pub fn approximate(target_levels: &[f32]) -> Mant {
        assert!(!target_levels.is_empty(), "target levels must be non-empty");
        let tmax = target_levels.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(tmax > 0.0, "target levels must contain a positive value");
        let targets: Vec<f64> = target_levels
            .iter()
            .map(|&t| f64::from(t) / f64::from(tmax))
            .collect();
        let mut best = Mant { a: 0 };
        let mut best_err = f64::INFINITY;
        for a in 0..MAX_COEFFICIENT {
            let m = Mant { a };
            let max = f64::from(m.max_level());
            // Compare positionally over however many target levels exist,
            // sampling the MANT levels at matching normalized code positions.
            let mut err = 0.0f64;
            let n = targets.len();
            for (k, &t) in targets.iter().enumerate() {
                let i = if n == 1 {
                    MAX_MAG
                } else {
                    ((k * usize::from(MAX_MAG)) as f64 / (n - 1) as f64).round() as u8
                };
                let level = f64::from(m.level(i)) / max;
                let d = level - t;
                err += d * d;
            }
            if err < best_err {
                best_err = err;
                best = m;
            }
        }
        best
    }
}

impl Default for Mant {
    /// The default coefficient is 17, the paper's float-like running example.
    fn default() -> Self {
        Mant { a: 17 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_a17_levels() {
        // Fig. 7: a = 17 → {1, 19, 38, 59, 84, 117, 166, 247}.
        let m = Mant::new(17).unwrap();
        assert_eq!(m.levels(), [1, 19, 38, 59, 84, 117, 166, 247]);
        assert_eq!(m.max_level(), 247);
    }

    #[test]
    fn a0_is_pot() {
        let m = Mant::new(0).unwrap();
        assert_eq!(m.levels(), [1, 2, 4, 8, 16, 32, 64, 128]);
    }

    #[test]
    fn coefficient_bounds() {
        assert!(Mant::new(127).is_ok());
        assert_eq!(
            Mant::new(128),
            Err(NumericsError::InvalidCoefficient { a: 128 })
        );
    }

    #[test]
    fn levels_strictly_increasing() {
        for a in 0..MAX_COEFFICIENT {
            let m = Mant::new(a).unwrap();
            let l = m.levels();
            for i in 1..l.len() {
                assert!(l[i] > l[i - 1], "a={a} levels not increasing");
            }
        }
    }

    #[test]
    fn encode_decode_paper_weights() {
        // Fig. 7 rounding example: scaled weights {84.03, 137.51, -50.93, 247.01}
        // encode to levels {84, 117, -59, 247} under a = 17.
        let m = Mant::new(17).unwrap();
        let inputs = [84.03f32, 137.51, -50.93, 247.01];
        let expect = [84i32, 117, -59, 247];
        for (&x, &e) in inputs.iter().zip(expect.iter()) {
            assert_eq!(m.decode(m.encode(x)), e, "input {x}");
        }
    }

    #[test]
    fn encode_magnitude_clamps_and_handles_nan() {
        let m = Mant::new(17).unwrap();
        assert_eq!(m.encode_magnitude(10_000.0), 7);
        assert_eq!(m.encode_magnitude(0.0), 0);
        assert_eq!(m.encode_magnitude(-5.0), 0);
        assert_eq!(m.encode_magnitude(f32::NAN), 0);
    }

    #[test]
    fn code_bit_packing_roundtrip() {
        for bits in 0..16u8 {
            let c = MantCode::from_bits(bits);
            assert_eq!(c.to_bits(), bits);
        }
        assert_eq!(MantCode::new(true, 9).magnitude, MAX_MAG);
    }

    #[test]
    fn psum_decomposition_matches_decode() {
        for a in [0u32, 5, 17, 25, 60, 127] {
            let m = Mant::new(a).unwrap();
            for bits in 0..16u8 {
                let c = MantCode::from_bits(bits);
                let x = 13i64; // arbitrary activation value
                let fused = m.combine_psums(
                    x * i64::from(Mant::psum1_operand(c)),
                    x * i64::from(Mant::psum2_operand(c)),
                );
                assert_eq!(fused, x * i64::from(m.decode(c)), "a={a} bits={bits}");
            }
        }
    }

    #[test]
    fn grid_has_16_points() {
        for a in [0u32, 17, 25, 127] {
            assert_eq!(Mant::new(a).unwrap().grid().len(), 16);
        }
    }

    #[test]
    fn approximate_float_is_near_17() {
        // 4-bit float (E2M1) positive magnitudes.
        let float4 = [0.0f32, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];
        let m = Mant::approximate(&float4);
        assert!(
            (14..=20).contains(&m.coefficient()),
            "expected a near 17, got {}",
            m.coefficient()
        );
    }

    #[test]
    fn approximate_nf_is_near_25() {
        let nf = crate::nf::nf4_paper_levels();
        let m = Mant::approximate(&nf);
        assert!(
            (21..=29).contains(&m.coefficient()),
            "expected a near 25, got {}",
            m.coefficient()
        );
    }

    #[test]
    fn normalized_variance_monotone_in_a() {
        // Larger a → more uniform grid → higher variance (Sec. V-C).
        let lo = Mant::new(5).unwrap().normalized_grid_variance();
        let mid = Mant::new(40).unwrap().normalized_grid_variance();
        let hi = Mant::new(120).unwrap().normalized_grid_variance();
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn default_is_float_like() {
        assert_eq!(Mant::default().coefficient(), 17);
    }
}

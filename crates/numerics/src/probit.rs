//! The probit function Φ⁻¹ (inverse standard-normal CDF).
//!
//! NormalFloat grids are built from Gaussian quantiles (paper Eq. (3)); this
//! module provides the inverse CDF via Acklam's rational approximation
//! (relative error < 1.15e-9), refined with one Halley step against a
//! high-precision `erfc`-based CDF.

/// Inverse standard-normal CDF.
///
/// Returns NaN for `p` outside `(0, 1)` (and for `p` NaN); this mirrors the
/// mathematical domain — the paper's ε offset keeps its inputs interior.
///
/// # Example
///
/// ```
/// use mant_numerics::probit;
///
/// assert!((probit(0.5)).abs() < 1e-12);
/// assert!((probit(0.975) - 1.959_963_985).abs() < 1e-6);
/// ```
pub fn probit(p: f64) -> f64 {
    if !(p > 0.0 && p < 1.0) {
        return f64::NAN;
    }
    if p == 0.5 {
        return 0.0;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step: e = Φ(x) − p, u = e·√(2π)·exp(x²/2).
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal CDF via `erfc`-style series (Abramowitz & Stegun 7.1.26
/// refined composite; accurate to ~1e-12 after the Halley step consumes it).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody-style rational approximation).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes' erfc approximation (fractional error < 1.2e-7),
    // adequate as the Halley-step anchor.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles() {
        let cases = [
            (0.5, 0.0),
            (0.841_344_746_068_543, 1.0),
            (0.158_655_253_931_457, -1.0),
            (0.975, 1.959_963_984_540_054),
            (0.995, 2.575_829_303_548_901),
            (0.9999, 3.719_016_485_455_68),
        ];
        for (p, z) in cases {
            assert!((probit(p) - z).abs() < 2e-6, "p={p}: {} vs {z}", probit(p));
        }
    }

    #[test]
    fn domain_edges_are_nan() {
        assert!(probit(0.0).is_nan());
        assert!(probit(1.0).is_nan());
        assert!(probit(-0.1).is_nan());
        assert!(probit(f64::NAN).is_nan());
    }

    #[test]
    fn antisymmetric() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            assert!((probit(p) + probit(1.0 - p)).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let v = probit(i as f64 / 1000.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn cdf_roundtrip() {
        for p in [0.001, 0.02, 0.2, 0.5, 0.8, 0.98, 0.999] {
            assert!((normal_cdf(probit(p)) - p).abs() < 1e-7, "p={p}");
        }
    }
}

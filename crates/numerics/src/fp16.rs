//! Software IEEE 754 half precision (binary16).
//!
//! The paper's FP16 baseline and all scaling-factor metadata are
//! half-precision; this module provides bit-exact conversion with
//! round-to-nearest-even, without external crates.

/// Converts `f32` to binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let payload = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | payload | ((mant >> 13) as u16 & 0x3ff);
    }

    // Unbiased exponent, rebiased for f16 (bias 15).
    let unbiased = exp - 127;
    let f16_exp = unbiased + 15;

    if f16_exp >= 0x1f {
        // Overflow → infinity.
        return sign | 0x7c00;
    }
    if f16_exp <= 0 {
        // Subnormal or zero.
        if f16_exp < -10 {
            return sign; // underflows to zero
        }
        // Add the implicit leading one, then shift into subnormal position.
        let m = mant | 0x0080_0000;
        let shift = (14 - f16_exp) as u32;
        let rounded = round_shift_right_even(m, shift);
        return sign | rounded as u16;
    }

    let rounded_mant = round_shift_right_even(mant, 13);
    // Rounding may carry into the exponent; the layout makes the carry
    // propagate correctly by simple addition.
    let out = ((f16_exp as u32) << 10) + rounded_mant;
    if out >= 0x7c00 {
        return sign | 0x7c00;
    }
    sign | out as u16
}

/// Converts binary16 bits to `f32` exactly.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = u32::from(h & 0x3ff);

    let bits = match exp {
        0 => {
            if mant == 0 {
                sign
            } else {
                // Subnormal: value = mant × 2⁻²⁴, exact in f32 arithmetic.
                let v = mant as f32 * 2.0f32.powi(-24);
                return if sign != 0 { -v } else { v };
            }
        }
        0x1f => sign | 0x7f80_0000 | (mant << 13),
        _ => sign | ((u32::from(exp) + 127 - 15) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Rounds `x` through an FP16 representation (the paper's storage format for
/// scales and reference tensors).
///
/// # Example
///
/// ```
/// use mant_numerics::fp16::quantize_fp16;
///
/// assert_eq!(quantize_fp16(1.0), 1.0);
/// // 1/3 is not representable in 11 significand bits.
/// assert!((quantize_fp16(1.0 / 3.0) - 1.0 / 3.0).abs() > 0.0);
/// ```
pub fn quantize_fp16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Largest finite FP16 value.
pub const FP16_MAX: f32 = 65504.0;

fn round_shift_right_even(value: u32, shift: u32) -> u32 {
    if shift == 0 {
        return value;
    }
    if shift > 31 {
        return 0;
    }
    let truncated = value >> shift;
    let remainder = value & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    match remainder.cmp(&half) {
        std::cmp::Ordering::Greater => truncated + 1,
        std::cmp::Ordering::Equal => truncated + (truncated & 1),
        std::cmp::Ordering::Less => truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048i32 {
            let x = i as f32;
            assert_eq!(quantize_fp16(x), x, "{x}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f32_to_f16_bits(0.5), 0x3800);
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflow → inf
    }

    #[test]
    fn decode_known_patterns() {
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0xc000), -2.0);
        assert_eq!(f16_bits_to_f32(0x7bff), 65504.0);
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24)); // smallest subnormal
        assert_eq!(f16_bits_to_f32(0x0400), 2.0f32.powi(-14)); // smallest normal
        assert!(f16_bits_to_f32(0x7c00).is_infinite());
        assert!(f16_bits_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn subnormal_roundtrip() {
        for bits in [0x0001u16, 0x0003, 0x03ff, 0x83ff, 0x0200] {
            let f = f16_bits_to_f32(bits);
            assert_eq!(f32_to_f16_bits(f), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn all_f16_values_roundtrip() {
        // Every finite half value must survive f16 → f32 → f16 exactly.
        for bits in 0..=0xffffu16 {
            let exp = (bits >> 10) & 0x1f;
            if exp == 0x1f {
                continue; // inf/NaN: NaN payloads may not roundtrip exactly
            }
            let f = f16_bits_to_f32(bits);
            assert_eq!(f32_to_f16_bits(f), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 in FP16 (11-bit significand);
        // ties go to even (2048).
        assert_eq!(quantize_fp16(2049.0), 2048.0);
        assert_eq!(quantize_fp16(2051.0), 2052.0);
    }

    #[test]
    fn relative_error_bounded() {
        // ULP for normal halves is 2^-11 relative; check a sweep.
        let mut x = 1e-3f32;
        while x < 6e4 {
            let q = quantize_fp16(x);
            assert!(((q - x) / x).abs() <= 2.0f32.powi(-11), "{x} -> {q}");
            x *= 1.37;
        }
    }
}

//! Integer group-dot kernels — the innermost loops of the
//! dequantization-free execution backend (paper Eq. (5), Fig. 7).
//!
//! Every kernel consumes *codes* (INT8 activation codes and 4-bit weight
//! codes) and returns an exact integer accumulation; the group scales are
//! applied once per group by the caller, outside the integer loop. This is
//! precisely the hardware contract: a multiply-accumulate lane, a
//! shift-accumulate lane, and a single per-group recombination — no
//! per-element dequantization anywhere.
//!
//! The kernels live in `mant-numerics` (below the tensor and quant layers)
//! so that every higher layer — the fused GEMM/GEMV in `mant-quant`, the
//! incremental KV-cache attention, the benches — shares one implementation.

use crate::mant::Mant;

/// `psum1` operand per 4-bit code (sign bit 3, magnitude bits 0–2):
/// `±i`. Codes are data-independent of the coefficient `a`, so the lane
/// operands are a fixed 16-entry table — the software analogue of the
/// MAC lane's trivial decoder.
const PSUM1_LUT: [i32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 0, -1, -2, -3, -4, -5, -6, -7];

/// `psum2` operand per 4-bit code: `±2^i` (the SAC lane's shift network).
const PSUM2_LUT: [i32; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, -1, -2, -4, -8, -16, -32, -64, -128,
];

/// Sign-extended value per INT4 nibble (two's complement).
const INT4_LUT: [i32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, -8, -7, -6, -5, -4, -3, -2, -1];

/// The two-psum MANT group kernel: `Σ x·(±(a·i + 2^i))` computed as
/// `a · Σ x·(±i) + Σ x·(±2^i)` (MAC lane + SAC lane, paper Eq. (5)).
/// Bit-exact integer arithmetic; the per-code lane operands come from
/// fixed 16-entry tables, so the inner loop is branch-free.
///
/// # Panics
///
/// Debug-asserts that the slices have equal length; in release the shorter
/// slice bounds the accumulation.
pub fn mant_group_psums(xcodes: &[i8], wcodes: &[u8], mant: Mant) -> i64 {
    debug_assert_eq!(xcodes.len(), wcodes.len());
    let mut psum1 = 0i64;
    let mut psum2 = 0i64;
    for (&xc, &wc) in xcodes.iter().zip(wcodes.iter()) {
        let x = i64::from(xc);
        let idx = usize::from(wc & 0x0f);
        psum1 += x * i64::from(PSUM1_LUT[idx]);
        psum2 += x * i64::from(PSUM2_LUT[idx]);
    }
    mant.combine_psums(psum1, psum2)
}

/// The INT4 group kernel: a single plain MAC lane over sign-extended
/// nibbles (the "additional INT option" groups, Sec. V-A).
pub fn int4_group_mac(xcodes: &[i8], wcodes: &[u8]) -> i64 {
    debug_assert_eq!(xcodes.len(), wcodes.len());
    let mut acc = 0i64;
    for (&xc, &wc) in xcodes.iter().zip(wcodes.iter()) {
        acc += i64::from(xc) * i64::from(INT4_LUT[usize::from(wc & 0x0f)]);
    }
    acc
}

/// The 16-entry decoded-value table of a MANT coefficient: entry `b` is
/// `±(a·i + 2^i)` for code bits `b` — i.e. the MAC- and SAC-lane operands
/// already recombined. Built once per distinct dtype, this table seeds
/// both the [`PairLut`] the packed kernels walk and the byte-shuffle
/// tables of the SIMD tiers (`crate::simd`). Exact by integer
/// distributivity: `Σ x·(a·(±i) + (±2^i)) = a·Σ x·(±i) + Σ x·(±2^i)`,
/// so any kernel built on it is bit-identical to [`mant_group_psums`].
pub fn mant_decode_lut(mant: Mant) -> [i32; 16] {
    let mut lut = [0i32; 16];
    for (bits, entry) in lut.iter_mut().enumerate() {
        *entry = mant.decode(crate::mant::MantCode::from_bits(bits as u8));
    }
    lut
}

/// The 16-entry decoded-value table for INT4 groups (sign-extended
/// nibbles) — the single-lane counterpart of [`mant_decode_lut`].
pub fn int4_decode_lut() -> [i32; 16] {
    INT4_LUT
}

/// A 256-entry **pair-decode table**: entry `b` holds the two pre-decoded
/// integer operands of the packed byte `b` — `[decode(b & 0xf),
/// decode(b >> 4)]`. One load and one table hit replace the two masked
/// 16-entry lookups the one-code-per-byte kernels pay per element, which
/// is what lets the packed kernels consume the nibble-packed working
/// representation directly.
pub type PairLut = [[i32; 2]; 256];

/// Builds the [`PairLut`] of a 16-entry decoded-value table
/// ([`mant_decode_lut`] / [`int4_decode_lut`]). Built once per distinct
/// group dtype and reused across every token, batch row, and cached
/// vector that carries that dtype.
pub fn pair_decode_lut(lut16: &[i32; 16]) -> PairLut {
    let mut lut = [[0i32; 2]; 256];
    for (b, entry) in lut.iter_mut().enumerate() {
        *entry = [lut16[b & 0x0f], lut16[b >> 4]];
    }
    lut
}

/// The largest group length the packed kernels accept with their i32
/// accumulators. Worst case per element: `|x| ≤ 128` (INT8 code) times
/// `|decoded| ≤ 127·7 + 128 = 1017` (MANT at `a = 127`, top level,
/// negative sign) = 130 176; `16 384 × 130 176 = 2 132 803 584 <
/// i32::MAX = 2 147 483 647`, so any group up to 16 384 elements — two
/// orders of magnitude above the paper's group sizes — sums exactly in
/// i32, and the widening to i64 happens once at group recombination
/// instead of on every multiply.
pub const MAX_I32_GROUP: usize = 16_384;

/// Integer dot of INT8 activation codes against a **nibble-packed** weight
/// group through a [`PairLut`]: per code pair, one packed-byte load, one
/// table hit, and two multiply-accumulates into an i32 group accumulator
/// (see [`MAX_I32_GROUP`] for the overflow bound). An odd `xcodes` length
/// consumes only the final byte's low nibble. Bit-identical to
/// [`mant_group_psums`] / [`int4_group_mac`] on the unpacked codes:
/// integer arithmetic is exact and the pair table recombines the same
/// per-code decoded operands.
///
/// # Panics
///
/// Debug-asserts `wpacked` holds exactly `xcodes.len().div_ceil(2)` bytes
/// and the group is within [`MAX_I32_GROUP`].
pub fn dot_packed(xcodes: &[i8], wpacked: &[u8], lut: &PairLut) -> i64 {
    debug_assert_eq!(wpacked.len(), xcodes.len().div_ceil(2));
    debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
    let mut acc = 0i32;
    let mut pairs = xcodes.chunks_exact(2);
    for (xp, &b) in pairs.by_ref().zip(wpacked.iter()) {
        let ops = &lut[usize::from(b)];
        acc += i32::from(xp[0]) * ops[0] + i32::from(xp[1]) * ops[1];
    }
    if let [x] = pairs.remainder() {
        acc += i32::from(*x) * lut[usize::from(wpacked[xcodes.len() / 2])][0];
    }
    i64::from(acc)
}

/// Four-row tile of [`dot_packed`]: one activation group swept against
/// four packed weight groups in a single pass, so each activation byte
/// pair is loaded once per tile instead of once per output row — the
/// inner kernel of the cache-blocked GEMM/GEMV-batch. Each lane's
/// accumulation order matches a standalone [`dot_packed`] call, so the
/// four results are bit-identical to four separate calls.
///
/// # Panics
///
/// Debug-asserts every packed row holds `xcodes.len().div_ceil(2)` bytes
/// and the group is within [`MAX_I32_GROUP`].
pub fn dot_packed_x4(xcodes: &[i8], w: [&[u8]; 4], luts: [&PairLut; 4]) -> [i64; 4] {
    debug_assert!(w.iter().all(|r| r.len() == xcodes.len().div_ceil(2)));
    debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
    let mut acc = [0i32; 4];
    let mut pairs = xcodes.chunks_exact(2);
    for (i, xp) in pairs.by_ref().enumerate() {
        let (x0, x1) = (i32::from(xp[0]), i32::from(xp[1]));
        for lane in 0..4 {
            let ops = &luts[lane][usize::from(w[lane][i])];
            acc[lane] += x0 * ops[0] + x1 * ops[1];
        }
    }
    if let [x] = pairs.remainder() {
        let x = i32::from(*x);
        let last = xcodes.len() / 2;
        for lane in 0..4 {
            acc[lane] += x * luts[lane][usize::from(w[lane][last])][0];
        }
    }
    acc.map(i64::from)
}

/// Decodes a nibble-packed weight group into its integer operands in
/// natural code order — the amortization step of the decode-once GEMM:
/// for a batch of activations, each weight group is decoded to i16
/// **once** and every batch member then sweeps the decoded operands with
/// the plain [`dot_i8_i16`] MAC, instead of paying the pair-table walk
/// per member. Entry `i` of `out` is exactly `lut`'s decoded value for
/// code `i` (decoded MANT operands span ±1017, comfortably inside i16 —
/// see [`MAX_I32_GROUP`]'s derivation), so any dot over the decoded
/// operands is bit-identical to the fused packed kernels.
///
/// `len` is the number of codes; an odd `len` consumes only the final
/// byte's low nibble, mirroring [`dot_packed`].
///
/// # Panics
///
/// Debug-asserts `wpacked` holds `len.div_ceil(2)` bytes and `out` holds
/// exactly `len` entries.
pub fn decode_packed_i16(wpacked: &[u8], len: usize, lut: &PairLut, out: &mut [i16]) {
    debug_assert_eq!(wpacked.len(), len.div_ceil(2));
    debug_assert_eq!(out.len(), len);
    let mut pairs = out.chunks_exact_mut(2);
    for (op, &b) in pairs.by_ref().zip(wpacked.iter()) {
        let ops = &lut[usize::from(b)];
        op[0] = ops[0] as i16;
        op[1] = ops[1] as i16;
    }
    if let [o] = pairs.into_remainder() {
        *o = lut[usize::from(wpacked[len / 2])][0] as i16;
    }
}

/// Integer dot of INT8 activation codes against a group's **pre-decoded**
/// i16 operands ([`decode_packed_i16`]) — the per-member inner loop of
/// the decode-once GEMM. Bit-identical to [`dot_packed`] on the packed
/// codes: the decoded operands are the identical integers and the i32
/// accumulation is exact under the [`MAX_I32_GROUP`] bound, so any
/// summation order gives the same total.
///
/// # Panics
///
/// Debug-asserts equal lengths within [`MAX_I32_GROUP`].
pub fn dot_i8_i16(xcodes: &[i8], w: &[i16]) -> i64 {
    debug_assert_eq!(xcodes.len(), w.len());
    debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
    let mut acc = 0i32;
    for (&x, &wv) in xcodes.iter().zip(w.iter()) {
        acc += i32::from(x) * i32::from(wv);
    }
    i64::from(acc)
}

/// Plain INT8 × INT8 dot product — the staging-window lane of the V-cache
/// attention path (`P·V` against rows still held in the INT8 process
/// window).
pub fn int8_dot(a: &[i8], b: &[i8]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| i64::from(x) * i64::from(y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::mant::MantCode;

    #[test]
    fn luts_match_the_code_model() {
        for bits in 0..16u8 {
            let c = MantCode::from_bits(bits);
            assert_eq!(
                PSUM1_LUT[bits as usize],
                Mant::psum1_operand(c),
                "psum1 {bits}"
            );
            assert_eq!(
                PSUM2_LUT[bits as usize],
                Mant::psum2_operand(c),
                "psum2 {bits}"
            );
            assert_eq!(INT4_LUT[bits as usize], i32::from(((bits << 4) as i8) >> 4));
        }
    }

    #[test]
    fn mant_psums_match_scalar_decode() {
        for a in [0u32, 5, 17, 25, 60, 127] {
            let mant = Mant::new(a).unwrap();
            let xcodes: Vec<i8> = vec![5, -3, 127, -128, 0, 1, 77, -77];
            let wcodes: Vec<u8> = vec![0x0, 0x9, 0x7, 0xf, 0x3, 0x8, 0x5, 0xc];
            let fused = mant_group_psums(&xcodes, &wcodes, mant);
            let mut expect = 0i64;
            for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
                expect += i64::from(x) * i64::from(mant.decode(MantCode::from_bits(w)));
            }
            assert_eq!(fused, expect, "a={a}");
        }
    }

    #[test]
    fn int4_mac_matches_scalar() {
        let xcodes: Vec<i8> = vec![5, -3, 127, -128, 0, 1];
        let wcodes: Vec<u8> = vec![0x1, 0xf, 0x7, 0x9, 0x0, 0x8];
        let mac = int4_group_mac(&xcodes, &wcodes);
        let mut expect = 0i64;
        for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
            let wv = ((w << 4) as i8) >> 4;
            expect += i64::from(x) * i64::from(wv);
        }
        assert_eq!(mac, expect);
    }

    #[test]
    fn int8_dot_matches_scalar() {
        let a: Vec<i8> = vec![127, -128, 3, 0, -7];
        let b: Vec<i8> = vec![-128, 127, 9, 55, -1];
        let expect: i64 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| i64::from(x) * i64::from(y))
            .sum();
        assert_eq!(int8_dot(&a, &b), expect);
    }

    #[test]
    fn decode_lut_dot_matches_lane_kernels() {
        // Decode-once exactness (the invariant the retired `decode_group`
        // / `dot_decoded` pair carried, now owned by the LUT-seeded
        // kernels): a plain MAC over 16-entry-table-decoded operands is
        // bit-identical to the two-lane MANT kernel and the INT4 MAC.
        let xcodes: Vec<i8> = vec![5, -3, 127, -128, 0, 1, 77, -77];
        let wcodes: Vec<u8> = (0..8u8).map(|i| (i * 3) ^ 0x9).collect();
        let decoded_dot = |lut16: &[i32; 16]| -> i64 {
            xcodes
                .iter()
                .zip(wcodes.iter())
                .map(|(&x, &w)| i64::from(x) * i64::from(lut16[usize::from(w & 0x0f)]))
                .sum()
        };
        for a in [0u32, 5, 17, 25, 60, 127] {
            let mant = Mant::new(a).unwrap();
            assert_eq!(
                decoded_dot(&mant_decode_lut(mant)),
                mant_group_psums(&xcodes, &wcodes, mant),
                "a={a}"
            );
        }
        assert_eq!(
            decoded_dot(&int4_decode_lut()),
            int4_group_mac(&xcodes, &wcodes)
        );
    }

    #[test]
    fn no_overflow_at_extremes() {
        // 128-element group of worst-case magnitudes stays well inside i64.
        let xcodes = vec![-128i8; 128];
        let wcodes = vec![0xfu8; 128]; // -(127·7 + 128) at a = 127
        let v = mant_group_psums(&xcodes, &wcodes, Mant::new(127).unwrap());
        assert_eq!(v, 128i64 * 128 * (127 * 7 + 128));
    }

    #[test]
    fn packed_dot_matches_lane_kernels() {
        use crate::packing::pack_nibbles;
        // Even and odd group lengths: the packed pair-LUT kernel must be
        // bit-identical to the unpacked two-lane MANT kernel and the INT4
        // MAC (the invariant the packed working representation rests on).
        for len in [1usize, 2, 7, 8, 63, 64] {
            let xcodes: Vec<i8> = (0..len).map(|i| ((i * 37) % 255) as u8 as i8).collect();
            let wcodes: Vec<u8> = (0..len).map(|i| ((i * 7) % 16) as u8).collect();
            let packed = pack_nibbles(&wcodes);
            for a in [0u32, 5, 17, 25, 60, 127] {
                let mant = Mant::new(a).unwrap();
                assert_eq!(
                    dot_packed(&xcodes, &packed, &pair_decode_lut(&mant_decode_lut(mant))),
                    mant_group_psums(&xcodes, &wcodes, mant),
                    "a={a} len={len}"
                );
            }
            assert_eq!(
                dot_packed(&xcodes, &packed, &pair_decode_lut(&int4_decode_lut())),
                int4_group_mac(&xcodes, &wcodes),
                "len={len}"
            );
        }
    }

    #[test]
    fn packed_dot_x4_matches_four_singles() {
        use crate::packing::pack_nibbles;
        for len in [7usize, 64] {
            let xcodes: Vec<i8> = (0..len).map(|i| ((i * 91) % 255) as u8 as i8).collect();
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|r| (0..len).map(|i| ((i * 3 + r * 5) % 16) as u8).collect())
                .collect();
            let packed: Vec<Vec<u8>> = rows.iter().map(|r| pack_nibbles(r)).collect();
            let luts: Vec<PairLut> = [0u32, 17, 60, 127]
                .iter()
                .map(|&a| pair_decode_lut(&mant_decode_lut(Mant::new(a).unwrap())))
                .collect();
            let tiled = dot_packed_x4(
                &xcodes,
                [&packed[0], &packed[1], &packed[2], &packed[3]],
                [&luts[0], &luts[1], &luts[2], &luts[3]],
            );
            for lane in 0..4 {
                assert_eq!(
                    tiled[lane],
                    dot_packed(&xcodes, &packed[lane], &luts[lane]),
                    "lane {lane} len {len}"
                );
            }
        }
    }

    #[test]
    fn packed_i32_group_bound_is_tight() {
        use crate::packing::pack_nibbles;
        // Worst-case magnitudes — x = -128, code 0xf at a = 127 decoding to
        // -(127·7 + 128) = -1017 — at the maximum admissible group length.
        // The per-group i32 sum reaches 2 132 803 584, within 0.7% of
        // i32::MAX: the bound in MAX_I32_GROUP's docs is tight, and the
        // packed kernel still sums it exactly.
        let mant = Mant::new(127).unwrap();
        let lut = pair_decode_lut(&mant_decode_lut(mant));
        let xcodes = vec![-128i8; MAX_I32_GROUP];
        let wcodes = vec![0xfu8; MAX_I32_GROUP];
        let packed = pack_nibbles(&wcodes);
        let expect = MAX_I32_GROUP as i64 * 128 * (127 * 7 + 128);
        assert!(expect <= i64::from(i32::MAX));
        assert!(expect > i64::from(i32::MAX) * 99 / 100, "bound is tight");
        assert_eq!(dot_packed(&xcodes, &packed, &lut), expect);
        assert_eq!(mant_group_psums(&xcodes, &wcodes, mant), expect);
    }

    #[test]
    fn decode_then_dot_matches_packed_dot() {
        use crate::packing::pack_nibbles;
        // The decode-once pair must be bit-identical to the fused packed
        // kernel on every length, including odd tails.
        for len in [1usize, 2, 7, 8, 63, 64, 65] {
            let xcodes: Vec<i8> = (0..len).map(|i| ((i * 53) % 255) as u8 as i8).collect();
            let wcodes: Vec<u8> = (0..len).map(|i| ((i * 11) % 16) as u8).collect();
            let packed = pack_nibbles(&wcodes);
            for a in [0u32, 5, 17, 60, 127] {
                let mant = Mant::new(a).unwrap();
                let lut = pair_decode_lut(&mant_decode_lut(mant));
                let mut dec = vec![0i16; len];
                decode_packed_i16(&packed, len, &lut, &mut dec);
                for (i, (&d, &w)) in dec.iter().zip(wcodes.iter()).enumerate() {
                    assert_eq!(i32::from(d), lut[usize::from(w)][0], "a={a} code {i}");
                }
                assert_eq!(
                    dot_i8_i16(&xcodes, &dec),
                    dot_packed(&xcodes, &packed, &lut),
                    "a={a} len={len}"
                );
            }
        }
    }

    #[test]
    fn dot_i8_i16_exact_at_i32_bound() {
        // Worst-case magnitudes at the maximum admissible group length —
        // the decoded-operand MAC must sum exactly like the packed kernel.
        let xcodes = vec![-128i8; MAX_I32_GROUP];
        let dec = vec![-(127i16 * 7 + 128); MAX_I32_GROUP];
        assert_eq!(
            dot_i8_i16(&xcodes, &dec),
            MAX_I32_GROUP as i64 * 128 * (127 * 7 + 128)
        );
    }

    #[test]
    fn pair_lut_agrees_with_scalar_lut() {
        let mant = Mant::new(17).unwrap();
        let l16 = mant_decode_lut(mant);
        let pair = pair_decode_lut(&l16);
        for b in 0..=255u8 {
            assert_eq!(pair[b as usize][0], l16[usize::from(b & 0x0f)]);
            assert_eq!(pair[b as usize][1], l16[usize::from(b >> 4)]);
        }
    }
}

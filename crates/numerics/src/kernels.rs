//! Integer group-dot kernels — the innermost loops of the
//! dequantization-free execution backend (paper Eq. (5), Fig. 7).
//!
//! Every kernel consumes *codes* (INT8 activation codes and 4-bit weight
//! codes) and returns an exact integer accumulation; the group scales are
//! applied once per group by the caller, outside the integer loop. This is
//! precisely the hardware contract: a multiply-accumulate lane, a
//! shift-accumulate lane, and a single per-group recombination — no
//! per-element dequantization anywhere.
//!
//! The kernels live in `mant-numerics` (below the tensor and quant layers)
//! so that every higher layer — the fused GEMM/GEMV in `mant-quant`, the
//! incremental KV-cache attention, the benches — shares one implementation.

use crate::mant::Mant;

/// `psum1` operand per 4-bit code (sign bit 3, magnitude bits 0–2):
/// `±i`. Codes are data-independent of the coefficient `a`, so the lane
/// operands are a fixed 16-entry table — the software analogue of the
/// MAC lane's trivial decoder.
const PSUM1_LUT: [i32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 0, -1, -2, -3, -4, -5, -6, -7];

/// `psum2` operand per 4-bit code: `±2^i` (the SAC lane's shift network).
const PSUM2_LUT: [i32; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, -1, -2, -4, -8, -16, -32, -64, -128,
];

/// Sign-extended value per INT4 nibble (two's complement).
const INT4_LUT: [i32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, -8, -7, -6, -5, -4, -3, -2, -1];

/// The two-psum MANT group kernel: `Σ x·(±(a·i + 2^i))` computed as
/// `a · Σ x·(±i) + Σ x·(±2^i)` (MAC lane + SAC lane, paper Eq. (5)).
/// Bit-exact integer arithmetic; the per-code lane operands come from
/// fixed 16-entry tables, so the inner loop is branch-free.
///
/// # Panics
///
/// Debug-asserts that the slices have equal length; in release the shorter
/// slice bounds the accumulation.
pub fn mant_group_psums(xcodes: &[i8], wcodes: &[u8], mant: Mant) -> i64 {
    debug_assert_eq!(xcodes.len(), wcodes.len());
    let mut psum1 = 0i64;
    let mut psum2 = 0i64;
    for (&xc, &wc) in xcodes.iter().zip(wcodes.iter()) {
        let x = i64::from(xc);
        let idx = usize::from(wc & 0x0f);
        psum1 += x * i64::from(PSUM1_LUT[idx]);
        psum2 += x * i64::from(PSUM2_LUT[idx]);
    }
    mant.combine_psums(psum1, psum2)
}

/// The INT4 group kernel: a single plain MAC lane over sign-extended
/// nibbles (the "additional INT option" groups, Sec. V-A).
pub fn int4_group_mac(xcodes: &[i8], wcodes: &[u8]) -> i64 {
    debug_assert_eq!(xcodes.len(), wcodes.len());
    let mut acc = 0i64;
    for (&xc, &wc) in xcodes.iter().zip(wcodes.iter()) {
        acc += i64::from(xc) * i64::from(INT4_LUT[usize::from(wc & 0x0f)]);
    }
    acc
}

/// Plain INT8 × INT8 dot product — the staging-window lane of the V-cache
/// attention path (`P·V` against rows still held in the INT8 process
/// window).
pub fn int8_dot(a: &[i8], b: &[i8]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| i64::from(x) * i64::from(y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::mant::MantCode;

    #[test]
    fn luts_match_the_code_model() {
        for bits in 0..16u8 {
            let c = MantCode::from_bits(bits);
            assert_eq!(
                PSUM1_LUT[bits as usize],
                Mant::psum1_operand(c),
                "psum1 {bits}"
            );
            assert_eq!(
                PSUM2_LUT[bits as usize],
                Mant::psum2_operand(c),
                "psum2 {bits}"
            );
            assert_eq!(INT4_LUT[bits as usize], i32::from(((bits << 4) as i8) >> 4));
        }
    }

    #[test]
    fn mant_psums_match_scalar_decode() {
        for a in [0u32, 5, 17, 25, 60, 127] {
            let mant = Mant::new(a).unwrap();
            let xcodes: Vec<i8> = vec![5, -3, 127, -128, 0, 1, 77, -77];
            let wcodes: Vec<u8> = vec![0x0, 0x9, 0x7, 0xf, 0x3, 0x8, 0x5, 0xc];
            let fused = mant_group_psums(&xcodes, &wcodes, mant);
            let mut expect = 0i64;
            for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
                expect += i64::from(x) * i64::from(mant.decode(MantCode::from_bits(w)));
            }
            assert_eq!(fused, expect, "a={a}");
        }
    }

    #[test]
    fn int4_mac_matches_scalar() {
        let xcodes: Vec<i8> = vec![5, -3, 127, -128, 0, 1];
        let wcodes: Vec<u8> = vec![0x1, 0xf, 0x7, 0x9, 0x0, 0x8];
        let mac = int4_group_mac(&xcodes, &wcodes);
        let mut expect = 0i64;
        for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
            let wv = ((w << 4) as i8) >> 4;
            expect += i64::from(x) * i64::from(wv);
        }
        assert_eq!(mac, expect);
    }

    #[test]
    fn int8_dot_matches_scalar() {
        let a: Vec<i8> = vec![127, -128, 3, 0, -7];
        let b: Vec<i8> = vec![-128, 127, 9, 55, -1];
        let expect: i64 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| i64::from(x) * i64::from(y))
            .sum();
        assert_eq!(int8_dot(&a, &b), expect);
    }

    #[test]
    fn no_overflow_at_extremes() {
        // 128-element group of worst-case magnitudes stays well inside i64.
        let xcodes = vec![-128i8; 128];
        let wcodes = vec![0xfu8; 128]; // -(127·7 + 128) at a = 127
        let v = mant_group_psums(&xcodes, &wcodes, Mant::new(127).unwrap());
        assert_eq!(v, 128i64 * 128 * (127 * 7 + 128));
    }
}

//! MXFP4: microscaling float — E2M1 elements with an E8M0 shared scale.
//!
//! MXFP (OCP Microscaling) resembles group quantization but constrains the
//! per-block scale to a *power of two* (an 8-bit exponent, E8M0). The paper's
//! Tbl. V shows this scale restriction costs accuracy (PPL 7.16 at G-32)
//! relative to an FP16 scale.

use crate::grid::Grid;

/// Positive magnitudes of the FP4 E2M1 element type:
/// `{0, 0.5, 1, 1.5, 2, 3, 4, 6}`.
pub fn fp4_e2m1_levels() -> [f32; 8] {
    [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]
}

/// The symmetric FP4 (E2M1) grid.
///
/// # Example
///
/// ```
/// use mant_numerics::fp4_e2m1_grid;
///
/// assert_eq!(fp4_e2m1_grid().quantize(2.4), 2.0);
/// ```
pub fn fp4_e2m1_grid() -> Grid {
    Grid::symmetric(&fp4_e2m1_levels()).expect("E2M1 levels are finite")
}

/// Rounds a positive scale to the nearest power of two not below the value
/// needed to keep the block in range — the E8M0 shared-scale behaviour.
///
/// MX implementations take `ceil(log2(amax / elem_max))` so the block max
/// never saturates; the cost is up to a 2× over-wide scale, which inflates
/// rounding error (the Tbl. V effect).
///
/// Returns 1.0 for non-positive or non-finite input.
pub fn e8m0_quantize_scale(ideal_scale: f32) -> f32 {
    if !ideal_scale.is_finite() || ideal_scale <= 0.0 {
        return 1.0;
    }
    let e = ideal_scale.log2().ceil();
    2.0f32.powi(e as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2m1_grid_shape() {
        let g = fp4_e2m1_grid();
        assert_eq!(g.len(), 15);
        assert_eq!(g.max_abs(), 6.0);
    }

    #[test]
    fn e8m0_rounds_up_to_power_of_two() {
        assert_eq!(e8m0_quantize_scale(1.0), 1.0);
        assert_eq!(e8m0_quantize_scale(1.1), 2.0);
        assert_eq!(e8m0_quantize_scale(2.0), 2.0);
        assert_eq!(e8m0_quantize_scale(3.7), 4.0);
        assert_eq!(e8m0_quantize_scale(0.3), 0.5);
    }

    #[test]
    fn e8m0_degenerate_inputs() {
        assert_eq!(e8m0_quantize_scale(0.0), 1.0);
        assert_eq!(e8m0_quantize_scale(-1.0), 1.0);
        assert_eq!(e8m0_quantize_scale(f32::NAN), 1.0);
        assert_eq!(e8m0_quantize_scale(f32::INFINITY), 1.0);
    }

    #[test]
    fn e8m0_never_saturates_block_max() {
        // scale ≥ ideal scale always, so amax/scale ≤ elem_max.
        for ideal in [0.7f32, 1.3, 5.9, 100.0, 0.011] {
            assert!(e8m0_quantize_scale(ideal) >= ideal * 0.999_999);
        }
    }
}

//! NormalFloat (NF) grids: Gaussian-quantile data types from QLoRA.
//!
//! The paper defines NF for its comparison (Eq. (3)) as
//! `y_NF(i) = Φ⁻¹(i·(1−ε)·0.5/7 + 0.5)`, `i ∈ [0, 7]`, a symmetric 8-level
//! positive half; we also provide the exact asymmetric 16-entry NF4 table
//! from QLoRA for completeness.

use crate::grid::Grid;
use crate::probit::probit;

/// The ε that keeps Φ⁻¹ finite at `i = 7`. The paper leaves ε unspecified;
/// we follow QLoRA's convention of a half-bin offset, `1/15`.
pub const NF_EPSILON: f64 = 1.0 / 15.0;

/// Positive NF levels per the paper's Eq. (3), normalized to max 1.
pub fn nf4_paper_levels() -> [f32; 8] {
    let mut raw = [0.0f64; 8];
    for (i, slot) in raw.iter_mut().enumerate().skip(1) {
        let p = i as f64 * (1.0 - NF_EPSILON) * 0.5 / 7.0 + 0.5;
        *slot = probit(p);
    }
    let max = raw[7];
    let mut out = [0.0f32; 8];
    for (o, r) in out.iter_mut().zip(raw.iter()) {
        *o = (r / max) as f32;
    }
    out
}

/// The symmetric NF4 grid per the paper's formulation.
///
/// # Example
///
/// ```
/// use mant_numerics::nf4_paper_grid;
///
/// let g = nf4_paper_grid();
/// assert_eq!(g.len(), 15); // ±7 nonzero quantiles + shared zero
/// ```
pub fn nf4_paper_grid() -> Grid {
    Grid::symmetric(&nf4_paper_levels()).expect("NF levels are finite")
}

/// The exact NF4 codebook from QLoRA (Dettmers et al., 2023), 16 asymmetric
/// values in `[-1, 1]` built from 2⁴+1 Gaussian quantiles.
pub fn qlora_nf4_grid() -> Grid {
    #[allow(clippy::excessive_precision)] // published table values, kept verbatim
    const NF4: [f32; 16] = [
        -1.0,
        -0.696_192_8,
        -0.525_073_05,
        -0.394_917_5,
        -0.284_441_38,
        -0.184_773_43,
        -0.091_050_03,
        0.0,
        0.079_580_29,
        0.160_930_2,
        0.246_112_3,
        0.337_915_24,
        0.440_709_83,
        0.562_617,
        0.722_956_84,
        1.0,
    ];
    Grid::from_points(NF4.to_vec()).expect("NF4 table is finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_levels_monotone_and_normalized() {
        let l = nf4_paper_levels();
        assert_eq!(l[0], 0.0);
        assert!((l[7] - 1.0).abs() < 1e-6);
        for i in 1..8 {
            assert!(l[i] > l[i - 1]);
        }
    }

    #[test]
    fn paper_levels_densest_near_zero() {
        // Gaussian quantiles: spacing grows toward the tail.
        let l = nf4_paper_levels();
        let first_gap = l[1] - l[0];
        let last_gap = l[7] - l[6];
        assert!(last_gap > 2.0 * first_gap, "{first_gap} vs {last_gap}");
    }

    #[test]
    fn qlora_table_shape() {
        let g = qlora_nf4_grid();
        assert_eq!(g.len(), 16);
        assert_eq!(g.points()[0], -1.0);
        assert_eq!(g.points()[15], 1.0);
        assert_eq!(g.quantize(0.05), 0.079_580_29);
    }

    #[test]
    fn paper_nf_close_to_qlora_positive_half() {
        // Same construction principle → the positive halves should agree to
        // a few percent despite differing offset conventions.
        let paper = nf4_paper_levels();
        let qlora = qlora_nf4_grid();
        let pos: Vec<f32> = qlora
            .points()
            .iter()
            .copied()
            .filter(|&p| p >= 0.0)
            .collect();
        assert_eq!(pos.len(), 9); // 0 plus 8 positives? No: 0 + 8 = 9 minus shared → table has 0..1 in 9 entries
        for (i, &p) in paper.iter().enumerate().skip(1).take(6) {
            // Compare against the nearest QLoRA positive entry.
            let nearest = pos
                .iter()
                .map(|&q| (q - p).abs())
                .fold(f32::INFINITY, f32::min);
            assert!(nearest < 0.06, "level {i}: {p} off by {nearest}");
        }
    }
}

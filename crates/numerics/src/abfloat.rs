//! OliVe's `abfloat`: a biased float for representing outliers.
//!
//! OliVe (ISCA'23) pairs every outlier with a sacrificed "victim" neighbor,
//! freeing code space so the outlier can be stored in `abfloat` — a tiny
//! float whose exponent bias shifts its whole range *outward*, covering the
//! magnitudes where normal 4-bit types have no points.

use crate::error::NumericsError;
use crate::grid::Grid;

/// A 4-bit adaptive-bias float: 1 sign bit, `exp_bits` exponent bits, the
/// rest mantissa, with an additive exponent bias.
///
/// # Example
///
/// ```
/// use mant_numerics::AbFloat;
///
/// // OliVe's outlier config: abfloat4 with bias 4 covers 16..=448-ish.
/// let ab = AbFloat::new(2, 4)?;
/// assert!(ab.grid().max_abs() > 16.0);
/// # Ok::<(), mant_numerics::NumericsError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AbFloat {
    total_bits: u8,
    exp_bits: u8,
    bias: i32,
}

impl AbFloat {
    /// Default total bits including sign.
    pub const TOTAL_BITS: u8 = 4;

    /// Creates a 4-bit abfloat with `exp_bits ∈ [1, 3]` exponent bits and
    /// the given additive bias. With 3 exponent bits the mantissa is empty
    /// and the format degenerates to biased powers of two.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidAbFloat`] if `exp_bits` is 0 or
    /// leaves no room for the sign bit.
    pub fn new(exp_bits: u8, bias: i32) -> Result<Self, NumericsError> {
        Self::with_bits(Self::TOTAL_BITS, exp_bits, bias)
    }

    /// Creates an abfloat with an arbitrary total width (OliVe's 8-bit
    /// outlier format uses 1 sign + 2 exponent + 5 mantissa bits).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidAbFloat`] if `exp_bits` is 0, leaves
    /// no room for the sign bit, or `total_bits` exceeds 8.
    pub fn with_bits(total_bits: u8, exp_bits: u8, bias: i32) -> Result<Self, NumericsError> {
        if exp_bits == 0 || exp_bits >= total_bits || !(2..=8).contains(&total_bits) {
            return Err(NumericsError::InvalidAbFloat { exp_bits });
        }
        Ok(AbFloat {
            total_bits,
            exp_bits,
            bias,
        })
    }

    /// Exponent bit count.
    pub fn exp_bits(&self) -> u8 {
        self.exp_bits
    }

    /// Additive exponent bias.
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Total bit width including sign.
    pub fn total_bits(&self) -> u8 {
        self.total_bits
    }

    /// Positive magnitudes representable by this format.
    pub fn magnitudes(&self) -> Vec<f32> {
        let man_bits = self.total_bits - 1 - self.exp_bits;
        let man_count = 1u32 << man_bits;
        let exp_count = 1u32 << self.exp_bits;
        let mut out = Vec::with_capacity((man_count * exp_count) as usize);
        for e in 0..exp_count {
            for m in 0..man_count {
                // Normal-style value: 2^(e+bias) · (1 + m/man_count).
                let frac = 1.0 + m as f32 / man_count as f32;
                out.push(2.0f32.powi(e as i32 + self.bias) * frac);
            }
        }
        out
    }

    /// The symmetric grid of representable outlier values.
    pub fn grid(&self) -> Grid {
        Grid::symmetric(&self.magnitudes()).expect("abfloat magnitudes are finite")
    }
}

impl Default for AbFloat {
    /// OliVe's default outlier configuration: 4 bits total, 2 exponent
    /// bits, bias 4 — covering one binade past the INT4 range.
    fn default() -> Self {
        AbFloat {
            total_bits: Self::TOTAL_BITS,
            exp_bits: 2,
            bias: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_exp_bits() {
        assert!(AbFloat::new(0, 0).is_err());
        assert!(AbFloat::new(4, 0).is_err());
        assert!(AbFloat::new(1, 0).is_ok());
        assert!(AbFloat::new(2, 0).is_ok());
        // 3 exponent bits leaves zero mantissa bits: pure biased PoT.
        let pot_like = AbFloat::new(3, 0).unwrap();
        assert_eq!(pot_like.magnitudes().len(), 8);
    }

    #[test]
    fn default_covers_outlier_range() {
        let ab = AbFloat::default();
        let mags = ab.magnitudes();
        assert_eq!(mags.len(), 8); // 2 exp bits × 1 mantissa bit × 4 exps = 8
        let min = mags.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = mags.iter().cloned().fold(0.0, f32::max);
        // Starts beyond the INT4 interior and reaches well past it.
        assert_eq!(min, 16.0);
        assert_eq!(max, 192.0);
    }

    #[test]
    fn bias_shifts_range_multiplicatively() {
        let a = AbFloat::new(2, 0).unwrap();
        let b = AbFloat::new(2, 3).unwrap();
        let ma = a.magnitudes();
        let mb = b.magnitudes();
        for (x, y) in ma.iter().zip(mb.iter()) {
            assert!((y / x - 8.0).abs() < 1e-6);
        }
    }

    #[test]
    fn grid_is_symmetric() {
        let g = AbFloat::default().grid();
        let pts = g.points();
        assert_eq!(pts.len(), 16);
        for &p in pts {
            assert!(pts.contains(&-p));
        }
    }
}

//! Power-of-two (PoT) grids, the Laplace-friendly type packaged by ANT.

use crate::grid::Grid;

/// The positive magnitudes of the 4-bit PoT type: `{0, 1, 2, 4, …, 64}`.
///
/// PoT dedicates one code to exact zero and spends the remaining codes on
/// powers of two, matching sharply peaked (Laplace) distributions.
pub fn pot4_levels() -> [f32; 8] {
    [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
}

/// The symmetric 4-bit PoT grid.
///
/// # Example
///
/// ```
/// use mant_numerics::pot4_grid;
///
/// let g = pot4_grid();
/// assert_eq!(g.quantize(33.0), 32.0);
/// assert_eq!(g.quantize(-0.4), 0.0);
/// ```
pub fn pot4_grid() -> Grid {
    Grid::symmetric(&pot4_levels()).expect("PoT levels are finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pot_grid_shape() {
        let g = pot4_grid();
        // ±{1..64} plus a single shared zero → 15 points.
        assert_eq!(g.len(), 15);
        assert_eq!(g.max_abs(), 64.0);
    }

    #[test]
    fn mant_a0_matches_pot_shape_above_zero() {
        // Sec. IV-A: setting a = 0 makes MANT exactly match PoT
        // (modulo PoT's zero code vs MANT's ±1 smallest magnitude).
        let m = crate::mant::Mant::new(0).unwrap();
        let mant_mags: Vec<f32> = m.levels().iter().map(|&l| l as f32).collect();
        let pot = pot4_levels();
        // MANT levels 1..=7 are 2,4,...,128 = 2× PoT levels 1..=7 shifted.
        for i in 1..8 {
            assert_eq!(mant_mags[i - 1] * 2.0, mant_mags[i].clamp(2.0, 256.0));
            assert_eq!(pot[i], 2.0f32.powi(i as i32 - 1));
        }
    }

    #[test]
    fn pot_is_dense_near_zero() {
        let g = pot4_grid();
        assert_eq!(g.quantize(0.49), 0.0);
        assert_eq!(g.quantize(0.51), 1.0);
        assert_eq!(g.quantize(47.0), 32.0);
    }
}

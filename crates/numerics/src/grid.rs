//! Finite quantization grids with nearest-point encoding.
//!
//! Every numeric format in this crate reduces, for accuracy purposes, to a
//! finite set of representable real values. [`Grid`] stores that set sorted
//! ascending and provides O(log n) nearest-point encode, decode, and the
//! normalized views used throughout the paper's analysis (Figs. 5 and 6
//! normalize every grid to its absolute maximum).

use crate::error::NumericsError;

/// A finite, sorted set of representable values of a numeric format.
///
/// # Example
///
/// ```
/// use mant_numerics::Grid;
///
/// let grid = Grid::symmetric(&[1.0, 2.0, 4.0])?;
/// assert_eq!(grid.points(), &[-4.0, -2.0, -1.0, 1.0, 2.0, 4.0]);
/// assert_eq!(grid.quantize(2.9), 2.0);
/// # Ok::<(), mant_numerics::NumericsError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    points: Vec<f32>,
}

impl Grid {
    /// Creates a grid from arbitrary points; sorts and deduplicates them.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::EmptyGrid`] if `points` is empty and
    /// [`NumericsError::NonFiniteGridPoint`] if any point is NaN or infinite.
    pub fn from_points(mut points: Vec<f32>) -> Result<Self, NumericsError> {
        if points.is_empty() {
            return Err(NumericsError::EmptyGrid);
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(NumericsError::NonFiniteGridPoint);
        }
        points.sort_by(|a, b| a.partial_cmp(b).expect("points are finite"));
        points.dedup();
        Ok(Grid { points })
    }

    /// Creates a symmetric grid `{±m : m ∈ magnitudes}`.
    ///
    /// A zero magnitude contributes a single `0.0` point. This mirrors
    /// sign-magnitude encodings: formats whose smallest magnitude is nonzero
    /// (such as MANT, whose level for code 0 is `2^0 = 1`) get the full
    /// `2 × |magnitudes|` points the paper counts in Fig. 6.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid::from_points`].
    pub fn symmetric(magnitudes: &[f32]) -> Result<Self, NumericsError> {
        let mut points = Vec::with_capacity(magnitudes.len() * 2);
        for &m in magnitudes {
            points.push(m);
            points.push(-m);
        }
        Grid::from_points(points)
    }

    /// The representable values, sorted ascending.
    pub fn points(&self) -> &[f32] {
        &self.points
    }

    /// Number of representable values.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest absolute representable value.
    pub fn max_abs(&self) -> f32 {
        self.points.iter().fold(0.0f32, |acc, p| acc.max(p.abs()))
    }

    /// Index of the nearest representable value to `x`.
    ///
    /// Ties are resolved toward the smaller value, matching
    /// round-half-down on the midpoint; NaN encodes to index 0.
    pub fn encode(&self, x: f32) -> usize {
        if x.is_nan() {
            return 0;
        }
        match self
            .points
            .binary_search_by(|p| p.partial_cmp(&x).expect("points are finite"))
        {
            Ok(i) => i,
            Err(i) => {
                if i == 0 {
                    0
                } else if i == self.points.len() {
                    self.points.len() - 1
                } else {
                    let lo = self.points[i - 1];
                    let hi = self.points[i];
                    if (x - lo) <= (hi - x) {
                        i - 1
                    } else {
                        i
                    }
                }
            }
        }
    }

    /// The representable value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn decode(&self, index: usize) -> f32 {
        self.points[index]
    }

    /// Rounds `x` to the nearest representable value.
    pub fn quantize(&self, x: f32) -> f32 {
        self.points[self.encode(x)]
    }

    /// The grid scaled so that its largest absolute value is 1.
    ///
    /// Used when comparing the *shape* of different formats (paper Figs. 5–6).
    ///
    /// # Panics
    ///
    /// Panics if the grid is all zeros (max_abs of 0 cannot be normalized).
    pub fn normalized(&self) -> Grid {
        let m = self.max_abs();
        assert!(m > 0.0, "cannot normalize an all-zero grid");
        Grid {
            points: self.points.iter().map(|p| p / m).collect(),
        }
    }

    /// Mean squared quantization error of this grid over `data`.
    ///
    /// `data` is quantized with a symmetric scale mapping `max |data|` onto
    /// [`Grid::max_abs`], the scheme used everywhere in the paper (Eq. (4)).
    /// Returns 0 for empty data.
    pub fn mse(&self, data: &[f32]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let amax = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if amax == 0.0 {
            // All-zero data quantizes to the nearest point to zero.
            let q = self.quantize(0.0) as f64;
            return q * q;
        }
        let scale = amax / self.max_abs();
        let mut acc = 0.0f64;
        for &v in data {
            let q = self.quantize(v / scale) * scale;
            let e = (v - q) as f64;
            acc += e * e;
        }
        acc / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_sorts_and_dedups() {
        let g = Grid::from_points(vec![3.0, -1.0, 3.0, 0.0]).unwrap();
        assert_eq!(g.points(), &[-1.0, 0.0, 3.0]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_grid_rejected() {
        assert_eq!(Grid::from_points(vec![]), Err(NumericsError::EmptyGrid));
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(
            Grid::from_points(vec![1.0, f32::NAN]),
            Err(NumericsError::NonFiniteGridPoint)
        );
        assert_eq!(
            Grid::from_points(vec![f32::INFINITY]),
            Err(NumericsError::NonFiniteGridPoint)
        );
    }

    #[test]
    fn symmetric_zero_collapses() {
        let g = Grid::symmetric(&[0.0, 1.0]).unwrap();
        assert_eq!(g.points(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn symmetric_nonzero_min_doubles_points() {
        // MANT-style: smallest magnitude 1 → 16 points for 8 magnitudes.
        let mags: Vec<f32> = (0..8).map(|i| 17.0 * i as f32 + (1 << i) as f32).collect();
        let g = Grid::symmetric(&mags).unwrap();
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn encode_nearest_and_clamps() {
        let g = Grid::from_points(vec![-2.0, 0.0, 1.0, 4.0]).unwrap();
        assert_eq!(g.quantize(-100.0), -2.0);
        assert_eq!(g.quantize(100.0), 4.0);
        assert_eq!(g.quantize(0.4), 0.0);
        assert_eq!(g.quantize(0.6), 1.0);
        assert_eq!(g.quantize(1.0), 1.0);
        // Midpoint ties go to the smaller value.
        assert_eq!(g.quantize(2.5), 1.0);
    }

    #[test]
    fn encode_nan_is_zero_index() {
        let g = Grid::from_points(vec![-1.0, 1.0]).unwrap();
        assert_eq!(g.encode(f32::NAN), 0);
    }

    #[test]
    fn decode_roundtrips_encode_on_grid_points() {
        let g = Grid::symmetric(&[1.0, 3.0, 9.0]).unwrap();
        for (i, &p) in g.points().iter().enumerate() {
            assert_eq!(g.encode(p), i);
            assert_eq!(g.decode(i), p);
        }
    }

    #[test]
    fn normalized_max_is_one() {
        let g = Grid::symmetric(&[1.0, 19.0, 247.0]).unwrap();
        let n = g.normalized();
        assert!((n.max_abs() - 1.0).abs() < 1e-6);
        assert!((n.points()[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn mse_zero_for_representable_data() {
        let g = Grid::symmetric(&[1.0, 2.0, 4.0]).unwrap();
        // Data whose amax maps exactly onto the grid max.
        let data = [4.0, -2.0, 1.0, 2.0];
        assert!(g.mse(&data) < 1e-12);
    }

    #[test]
    fn mse_positive_for_off_grid_data() {
        let g = Grid::symmetric(&[1.0, 2.0, 4.0]).unwrap();
        let data = [4.0, 3.1, -2.6];
        assert!(g.mse(&data) > 0.0);
    }

    #[test]
    fn mse_empty_and_all_zero() {
        let g = Grid::symmetric(&[0.0, 1.0]).unwrap();
        assert_eq!(g.mse(&[]), 0.0);
        assert_eq!(g.mse(&[0.0, 0.0]), 0.0);
    }
}

//! Symmetric integer grids (INT4/INT8 and the general case).

use crate::grid::Grid;

/// Symmetric uniform grid `{-max, …, -1, 0, 1, …, max}`.
///
/// # Panics
///
/// Panics if `max == 0`.
///
/// # Example
///
/// ```
/// use mant_numerics::uniform_symmetric_grid;
///
/// let int4 = uniform_symmetric_grid(7);
/// assert_eq!(int4.len(), 15);
/// assert_eq!(int4.max_abs(), 7.0);
/// ```
pub fn uniform_symmetric_grid(max: u32) -> Grid {
    assert!(max > 0, "integer grid needs a positive maximum");
    let mags: Vec<f32> = (0..=max).map(|i| i as f32).collect();
    Grid::symmetric(&mags).expect("integer magnitudes are finite")
}

/// Symmetric INT4 grid over `[-7, 7]`, the paper's 4-bit baseline.
pub fn int4_grid() -> Grid {
    uniform_symmetric_grid(7)
}

/// Symmetric INT8 grid over `[-127, 127]`, used for activations (Sec. V-B).
pub fn int8_grid() -> Grid {
    uniform_symmetric_grid(127)
}

/// Quantizes `x` to a signed symmetric integer of the given magnitude,
/// with round-to-nearest (ties away from zero) and saturation.
///
/// This is the hot-path scalar used by the activation quantizer; it avoids
/// constructing a [`Grid`].
pub fn quantize_symmetric_int(x: f32, max: i32) -> i32 {
    if x.is_nan() {
        return 0;
    }
    let r = x.round() as i64;
    r.clamp(-i64::from(max), i64::from(max)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int4_has_15_points() {
        let g = int4_grid();
        assert_eq!(g.len(), 15);
        assert_eq!(g.points()[0], -7.0);
        assert_eq!(g.points()[14], 7.0);
    }

    #[test]
    fn int8_range() {
        let g = int8_grid();
        assert_eq!(g.len(), 255);
        assert_eq!(g.max_abs(), 127.0);
    }

    #[test]
    fn scalar_quantize_rounds_and_saturates() {
        assert_eq!(quantize_symmetric_int(3.4, 7), 3);
        assert_eq!(quantize_symmetric_int(3.5, 7), 4);
        assert_eq!(quantize_symmetric_int(-3.5, 7), -4);
        assert_eq!(quantize_symmetric_int(1000.0, 127), 127);
        assert_eq!(quantize_symmetric_int(-1000.0, 127), -127);
        assert_eq!(quantize_symmetric_int(f32::NAN, 7), 0);
    }

    #[test]
    fn scalar_matches_grid() {
        let g = int4_grid();
        for x in [-7.6f32, -2.2, -0.49, 0.0, 0.51, 3.3, 6.9, 9.0] {
            assert_eq!(quantize_symmetric_int(x, 7) as f32, g.quantize(x), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "positive maximum")]
    fn zero_max_panics() {
        let _ = uniform_symmetric_grid(0);
    }
}

//! A unified handle over every 4/8-bit format in this crate.

use std::fmt;

use crate::abfloat::AbFloat;
use crate::flint::flint4_grid;
use crate::grid::Grid;
use crate::int::{int4_grid, int8_grid};
use crate::mant::Mant;
use crate::mxfp::fp4_e2m1_grid;
use crate::nf::{nf4_paper_grid, qlora_nf4_grid};
use crate::pot::pot4_grid;

/// Any quantization data type evaluated in the paper.
///
/// # Example
///
/// ```
/// use mant_numerics::{DataType, Mant};
///
/// let dt = DataType::Mant(Mant::new(17)?);
/// assert_eq!(dt.bits(), 4);
/// assert_eq!(dt.grid().len(), 16);
/// # Ok::<(), mant_numerics::NumericsError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum DataType {
    /// Symmetric INT4 (`[-7, 7]`).
    Int4,
    /// Symmetric INT8 (`[-127, 127]`).
    Int8,
    /// The MANT family member with a given coefficient.
    Mant(Mant),
    /// Power of two (ANT's Laplace type).
    Pot4,
    /// ANT's float-int hybrid.
    Flint4,
    /// NormalFloat per the paper's Eq. (3).
    Nf4,
    /// The exact QLoRA NF4 codebook.
    QloraNf4,
    /// MXFP4 element type (E2M1).
    Fp4E2m1,
    /// OliVe's outlier format.
    AbFloat4(AbFloat),
}

impl DataType {
    /// Bit width of one encoded element.
    pub fn bits(&self) -> u8 {
        match self {
            DataType::Int8 => 8,
            _ => 4,
        }
    }

    /// The representable-value grid of this type.
    pub fn grid(&self) -> Grid {
        match self {
            DataType::Int4 => int4_grid(),
            DataType::Int8 => int8_grid(),
            DataType::Mant(m) => m.grid(),
            DataType::Pot4 => pot4_grid(),
            DataType::Flint4 => flint4_grid(),
            DataType::Nf4 => nf4_paper_grid(),
            DataType::QloraNf4 => qlora_nf4_grid(),
            DataType::Fp4E2m1 => fp4_e2m1_grid(),
            DataType::AbFloat4(ab) => ab.grid(),
        }
    }

    /// Whether the accelerator can compute on this type with integer
    /// MAC/SAC units without a decode step (Tbl. I "Computation" column).
    pub fn integer_computable(&self) -> bool {
        matches!(
            self,
            DataType::Int4 | DataType::Int8 | DataType::Mant(_) | DataType::Pot4
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int4 => write!(f, "INT4"),
            DataType::Int8 => write!(f, "INT8"),
            DataType::Mant(m) => write!(f, "MANT(a={})", m.coefficient()),
            DataType::Pot4 => write!(f, "PoT4"),
            DataType::Flint4 => write!(f, "flint4"),
            DataType::Nf4 => write!(f, "NF4"),
            DataType::QloraNf4 => write!(f, "NF4(QLoRA)"),
            DataType::Fp4E2m1 => write!(f, "FP4-E2M1"),
            DataType::AbFloat4(ab) => write!(f, "abfloat4(e{},b{})", ab.exp_bits(), ab.bias()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mant::Mant;

    #[test]
    fn bits_classification() {
        assert_eq!(DataType::Int8.bits(), 8);
        assert_eq!(DataType::Int4.bits(), 4);
        assert_eq!(DataType::Mant(Mant::default()).bits(), 4);
        assert_eq!(DataType::Fp4E2m1.bits(), 4);
    }

    #[test]
    fn all_grids_nonempty_and_symmetric_maxima() {
        let types = [
            DataType::Int4,
            DataType::Int8,
            DataType::Mant(Mant::new(17).unwrap()),
            DataType::Pot4,
            DataType::Flint4,
            DataType::Nf4,
            DataType::QloraNf4,
            DataType::Fp4E2m1,
            DataType::AbFloat4(AbFloat::default()),
        ];
        for t in types {
            let g = t.grid();
            assert!(!g.is_empty(), "{t}");
            assert!(g.max_abs() > 0.0, "{t}");
        }
    }

    #[test]
    fn integer_computability_matches_table1() {
        assert!(DataType::Int4.integer_computable());
        assert!(DataType::Mant(Mant::default()).integer_computable());
        assert!(DataType::Pot4.integer_computable());
        // NF requires an FP16 MAC (Sec. III-B); clustering types need LUTs.
        assert!(!DataType::Nf4.integer_computable());
        assert!(!DataType::QloraNf4.integer_computable());
        assert!(!DataType::Fp4E2m1.integer_computable());
    }

    #[test]
    fn display_nonempty() {
        for t in [
            DataType::Int4,
            DataType::Mant(Mant::default()),
            DataType::AbFloat4(AbFloat::default()),
        ] {
            assert!(!t.to_string().is_empty());
        }
    }
}

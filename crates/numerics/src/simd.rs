//! Runtime-dispatched SIMD kernels — the x86_64 fast paths of the packed
//! integer hot loop.
//!
//! The scalar kernels in [`mod@crate::kernels`] stay verbatim as the
//! **bit-identity oracle**: every function here must return exactly the
//! same bits on every input, and the differential proptests enforce it.
//! That equality is not approximate — it follows from the arithmetic
//! being exact:
//!
//! - The packed dot products are pure integer arithmetic whose per-group
//!   absolute sum is bounded by [`crate::kernels::MAX_I32_GROUP`] below `i32::MAX`, so
//!   *any* partial-sum arrangement (vector lanes, horizontal reductions,
//!   scalar tails) produces the identical total — integer addition is
//!   associative when nothing overflows.
//! - `abs_max` computes a maximum, which is order-independent, and the
//!   `maxps` operand order is chosen so NaN inputs are skipped exactly
//!   like the scalar fold.
//! - INT8 quantization divides by the scale with `divps` (IEEE-exact,
//!   identical to the scalar `/`), then reproduces `f32::round`'s
//!   ties-away-from-zero rule with an exact truncate-and-adjust
//!   construction instead of the (different) nearest-even `roundps` mode.
//!
//! Dispatch is a [`KernelDispatch`] tier selected **once per process** by
//! [`kernels()`] via `is_x86_feature_detected!`: AVX2 (32 codes per
//! iteration), SSSE3 (16 codes), or the scalar oracle. Setting
//! `MANT_FORCE_SCALAR=1` pins the scalar tier for differential testing.
//! Each tier method re-checks the cached CPU-feature flag before entering
//! an `unsafe` SIMD function, so constructing a tier value on hardware
//! without that feature safely falls back to scalar instead of being
//! undefined behavior.
//!
//! The nibble decode follows the classic `pshufb` scheme: a packed byte's
//! two 4-bit codes index a 16-entry decoded-operand table. Decoded MANT
//! operands span ±1017 — too wide for i8 — so each [`KernelLut`] carries
//! the 16 decoded values split into low-byte and high-byte shuffle
//! tables; two `pshufb` hits reassemble the i16 operand, and `pmaddwd`
//! widens the i16×i16 products straight into i32 lane accumulators.

use std::sync::OnceLock;

use crate::int::quantize_symmetric_int;
use crate::kernels::{self, pair_decode_lut, PairLut};

/// A group dtype's decode tables in every shape the kernel tiers need:
/// the 256-entry pair table the scalar kernels walk, plus the 16-entry
/// low/high-byte shuffle tables the SIMD tiers feed to `pshufb`.
///
/// Built once per distinct dtype (see `mant-quant`'s interning plan) from
/// the same 16-entry decoded-value table, so every tier decodes the
/// identical operands.
#[derive(Clone, Debug)]
pub struct KernelLut {
    /// The 256-entry pair-decode table (scalar tier and tails).
    pub pair: PairLut,
    /// Low bytes of the 16 decoded operands, as i16 little-endian.
    pub lo8: [u8; 16],
    /// High bytes of the 16 decoded operands, as i16 little-endian.
    pub hi8: [u8; 16],
}

/// Builds a [`KernelLut`] from a 16-entry decoded-value table
/// ([`crate::kernels::mant_decode_lut`] / [`crate::kernels::int4_decode_lut`]).
///
/// # Panics
///
/// Debug-asserts every decoded operand fits in i16 (MANT's worst case is
/// ±1017, see [`crate::kernels::MAX_I32_GROUP`]'s derivation).
pub fn kernel_lut(lut16: &[i32; 16]) -> KernelLut {
    let mut lo8 = [0u8; 16];
    let mut hi8 = [0u8; 16];
    for (i, &v) in lut16.iter().enumerate() {
        debug_assert!(i32::from(v as i16) == v, "decoded operand {v} exceeds i16");
        let [lo, hi] = (v as i16).to_le_bytes();
        lo8[i] = lo;
        hi8[i] = hi;
    }
    KernelLut {
        pair: pair_decode_lut(lut16),
        lo8,
        hi8,
    }
}

/// The kernel tier every packed-dot and INT8-quantization call routes
/// through — selected once per process by [`kernels()`].
///
/// Tier methods fall back to the scalar oracle whenever the tier's CPU
/// feature is not actually available, so any value of this enum is safe
/// to call on any machine; the results are bit-identical either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelDispatch {
    /// The scalar oracle kernels from [`mod@crate::kernels`].
    Scalar,
    /// 128-bit `pshufb`/`pmaddwd` kernels, 16 codes per iteration.
    Ssse3,
    /// 256-bit kernels, 32 codes per iteration.
    Avx2,
}

/// Whether `MANT_FORCE_SCALAR` pins the process to the scalar tier
/// (set and neither empty nor `"0"`).
pub fn scalar_forced() -> bool {
    std::env::var_os("MANT_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The process-wide kernel tier: [`KernelDispatch::detect`] on first use,
/// or [`KernelDispatch::Scalar`] when `MANT_FORCE_SCALAR=1`. Cached in a
/// `OnceLock`, so the environment is read exactly once.
pub fn kernels() -> KernelDispatch {
    static TIER: OnceLock<KernelDispatch> = OnceLock::new();
    *TIER.get_or_init(|| {
        if scalar_forced() {
            KernelDispatch::Scalar
        } else {
            KernelDispatch::detect()
        }
    })
}

impl KernelDispatch {
    /// Probes the CPU for the best available tier (AVX2 > SSSE3 >
    /// scalar). Ignores `MANT_FORCE_SCALAR`; use [`kernels()`] for the
    /// process-wide choice.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelDispatch::Avx2;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                return KernelDispatch::Ssse3;
            }
        }
        KernelDispatch::Scalar
    }

    /// The tier's name, as reported in bench artifacts and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Ssse3 => "ssse3",
            KernelDispatch::Avx2 => "avx2",
        }
    }

    /// Whether this tier runs vector code (i.e. is not the scalar oracle).
    pub fn is_simd(self) -> bool {
        self != KernelDispatch::Scalar
    }

    /// [`crate::kernels::dot_packed`] through this tier — bit-identical
    /// to the scalar oracle on every input (see the module docs for why).
    ///
    /// # Panics
    ///
    /// Debug-asserts the same contract as the scalar kernel.
    pub fn dot_packed(self, xcodes: &[i8], wpacked: &[u8], lut: &KernelLut) -> i64 {
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::dot_packed_avx2(xcodes, wpacked, lut) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Ssse3 if std::arch::is_x86_feature_detected!("ssse3") => {
                // SAFETY: the match guard just confirmed SSSE3 on this CPU.
                unsafe { x86::dot_packed_ssse3(xcodes, wpacked, lut) }
            }
            _ => kernels::dot_packed(xcodes, wpacked, &lut.pair),
        }
    }

    /// [`crate::kernels::dot_packed_x4`] through this tier: the
    /// activation codes are widened to vector operands once per iteration
    /// and swept across all four weight rows.
    ///
    /// # Panics
    ///
    /// Debug-asserts the same contract as the scalar kernel.
    pub fn dot_packed_x4(self, xcodes: &[i8], w: [&[u8]; 4], luts: [&KernelLut; 4]) -> [i64; 4] {
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::dot_packed_x4_avx2(xcodes, w, luts) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Ssse3 if std::arch::is_x86_feature_detected!("ssse3") => {
                // SAFETY: the match guard just confirmed SSSE3 on this CPU.
                unsafe { x86::dot_packed_x4_ssse3(xcodes, w, luts) }
            }
            _ => kernels::dot_packed_x4(xcodes, w, luts.map(|l| &l.pair)),
        }
    }

    /// A whole row-tile's group dots in one call: group `g` of the result
    /// equals `dot_packed_x4` over the `g`-th `group_size`-code slice of
    /// `xcodes` and the `g`-th packed group of each row, through each
    /// row's `g`-th decode table. One call per 4-row tile amortizes the
    /// per-call setup (dispatch, masks, reduction plumbing) that
    /// dominates `dot_packed_x4` at serving group sizes — the per-group
    /// arithmetic and accumulation order are unchanged, so the results
    /// are bit-identical to the per-group calls.
    ///
    /// `w` holds each row's full packed codes (`groups · ⌈group_size/2⌉`
    /// bytes), `luts[lane][g]` the per-group decode tables, and `out`
    /// receives one `[i64; 4]` per group.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slice lengths agree and `group_size` respects
    /// [`MAX_I32_GROUP`](crate::kernels::MAX_I32_GROUP).
    pub fn dot_packed_x4_groups(
        self,
        xcodes: &[i8],
        w: [&[u8]; 4],
        group_size: usize,
        luts: [&[&KernelLut]; 4],
        out: &mut [[i64; 4]],
    ) {
        let groups = out.len();
        debug_assert_eq!(xcodes.len(), groups * group_size);
        debug_assert!(luts.iter().all(|l| l.len() == groups));
        let gb = group_size.div_ceil(2);
        debug_assert!(w.iter().all(|r| r.len() == groups * gb));
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::dot_packed_x4_groups_avx2(xcodes, w, group_size, luts, out) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Ssse3 if std::arch::is_x86_feature_detected!("ssse3") => {
                for (g, o) in out.iter_mut().enumerate() {
                    // SAFETY: the match guard just confirmed SSSE3.
                    *o = unsafe {
                        x86::dot_packed_x4_ssse3(
                            &xcodes[g * group_size..(g + 1) * group_size],
                            w.map(|r| &r[g * gb..(g + 1) * gb]),
                            [luts[0][g], luts[1][g], luts[2][g], luts[3][g]],
                        )
                    };
                }
            }
            _ => {
                for (g, o) in out.iter_mut().enumerate() {
                    *o = kernels::dot_packed_x4(
                        &xcodes[g * group_size..(g + 1) * group_size],
                        w.map(|r| &r[g * gb..(g + 1) * gb]),
                        [
                            &luts[0][g].pair,
                            &luts[1][g].pair,
                            &luts[2][g].pair,
                            &luts[3][g].pair,
                        ],
                    );
                }
            }
        }
    }

    /// [`crate::kernels::decode_packed_i16`] through this tier — decodes
    /// a nibble-packed weight group to its i16 integer operands in
    /// natural code order, the once-per-tile amortization step of the
    /// decode-once GEMM. Every tier emits the identical operand values
    /// (the SIMD path reassembles them from the same `lo8`/`hi8` shuffle
    /// tables the fused kernels use), so downstream dots are
    /// bit-identical regardless of tier.
    ///
    /// # Panics
    ///
    /// Debug-asserts the same contract as the scalar kernel.
    pub fn decode_packed_i16(self, wpacked: &[u8], len: usize, lut: &KernelLut, out: &mut [i16]) {
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::decode_packed_i16_avx2(wpacked, len, lut, out) }
            }
            _ => kernels::decode_packed_i16(wpacked, len, &lut.pair, out),
        }
    }

    /// Grouped four-row sweep of [`crate::kernels::dot_i8_i16`]: group
    /// `g` of `out` holds the dots of the `g`-th `group_size`-code slice
    /// of `xcodes` against each row's `g`-th decoded-operand slice. The
    /// per-member inner loop of the decode-once GEMM — with the weight
    /// tile already decoded ([`KernelDispatch::decode_packed_i16`]), each
    /// batch member pays only sign-extended loads and `pmaddwd`
    /// multiply-accumulates, no per-member nibble decode. Bit-identical
    /// to the scalar kernel on every input: the products are exact i32s
    /// under the [`MAX_I32_GROUP`](crate::kernels::MAX_I32_GROUP) bound,
    /// so any lane arrangement sums to the same total.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slice lengths agree and `group_size` respects
    /// [`MAX_I32_GROUP`](crate::kernels::MAX_I32_GROUP).
    pub fn dot_i16_x4_groups(
        self,
        xcodes: &[i8],
        w16: [&[i16]; 4],
        group_size: usize,
        out: &mut [[i64; 4]],
    ) {
        let groups = out.len();
        debug_assert_eq!(xcodes.len(), groups * group_size);
        debug_assert!(w16.iter().all(|r| r.len() == groups * group_size));
        debug_assert!(group_size <= kernels::MAX_I32_GROUP, "i32 group bound");
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::dot_i16_x4_groups_avx2(xcodes, w16, group_size, out) }
            }
            _ => {
                for (g, o) in out.iter_mut().enumerate() {
                    let xg = &xcodes[g * group_size..(g + 1) * group_size];
                    for lane in 0..4 {
                        o[lane] = kernels::dot_i8_i16(
                            xg,
                            &w16[lane][g * group_size..(g + 1) * group_size],
                        );
                    }
                }
            }
        }
    }

    /// [`crate::kernels::int8_dot`] through this tier. Unlike the group
    /// dots there is no length bound here (the scalar kernel accumulates
    /// in i64), so the vector tiers drain their i32 lane accumulators to
    /// i64 every `x86::INT8_CHUNK` elements.
    ///
    /// # Panics
    ///
    /// Debug-asserts `a.len() == b.len()`.
    pub fn int8_dot(self, a: &[i8], b: &[i8]) -> i64 {
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::int8_dot_avx2(a, b) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Ssse3 if std::arch::is_x86_feature_detected!("ssse3") => {
                // SAFETY: the match guard just confirmed SSSE3 on this CPU.
                unsafe { x86::int8_dot_ssse3(a, b) }
            }
            _ => kernels::int8_dot(a, b),
        }
    }

    /// Two batch members through [`KernelDispatch::dot_i16_x4_groups`] in
    /// one pass over the decoded weight tile: each 32-operand row block
    /// is loaded **once** and multiply-accumulated against both members'
    /// sign-extended activations. The sweep is load-bound, and weight
    /// loads dominate (eight per block against two activation loads), so
    /// pairing nearly halves the traffic that gates GEMM throughput.
    /// Each member's accumulation chain is instruction-for-instruction
    /// the chain of the single-member sweep, so both results stay
    /// bit-identical to the scalar kernel.
    ///
    /// # Panics
    ///
    /// Debug-asserts the same per-member contract as
    /// [`KernelDispatch::dot_i16_x4_groups`].
    #[allow(clippy::similar_names)]
    pub fn dot_i16_x4_groups_x2(
        self,
        xa: &[i8],
        xb: &[i8],
        w16: [&[i16]; 4],
        group_size: usize,
        out_a: &mut [[i64; 4]],
        out_b: &mut [[i64; 4]],
    ) {
        debug_assert_eq!(xa.len(), xb.len());
        debug_assert_eq!(out_a.len(), out_b.len());
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::dot_i16_x4_groups_x2_avx2(xa, xb, w16, group_size, out_a, out_b) }
            }
            _ => {
                self.dot_i16_x4_groups(xa, w16, group_size, out_a);
                self.dot_i16_x4_groups(xb, w16, group_size, out_b);
            }
        }
    }

    /// `max |x|` over the slice with NaN entries skipped — bit-identical
    /// to the scalar fold `m.max(v.abs())` from 0.0 (a maximum is
    /// order-independent, and `maxps(x, acc)` keeps `acc` when `x` is
    /// NaN, exactly like `f32::max`). The SSSE3 tier uses the x86_64
    /// baseline SSE2 128-bit path; AVX2 uses 256-bit.
    pub fn abs_max(self, xs: &[f32]) -> f32 {
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::abs_max_avx2(xs) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Ssse3 => {
                // SAFETY: SSE2 is unconditionally part of the x86_64
                // baseline target features.
                unsafe { x86::abs_max_sse2(xs) }
            }
            _ => scalar_abs_max(xs),
        }
    }

    /// Symmetric INT8 quantization of a slice against one scale:
    /// `out[i] = clamp(round(xs[i] / scale), ±127)` with NaN → 0 —
    /// bit-identical to [`quantize_symmetric_int`] per element. The AVX2
    /// tier reproduces `f32::round`'s ties-away rule exactly (truncate,
    /// then add ±1 where the exact fractional remainder reaches 0.5); the
    /// SSSE3 tier stays scalar (`roundps` needs SSE4.1, and rounding
    /// differences are not acceptable here).
    ///
    /// # Panics
    ///
    /// Debug-asserts `xs.len() == out.len()`.
    pub fn quantize_i8(self, xs: &[f32], scale: f32, out: &mut [i8]) {
        debug_assert_eq!(xs.len(), out.len());
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: the match guard just confirmed AVX2 on this CPU.
                unsafe { x86::quantize_i8_avx2(xs, scale, out) }
            }
            _ => scalar_quantize_i8(xs, scale, out),
        }
    }
}

/// The scalar oracle for [`KernelDispatch::abs_max`]: the NaN-skipping
/// fold from 0.0 (same expression as `mant-tensor`'s `abs_max`).
pub fn scalar_abs_max(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// The scalar oracle for [`KernelDispatch::quantize_i8`].
pub fn scalar_quantize_i8(xs: &[f32], scale: f32, out: &mut [i8]) {
    debug_assert_eq!(xs.len(), out.len());
    for (o, &v) in out.iter_mut().zip(xs.iter()) {
        *o = quantize_symmetric_int(v / scale, 127) as i8;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use super::{scalar_abs_max, KernelLut};
    use crate::kernels::{self, MAX_I32_GROUP};

    /// Elements per i64 drain of the `int8_dot` i32 lane accumulators.
    /// Each `pmaddwd` adds at most `2 · 128 · 128 = 2^15` per lane; a
    /// chunk contributes at most `2^18 / 16` blocks × 2 madds × `2^15`
    /// = `2^30` per lane on the narrowest (SSSE3) tier — no overflow.
    pub(super) const INT8_CHUNK: usize = 1 << 18;

    /// Reassembles i16 decoded operands from two byte-shuffle hits:
    /// `idx` holds a 4-bit code in the low byte of each i16 lane (high
    /// byte zero), so `pshufb` pulls the operand's low byte from `tlo`
    /// (high byte of the lane gets table entry 0 — masked off) and its
    /// high byte from `thi` (shifted into place; the shift discards the
    /// lane's own stray high byte).
    #[target_feature(enable = "avx2")]
    fn decode16_avx2(idx: __m256i, tlo: __m256i, thi: __m256i, m00ff: __m256i) -> __m256i {
        let lo = _mm256_and_si256(_mm256_shuffle_epi8(tlo, idx), m00ff);
        let hi = _mm256_slli_epi16::<8>(_mm256_shuffle_epi8(thi, idx));
        _mm256_or_si256(lo, hi)
    }

    /// 128-bit twin of [`decode16_avx2`].
    #[target_feature(enable = "ssse3")]
    fn decode16_ssse3(idx: __m128i, tlo: __m128i, thi: __m128i, m00ff: __m128i) -> __m128i {
        let lo = _mm_and_si128(_mm_shuffle_epi8(tlo, idx), m00ff);
        let hi = _mm_slli_epi16::<8>(_mm_shuffle_epi8(thi, idx));
        _mm_or_si128(lo, hi)
    }

    /// Horizontal i32 lane sum of a group-dot accumulator, in registers.
    /// Runs once per group per output row, so it must not round-trip
    /// through memory. Exactness: the lanes partition the group's
    /// products, and under the [`MAX_I32_GROUP`] bound **any** subset of
    /// a group's products sums within i32 — so every intermediate
    /// `padd` here is overflow-free and i32 addition is associative,
    /// giving the scalar kernel's value bit for bit.
    #[target_feature(enable = "avx2")]
    fn hsum_i32x8(v: __m256i) -> i64 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        hsum_i32x4(_mm_add_epi32(lo, hi))
    }

    /// 128-bit twin of [`hsum_i32x8`]; same exactness argument.
    #[target_feature(enable = "sse2")]
    fn hsum_i32x4(v: __m128i) -> i64 {
        let s2 = _mm_add_epi32(v, _mm_unpackhi_epi64(v, v));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32::<0b01>(s2));
        i64::from(_mm_cvtsi128_si32(s1))
    }

    /// Widening horizontal sum for the `int8_dot` chunk drains, where a
    /// lane can hold up to 2^30 and the cross-lane total can exceed i32 —
    /// each lane is widened to i64 before summing. Runs once per
    /// [`INT8_CHUNK`] elements, so the memory round-trip is free.
    #[target_feature(enable = "avx2")]
    fn hsum_i32x8_wide(v: __m256i) -> i64 {
        let mut tmp = [0i32; 8];
        // SAFETY: `tmp` is a writable 32-byte buffer; unaligned store.
        unsafe { _mm256_storeu_si256(tmp.as_mut_ptr().cast(), v) };
        tmp.iter().map(|&l| i64::from(l)).sum()
    }

    /// 128-bit twin of [`hsum_i32x8_wide`].
    fn hsum_i32x4_wide(v: __m128i) -> i64 {
        let mut tmp = [0i32; 4];
        // SAFETY: `tmp` is a writable 16-byte buffer; unaligned store.
        unsafe { _mm_storeu_si128(tmp.as_mut_ptr().cast(), v) };
        tmp.iter().map(|&l| i64::from(l)).sum()
    }

    /// AVX2 [`kernels::dot_packed`]: 16 packed weight bytes (32 codes)
    /// per iteration. The activation bytes are split into even/odd i16
    /// lanes by shift tricks; lane `k` of the zero-extended weight vector
    /// is packed byte `k`, whose low nibble is code `2k` (pairs with
    /// `x[2k]`) and high nibble code `2k+1` — so the natural lane order
    /// already pairs operands correctly and `pmaddwd` sums exact i32
    /// products (bounded by [`MAX_I32_GROUP`], no lane can overflow).
    #[target_feature(enable = "avx2")]
    pub(super) fn dot_packed_avx2(xcodes: &[i8], wpacked: &[u8], lut: &KernelLut) -> i64 {
        debug_assert_eq!(wpacked.len(), xcodes.len().div_ceil(2));
        debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
        let blocks = xcodes.len() / 32;
        // SAFETY: `lo8`/`hi8` are 16-byte arrays; unaligned 16-byte loads.
        let (tlo, thi) = unsafe {
            (
                _mm_loadu_si128(lut.lo8.as_ptr().cast()),
                _mm_loadu_si128(lut.hi8.as_ptr().cast()),
            )
        };
        let tlo = _mm256_broadcastsi128_si256(tlo);
        let thi = _mm256_broadcastsi128_si256(thi);
        let m0f = _mm256_set1_epi16(0x0f);
        let m00ff = _mm256_set1_epi16(0x00ff);
        let mut acc = _mm256_setzero_si256();
        for i in 0..blocks {
            // SAFETY: `i < blocks = xcodes.len() / 32`, so bytes
            // `i*32 .. i*32+32` are in `xcodes` and bytes `i*16 .. i*16+16`
            // are within `wpacked`'s `ceil(len/2)` bytes.
            let (x, wb) = unsafe {
                (
                    _mm256_loadu_si256(xcodes.as_ptr().add(i * 32).cast()),
                    _mm_loadu_si128(wpacked.as_ptr().add(i * 16).cast()),
                )
            };
            let w16 = _mm256_cvtepu8_epi16(wb);
            let we = decode16_avx2(_mm256_and_si256(w16, m0f), tlo, thi, m00ff);
            let wo = decode16_avx2(_mm256_srli_epi16::<4>(w16), tlo, thi, m00ff);
            let xe = _mm256_srai_epi16::<8>(_mm256_slli_epi16::<8>(x));
            let xo = _mm256_srai_epi16::<8>(x);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xe, we));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xo, wo));
        }
        let tail = if xcodes.len() == blocks * 32 {
            0
        } else {
            kernels::dot_packed(&xcodes[blocks * 32..], &wpacked[blocks * 16..], &lut.pair)
        };
        hsum_i32x8(acc) + tail
    }

    /// SSSE3 [`kernels::dot_packed`]: 8 packed weight bytes (16 codes)
    /// per iteration; same operand pairing argument as the AVX2 path.
    #[target_feature(enable = "ssse3")]
    pub(super) fn dot_packed_ssse3(xcodes: &[i8], wpacked: &[u8], lut: &KernelLut) -> i64 {
        debug_assert_eq!(wpacked.len(), xcodes.len().div_ceil(2));
        debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
        let blocks = xcodes.len() / 16;
        // SAFETY: `lo8`/`hi8` are 16-byte arrays; unaligned 16-byte loads.
        let (tlo, thi) = unsafe {
            (
                _mm_loadu_si128(lut.lo8.as_ptr().cast()),
                _mm_loadu_si128(lut.hi8.as_ptr().cast()),
            )
        };
        let m0f = _mm_set1_epi16(0x0f);
        let m00ff = _mm_set1_epi16(0x00ff);
        let zero = _mm_setzero_si128();
        let mut acc = _mm_setzero_si128();
        for i in 0..blocks {
            // SAFETY: `i < blocks = xcodes.len() / 16`, so bytes
            // `i*16 .. i*16+16` are in `xcodes` and the 8-byte load at
            // `i*8` is within `wpacked`'s `ceil(len/2)` bytes.
            let (x, wb) = unsafe {
                (
                    _mm_loadu_si128(xcodes.as_ptr().add(i * 16).cast()),
                    _mm_loadl_epi64(wpacked.as_ptr().add(i * 8).cast()),
                )
            };
            let w16 = _mm_unpacklo_epi8(wb, zero);
            let we = decode16_ssse3(_mm_and_si128(w16, m0f), tlo, thi, m00ff);
            let wo = decode16_ssse3(_mm_srli_epi16::<4>(w16), tlo, thi, m00ff);
            let xe = _mm_srai_epi16::<8>(_mm_slli_epi16::<8>(x));
            let xo = _mm_srai_epi16::<8>(x);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(xe, we));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(xo, wo));
        }
        let tail = if xcodes.len() == blocks * 16 {
            0
        } else {
            kernels::dot_packed(&xcodes[blocks * 16..], &wpacked[blocks * 8..], &lut.pair)
        };
        hsum_i32x4(acc) + tail
    }

    /// AVX2 [`kernels::dot_packed_x4`]: the activation vector is widened
    /// to even/odd i16 lanes once per iteration and swept across all four
    /// weight rows' decode tables — the same amortization the scalar tile
    /// does, at 32 codes per step.
    #[target_feature(enable = "avx2")]
    pub(super) fn dot_packed_x4_avx2(
        xcodes: &[i8],
        w: [&[u8]; 4],
        luts: [&KernelLut; 4],
    ) -> [i64; 4] {
        debug_assert!(w.iter().all(|r| r.len() == xcodes.len().div_ceil(2)));
        debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
        let blocks = xcodes.len() / 32;
        let tabs = luts.map(|l| {
            // SAFETY: `lo8`/`hi8` are 16-byte arrays; unaligned loads.
            let (tlo, thi) = unsafe {
                (
                    _mm_loadu_si128(l.lo8.as_ptr().cast()),
                    _mm_loadu_si128(l.hi8.as_ptr().cast()),
                )
            };
            (
                _mm256_broadcastsi128_si256(tlo),
                _mm256_broadcastsi128_si256(thi),
            )
        });
        let m0f = _mm256_set1_epi16(0x0f);
        let m00ff = _mm256_set1_epi16(0x00ff);
        let mut acc = [_mm256_setzero_si256(); 4];
        for i in 0..blocks {
            // SAFETY: `i < blocks = xcodes.len() / 32`: the 32-byte load
            // is within `xcodes`.
            let x = unsafe { _mm256_loadu_si256(xcodes.as_ptr().add(i * 32).cast()) };
            let xe = _mm256_srai_epi16::<8>(_mm256_slli_epi16::<8>(x));
            let xo = _mm256_srai_epi16::<8>(x);
            for lane in 0..4 {
                // SAFETY: every row holds `ceil(len/2) >= blocks*16`
                // bytes, so the 16-byte load at `i*16` is in bounds.
                let wb = unsafe { _mm_loadu_si128(w[lane].as_ptr().add(i * 16).cast()) };
                let w16 = _mm256_cvtepu8_epi16(wb);
                let (tlo, thi) = tabs[lane];
                let we = decode16_avx2(_mm256_and_si256(w16, m0f), tlo, thi, m00ff);
                let wo = decode16_avx2(_mm256_srli_epi16::<4>(w16), tlo, thi, m00ff);
                acc[lane] = _mm256_add_epi32(acc[lane], _mm256_madd_epi16(xe, we));
                acc[lane] = _mm256_add_epi32(acc[lane], _mm256_madd_epi16(xo, wo));
            }
        }
        let tail = if xcodes.len() == blocks * 32 {
            [0i64; 4]
        } else {
            kernels::dot_packed_x4(
                &xcodes[blocks * 32..],
                w.map(|r| &r[blocks * 16..]),
                luts.map(|l| &l.pair),
            )
        };
        // One hadd tree reduces all four lane accumulators together —
        // every intermediate is a subset sum of one group's products, so
        // the [`MAX_I32_GROUP`] bound keeps each `phaddd` overflow-free.
        let s01 = _mm256_hadd_epi32(acc[0], acc[1]);
        let s23 = _mm256_hadd_epi32(acc[2], acc[3]);
        let s = _mm256_hadd_epi32(s01, s23);
        let quad = _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256::<1>(s));
        let mut sums = [0i32; 4];
        // SAFETY: `sums` is a writable 16-byte buffer; unaligned store.
        unsafe { _mm_storeu_si128(sums.as_mut_ptr().cast(), quad) };
        let mut out = [0i64; 4];
        for lane in 0..4 {
            out[lane] = i64::from(sums[lane]) + tail[lane];
        }
        out
    }

    /// AVX2 grouped row-tile sweep (see
    /// [`super::KernelDispatch::dot_packed_x4_groups`]): the per-group
    /// body of [`dot_packed_x4_avx2`] run back to back over consecutive
    /// groups with the masks, bounds plumbing, and dispatch paid once per
    /// tile instead of once per group.
    #[target_feature(enable = "avx2")]
    pub(super) fn dot_packed_x4_groups_avx2(
        xcodes: &[i8],
        w: [&[u8]; 4],
        group_size: usize,
        luts: [&[&KernelLut]; 4],
        out: &mut [[i64; 4]],
    ) {
        debug_assert!(group_size <= MAX_I32_GROUP, "i32 group bound exceeded");
        let gb = group_size.div_ceil(2);
        let blocks = group_size / 32;
        let m0f = _mm256_set1_epi16(0x0f);
        let m00ff = _mm256_set1_epi16(0x00ff);
        for (g, o) in out.iter_mut().enumerate() {
            let xg = &xcodes[g * group_size..(g + 1) * group_size];
            let tabs = [0, 1, 2, 3].map(|lane| {
                let l: &KernelLut = luts[lane][g];
                // SAFETY: `lo8`/`hi8` are 16-byte arrays; unaligned loads.
                let (tlo, thi) = unsafe {
                    (
                        _mm_loadu_si128(l.lo8.as_ptr().cast()),
                        _mm_loadu_si128(l.hi8.as_ptr().cast()),
                    )
                };
                (
                    _mm256_broadcastsi128_si256(tlo),
                    _mm256_broadcastsi128_si256(thi),
                )
            });
            let mut acc = [_mm256_setzero_si256(); 4];
            for i in 0..blocks {
                // SAFETY: `i < blocks = group_size / 32`, so the 32-byte
                // load at `g*group_size + i*32` stays inside this group's
                // slice of `xcodes`.
                let x = unsafe { _mm256_loadu_si256(xg.as_ptr().add(i * 32).cast()) };
                let xe = _mm256_srai_epi16::<8>(_mm256_slli_epi16::<8>(x));
                let xo = _mm256_srai_epi16::<8>(x);
                for lane in 0..4 {
                    // SAFETY: `i*16 + 16 <= blocks*16 <= gb`, so the
                    // 16-byte load stays inside this group's `gb` bytes
                    // of row `lane`.
                    let wb =
                        unsafe { _mm_loadu_si128(w[lane].as_ptr().add(g * gb + i * 16).cast()) };
                    let w16 = _mm256_cvtepu8_epi16(wb);
                    let (tlo, thi) = tabs[lane];
                    let we = decode16_avx2(_mm256_and_si256(w16, m0f), tlo, thi, m00ff);
                    let wo = decode16_avx2(_mm256_srli_epi16::<4>(w16), tlo, thi, m00ff);
                    acc[lane] = _mm256_add_epi32(acc[lane], _mm256_madd_epi16(xe, we));
                    acc[lane] = _mm256_add_epi32(acc[lane], _mm256_madd_epi16(xo, wo));
                }
            }
            let tail = if group_size == blocks * 32 {
                [0i64; 4]
            } else {
                kernels::dot_packed_x4(
                    &xg[blocks * 32..],
                    w.map(|r| &r[g * gb + blocks * 16..(g + 1) * gb]),
                    [
                        &luts[0][g].pair,
                        &luts[1][g].pair,
                        &luts[2][g].pair,
                        &luts[3][g].pair,
                    ],
                )
            };
            // Same hadd tree as [`dot_packed_x4_avx2`]; exact under the
            // group bound.
            let s01 = _mm256_hadd_epi32(acc[0], acc[1]);
            let s23 = _mm256_hadd_epi32(acc[2], acc[3]);
            let s = _mm256_hadd_epi32(s01, s23);
            let quad = _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256::<1>(s));
            let mut sums = [0i32; 4];
            // SAFETY: `sums` is a writable 16-byte buffer.
            unsafe { _mm_storeu_si128(sums.as_mut_ptr().cast(), quad) };
            for lane in 0..4 {
                o[lane] = i64::from(sums[lane]) + tail[lane];
            }
        }
    }

    /// SSSE3 [`kernels::dot_packed_x4`], 16 codes per iteration.
    #[target_feature(enable = "ssse3")]
    pub(super) fn dot_packed_x4_ssse3(
        xcodes: &[i8],
        w: [&[u8]; 4],
        luts: [&KernelLut; 4],
    ) -> [i64; 4] {
        debug_assert!(w.iter().all(|r| r.len() == xcodes.len().div_ceil(2)));
        debug_assert!(xcodes.len() <= MAX_I32_GROUP, "i32 group bound exceeded");
        let blocks = xcodes.len() / 16;
        let tabs = luts.map(|l| {
            // SAFETY: `lo8`/`hi8` are 16-byte arrays; unaligned loads.
            unsafe {
                (
                    _mm_loadu_si128(l.lo8.as_ptr().cast()),
                    _mm_loadu_si128(l.hi8.as_ptr().cast()),
                )
            }
        });
        let m0f = _mm_set1_epi16(0x0f);
        let m00ff = _mm_set1_epi16(0x00ff);
        let zero = _mm_setzero_si128();
        let mut acc = [_mm_setzero_si128(); 4];
        for i in 0..blocks {
            // SAFETY: `i < blocks = xcodes.len() / 16`: the 16-byte load
            // is within `xcodes`.
            let x = unsafe { _mm_loadu_si128(xcodes.as_ptr().add(i * 16).cast()) };
            let xe = _mm_srai_epi16::<8>(_mm_slli_epi16::<8>(x));
            let xo = _mm_srai_epi16::<8>(x);
            for lane in 0..4 {
                // SAFETY: every row holds `ceil(len/2) >= blocks*8`
                // bytes, so the 8-byte load at `i*8` is in bounds.
                let wb = unsafe { _mm_loadl_epi64(w[lane].as_ptr().add(i * 8).cast()) };
                let w16 = _mm_unpacklo_epi8(wb, zero);
                let (tlo, thi) = tabs[lane];
                let we = decode16_ssse3(_mm_and_si128(w16, m0f), tlo, thi, m00ff);
                let wo = decode16_ssse3(_mm_srli_epi16::<4>(w16), tlo, thi, m00ff);
                acc[lane] = _mm_add_epi32(acc[lane], _mm_madd_epi16(xe, we));
                acc[lane] = _mm_add_epi32(acc[lane], _mm_madd_epi16(xo, wo));
            }
        }
        let tail = kernels::dot_packed_x4(
            &xcodes[blocks * 16..],
            w.map(|r| &r[blocks * 8..]),
            luts.map(|l| &l.pair),
        );
        let mut out = [0i64; 4];
        for lane in 0..4 {
            out[lane] = hsum_i32x4(acc[lane]) + tail[lane];
        }
        out
    }

    /// AVX2 [`kernels::decode_packed_i16`]: 16 packed bytes (32 codes)
    /// per iteration. The shuffle-table reassembly is the same
    /// [`decode16_avx2`] the fused dot kernels use — identical operand
    /// values — but here the even/odd lane vectors are re-interleaved
    /// into natural code order and stored, so a whole batch can sweep
    /// them afterwards without re-decoding. `punpcklwd`/`punpckhwd`
    /// interleave within 128-bit halves, so one `vperm2i128` pair
    /// restores cross-lane order.
    #[target_feature(enable = "avx2")]
    pub(super) fn decode_packed_i16_avx2(
        wpacked: &[u8],
        len: usize,
        lut: &KernelLut,
        out: &mut [i16],
    ) {
        debug_assert_eq!(wpacked.len(), len.div_ceil(2));
        debug_assert_eq!(out.len(), len);
        let blocks = len / 32;
        // SAFETY: `lo8`/`hi8` are 16-byte arrays; unaligned 16-byte loads.
        let (tlo, thi) = unsafe {
            (
                _mm_loadu_si128(lut.lo8.as_ptr().cast()),
                _mm_loadu_si128(lut.hi8.as_ptr().cast()),
            )
        };
        let tlo = _mm256_broadcastsi128_si256(tlo);
        let thi = _mm256_broadcastsi128_si256(thi);
        let m0f = _mm256_set1_epi16(0x0f);
        let m00ff = _mm256_set1_epi16(0x00ff);
        for i in 0..blocks {
            // SAFETY: `i < blocks = len / 32`, so the 16-byte load at
            // `i*16` is within `wpacked`'s `ceil(len/2)` bytes.
            let wb = unsafe { _mm_loadu_si128(wpacked.as_ptr().add(i * 16).cast()) };
            let w16 = _mm256_cvtepu8_epi16(wb);
            // Lane k holds packed byte k: low nibble = code 2k (even),
            // high nibble = code 2k+1 (odd).
            let we = decode16_avx2(_mm256_and_si256(w16, m0f), tlo, thi, m00ff);
            let wo = decode16_avx2(_mm256_srli_epi16::<4>(w16), tlo, thi, m00ff);
            let lo = _mm256_unpacklo_epi16(we, wo);
            let hi = _mm256_unpackhi_epi16(we, wo);
            let first = _mm256_permute2x128_si256::<0x20>(lo, hi);
            let second = _mm256_permute2x128_si256::<0x31>(lo, hi);
            // SAFETY: `i*32 + 32 <= blocks*32 <= len = out.len()`, so both
            // 32-byte stores stay inside `out`.
            unsafe {
                _mm256_storeu_si256(out.as_mut_ptr().add(i * 32).cast(), first);
                _mm256_storeu_si256(out.as_mut_ptr().add(i * 32 + 16).cast(), second);
            }
        }
        kernels::decode_packed_i16(
            &wpacked[blocks * 16..],
            len - blocks * 32,
            &lut.pair,
            &mut out[blocks * 32..],
        );
    }

    /// AVX2 grouped four-row sweep over **pre-decoded** i16 weight
    /// operands (see [`super::KernelDispatch::dot_i16_x4_groups`]): per
    /// 32 codes, the activation is sign-extended once and swept across
    /// all four rows with plain loads and `pmaddwd` — the nibble decode
    /// the fused kernels pay per call was already hoisted into
    /// [`decode_packed_i16_avx2`]. Exactness: every `pmaddwd` lane sum
    /// is a subset of one group's products, bounded by
    /// [`MAX_I32_GROUP`], so i32 addition is associative and the hadd
    /// reduction matches the scalar kernel bit for bit.
    #[target_feature(enable = "avx2")]
    pub(super) fn dot_i16_x4_groups_avx2(
        xcodes: &[i8],
        w16: [&[i16]; 4],
        group_size: usize,
        out: &mut [[i64; 4]],
    ) {
        let blocks = group_size / 32;
        for (g, o) in out.iter_mut().enumerate() {
            let xg = &xcodes[g * group_size..(g + 1) * group_size];
            let mut acc = [_mm256_setzero_si256(); 4];
            for i in 0..blocks {
                // SAFETY: `i < blocks = group_size / 32`: the 32-byte load
                // stays inside this group's slice of `xcodes`.
                let x = unsafe { _mm256_loadu_si256(xg.as_ptr().add(i * 32).cast()) };
                let xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(x));
                let xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(x));
                for lane in 0..4 {
                    // SAFETY: every row holds `groups * group_size`
                    // operands, so the two 16-operand loads at
                    // `g*group_size + i*32` are in bounds.
                    let (wlo, whi) = unsafe {
                        let base = w16[lane].as_ptr().add(g * group_size + i * 32);
                        (
                            _mm256_loadu_si256(base.cast()),
                            _mm256_loadu_si256(base.add(16).cast()),
                        )
                    };
                    acc[lane] = _mm256_add_epi32(acc[lane], _mm256_madd_epi16(xlo, wlo));
                    acc[lane] = _mm256_add_epi32(acc[lane], _mm256_madd_epi16(xhi, whi));
                }
            }
            let mut tail = [0i64; 4];
            if blocks * 32 < group_size {
                for (lane, t) in tail.iter_mut().enumerate() {
                    *t = kernels::dot_i8_i16(
                        &xg[blocks * 32..],
                        &w16[lane][g * group_size + blocks * 32..(g + 1) * group_size],
                    );
                }
            }
            // Same hadd tree as [`dot_packed_x4_groups_avx2`]; exact under
            // the group bound.
            let s01 = _mm256_hadd_epi32(acc[0], acc[1]);
            let s23 = _mm256_hadd_epi32(acc[2], acc[3]);
            let s = _mm256_hadd_epi32(s01, s23);
            let quad = _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256::<1>(s));
            let mut sums = [0i32; 4];
            // SAFETY: `sums` is a writable 16-byte buffer.
            unsafe { _mm_storeu_si128(sums.as_mut_ptr().cast(), quad) };
            for lane in 0..4 {
                o[lane] = i64::from(sums[lane]) + tail[lane];
            }
        }
    }

    /// AVX2 paired sweep (see
    /// [`super::KernelDispatch::dot_i16_x4_groups_x2`]): per 32-code
    /// block each row's two operand vectors are loaded once and fed to
    /// `pmaddwd` against both members. Eight accumulators (four rows ×
    /// two members), four extended activations and two weight temporaries
    /// stay within the sixteen ymm registers. Per member the accumulator
    /// updates are exactly those of [`dot_i16_x4_groups_avx2`], so the
    /// reduction is bit-identical to running the single-member sweep
    /// twice.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::similar_names)]
    pub(super) fn dot_i16_x4_groups_x2_avx2(
        xa: &[i8],
        xb: &[i8],
        w16: [&[i16]; 4],
        group_size: usize,
        out_a: &mut [[i64; 4]],
        out_b: &mut [[i64; 4]],
    ) {
        let blocks = group_size / 32;
        for (g, (oa, ob)) in out_a.iter_mut().zip(out_b.iter_mut()).enumerate() {
            let xga = &xa[g * group_size..(g + 1) * group_size];
            let xgb = &xb[g * group_size..(g + 1) * group_size];
            let mut acc_a = [_mm256_setzero_si256(); 4];
            let mut acc_b = [_mm256_setzero_si256(); 4];
            for i in 0..blocks {
                // SAFETY: `i < blocks = group_size / 32`: both 32-byte
                // loads stay inside this group's activation slices.
                let (va, vb) = unsafe {
                    (
                        _mm256_loadu_si256(xga.as_ptr().add(i * 32).cast()),
                        _mm256_loadu_si256(xgb.as_ptr().add(i * 32).cast()),
                    )
                };
                let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
                let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(va));
                let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
                let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(vb));
                for lane in 0..4 {
                    // SAFETY: every row holds `groups * group_size`
                    // operands, so the two 16-operand loads at
                    // `g*group_size + i*32` are in bounds.
                    let (wlo, whi) = unsafe {
                        let base = w16[lane].as_ptr().add(g * group_size + i * 32);
                        (
                            _mm256_loadu_si256(base.cast()),
                            _mm256_loadu_si256(base.add(16).cast()),
                        )
                    };
                    acc_a[lane] = _mm256_add_epi32(acc_a[lane], _mm256_madd_epi16(alo, wlo));
                    acc_a[lane] = _mm256_add_epi32(acc_a[lane], _mm256_madd_epi16(ahi, whi));
                    acc_b[lane] = _mm256_add_epi32(acc_b[lane], _mm256_madd_epi16(blo, wlo));
                    acc_b[lane] = _mm256_add_epi32(acc_b[lane], _mm256_madd_epi16(bhi, whi));
                }
            }
            for (acc, xg, o) in [(acc_a, xga, oa), (acc_b, xgb, ob)] {
                let mut tail = [0i64; 4];
                if blocks * 32 < group_size {
                    for (lane, t) in tail.iter_mut().enumerate() {
                        *t = kernels::dot_i8_i16(
                            &xg[blocks * 32..],
                            &w16[lane][g * group_size + blocks * 32..(g + 1) * group_size],
                        );
                    }
                }
                let s01 = _mm256_hadd_epi32(acc[0], acc[1]);
                let s23 = _mm256_hadd_epi32(acc[2], acc[3]);
                let s = _mm256_hadd_epi32(s01, s23);
                let quad =
                    _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256::<1>(s));
                let mut sums = [0i32; 4];
                // SAFETY: `sums` is a writable 16-byte buffer.
                unsafe { _mm_storeu_si128(sums.as_mut_ptr().cast(), quad) };
                for lane in 0..4 {
                    o[lane] = i64::from(sums[lane]) + tail[lane];
                }
            }
        }
    }

    /// AVX2 [`kernels::int8_dot`]: 32 elements per iteration, i32 lanes
    /// drained to the i64 total every [`INT8_CHUNK`] elements (the scalar
    /// kernel has no length bound, so the vector path must chunk).
    #[target_feature(enable = "avx2")]
    pub(super) fn int8_dot_avx2(a: &[i8], b: &[i8]) -> i64 {
        debug_assert_eq!(a.len(), b.len());
        let mut total = 0i64;
        for (ca, cb) in a.chunks(INT8_CHUNK).zip(b.chunks(INT8_CHUNK)) {
            let blocks = ca.len() / 32;
            let mut acc = _mm256_setzero_si256();
            for i in 0..blocks {
                // SAFETY: `i < blocks = ca.len() / 32`, so both 32-byte
                // loads are within their chunks.
                let (va, vb) = unsafe {
                    (
                        _mm256_loadu_si256(ca.as_ptr().add(i * 32).cast()),
                        _mm256_loadu_si256(cb.as_ptr().add(i * 32).cast()),
                    )
                };
                let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
                let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(va));
                let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
                let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(vb));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
            }
            total +=
                hsum_i32x8_wide(acc) + kernels::int8_dot(&ca[blocks * 32..], &cb[blocks * 32..]);
        }
        total
    }

    /// SSSE3 [`kernels::int8_dot`], 16 elements per iteration. Sign
    /// extension uses `unpack(0, v)` + arithmetic shift (no `pmovsx`
    /// before SSE4.1).
    #[target_feature(enable = "ssse3")]
    pub(super) fn int8_dot_ssse3(a: &[i8], b: &[i8]) -> i64 {
        debug_assert_eq!(a.len(), b.len());
        let zero = _mm_setzero_si128();
        let mut total = 0i64;
        for (ca, cb) in a.chunks(INT8_CHUNK).zip(b.chunks(INT8_CHUNK)) {
            let blocks = ca.len() / 16;
            let mut acc = _mm_setzero_si128();
            for i in 0..blocks {
                // SAFETY: `i < blocks = ca.len() / 16`, so both 16-byte
                // loads are within their chunks.
                let (va, vb) = unsafe {
                    (
                        _mm_loadu_si128(ca.as_ptr().add(i * 16).cast()),
                        _mm_loadu_si128(cb.as_ptr().add(i * 16).cast()),
                    )
                };
                let a_lo = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(zero, va));
                let a_hi = _mm_srai_epi16::<8>(_mm_unpackhi_epi8(zero, va));
                let b_lo = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(zero, vb));
                let b_hi = _mm_srai_epi16::<8>(_mm_unpackhi_epi8(zero, vb));
                acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
                acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
            }
            total +=
                hsum_i32x4_wide(acc) + kernels::int8_dot(&ca[blocks * 16..], &cb[blocks * 16..]);
        }
        total
    }

    /// AVX2 `max |x|` with NaN skipped: `maxps(|x|, acc)` returns `acc`
    /// when `|x|` is NaN — the same per-element semantics as the scalar
    /// fold's `f32::max`, and a maximum is order-independent, so the
    /// 8-lane split changes no bit.
    #[target_feature(enable = "avx2")]
    pub(super) fn abs_max_avx2(xs: &[f32]) -> f32 {
        let blocks = xs.len() / 8;
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            // SAFETY: `i < blocks = xs.len() / 8`: the 8-float load is
            // within `xs`.
            let v = unsafe { _mm256_loadu_ps(xs.as_ptr().add(i * 8)) };
            acc = _mm256_max_ps(_mm256_andnot_ps(sign, v), acc);
        }
        let mut tmp = [0.0f32; 8];
        // SAFETY: `tmp` is a writable 32-byte buffer; unaligned store.
        unsafe { _mm256_storeu_ps(tmp.as_mut_ptr(), acc) };
        let head = tmp.iter().fold(0.0f32, |m, &v| m.max(v));
        xs[blocks * 8..].iter().fold(head, |m, &v| m.max(v.abs()))
    }

    /// SSE2 `max |x|` — SSE2 is the x86_64 baseline, so this is callable
    /// on any CPU this module compiles for (no runtime check needed).
    #[target_feature(enable = "sse2")]
    pub(super) fn abs_max_sse2(xs: &[f32]) -> f32 {
        let blocks = xs.len() / 4;
        if blocks == 0 {
            return scalar_abs_max(xs);
        }
        let sign = _mm_set1_ps(-0.0);
        let mut acc = _mm_setzero_ps();
        for i in 0..blocks {
            // SAFETY: `i < blocks = xs.len() / 4`: the 4-float load is
            // within `xs`.
            let v = unsafe { _mm_loadu_ps(xs.as_ptr().add(i * 4)) };
            acc = _mm_max_ps(_mm_andnot_ps(sign, v), acc);
        }
        let mut tmp = [0.0f32; 4];
        // SAFETY: `tmp` is a writable 16-byte buffer; unaligned store.
        unsafe { _mm_storeu_ps(tmp.as_mut_ptr(), acc) };
        let head = tmp.iter().fold(0.0f32, |m, &v| m.max(v));
        xs[blocks * 4..].iter().fold(head, |m, &v| m.max(v.abs()))
    }

    /// AVX2 symmetric INT8 quantization, bit-identical to
    /// `quantize_symmetric_int(x / scale, 127)` per element:
    ///
    /// - `divps` is IEEE-exact — the identical quotient as scalar `/`;
    /// - `f32::round` (ties away from zero) is reproduced exactly as
    ///   `t = trunc(q)`, then `t ± 1` where `|q - t| >= 0.5`. The
    ///   remainder `q - t` is exact (`t = 0` when `|q| < 1`, else
    ///   Sterbenz' lemma applies since `t <= |q| <= 2t`), so the
    ///   comparison is exact — `roundps`' nearest-even mode would differ
    ///   at ties and must not be used;
    /// - the clamp happens in f32 before conversion (`r` is integral, so
    ///   the clamped value converts exactly; this also canonicalizes
    ///   ±inf the way the scalar path's saturating `as i64` does);
    /// - NaN lanes are zeroed by the ordered-compare mask, matching the
    ///   scalar NaN → 0 rule.
    #[target_feature(enable = "avx2")]
    pub(super) fn quantize_i8_avx2(xs: &[f32], scale: f32, out: &mut [i8]) {
        debug_assert_eq!(xs.len(), out.len());
        let blocks = xs.len() / 8;
        let vs = _mm256_set1_ps(scale);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let sign = _mm256_set1_ps(-0.0);
        let hi = _mm256_set1_ps(127.0);
        let lo = _mm256_set1_ps(-127.0);
        for i in 0..blocks {
            // SAFETY: `i < blocks = xs.len() / 8`: the 8-float load is
            // within `xs`.
            let v = unsafe { _mm256_loadu_ps(xs.as_ptr().add(i * 8)) };
            let q = _mm256_div_ps(v, vs);
            let t = _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(q);
            let d = _mm256_sub_ps(q, t);
            let away = _mm256_cmp_ps::<_CMP_GE_OQ>(_mm256_andnot_ps(sign, d), half);
            let sign1 = _mm256_or_ps(_mm256_and_ps(q, sign), one);
            let r = _mm256_add_ps(t, _mm256_and_ps(away, sign1));
            let r = _mm256_min_ps(_mm256_max_ps(r, lo), hi);
            let r = _mm256_and_ps(r, _mm256_cmp_ps::<_CMP_ORD_Q>(q, q));
            let iv = _mm256_cvttps_epi32(r);
            let mut tmp = [0i32; 8];
            // SAFETY: `tmp` is a writable 32-byte buffer; unaligned store.
            unsafe { _mm256_storeu_si256(tmp.as_mut_ptr().cast(), iv) };
            for (o, &c) in out[i * 8..i * 8 + 8].iter_mut().zip(tmp.iter()) {
                *o = c as i8;
            }
        }
        super::scalar_quantize_i8(&xs[blocks * 8..], scale, &mut out[blocks * 8..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{int4_decode_lut, mant_decode_lut, MAX_I32_GROUP};
    use crate::mant::Mant;
    use crate::packing::pack_nibbles;

    fn tiers() -> Vec<KernelDispatch> {
        let mut t = vec![KernelDispatch::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("ssse3") {
                t.push(KernelDispatch::Ssse3);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                t.push(KernelDispatch::Avx2);
            }
        }
        t
    }

    fn luts_under_test() -> Vec<KernelLut> {
        let mut l: Vec<KernelLut> = [0u32, 5, 17, 60, 127]
            .iter()
            .map(|&a| kernel_lut(&mant_decode_lut(Mant::new(a).unwrap())))
            .collect();
        l.push(kernel_lut(&int4_decode_lut()));
        l
    }

    #[test]
    fn kernel_lut_split_reassembles_operands() {
        for lut in luts_under_test() {
            for b in 0..16usize {
                let v = i16::from_le_bytes([lut.lo8[b], lut.hi8[b]]);
                assert_eq!(i32::from(v), lut.pair[b][0], "code {b}");
            }
        }
    }

    #[test]
    fn dot_packed_matches_scalar_all_tiers() {
        // Lengths straddling both tiers' block sizes, including odd tails.
        for len in [
            0usize, 1, 2, 7, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 200,
        ] {
            let xcodes: Vec<i8> = (0..len)
                .map(|i| ((i * 37 + 11) % 255) as u8 as i8)
                .collect();
            let wcodes: Vec<u8> = (0..len).map(|i| ((i * 7 + 3) % 16) as u8).collect();
            let packed = pack_nibbles(&wcodes);
            for lut in luts_under_test() {
                let oracle = kernels::dot_packed(&xcodes, &packed, &lut.pair);
                for d in tiers() {
                    assert_eq!(
                        d.dot_packed(&xcodes, &packed, &lut),
                        oracle,
                        "tier {} len {len}",
                        d.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dot_packed_exact_at_i32_bound() {
        // Worst-case magnitudes at the maximum admissible group length:
        // every tier must still sum exactly (no lane overflow).
        let lut = kernel_lut(&mant_decode_lut(Mant::new(127).unwrap()));
        let xcodes = vec![-128i8; MAX_I32_GROUP];
        let packed = pack_nibbles(&vec![0xfu8; MAX_I32_GROUP]);
        let expect = MAX_I32_GROUP as i64 * 128 * (127 * 7 + 128);
        for d in tiers() {
            assert_eq!(d.dot_packed(&xcodes, &packed, &lut), expect, "{}", d.name());
        }
    }

    #[test]
    fn dot_packed_x4_matches_scalar_all_tiers() {
        for len in [3usize, 16, 33, 64, 65, 129] {
            let xcodes: Vec<i8> = (0..len).map(|i| ((i * 91 + 5) % 255) as u8 as i8).collect();
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|r| {
                    pack_nibbles(
                        &(0..len)
                            .map(|i| ((i * 3 + r * 5) % 16) as u8)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let luts: Vec<KernelLut> = [0u32, 17, 60, 127]
                .iter()
                .map(|&a| kernel_lut(&mant_decode_lut(Mant::new(a).unwrap())))
                .collect();
            let w = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            let lr = [&luts[0], &luts[1], &luts[2], &luts[3]];
            let oracle = kernels::dot_packed_x4(&xcodes, w, lr.map(|l| &l.pair));
            for d in tiers() {
                assert_eq!(
                    d.dot_packed_x4(&xcodes, w, lr),
                    oracle,
                    "{} len {len}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn decode_packed_i16_matches_scalar_all_tiers() {
        for len in [0usize, 1, 2, 15, 16, 31, 32, 33, 63, 64, 65, 129] {
            let wcodes: Vec<u8> = (0..len).map(|i| ((i * 7 + 5) % 16) as u8).collect();
            let packed = pack_nibbles(&wcodes);
            for lut in luts_under_test() {
                let mut oracle = vec![0i16; len];
                kernels::decode_packed_i16(&packed, len, &lut.pair, &mut oracle);
                for d in tiers() {
                    let mut got = vec![0i16; len];
                    d.decode_packed_i16(&packed, len, &lut, &mut got);
                    assert_eq!(got, oracle, "tier {} len {len}", d.name());
                }
            }
        }
    }

    #[test]
    fn dot_i16_x4_groups_matches_scalar_and_packed_all_tiers() {
        // Cross-check the whole decode-once pair against the fused packed
        // grouped kernel on every tier: decode each row, sweep the decoded
        // operands, and require bit-identity with dot_packed_x4_groups.
        for (groups, gs) in [(1usize, 16usize), (2, 32), (3, 64), (2, 33)] {
            let len = groups * gs;
            let xcodes: Vec<i8> = (0..len).map(|i| ((i * 73 + 9) % 255) as u8 as i8).collect();
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|r| (0..len).map(|i| ((i * 5 + r * 3) % 16) as u8).collect())
                .collect();
            let luts: Vec<KernelLut> = [0u32, 17, 60, 127]
                .iter()
                .map(|&a| kernel_lut(&mant_decode_lut(Mant::new(a).unwrap())))
                .collect();
            // Per-row packed codes (groups packed independently, as the
            // quantized matrix stores them) and per-group LUT slices.
            let gb = gs.div_ceil(2);
            let packed: Vec<Vec<u8>> = rows
                .iter()
                .map(|r| {
                    let mut p = Vec::with_capacity(groups * gb);
                    for g in 0..groups {
                        p.extend(pack_nibbles(&r[g * gs..(g + 1) * gs]));
                    }
                    p
                })
                .collect();
            let lut_rows: Vec<Vec<&KernelLut>> =
                (0..4).map(|lane| vec![&luts[lane]; groups]).collect();
            let mut expect = vec![[0i64; 4]; groups];
            KernelDispatch::Scalar.dot_packed_x4_groups(
                &xcodes,
                [&packed[0], &packed[1], &packed[2], &packed[3]],
                gs,
                [&lut_rows[0], &lut_rows[1], &lut_rows[2], &lut_rows[3]],
                &mut expect,
            );
            for d in tiers() {
                let mut dec: Vec<Vec<i16>> = vec![vec![0i16; len]; 4];
                for lane in 0..4 {
                    for g in 0..groups {
                        d.decode_packed_i16(
                            &packed[lane][g * gb..(g + 1) * gb],
                            gs,
                            &luts[lane],
                            &mut dec[lane][g * gs..(g + 1) * gs],
                        );
                    }
                }
                let mut got = vec![[0i64; 4]; groups];
                d.dot_i16_x4_groups(&xcodes, [&dec[0], &dec[1], &dec[2], &dec[3]], gs, &mut got);
                assert_eq!(got, expect, "tier {} groups {groups} gs {gs}", d.name());
            }
        }
    }

    #[test]
    fn dot_i16_x4_groups_x2_matches_single_member_all_tiers() {
        // The paired two-member sweep must equal two single-member sweeps
        // bit for bit on every tier, including odd group sizes that force
        // the scalar tail.
        for (groups, gs) in [(1usize, 16usize), (2, 32), (3, 64), (2, 33)] {
            let len = groups * gs;
            let xa: Vec<i8> = (0..len).map(|i| ((i * 73 + 9) % 255) as u8 as i8).collect();
            let xb: Vec<i8> = (0..len).map(|i| ((i * 41 + 5) % 255) as u8 as i8).collect();
            let dec: Vec<Vec<i16>> = (0..4)
                .map(|r| {
                    (0..len)
                        .map(|i| ((i * 29 + r * 13) % 2035) as i16 - 1017)
                        .collect()
                })
                .collect();
            let w16 = [&dec[0][..], &dec[1][..], &dec[2][..], &dec[3][..]];
            let mut expect_a = vec![[0i64; 4]; groups];
            let mut expect_b = vec![[0i64; 4]; groups];
            KernelDispatch::Scalar.dot_i16_x4_groups(&xa, w16, gs, &mut expect_a);
            KernelDispatch::Scalar.dot_i16_x4_groups(&xb, w16, gs, &mut expect_b);
            for d in tiers() {
                let mut got_a = vec![[0i64; 4]; groups];
                let mut got_b = vec![[0i64; 4]; groups];
                d.dot_i16_x4_groups_x2(&xa, &xb, w16, gs, &mut got_a, &mut got_b);
                assert_eq!(got_a, expect_a, "tier {} groups {groups} gs {gs}", d.name());
                assert_eq!(got_b, expect_b, "tier {} groups {groups} gs {gs}", d.name());
            }
        }
    }

    #[test]
    fn int8_dot_matches_scalar_all_tiers() {
        for len in [0usize, 1, 15, 16, 17, 32, 64, 100, 1000] {
            let a: Vec<i8> = (0..len).map(|i| ((i * 57 + 9) % 255) as u8 as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| ((i * 23 + 1) % 255) as u8 as i8).collect();
            let oracle = kernels::int8_dot(&a, &b);
            for d in tiers() {
                assert_eq!(d.int8_dot(&a, &b), oracle, "{} len {len}", d.name());
            }
        }
        // Saturated inputs: worst-case products, length past one chunk
        // boundary would take too long here; the drain bound itself is
        // arithmetic (see INT8_CHUNK docs). 2^15 saturated elements
        // exercise multi-block accumulation at maximum magnitude.
        let a = vec![-128i8; 1 << 15];
        let b = vec![-128i8; 1 << 15];
        let expect = (1i64 << 15) * 128 * 128;
        for d in tiers() {
            assert_eq!(d.int8_dot(&a, &b), expect, "{}", d.name());
        }
    }

    #[test]
    fn abs_max_matches_scalar_all_tiers() {
        let cases: Vec<Vec<f32>> = vec![
            vec![],
            vec![0.0],
            vec![-0.0, 0.0],
            vec![1.5, -2.5, 0.25],
            (0..100).map(|i| ((i * 17) % 31) as f32 - 15.0).collect(),
            vec![f32::NAN, 3.0, -7.5, f32::NAN],
            vec![f32::NAN; 9],
            vec![f32::INFINITY, -1.0, f32::NEG_INFINITY],
            vec![f32::MIN_POSITIVE, -f32::MIN_POSITIVE, 1e-38],
        ];
        for xs in &cases {
            let oracle = scalar_abs_max(xs);
            for d in tiers() {
                let got = d.abs_max(xs);
                assert_eq!(got.to_bits(), oracle.to_bits(), "{} {xs:?}", d.name());
            }
        }
    }

    #[test]
    fn quantize_i8_matches_scalar_all_tiers() {
        let mut xs: Vec<f32> = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            0.49999997,
            -0.49999997,
            1.5,
            2.5,
            -2.5,
            126.5,
            127.49,
            200.0,
            -200.0,
            1e30,
            -1e30,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
        ];
        // Fill past several 8-lane blocks with a dense sweep around the
        // rounding boundaries.
        for i in 0..64 {
            xs.push((i as f32) * 0.25 - 8.0);
            xs.push((i as f32) * 0.499999 - 16.0);
        }
        for scale in [1.0f32, 0.0078125, 3.7e-3, 1.0e20, f32::MIN_POSITIVE] {
            let mut oracle = vec![0i8; xs.len()];
            scalar_quantize_i8(&xs, scale, &mut oracle);
            for d in tiers() {
                let mut got = vec![0i8; xs.len()];
                d.quantize_i8(&xs, scale, &mut got);
                assert_eq!(got, oracle, "{} scale {scale}", d.name());
            }
        }
    }

    #[test]
    fn kernels_global_honors_force_scalar() {
        // The global tier is cached once; in-process we can only check
        // consistency with the environment actually seen at first use.
        let k = kernels();
        if scalar_forced() {
            assert_eq!(k, KernelDispatch::Scalar);
        } else {
            assert_eq!(k, KernelDispatch::detect());
        }
    }
}

//! ANT's `flint` type: a float-int hybrid fitted to Gaussian distributions.
//!
//! `flint` (ANT, MICRO'22) trades mantissa bits for exponent bits
//! adaptively: values near zero are spaced like an integer, larger values
//! grow exponentially with a single mantissa bit. We reproduce the 4-bit
//! representable-value set; the exact bit-level wire format is irrelevant to
//! accuracy experiments because only the value set determines rounding
//! error.

use crate::grid::Grid;

/// The positive magnitudes of 4-bit flint: `{0, 1, 2, 3, 4, 6, 8, 12}`.
///
/// Dense (unit-spaced) through 4, then one mantissa bit per octave:
/// `4, 6, 8, 12` — the float-like tail that fits Gaussian mass.
pub fn flint4_levels() -> [f32; 8] {
    [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0]
}

/// The symmetric 4-bit flint grid.
///
/// # Example
///
/// ```
/// use mant_numerics::flint4_grid;
///
/// assert_eq!(flint4_grid().quantize(10.5), 12.0);
/// ```
pub fn flint4_grid() -> Grid {
    Grid::symmetric(&flint4_levels()).expect("flint levels are finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flint_grid_shape() {
        let g = flint4_grid();
        assert_eq!(g.len(), 15);
        assert_eq!(g.max_abs(), 12.0);
    }

    #[test]
    fn flint_between_int_and_pot_in_spread() {
        // Normalized grid variance orders: PoT < flint < INT,
        // matching their target distributions (Laplace < Gaussian < uniform).
        fn nvar(g: &Grid) -> f64 {
            let n = g.normalized();
            let pts = n.points();
            let len = pts.len() as f64;
            let mean: f64 = pts.iter().map(|&p| p as f64).sum::<f64>() / len;
            pts.iter().map(|&p| (p as f64 - mean).powi(2)).sum::<f64>() / len
        }
        let pot = nvar(&crate::pot::pot4_grid());
        let flint = nvar(&flint4_grid());
        let int = nvar(&crate::int::int4_grid());
        assert!(pot < flint && flint < int, "{pot} {flint} {int}");
    }

    #[test]
    fn flint_quantizes_gaussian_better_than_int_tail() {
        // A value at 1/3 of max: flint has a point at 4/12 exactly.
        let g = flint4_grid();
        assert_eq!(g.quantize(4.1), 4.0);
        assert_eq!(g.quantize(5.1), 6.0);
    }
}

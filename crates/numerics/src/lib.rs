//! Data types for M-ANT quantization.
//!
//! This crate implements the numeric formats used by the M-ANT paper
//! (HPCA 2025): the **MANT** mathematically adaptive numerical type itself
//! ([`Mant`]), plus every companion/baseline format referenced in the
//! evaluation:
//!
//! - symmetric integer grids ([`int4_grid`], [`int8_grid`]),
//! - power-of-two ([`pot4_grid`], the Laplace-friendly type from ANT),
//! - ANT's `flint` ([`flint4_grid`]),
//! - NormalFloat ([`nf4_paper_grid`] per the paper's Eq. (3) and the exact
//!   QLoRA table [`qlora_nf4_grid`]),
//! - OliVe's outlier type `abfloat` ([`AbFloat`]),
//! - MXFP4 (E2M1 element type with an E8M0 shared scale, [`mxfp`]),
//! - software FP16 ([`fp16`]).
//!
//! All formats are exposed uniformly as [`Grid`]s — finite, sorted sets of
//! representable points with nearest-point encode — while [`Mant`] also
//! exposes the structured sign/magnitude code and the
//! `psum1`/`psum2` decomposition that the accelerator fuses into integer
//! arithmetic (paper Eq. (5)).
//!
//! The integer group-dot kernels live in [`mod@kernels`] (scalar, the
//! bit-identity oracle) and [`simd`] (runtime-dispatched x86_64 SSSE3 /
//! AVX2 tiers, selected once per process by [`kernels()`](simd::kernels)
//! and bit-identical to the oracle on every input).
//!
//! # Example
//!
//! ```
//! use mant_numerics::Mant;
//!
//! // The paper's running example: a = 17 approximates a 4-bit float.
//! let mant = Mant::new(17)?;
//! assert_eq!(mant.levels(), [1, 19, 38, 59, 84, 117, 166, 247]);
//!
//! let code = mant.encode(-60.0);
//! assert_eq!(mant.decode(code), -59);
//! # Ok::<(), mant_numerics::NumericsError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod abfloat;
pub mod datatype;
pub mod error;
pub mod flint;
pub mod fp16;
pub mod grid;
pub mod int;
pub mod kernels;
pub mod mant;
pub mod mxfp;
pub mod nf;
pub mod packing;
pub mod pot;
pub mod probit;
pub mod simd;

pub use abfloat::AbFloat;
pub use datatype::DataType;
pub use error::NumericsError;
pub use flint::flint4_grid;
pub use grid::Grid;
pub use int::{int4_grid, int8_grid, uniform_symmetric_grid};
pub use kernels::{
    decode_packed_i16, dot_i8_i16, dot_packed, dot_packed_x4, int4_decode_lut, int4_group_mac,
    int8_dot, mant_decode_lut, mant_group_psums, pair_decode_lut, PairLut, MAX_I32_GROUP,
};
pub use mant::{Mant, MantCode};
pub use mxfp::{e8m0_quantize_scale, fp4_e2m1_grid};
pub use nf::{nf4_paper_grid, qlora_nf4_grid};
pub use packing::{pack_nibbles, pack_nibbles_into, unpack_nibbles, NibbleIter};
pub use pot::pot4_grid;
pub use probit::probit;
pub use simd::{kernel_lut, kernels, scalar_forced, KernelDispatch, KernelLut};

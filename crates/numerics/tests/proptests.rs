//! Property-based tests for the numeric formats.

use mant_numerics::packing::{pack_nibbles, unpack_nibbles, NibbleIter};
use mant_numerics::simd::{scalar_abs_max, scalar_quantize_i8};
use mant_numerics::{
    dot_packed, dot_packed_x4, fp16, int4_decode_lut, int4_group_mac, int8_dot, kernel_lut,
    mant_decode_lut, mant_group_psums, pair_decode_lut, Grid, KernelDispatch, KernelLut, Mant,
    MantCode, MAX_I32_GROUP,
};
use proptest::prelude::*;

/// Every kernel tier available on this machine, scalar always included.
/// On AVX2 CI hardware this exercises all three tiers differentially.
fn tiers() -> Vec<KernelDispatch> {
    let mut t = vec![KernelDispatch::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            t.push(KernelDispatch::Ssse3);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            t.push(KernelDispatch::Avx2);
        }
    }
    t
}

fn mant_kernel_lut(a: u32) -> KernelLut {
    kernel_lut(&mant_decode_lut(Mant::new(a).unwrap()))
}

proptest! {
    /// Nearest-point encoding is optimal: no other grid point is closer.
    #[test]
    fn grid_encode_is_nearest(points in proptest::collection::vec(-1e6f32..1e6, 1..64),
                              x in -2e6f32..2e6) {
        let grid = Grid::from_points(points).unwrap();
        let q = grid.quantize(x);
        let err = (x - q).abs();
        for &p in grid.points() {
            prop_assert!(err <= (x - p).abs() + err * 1e-6);
        }
    }

    /// Quantization is idempotent: quantize(quantize(x)) == quantize(x).
    #[test]
    fn grid_quantize_idempotent(points in proptest::collection::vec(-1e4f32..1e4, 1..32),
                                x in -1e5f32..1e5) {
        let grid = Grid::from_points(points).unwrap();
        let q = grid.quantize(x);
        prop_assert_eq!(grid.quantize(q), q);
    }

    /// MANT encode then decode lands on the nearest level for any input.
    #[test]
    fn mant_encode_nearest(a in 0u32..128, x in -500.0f32..500.0) {
        let m = Mant::new(a).unwrap();
        let decoded = m.decode(m.encode(x)) as f32;
        let err = (x.abs() - decoded.abs()).abs();
        for i in 0..8u8 {
            let lvl = m.level(i) as f32;
            prop_assert!(err <= (x.abs() - lvl).abs() + 1e-3,
                "a={} x={} decoded={} beaten by level {}", a, x, decoded, lvl);
        }
        // Sign is preserved for nonzero input.
        if x != 0.0 {
            prop_assert_eq!(decoded.is_sign_negative() || decoded == 0.0, x < 0.0);
        }
    }

    /// The psum decomposition is exact for arbitrary activations.
    #[test]
    fn mant_psum_fusion_exact(a in 0u32..128, bits in 0u8..16, x in -127i64..=127) {
        let m = Mant::new(a).unwrap();
        let c = MantCode::from_bits(bits);
        let fused = m.combine_psums(
            x * i64::from(Mant::psum1_operand(c)),
            x * i64::from(Mant::psum2_operand(c)),
        );
        prop_assert_eq!(fused, x * i64::from(m.decode(c)));
    }

    /// FP16 roundtrip error is within half a ULP for normal-range values.
    #[test]
    fn fp16_roundtrip_half_ulp(x in -6e4f32..6e4) {
        let q = fp16::quantize_fp16(x);
        if x.abs() >= 2.0f32.powi(-14) {
            prop_assert!(((q - x) / x).abs() <= 2.0f32.powi(-11), "{} -> {}", x, q);
        } else {
            // Subnormal spacing is 2^-24.
            prop_assert!((q - x).abs() <= 2.0f32.powi(-25) * 1.0001, "{} -> {}", x, q);
        }
    }

    /// FP16 quantization is monotone non-decreasing.
    #[test]
    fn fp16_monotone(x in -6e4f32..6e4, delta in 0.0f32..100.0) {
        prop_assert!(fp16::quantize_fp16(x + delta) >= fp16::quantize_fp16(x));
    }

    /// Grid MSE is invariant under data permutation and zero for grid data.
    #[test]
    fn grid_mse_properties(mags in proptest::collection::vec(0.1f32..100.0, 1..8)) {
        let grid = Grid::symmetric(&mags).unwrap();
        let data: Vec<f32> = grid.points().to_vec();
        prop_assert!(grid.mse(&data) < 1e-9);
    }

    /// MANT levels are strictly increasing and bounded by 7a + 128.
    #[test]
    fn mant_levels_shape(a in 0u32..128) {
        let m = Mant::new(a).unwrap();
        let l = m.levels();
        for w in l.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert_eq!(l[7], 7 * a + 128);
    }

    /// Nibble packing round-trips arbitrary 4-bit code vectors (even and
    /// odd lengths) with exactly ⌈n/2⌉ bytes, and the zero-alloc iterator
    /// agrees with the unpacker.
    #[test]
    fn packing_roundtrip_lossless(codes in proptest::collection::vec(0u8..16, 0..200)) {
        let packed = pack_nibbles(&codes);
        prop_assert_eq!(packed.len(), codes.len().div_ceil(2));
        prop_assert_eq!(unpack_nibbles(&packed, codes.len()), codes.clone());
        let via_iter: Vec<u8> = NibbleIter::new(&packed, codes.len()).collect();
        prop_assert_eq!(via_iter, codes);
    }

    /// Every MANT group survives encode → pack → unpack → decode with no
    /// loss: the packed memory layout is semantically identical to the
    /// one-code-per-byte layout.
    #[test]
    fn packing_preserves_mant_groups(a in 0u32..128,
                                     xs in proptest::collection::vec(-500.0f32..500.0, 1..129)) {
        let m = Mant::new(a).unwrap();
        let codes: Vec<u8> = xs.iter().map(|&x| m.encode(x).to_bits()).collect();
        let unpacked = unpack_nibbles(&pack_nibbles(&codes), codes.len());
        prop_assert_eq!(&unpacked, &codes);
        for (&c, &u) in codes.iter().zip(unpacked.iter()) {
            prop_assert_eq!(m.decode(MantCode::from_bits(c)), m.decode(MantCode::from_bits(u)));
        }
    }

    /// Every INT4 group (two's-complement low nibble) survives the packed
    /// layout: sign-extension after unpacking recovers the exact integers.
    #[test]
    fn packing_preserves_int4_groups(vals in proptest::collection::vec(-7i64..=7, 1..129)) {
        let codes: Vec<u8> = vals.iter().map(|&v| (v as i8 as u8) & 0x0f).collect();
        let unpacked = unpack_nibbles(&pack_nibbles(&codes), codes.len());
        for (&v, &u) in vals.iter().zip(unpacked.iter()) {
            let decoded = i64::from(((u << 4) as i8) >> 4);
            prop_assert_eq!(decoded, v);
        }
    }

    /// The packed pair-LUT kernel is **bit-identical** to the unpacked
    /// two-lane MANT kernel on random codes, every coefficient, and odd
    /// group tails — the exactness the packed working representation
    /// rests on.
    #[test]
    fn packed_dot_bit_identical_mant(a in 0u32..128,
                                     wcodes in proptest::collection::vec(0u8..16, 1..130),
                                     xseed in proptest::collection::vec(-128i64..=127, 130)) {
        let mant = Mant::new(a).unwrap();
        let xcodes: Vec<i8> = xseed[..wcodes.len()].iter().map(|&v| v as i8).collect();
        let packed = pack_nibbles(&wcodes);
        let lut = pair_decode_lut(&mant_decode_lut(mant));
        prop_assert_eq!(
            dot_packed(&xcodes, &packed, &lut),
            mant_group_psums(&xcodes, &wcodes, mant)
        );
    }

    /// The packed kernel through the INT4 pair table equals the unpacked
    /// INT4 MAC, odd tails included.
    #[test]
    fn packed_dot_bit_identical_int4(wcodes in proptest::collection::vec(0u8..16, 1..130),
                                     xseed in proptest::collection::vec(-128i64..=127, 130)) {
        let xcodes: Vec<i8> = xseed[..wcodes.len()].iter().map(|&v| v as i8).collect();
        let packed = pack_nibbles(&wcodes);
        let lut = pair_decode_lut(&int4_decode_lut());
        prop_assert_eq!(
            dot_packed(&xcodes, &packed, &lut),
            int4_group_mac(&xcodes, &wcodes)
        );
    }

    /// The 4-row tile kernel equals four independent packed dots for any
    /// mix of coefficients and any tail parity.
    #[test]
    fn packed_dot_x4_bit_identical(coeffs in (0u32..128, 0u32..128, 0u32..128, 0u32..128),
                                   wcodes in proptest::collection::vec(0u8..16, 4..132),
                                   xseed in proptest::collection::vec(-128i64..=127, 33)) {
        let len = wcodes.len() / 4;
        let xcodes: Vec<i8> = xseed[..len].iter().map(|&v| v as i8).collect();
        let rows: Vec<&[u8]> = wcodes.chunks_exact(len).take(4).collect();
        let packed: Vec<Vec<u8>> = rows.iter().map(|r| pack_nibbles(r)).collect();
        let luts: Vec<_> = [coeffs.0, coeffs.1, coeffs.2, coeffs.3]
            .iter()
            .map(|&a| pair_decode_lut(&mant_decode_lut(Mant::new(a).unwrap())))
            .collect();
        let tiled = dot_packed_x4(
            &xcodes,
            [&packed[0], &packed[1], &packed[2], &packed[3]],
            [&luts[0], &luts[1], &luts[2], &luts[3]],
        );
        for lane in 0..4 {
            prop_assert_eq!(tiled[lane], dot_packed(&xcodes, &packed[lane], &luts[lane]));
        }
    }

    /// Worst-case magnitudes never overflow the packed kernel's i32 group
    /// accumulator at any admissible group length: the extreme-magnitude
    /// sum stays exact all the way to `MAX_I32_GROUP`.
    #[test]
    fn packed_i32_bound_holds_at_extremes(len in 1usize..300) {
        let mant = Mant::new(127).unwrap();
        let lut = pair_decode_lut(&mant_decode_lut(mant));
        let xcodes = vec![-128i8; len];
        let wcodes = vec![0xfu8; len];
        let packed = pack_nibbles(&wcodes);
        let expect = len as i64 * 128 * (127 * 7 + 128);
        prop_assert_eq!(dot_packed(&xcodes, &packed, &lut), expect);
        // The analytic worst case per element times the cap fits i32 —
        // the bound the kernel's debug assertion enforces.
        prop_assert!((MAX_I32_GROUP as i64) * 128 * (127 * 7 + 128) <= i64::from(i32::MAX));
    }

    /// A packed buffer serves at most `2 × bytes` codes: the boundary
    /// count is accepted, anything beyond is a malformed length.
    #[test]
    fn packing_length_bounds(codes in proptest::collection::vec(0u8..16, 1..64)) {
        let packed = pack_nibbles(&codes);
        // The boundary count (every nibble, including an odd-length pad)
        // is valid.
        let all: Vec<u8> = NibbleIter::new(&packed, packed.len() * 2).collect();
        prop_assert_eq!(all.len(), packed.len() * 2);
        // Short counts truncate exactly.
        let half: Vec<u8> = NibbleIter::new(&packed, codes.len() / 2).collect();
        prop_assert_eq!(half.len(), codes.len() / 2);
        prop_assert_eq!(&half[..], &codes[..codes.len() / 2]);
    }
}

/// Malformed lengths (more codes requested than the buffer holds) are
/// rejected up front rather than yielding garbage.
#[test]
#[should_panic(expected = "packed buffer too short")]
fn packing_rejects_malformed_length() {
    let packed = pack_nibbles(&[1, 2, 3]);
    let _ = NibbleIter::new(&packed, 5);
}

proptest! {
    /// Every SIMD tier's packed dot is bit-identical to the scalar oracle
    /// for any MANT coefficient, any length (odd tails, lengths that are
    /// not multiples of the 16/32-code vector blocks), any codes.
    #[test]
    fn simd_dot_packed_bit_identical_mant(a in 0u32..128,
                                          wcodes in proptest::collection::vec(0u8..16, 1..300),
                                          xseed in proptest::collection::vec(-128i64..=127, 300)) {
        let xcodes: Vec<i8> = xseed[..wcodes.len()].iter().map(|&v| v as i8).collect();
        let packed = pack_nibbles(&wcodes);
        let lut = mant_kernel_lut(a);
        let oracle = dot_packed(&xcodes, &packed, &lut.pair);
        for d in tiers() {
            prop_assert_eq!(d.dot_packed(&xcodes, &packed, &lut), oracle, "tier {}", d.name());
        }
    }

    /// Same differential property through the INT4 table.
    #[test]
    fn simd_dot_packed_bit_identical_int4(wcodes in proptest::collection::vec(0u8..16, 1..300),
                                          xseed in proptest::collection::vec(-128i64..=127, 300)) {
        let xcodes: Vec<i8> = xseed[..wcodes.len()].iter().map(|&v| v as i8).collect();
        let packed = pack_nibbles(&wcodes);
        let lut = kernel_lut(&int4_decode_lut());
        let oracle = int4_group_mac(&xcodes, &wcodes);
        for d in tiers() {
            prop_assert_eq!(d.dot_packed(&xcodes, &packed, &lut), oracle, "tier {}", d.name());
        }
    }

    /// The SIMD 4-row tile equals four scalar packed dots for any mix of
    /// coefficients and any tail parity.
    #[test]
    fn simd_dot_packed_x4_bit_identical(coeffs in (0u32..128, 0u32..128, 0u32..128, 0u32..128),
                                        wcodes in proptest::collection::vec(0u8..16, 4..280),
                                        xseed in proptest::collection::vec(-128i64..=127, 70)) {
        let len = wcodes.len() / 4;
        let xcodes: Vec<i8> = xseed[..len].iter().map(|&v| v as i8).collect();
        let rows: Vec<&[u8]> = wcodes.chunks_exact(len).take(4).collect();
        let packed: Vec<Vec<u8>> = rows.iter().map(|r| pack_nibbles(r)).collect();
        let luts: Vec<KernelLut> = [coeffs.0, coeffs.1, coeffs.2, coeffs.3]
            .iter()
            .map(|&a| mant_kernel_lut(a))
            .collect();
        let w = [&packed[0][..], &packed[1][..], &packed[2][..], &packed[3][..]];
        let lr = [&luts[0], &luts[1], &luts[2], &luts[3]];
        let oracle = dot_packed_x4(&xcodes, w, lr.map(|l| &l.pair));
        for d in tiers() {
            prop_assert_eq!(d.dot_packed_x4(&xcodes, w, lr), oracle, "tier {}", d.name());
        }
    }

    /// Worst-case magnitudes at the `MAX_I32_GROUP` bound: every tier's
    /// partial-sum arrangement stays exact (no lane overflow) right up to
    /// the admissible cap.
    #[test]
    fn simd_dot_packed_exact_at_extremes(len in 1usize..600) {
        let len = if len > 550 { MAX_I32_GROUP } else { len };
        let lut = mant_kernel_lut(127);
        let xcodes = vec![-128i8; len];
        let packed = pack_nibbles(&vec![0xfu8; len]);
        let expect = len as i64 * 128 * (127 * 7 + 128);
        for d in tiers() {
            prop_assert_eq!(d.dot_packed(&xcodes, &packed, &lut), expect, "tier {}", d.name());
        }
    }

    /// The SIMD INT8 dot equals the scalar i64 accumulation for any
    /// length and contents (the vector tiers chunk-drain their i32 lanes).
    #[test]
    fn simd_int8_dot_bit_identical(aseed in proptest::collection::vec(-128i64..=127, 0..300),
                                   bseed in proptest::collection::vec(-128i64..=127, 300)) {
        let a: Vec<i8> = aseed.iter().map(|&v| v as i8).collect();
        let b: Vec<i8> = bseed[..a.len()].iter().map(|&v| v as i8).collect();
        let oracle = int8_dot(&a, &b);
        for d in tiers() {
            prop_assert_eq!(d.int8_dot(&a, &b), oracle, "tier {}", d.name());
        }
    }

    /// `abs_max` through every tier matches the scalar NaN-skipping fold
    /// bit for bit, NaN positions included.
    #[test]
    fn simd_abs_max_bit_identical(mut xs in proptest::collection::vec(-1e30f32..1e30, 0..120),
                                  nan_at in 0usize..120) {
        if nan_at < xs.len() {
            xs[nan_at] = f32::NAN;
        }
        let oracle = scalar_abs_max(&xs);
        for d in tiers() {
            prop_assert_eq!(d.abs_max(&xs).to_bits(), oracle.to_bits(), "tier {}", d.name());
        }
    }

    /// INT8 quantization through every tier is bit-identical to the
    /// scalar round-half-away / clamp / NaN→0 loop — including inputs at
    /// rounding boundaries, saturation, and non-finite values.
    #[test]
    fn simd_quantize_i8_bit_identical(mut xs in proptest::collection::vec(-300.0f32..300.0, 0..120),
                                      scale in 0.001f32..10.0,
                                      special_at in 0usize..120,
                                      special in 0usize..4) {
        if special_at < xs.len() {
            xs[special_at] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 63.5 * 0.125][special];
        }
        let mut oracle = vec![0i8; xs.len()];
        scalar_quantize_i8(&xs, scale, &mut oracle);
        for d in tiers() {
            let mut got = vec![0i8; xs.len()];
            d.quantize_i8(&xs, scale, &mut got);
            prop_assert_eq!(&got, &oracle, "tier {}", d.name());
        }
    }
}

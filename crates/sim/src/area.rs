//! Component areas (paper Tbl. IV, TSMC 28 nm synthesis).

/// One area line item.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaComponent {
    /// Component name.
    pub name: &'static str,
    /// Unit area in µm².
    pub unit_um2: f64,
    /// Instance count.
    pub count: usize,
}

impl AreaComponent {
    /// Total area of this component in mm².
    pub fn total_mm2(&self) -> f64 {
        self.unit_um2 * self.count as f64 / 1e6
    }
}

/// Per-accelerator area report.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaReport {
    /// Accelerator name.
    pub name: &'static str,
    /// Core compute components.
    pub core: Vec<AreaComponent>,
    /// Shared components (buffers, vector units, accumulators) in mm².
    pub shared_mm2: f64,
}

impl AreaReport {
    /// Total core area in mm² (the Tbl. IV "Area" column).
    pub fn core_mm2(&self) -> f64 {
        self.core.iter().map(AreaComponent::total_mm2).sum()
    }

    /// Full chip area including shared buffers.
    pub fn total_mm2(&self) -> f64 {
        self.core_mm2() + self.shared_mm2
    }
}

/// Shared area: 512 KB buffer (4.2 mm²) + 64 vector units (0.069 mm²) +
/// 32 accumulation units (0.016 mm²), identical for all accelerators.
pub const SHARED_MM2: f64 = 4.2 + 0.069 + 0.016;

/// The Tbl. IV component tables for all four synthesized accelerators.
pub fn area_report() -> Vec<AreaReport> {
    vec![
        AreaReport {
            name: "MANT",
            core: vec![
                AreaComponent {
                    name: "8-bit PE",
                    unit_um2: 281.75,
                    count: 1024,
                },
                AreaComponent {
                    name: "RQU",
                    unit_um2: 416.63,
                    count: 32,
                },
            ],
            shared_mm2: SHARED_MM2,
        },
        AreaReport {
            name: "OliVe",
            core: vec![
                AreaComponent {
                    name: "4-bit PE",
                    unit_um2: 79.57,
                    count: 4096,
                },
                AreaComponent {
                    name: "4-bit decoder",
                    unit_um2: 48.51,
                    count: 128,
                },
                AreaComponent {
                    name: "8-bit decoder",
                    unit_um2: 73.25,
                    count: 64,
                },
            ],
            shared_mm2: SHARED_MM2,
        },
        AreaReport {
            name: "ANT",
            core: vec![
                AreaComponent {
                    name: "4-bit PE",
                    unit_um2: 79.57,
                    count: 4096,
                },
                AreaComponent {
                    name: "decoder",
                    unit_um2: 4.9,
                    count: 128,
                },
            ],
            shared_mm2: SHARED_MM2,
        },
        AreaReport {
            name: "Tender",
            core: vec![AreaComponent {
                name: "4-bit PE",
                unit_um2: 77.28,
                count: 4096,
            }],
            shared_mm2: SHARED_MM2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table_iv() {
        let reports = area_report();
        let expected = [
            ("MANT", 0.302),
            ("OliVe", 0.337),
            ("ANT", 0.327),
            ("Tender", 0.317),
        ];
        for (name, area) in expected {
            let r = reports.iter().find(|r| r.name == name).unwrap();
            assert!(
                (r.core_mm2() - area).abs() < 0.003,
                "{name}: {} vs {area}",
                r.core_mm2()
            );
        }
    }

    #[test]
    fn iso_area_within_12_percent() {
        let reports = area_report();
        let areas: Vec<f64> = reports.iter().map(AreaReport::core_mm2).collect();
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = areas.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.12, "{min}..{max}");
    }

    #[test]
    fn shared_area_dominates() {
        // Buffers dominate total area → static power is equal across
        // designs, the assumption behind the energy model.
        for r in area_report() {
            assert!(r.shared_mm2 > 10.0 * r.core_mm2());
        }
    }

    #[test]
    fn rqu_overhead_negligible() {
        // The paper's "negligible area overhead" claim: RQUs are < 5% of
        // the MANT core.
        let mant = &area_report()[0];
        let rqu = mant.core.iter().find(|c| c.name == "RQU").unwrap();
        assert!(rqu.total_mm2() / mant.core_mm2() < 0.05);
    }
}

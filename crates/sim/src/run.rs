//! End-to-end layer runs: cycles, energy, speedups.

use mant_model::ModelConfig;

use crate::arch::{AcceleratorConfig, PrecisionPolicy, WeightBits};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::memory::{dram_cycles, gemm_traffic};
use crate::systolic::{array_shape, divider_stall_cycles, gemm_cycles};
use crate::workload::{attention_gemms, linear_gemms, Gemm, Phase};

/// The FP16 fallback policy for accelerators that leave attention
/// unquantized (Sec. VII-A: "the baselines do not quantize the attention
/// layer and therefore employ 16-bit computation in this layer").
const FP16_POLICY: PrecisionPolicy = PrecisionPolicy {
    act_bits: 16,
    weight: WeightBits::Uniform {
        bits: 16,
        meta_bits: 0.0,
    },
};

/// Aggregated result of running a workload on one accelerator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerRun {
    /// Busy cycles (compute/memory roofline, including exposed overheads).
    pub cycles: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: f64,
}

impl LayerRun {
    /// Element-wise accumulation.
    pub fn add(&self, other: &LayerRun) -> LayerRun {
        LayerRun {
            cycles: self.cycles + other.cycles,
            energy: self.energy.add(&other.energy),
            dram_bytes: self.dram_bytes + other.dram_bytes,
        }
    }

    /// Wall-clock milliseconds at `freq_ghz`.
    pub fn time_ms(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e6)
    }

    /// How much faster this run is than `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &LayerRun) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy of this run relative to `baseline` (<1 means less energy).
    pub fn energy_ratio_to(&self, baseline: &LayerRun) -> f64 {
        self.energy.total() / baseline.energy.total().max(f64::MIN_POSITIVE)
    }
}

/// Linear + attention results for one model/accelerator pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelRun {
    /// Linear-layer portion.
    pub linear: LayerRun,
    /// Attention portion.
    pub attention: LayerRun,
}

impl ModelRun {
    /// Sum of both phases.
    pub fn total(&self) -> LayerRun {
        self.linear.add(&self.attention)
    }
}

/// Runs one GEMM on an accelerator.
pub fn run_gemm(acc: &AcceleratorConfig, em: &EnergyModel, g: &Gemm) -> LayerRun {
    let policy = match g.phase {
        Phase::Linear => acc.linear,
        Phase::Attention => acc.attention.unwrap_or(FP16_POLICY),
    };
    match policy.weight {
        WeightBits::Uniform { bits, meta_bits } => run_gemm_at(
            acc,
            em,
            g,
            policy.act_bits,
            bits,
            f64::from(bits) + meta_bits,
            1.0,
        ),
        WeightBits::Mixed48 { frac8, meta_bits } => {
            let hi = run_gemm_at(acc, em, g, policy.act_bits, 8, 8.0 + meta_bits, frac8);
            let lo = run_gemm_at(acc, em, g, policy.act_bits, 4, 4.0 + meta_bits, 1.0 - frac8);
            hi.add(&lo)
        }
    }
}

/// Runs `weight` fraction of one GEMM at a fixed weight width.
fn run_gemm_at(
    acc: &AcceleratorConfig,
    em: &EnergyModel,
    g: &Gemm,
    act_bits: u8,
    w_bits: u8,
    w_storage_bits: f64,
    fraction: f64,
) -> LayerRun {
    if fraction <= 0.0 {
        return LayerRun::default();
    }
    let reps = g.count as f64 * fraction;
    let (rows, cols) = array_shape(act_bits, w_bits);
    let tiles_k = g.k.div_ceil(rows);
    let tiles_n = g.n.div_ceil(cols);

    // Compute cycles, scaled to the configured lane count (array_shape
    // assumes the paper's 4096-lane budget).
    let lane_scale = 4096.0 / acc.lanes_4x4 as f64;
    let mut cycles = gemm_cycles(act_bits, w_bits, g.m, g.k, g.n) as f64 * lane_scale;

    // Group-wise scale application: fused designs hide it behind the
    // accumulators (only the divider residue can surface); unfused designs
    // pay vector-unit cycles for per-group dequantization of every partial
    // output (Sec. VII-D: "the other methods do not optimize the process
    // of scaling factor computation").
    if let Some(group) = acc.group_size {
        if acc.fused_group_pipeline {
            cycles += divider_stall_cycles(act_bits, w_bits, g.k, g.n) as f64;
        } else {
            let dequant_ops = g.m as f64 * g.n as f64 * (g.k as f64 / group as f64);
            cycles += dequant_ops / acc.hw.vector_ops_per_cycle as f64;
        }
    }

    // Output width: quantizing designs write low-bit outputs, FP16
    // designs write halves.
    let out_bits = if policy_is_quantized(act_bits) { 8 } else { 16 };
    let traffic = gemm_traffic(
        g.m,
        g.k,
        g.n,
        w_storage_bits,
        act_bits,
        out_bits,
        tiles_k,
        tiles_n,
    );
    let mem_cycles = dram_cycles(traffic.dram_bytes, acc.hw.dram_gb_s, acc.hw.freq_ghz) as f64;

    // Roofline: compute and memory overlap; the run is bound by the max.
    let bound = cycles.max(mem_cycles) * reps;
    let cycles_total = bound.ceil() as u64;

    let macs = g.m as f64 * g.k as f64 * g.n as f64 * reps;
    let core = macs * em.mac_pj(acc, act_bits, w_bits) * 1e-12;
    let buffer = traffic.sram_bytes * reps * em.sram_pj_per_byte * 1e-12;
    let dram = traffic.dram_bytes * reps * em.dram_pj_per_byte * 1e-12;
    let static_ = em.static_energy(cycles_total, acc.hw.freq_ghz);

    LayerRun {
        cycles: cycles_total,
        energy: EnergyBreakdown {
            core,
            buffer,
            dram,
            static_,
        },
        dram_bytes: traffic.dram_bytes * reps,
    }
}

fn policy_is_quantized(act_bits: u8) -> bool {
    act_bits <= 8
}

/// Runs all linear layers of `cfg` at sequence length `seq`.
pub fn run_linear(
    acc: &AcceleratorConfig,
    em: &EnergyModel,
    cfg: &ModelConfig,
    seq: usize,
) -> LayerRun {
    linear_gemms(cfg, seq)
        .iter()
        .map(|g| run_gemm(acc, em, g))
        .fold(LayerRun::default(), |a, b| a.add(&b))
}

/// Runs the attention layers of `cfg` at sequence length `seq`.
pub fn run_attention(
    acc: &AcceleratorConfig,
    em: &EnergyModel,
    cfg: &ModelConfig,
    seq: usize,
) -> LayerRun {
    attention_gemms(cfg, seq)
        .iter()
        .map(|g| run_gemm(acc, em, g))
        .fold(LayerRun::default(), |a, b| a.add(&b))
}

/// Runs linear + attention.
pub fn run_model(
    acc: &AcceleratorConfig,
    em: &EnergyModel,
    cfg: &ModelConfig,
    seq: usize,
) -> ModelRun {
    ModelRun {
        linear: run_linear(acc, em, cfg, seq),
        attention: run_attention(acc, em, cfg, seq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn em() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn mant_linear_speedup_over_ant_star_near_2x() {
        // Fig. 12: MANT vs ANT* ≈ 2.00× in the linear layer (8×4 lanes vs
        // 8×8 lanes, both compute-bound at seq 2048).
        let cfg = ModelConfig::llama_7b();
        let mant = run_linear(&AcceleratorConfig::mant(), &em(), &cfg, 2048);
        let ant = run_linear(&AcceleratorConfig::ant_star(), &em(), &cfg, 2048);
        let s = mant.speedup_over(&ant);
        assert!((1.7..=2.3).contains(&s), "speedup {s}");
    }

    #[test]
    fn mant_linear_speedup_over_bitfusion_large() {
        // Fig. 12: ≈ 4.93× over BitFusion (16-bit weights).
        let cfg = ModelConfig::llama_7b();
        let mant = run_linear(&AcceleratorConfig::mant(), &em(), &cfg, 2048);
        let bf = run_linear(&AcceleratorConfig::bitfusion(), &em(), &cfg, 2048);
        let s = mant.speedup_over(&bf);
        assert!((3.5..=6.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn linear_speedup_ordering_matches_fig12() {
        // MANT > Tender > OliVe ≳ ANT* > BitFusion (higher = closer to MANT).
        let cfg = ModelConfig::llama_7b();
        let e = em();
        let mant = run_linear(&AcceleratorConfig::mant(), &e, &cfg, 2048);
        let tender = run_linear(&AcceleratorConfig::tender(), &e, &cfg, 2048);
        let olive = run_linear(&AcceleratorConfig::olive(), &e, &cfg, 2048);
        let ant = run_linear(&AcceleratorConfig::ant_star(), &e, &cfg, 2048);
        let bf = run_linear(&AcceleratorConfig::bitfusion(), &e, &cfg, 2048);
        let s_t = mant.speedup_over(&tender);
        let s_o = mant.speedup_over(&olive);
        let s_a = mant.speedup_over(&ant);
        let s_b = mant.speedup_over(&bf);
        assert!(
            s_t > 1.0 && s_t < s_o && s_o <= s_a && s_a < s_b,
            "ordering violated: T {s_t} O {s_o} A {s_a} B {s_b}"
        );
    }

    #[test]
    fn attention_gap_grows_with_sequence_length() {
        // Fig. 13: at 2K linear dominates (modest total speedup); by 128K
        // the unquantized-attention baselines fall far behind.
        let cfg = ModelConfig::llama_7b();
        let e = em();
        let mant2k = run_model(&AcceleratorConfig::mant(), &e, &cfg, 2048).total();
        let olive2k = run_model(&AcceleratorConfig::olive(), &e, &cfg, 2048).total();
        let mant128k = run_model(&AcceleratorConfig::mant(), &e, &cfg, 131_072).total();
        let olive128k = run_model(&AcceleratorConfig::olive(), &e, &cfg, 131_072).total();
        let s2k = mant2k.speedup_over(&olive2k);
        let s128k = mant128k.speedup_over(&olive128k);
        assert!(s128k > s2k, "2K {s2k} vs 128K {s128k}");
        assert!((1.5..=3.0).contains(&s2k), "2K speedup {s2k}");
        assert!((3.0..=9.0).contains(&s128k), "128K speedup {s128k}");
    }

    #[test]
    fn mant_saves_energy_everywhere() {
        let cfg = ModelConfig::llama_7b();
        let e = em();
        let mant = run_model(&AcceleratorConfig::mant(), &e, &cfg, 8192).total();
        for acc in [
            AcceleratorConfig::tender(),
            AcceleratorConfig::olive(),
            AcceleratorConfig::ant_star(),
            AcceleratorConfig::bitfusion(),
        ] {
            let base = run_model(&acc, &e, &cfg, 8192).total();
            let ratio = mant.energy_ratio_to(&base);
            assert!(ratio < 1.0, "{}: energy ratio {ratio}", acc.name);
        }
    }

    #[test]
    fn mant_core_energy_not_lower_than_baselines() {
        // Fig. 12's nuance: MANT's core energy is *similar* to baselines
        // (dual lanes + dequant offset the narrower operands); the wins
        // come from static/DRAM/buffer.
        let cfg = ModelConfig::llama_7b();
        let e = em();
        let mant = run_linear(&AcceleratorConfig::mant(), &e, &cfg, 2048);
        let tender = run_linear(&AcceleratorConfig::tender(), &e, &cfg, 2048);
        let ratio = mant.energy.core / tender.energy.core;
        assert!((0.6..=1.4).contains(&ratio), "core ratio {ratio}");
        assert!(mant.energy.static_ < tender.energy.static_);
    }

    #[test]
    fn groupwise_ablation_matches_fig14() {
        // Fig. 14: MANT ≈ 1.70× over group-wise ANT at G-64.
        let cfg = ModelConfig::llama_7b();
        let e = em();
        let mant = run_linear(&AcceleratorConfig::mant(), &e, &cfg, 2048);
        let antg = run_linear(&AcceleratorConfig::ant_group(64), &e, &cfg, 2048);
        let intg = run_linear(&AcceleratorConfig::int_group(64), &e, &cfg, 2048);
        let s_ant = mant.speedup_over(&antg);
        let s_int = mant.speedup_over(&intg);
        assert!((1.3..=2.1).contains(&s_ant), "vs ANT-group {s_ant}");
        assert!(s_int > 1.0, "vs INT-group {s_int}");
    }

    #[test]
    fn decode_stage_is_memory_bound() {
        // GEMV (m = 1): DRAM traffic decides everything; MANT's advantage
        // over ANT* converges to the storage-bit ratio ≈ 8/4.375.
        let cfg = ModelConfig::llama_7b();
        let e = em();
        let mant = run_linear(&AcceleratorConfig::mant(), &e, &cfg, 1);
        let ant = run_linear(&AcceleratorConfig::ant_star(), &e, &cfg, 1);
        let s = mant.speedup_over(&ant);
        assert!((1.5..=2.0).contains(&s), "decode speedup {s}");
    }

    #[test]
    fn layerrun_helpers() {
        let a = LayerRun {
            cycles: 100,
            energy: EnergyBreakdown {
                core: 1.0,
                buffer: 1.0,
                dram: 1.0,
                static_: 1.0,
            },
            dram_bytes: 10.0,
        };
        let b = LayerRun { cycles: 200, ..a };
        assert_eq!(b.speedup_over(&a), 0.5);
        assert_eq!(a.speedup_over(&b), 2.0);
        assert_eq!(a.add(&b).cycles, 300);
        assert!((a.time_ms(1.0) - 1e-4).abs() < 1e-12);
    }
}

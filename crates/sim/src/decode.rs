//! Decode-stage (token-generation) latency model.
//!
//! The paper's motivation (Sec. I): single-batch decode is a chain of
//! GEMVs, memory-bound on weight and KV-cache traffic — exactly where
//! cutting bits pays linearly. This module models the per-token latency of
//! the decode stage at a given context length: every linear layer streams
//! its weights once, and attention streams the whole KV cache.

use mant_model::ModelConfig;

use crate::arch::AcceleratorConfig;
use crate::energy::EnergyModel;
use crate::run::{run_gemm, LayerRun};
use crate::workload::{Gemm, Phase};

/// Per-token decode cost at one context length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecodeStep {
    /// Context length the step attends over.
    pub context: usize,
    /// Linear-layer portion.
    pub linear: LayerRun,
    /// Attention portion (GEMV against the KV cache).
    pub attention: LayerRun,
}

impl DecodeStep {
    /// Total busy cycles for the token.
    pub fn cycles(&self) -> u64 {
        self.linear.cycles + self.attention.cycles
    }

    /// Wall-clock milliseconds at `freq_ghz`.
    pub fn time_ms(&self, freq_ghz: f64) -> f64 {
        self.linear.add(&self.attention).time_ms(freq_ghz)
    }
}

/// The decode-stage GEMV workload for one token at `context` length.
pub fn decode_gemms(cfg: &ModelConfig, context: usize) -> Vec<Gemm> {
    let mut gemms: Vec<Gemm> = cfg
        .linear_layer_shapes()
        .into_iter()
        .map(|(name, k, n)| Gemm {
            name: name.to_owned(),
            m: 1,
            k,
            n,
            count: cfg.layers,
            phase: Phase::Linear,
        })
        .collect();
    let hd = cfg.head_dim();
    gemms.push(Gemm {
        name: "qk^T (decode)".to_owned(),
        m: 1,
        k: hd,
        n: context,
        count: cfg.layers * cfg.heads,
        phase: Phase::Attention,
    });
    gemms.push(Gemm {
        name: "pv (decode)".to_owned(),
        m: 1,
        k: context,
        n: hd,
        count: cfg.layers * cfg.heads,
        phase: Phase::Attention,
    });
    gemms
}

/// Simulates one decode token at the given context length.
pub fn decode_step(
    acc: &AcceleratorConfig,
    em: &EnergyModel,
    cfg: &ModelConfig,
    context: usize,
) -> DecodeStep {
    let mut linear = LayerRun::default();
    let mut attention = LayerRun::default();
    for g in decode_gemms(cfg, context) {
        let run = run_gemm(acc, em, &g);
        match g.phase {
            Phase::Linear => linear = linear.add(&run),
            Phase::Attention => attention = attention.add(&run),
        }
    }
    DecodeStep {
        context,
        linear,
        attention,
    }
}

/// Total latency of generating `tokens` tokens starting from a
/// `prompt_len` context (sums per-token steps as the cache grows, sampled
/// geometrically for tractability at long generations).
pub fn generation_latency_ms(
    acc: &AcceleratorConfig,
    em: &EnergyModel,
    cfg: &ModelConfig,
    prompt_len: usize,
    tokens: usize,
) -> f64 {
    if tokens == 0 {
        return 0.0;
    }
    // Sample up to 16 context points and integrate piecewise.
    let samples = 16.min(tokens);
    let mut total = 0.0f64;
    let mut covered = 0usize;
    for s in 0..samples {
        let seg_start = tokens * s / samples;
        let seg_end = tokens * (s + 1) / samples;
        let seg = seg_end - seg_start;
        if seg == 0 {
            continue;
        }
        let ctx = prompt_len + (seg_start + seg_end) / 2;
        let step = decode_step(acc, em, cfg, ctx.max(1));
        total += step.time_ms(acc.hw.freq_ghz) * seg as f64;
        covered += seg;
    }
    debug_assert_eq!(covered, tokens);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn em() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn decode_is_memory_bound_and_bit_sensitive() {
        // Per-token linear latency tracks weight bytes: MANT (4.375 bits)
        // vs ANT* (8 bits) ≈ 1.8×.
        let cfg = ModelConfig::llama_7b();
        let mant = decode_step(&AcceleratorConfig::mant(), &em(), &cfg, 2048);
        let ant = decode_step(&AcceleratorConfig::ant_star(), &em(), &cfg, 2048);
        let r = ant.linear.cycles as f64 / mant.linear.cycles as f64;
        assert!((1.5..=2.1).contains(&r), "linear decode ratio {r}");
    }

    #[test]
    fn attention_grows_with_context() {
        let cfg = ModelConfig::llama_7b();
        let acc = AcceleratorConfig::mant();
        let short = decode_step(&acc, &em(), &cfg, 1024);
        let long = decode_step(&acc, &em(), &cfg, 65536);
        assert!(long.attention.cycles > short.attention.cycles * 16);
        // Linear cost is context-independent.
        assert_eq!(long.linear.cycles, short.linear.cycles);
    }

    #[test]
    fn kv_quantization_wins_grow_with_context() {
        // At long context the 16-bit-KV baselines fall behind ~bit-ratio.
        let cfg = ModelConfig::llama_7b();
        let mant = decode_step(&AcceleratorConfig::mant(), &em(), &cfg, 131_072);
        let olive = decode_step(&AcceleratorConfig::olive(), &em(), &cfg, 131_072);
        let r = olive.attention.cycles as f64 / mant.attention.cycles as f64;
        assert!(r > 2.0, "attention decode ratio {r}");
    }

    #[test]
    fn generation_latency_integrates() {
        let cfg = ModelConfig::llama_7b();
        let acc = AcceleratorConfig::mant();
        let zero = generation_latency_ms(&acc, &em(), &cfg, 128, 0);
        assert_eq!(zero, 0.0);
        let short = generation_latency_ms(&acc, &em(), &cfg, 128, 32);
        let long = generation_latency_ms(&acc, &em(), &cfg, 128, 64);
        assert!(long > short * 1.8, "{short} vs {long}");
        // GQA shrinks nothing here (paper models are MHA), but the path
        // must accept GQA configs.
        let gqa = cfg.clone().with_gqa(8);
        let g = generation_latency_ms(&acc, &em(), &gqa, 128, 32);
        assert!(g > 0.0);
    }
}

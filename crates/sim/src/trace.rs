//! Serving-trace workloads: seeded request arrival processes with
//! prompt/output length distributions.
//!
//! The serving runtime's scheduler is only meaningful under realistic
//! multi-tenant traffic — requests arriving asynchronously with varied
//! prompt and generation lengths (the regime where continuous batching
//! pays, cf. the paper's "LLM serving" motivation). This module generates
//! deterministic, seeded traces of that shape. Time is measured in
//! **engine iterations** (one batched token step), the serving runtime's
//! natural clock; a Poisson process in that clock models independent
//! users.

use mant_tensor::TensorGenerator;

/// A request-length distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LengthDist {
    /// Every request has exactly this length.
    Fixed(usize),
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Smallest length.
        lo: usize,
        /// Largest length.
        hi: usize,
    },
}

impl LengthDist {
    /// Draws one length.
    ///
    /// # Panics
    ///
    /// Panics on an empty (`lo > hi`) uniform range.
    pub fn sample(&self, gen: &mut TensorGenerator) -> usize {
        match *self {
            LengthDist::Fixed(n) => n,
            LengthDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "empty length range {lo}..={hi}");
                lo + (gen.uniform(0.0, 1.0) * (hi - lo + 1) as f32) as usize
            }
        }
    }

    /// The largest length the distribution can produce.
    pub fn max(&self) -> usize {
        match *self {
            LengthDist::Fixed(n) => n,
            LengthDist::Uniform { hi, .. } => hi,
        }
    }
}

/// One serving request in a trace: when it arrives and how much work it
/// carries. Prompt *contents* are left to the consumer (the serving crate
/// derives token ids deterministically from the trace seed), keeping the
/// trace purely a workload description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRequest {
    /// Arrival time in engine iterations.
    pub arrival_iter: u64,
    /// Prompt length in tokens (≥ 1).
    pub prompt_len: usize,
    /// Tokens to generate (≥ 1).
    pub output_len: usize,
}

/// Shape of a generated serving trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Number of requests.
    pub requests: usize,
    /// Mean arrivals per engine iteration (the Poisson rate λ).
    pub arrivals_per_iter: f64,
    /// Prompt-length distribution.
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// RNG seed; equal seeds give identical traces.
    pub seed: u64,
}

/// Generates a seeded Poisson-arrival trace: inter-arrival gaps are
/// exponential with mean `1 / arrivals_per_iter`, lengths are drawn from
/// the configured distributions, and the result is sorted by arrival (it
/// is generated in arrival order).
///
/// # Panics
///
/// Panics if `arrivals_per_iter` is not positive or a length distribution
/// can produce 0.
pub fn poisson_trace(cfg: &TraceConfig) -> Vec<TraceRequest> {
    assert!(
        cfg.arrivals_per_iter > 0.0,
        "arrival rate must be positive, got {}",
        cfg.arrivals_per_iter
    );
    let mut gen = TensorGenerator::new(cfg.seed);
    let mut clock = 0.0f64;
    (0..cfg.requests)
        .map(|_| {
            // Inverse-CDF exponential inter-arrival; 1-U avoids ln(0).
            let u = f64::from(gen.uniform(0.0, 1.0));
            clock += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / cfg.arrivals_per_iter;
            let prompt_len = cfg.prompt.sample(&mut gen);
            let output_len = cfg.output.sample(&mut gen);
            assert!(
                prompt_len > 0 && output_len > 0,
                "trace lengths must be positive (prompt {prompt_len}, output {output_len})"
            );
            TraceRequest {
                arrival_iter: clock as u64,
                prompt_len,
                output_len,
            }
        })
        .collect()
}

/// Total tokens a trace will push through the engine (prompt + output).
pub fn trace_tokens(trace: &[TraceRequest]) -> usize {
    trace.iter().map(|r| r.prompt_len + r.output_len).sum()
}

/// Shape of a shared-prefix serving workload: every request's prompt is
/// `system ++ persona ++ unique` — a system prompt common to **all**
/// requests, a persona block common to the requests of one persona, and a
/// per-request tail. This is the multi-tenant regime prefix caching is
/// built for (N assistants over one deployment prompt, M users each), and
/// the workload the serving runtime's prefix-sharing bench drives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharedPrefixConfig {
    /// Distinct personas (each with its own persona prompt block).
    pub personas: usize,
    /// Requests per persona (total requests = `personas × requests_per_persona`).
    pub requests_per_persona: usize,
    /// Tokens of the system prompt shared by every request (≥ 1).
    pub system_prompt_len: usize,
    /// Tokens of the per-persona prompt block (may be 0).
    pub persona_prompt_len: usize,
    /// Per-request unique prompt tail (must not produce 0: a request must
    /// feed at least one uncached token to yield first-token logits).
    pub unique_prompt_len: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// Mean arrivals per engine iteration (Poisson rate λ).
    pub arrivals_per_iter: f64,
    /// RNG seed; equal seeds give identical traces.
    pub seed: u64,
}

/// One request of a shared-prefix trace: the workload description plus
/// which persona it belongs to and how its prompt splits into shared and
/// unique parts (the consumer materializes matching token contents).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedPrefixRequest {
    /// Arrival/length description (`prompt_len = system + persona + unique`).
    pub trace: TraceRequest,
    /// Persona index in `0..personas`.
    pub persona: usize,
    /// Unique prompt-tail length of this request.
    pub unique_len: usize,
}

/// Generates a seeded shared-prefix trace: Poisson arrivals as in
/// [`poisson_trace`], personas assigned round-robin so every persona's
/// requests interleave in time.
///
/// # Panics
///
/// Panics if `personas`, `requests_per_persona`, or `system_prompt_len`
/// is zero, if the unique-length distribution can produce 0, or if
/// `arrivals_per_iter` is not positive.
pub fn shared_prefix_trace(cfg: &SharedPrefixConfig) -> Vec<SharedPrefixRequest> {
    assert!(
        cfg.personas > 0 && cfg.requests_per_persona > 0,
        "a shared-prefix trace needs at least one persona and one request each"
    );
    assert!(cfg.system_prompt_len > 0, "system prompt must be non-empty");
    assert!(
        cfg.arrivals_per_iter > 0.0,
        "arrival rate must be positive, got {}",
        cfg.arrivals_per_iter
    );
    let mut gen = TensorGenerator::new(cfg.seed);
    let mut clock = 0.0f64;
    (0..cfg.personas * cfg.requests_per_persona)
        .map(|i| {
            let u = f64::from(gen.uniform(0.0, 1.0));
            clock += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / cfg.arrivals_per_iter;
            let unique_len = cfg.unique_prompt_len.sample(&mut gen);
            let output_len = cfg.output.sample(&mut gen);
            assert!(
                unique_len > 0 && output_len > 0,
                "unique prompt and output lengths must be positive \
                 (unique {unique_len}, output {output_len})"
            );
            SharedPrefixRequest {
                trace: TraceRequest {
                    arrival_iter: clock as u64,
                    prompt_len: cfg.system_prompt_len + cfg.persona_prompt_len + unique_len,
                    output_len,
                },
                persona: i % cfg.personas,
                unique_len,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig {
            requests: 200,
            arrivals_per_iter: 0.25,
            prompt: LengthDist::Uniform { lo: 8, hi: 64 },
            output: LengthDist::Fixed(16),
            seed: 7,
        }
    }

    #[test]
    fn deterministic_and_sorted() {
        let a = poisson_trace(&cfg());
        let b = poisson_trace(&cfg());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_iter <= w[1].arrival_iter));
        assert_ne!(a, poisson_trace(&TraceConfig { seed: 8, ..cfg() }));
    }

    #[test]
    fn poisson_rate_roughly_holds() {
        let trace = poisson_trace(&cfg());
        let span = trace.last().unwrap().arrival_iter as f64;
        let rate = trace.len() as f64 / span;
        // 200 samples: the empirical rate lands well within ±40% of λ.
        assert!((0.15..0.4).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn lengths_respect_distributions() {
        let trace = poisson_trace(&cfg());
        assert!(trace.iter().all(|r| (8..=64).contains(&r.prompt_len)));
        assert!(trace.iter().all(|r| r.output_len == 16));
        let total = trace_tokens(&trace);
        assert_eq!(
            total,
            trace.iter().map(|r| r.prompt_len).sum::<usize>() + 200 * 16
        );
        // Uniform really spreads: both halves of the range appear.
        assert!(trace.iter().any(|r| r.prompt_len < 30));
        assert!(trace.iter().any(|r| r.prompt_len > 40));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        let _ = poisson_trace(&TraceConfig {
            arrivals_per_iter: 0.0,
            ..cfg()
        });
    }

    fn shared_cfg() -> SharedPrefixConfig {
        SharedPrefixConfig {
            personas: 3,
            requests_per_persona: 4,
            system_prompt_len: 32,
            persona_prompt_len: 16,
            unique_prompt_len: LengthDist::Uniform { lo: 2, hi: 9 },
            output: LengthDist::Fixed(5),
            arrivals_per_iter: 0.5,
            seed: 21,
        }
    }

    #[test]
    fn shared_prefix_trace_shape() {
        let a = shared_prefix_trace(&shared_cfg());
        assert_eq!(a, shared_prefix_trace(&shared_cfg()));
        assert_eq!(a.len(), 12);
        assert!(a
            .windows(2)
            .all(|w| w[0].trace.arrival_iter <= w[1].trace.arrival_iter));
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.persona, i % 3, "round-robin persona assignment");
            assert!((2..=9).contains(&r.unique_len));
            assert_eq!(r.trace.prompt_len, 32 + 16 + r.unique_len);
            assert_eq!(r.trace.output_len, 5);
        }
        // Every persona appears the configured number of times.
        for p in 0..3 {
            assert_eq!(a.iter().filter(|r| r.persona == p).count(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "system prompt must be non-empty")]
    fn empty_system_prompt_rejected() {
        let _ = shared_prefix_trace(&SharedPrefixConfig {
            system_prompt_len: 0,
            ..shared_cfg()
        });
    }
}

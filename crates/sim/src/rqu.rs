//! Real-time quantization unit (RQU) pipeline model (paper Sec. VI-C).
//!
//! 32 RQUs sit under the array's 32 output columns. In **spatial** mode
//! (activations, K cache) the comparator chain propagates a running max
//! left-to-right, reaching steady state after 32 cycles and then producing
//! one group max per cycle. In **temporal** mode (V cache) each RQU
//! accumulates its own column's `Σv`, `Σv²`, and `max` across decode
//! iterations with no cross-RQU communication.

/// Number of RQUs (matches the array's 32 output columns).
pub const RQU_COUNT: usize = 32;

/// Cycles for a spatial max/variance reduction over an `m × 32` output
/// tile with the given group size: 32-cycle pipeline fill, then one column
/// result per cycle; a group of `g` needs `g / 32` comparison rounds
/// (Sec. VI-C's "two comparison rounds" for g = 64).
pub fn spatial_reduction_cycles(m: usize, group_size: usize) -> u64 {
    if m == 0 {
        return 0;
    }
    let rounds = group_size.div_ceil(RQU_COUNT) as u64;
    RQU_COUNT as u64 + m as u64 * rounds
}

/// Cycles the temporal mode adds per decode iteration: each RQU updates
/// its accumulators in one cycle, fully overlapped with the array drain —
/// the marginal cost is a single pipeline stage.
pub fn temporal_update_cycles() -> u64 {
    1
}

/// Whether the spatial reduction is hidden under the GEMM that produces
/// the tile: the array needs `m + fill` cycles per tile, the RQU chain
/// `32 + m·rounds`; for m ≥ 32 and rounds ≤ 2 the reduction never becomes
/// the bottleneck (it trails the output stream by a constant).
pub fn reduction_hidden(m: usize, group_size: usize) -> bool {
    let rounds = group_size.div_ceil(RQU_COUNT) as u64;
    // The chain processes one output row per `rounds` cycles; the array
    // produces one output row per cycle. Hidden if the chain keeps up
    // within a pipeline constant, which for the paper's g = 64 (2 rounds)
    // requires double-buffered comparators — modeled as hidden for m ≥ 1
    // when rounds ≤ 2, exposed beyond that.
    let _ = m;
    rounds <= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_group64_two_rounds() {
        // g = 64 → two comparison rounds (Sec. VI-C).
        assert_eq!(spatial_reduction_cycles(1, 64), 32 + 2);
        assert_eq!(spatial_reduction_cycles(100, 64), 32 + 200);
    }

    #[test]
    fn hidden_for_paper_config() {
        assert!(reduction_hidden(2048, 64));
        assert!(reduction_hidden(1, 32));
        assert!(!reduction_hidden(2048, 128));
    }

    #[test]
    fn temporal_is_constant() {
        assert_eq!(temporal_update_cycles(), 1);
    }

    #[test]
    fn zero_rows() {
        assert_eq!(spatial_reduction_cycles(0, 64), 0);
    }
}

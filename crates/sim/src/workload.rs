//! GEMM workloads derived from model configurations.

use mant_model::ModelConfig;

/// Which execution phase a GEMM belongs to (precision policies differ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Weight × activation projections.
    Linear,
    /// `Q·Kᵀ` and `P·V` against the KV cache.
    Attention,
}

/// One GEMM instance (possibly repeated `count` times).
#[derive(Clone, Debug, PartialEq)]
pub struct Gemm {
    /// Label for reports.
    pub name: String,
    /// Output rows (sequence/batch dimension).
    pub m: usize,
    /// Accumulation dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Repetitions (layers × heads).
    pub count: usize,
    /// Phase, selecting the precision policy.
    pub phase: Phase,
}

impl Gemm {
    /// Total multiply-accumulates across repetitions.
    pub fn macs(&self) -> f64 {
        self.m as f64 * self.k as f64 * self.n as f64 * self.count as f64
    }
}

/// The linear-layer GEMMs of a full forward pass at sequence length `seq`
/// (prefill-style, batch 1 — the paper's Fig. 12 setting).
pub fn linear_gemms(cfg: &ModelConfig, seq: usize) -> Vec<Gemm> {
    cfg.linear_layer_shapes()
        .into_iter()
        .map(|(name, k, n)| Gemm {
            name: name.to_owned(),
            m: seq,
            k,
            n,
            count: cfg.layers,
            phase: Phase::Linear,
        })
        .collect()
}

/// The attention GEMMs at sequence length `seq`: per head,
/// `Q·Kᵀ` (`seq × head_dim × seq`) and `P·V` (`seq × seq × head_dim`).
pub fn attention_gemms(cfg: &ModelConfig, seq: usize) -> Vec<Gemm> {
    let hd = cfg.head_dim();
    vec![
        Gemm {
            name: "qk^T".to_owned(),
            m: seq,
            k: hd,
            n: seq,
            count: cfg.layers * cfg.heads,
            phase: Phase::Attention,
        },
        Gemm {
            name: "pv".to_owned(),
            m: seq,
            k: seq,
            n: hd,
            count: cfg.layers * cfg.heads,
            phase: Phase::Attention,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_macs_scale_with_seq() {
        let cfg = ModelConfig::llama_7b();
        let g1 = linear_gemms(&cfg, 1);
        let g2k = linear_gemms(&cfg, 2048);
        let m1: f64 = g1.iter().map(Gemm::macs).sum();
        let m2k: f64 = g2k.iter().map(Gemm::macs).sum();
        assert!((m2k / m1 - 2048.0).abs() < 1.0);
        // Forward-pass MACs ≈ linear params.
        assert!((m1 - cfg.linear_params() as f64).abs() < 1.0);
    }

    #[test]
    fn attention_macs_quadratic_in_seq() {
        let cfg = ModelConfig::llama_7b();
        let a2k: f64 = attention_gemms(&cfg, 2048).iter().map(Gemm::macs).sum();
        let a8k: f64 = attention_gemms(&cfg, 8192).iter().map(Gemm::macs).sum();
        assert!((a8k / a2k - 16.0).abs() < 0.01);
    }

    #[test]
    fn attention_dominates_at_long_seq() {
        // Fig. 13's premise: at 128K the attention layer dwarfs linear.
        let cfg = ModelConfig::llama_7b();
        let lin: f64 = linear_gemms(&cfg, 131_072).iter().map(Gemm::macs).sum();
        let att: f64 = attention_gemms(&cfg, 131_072).iter().map(Gemm::macs).sum();
        assert!(att > 2.0 * lin, "attention {att} vs linear {lin}");
    }
}

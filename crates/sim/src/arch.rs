//! Accelerator configurations (paper Sec. VII-A).
//!
//! All accelerators share frequency, DRAM bandwidth, and buffer size, and
//! are provisioned at (near-)equal area — the paper's Tbl. IV lists 1024
//! 8-bit PEGs for MANT against 4096 4-bit PEs for the baselines, which is
//! the same number of 4×4-bit multiplier lanes. What differs is the
//! *precision policy* each can sustain at matched perplexity (Tbl. II) and
//! whether group-wise (de)quantization is fused into the array or paid on
//! the vector units.

/// Hardware parameters shared by every accelerator in an experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareParams {
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gb_s: f64,
    /// On-chip buffer capacity in KiB (Tbl. IV: 512 KB).
    pub buffer_kib: usize,
    /// Vector-unit throughput in scalar ops per cycle (64 vector units).
    pub vector_ops_per_cycle: usize,
}

impl Default for HardwareParams {
    fn default() -> Self {
        HardwareParams {
            freq_ghz: 1.0,
            dram_gb_s: 256.0,
            buffer_kib: 512,
            vector_ops_per_cycle: 512,
        }
    }
}

/// Weight bit-width policy of a precision configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightBits {
    /// All layers at one width, with per-element metadata overhead in bits
    /// (e.g. MANT-g64: 4-bit codes + 24/64 bits of scale+coefficient).
    Uniform {
        /// Code bits per element.
        bits: u8,
        /// Metadata bits per element (scales, coefficients).
        meta_bits: f64,
    },
    /// A fraction of layers kept at 8 bits to recover perplexity (how
    /// OliVe/Tender/ANT align PPL in Fig. 12), the rest at 4 bits.
    Mixed48 {
        /// Fraction of weights computed/stored at 8 bits.
        frac8: f64,
        /// Metadata bits per element.
        meta_bits: f64,
    },
}

impl WeightBits {
    /// Average stored bits per weight element (codes + metadata).
    pub fn avg_storage_bits(&self) -> f64 {
        match *self {
            WeightBits::Uniform { bits, meta_bits } => f64::from(bits) + meta_bits,
            WeightBits::Mixed48 { frac8, meta_bits } => {
                8.0 * frac8 + 4.0 * (1.0 - frac8) + meta_bits
            }
        }
    }
}

/// Precision of one execution phase (linear layers or attention).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionPolicy {
    /// Activation bit width fed to the array.
    pub act_bits: u8,
    /// Weight (or KV-cache) policy.
    pub weight: WeightBits,
}

/// One accelerator configuration.
#[derive(Clone, Debug)]
pub struct AcceleratorConfig {
    /// Display name.
    pub name: String,
    /// Number of 4×4-bit multiplier lanes (iso-area across accelerators:
    /// 4096 ≙ 1024 8-bit PEGs ≙ 4096 4-bit PEs).
    pub lanes_4x4: usize,
    /// Linear-layer precision.
    pub linear: PrecisionPolicy,
    /// Attention precision; `None` means the accelerator does not quantize
    /// attention and computes it at FP16 (all baselines, Sec. VII-A).
    pub attention: Option<PrecisionPolicy>,
    /// Whether group-wise scale application is fused into the accumulator
    /// pipeline (MANT, Sec. VI-E) instead of costing vector-unit cycles.
    pub fused_group_pipeline: bool,
    /// Group size when running group-wise, for overhead accounting.
    pub group_size: Option<usize>,
    /// Shared platform parameters.
    pub hw: HardwareParams,
}

/// Metadata bits/element for a group of `g` with FP16 scale + 8-bit `a`.
fn mant_meta(g: usize) -> f64 {
    24.0 / g as f64
}

/// Metadata bits/element for a group of `g` with FP16 scale only.
fn scale_meta(g: usize) -> f64 {
    16.0 / g as f64
}

impl AcceleratorConfig {
    /// MANT: W4(+meta) A8 linear, 4-bit MANT KV + INT8 activations in
    /// attention, fused group pipeline (the paper's proposal).
    pub fn mant() -> Self {
        let g = 64;
        AcceleratorConfig {
            name: "MANT".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Uniform {
                    bits: 4,
                    meta_bits: mant_meta(g),
                },
            },
            attention: Some(PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Uniform {
                    bits: 4,
                    meta_bits: mant_meta(g),
                },
            }),
            fused_group_pipeline: true,
            group_size: Some(g),
            hw: HardwareParams::default(),
        }
    }

    /// Tender: 4/8 mixed precision aligned to MANT's PPL (mostly 8-bit per
    /// Tbl. II, where Tender needs W8A8 to match), channel-chunk scales
    /// (negligible metadata), FP16 attention.
    pub fn tender() -> Self {
        AcceleratorConfig {
            name: "Tender".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Mixed48 {
                    frac8: 0.88,
                    meta_bits: 0.07,
                },
            },
            attention: None,
            fused_group_pipeline: false,
            group_size: None,
            hw: HardwareParams::default(),
        }
    }

    /// OliVe: 4/8 mixed, slightly more 8-bit than Tender (Fig. 12's
    /// "Tender outperforms OliVe because the 8-bit layer is less"), FP16
    /// attention.
    pub fn olive() -> Self {
        AcceleratorConfig {
            name: "OliVe".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Mixed48 {
                    frac8: 0.96,
                    meta_bits: 0.02,
                },
            },
            attention: None,
            fused_group_pipeline: false,
            group_size: None,
            hw: HardwareParams::default(),
        }
    }

    /// ANT*: the 8-bit ANT configuration that cannot recover 4-bit PPL —
    /// effectively coarse-grained INT8 (Sec. VII-A), FP16 attention.
    pub fn ant_star() -> Self {
        AcceleratorConfig {
            name: "ANT*".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Uniform {
                    bits: 8,
                    meta_bits: 0.01,
                },
            },
            attention: None,
            fused_group_pipeline: false,
            group_size: None,
            hw: HardwareParams::default(),
        }
    }

    /// BitFusion: plain INT needing 8-bit activations and 16-bit weights
    /// for LLM accuracy ("computation in 8 and 16 bits"), FP16 attention.
    pub fn bitfusion() -> Self {
        AcceleratorConfig {
            name: "BitFusion".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Uniform {
                    bits: 16,
                    meta_bits: 0.01,
                },
            },
            attention: None,
            fused_group_pipeline: false,
            group_size: None,
            hw: HardwareParams::default(),
        }
    }

    /// Group-wise ANT for the Fig. 14 ablation: per-group types at G-64
    /// but 4/8 mixed to reach MANT's PPL (ANT needs most layers at 8 bits
    /// — its Tbl. V group accuracy is *below* INT's), per-group scales
    /// applied on the vector units (not fused), group-wise INT KV cache.
    pub fn ant_group(g: usize) -> Self {
        AcceleratorConfig {
            name: "ANT-group".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Mixed48 {
                    frac8: 0.7,
                    meta_bits: scale_meta(g),
                },
            },
            attention: Some(PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Uniform {
                    bits: 4,
                    meta_bits: scale_meta(g),
                },
            }),
            fused_group_pipeline: false,
            group_size: Some(g),
            hw: HardwareParams::default(),
        }
    }

    /// Group-wise INT4 for Fig. 14: needs 4/8 mixing for PPL parity and
    /// pays the unfused scale cost.
    pub fn int_group(g: usize) -> Self {
        AcceleratorConfig {
            name: "INT-group".to_owned(),
            lanes_4x4: 4096,
            linear: PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Mixed48 {
                    frac8: 0.6,
                    meta_bits: scale_meta(g),
                },
            },
            attention: Some(PrecisionPolicy {
                act_bits: 8,
                weight: WeightBits::Uniform {
                    bits: 4,
                    meta_bits: scale_meta(g),
                },
            }),
            fused_group_pipeline: false,
            group_size: Some(g),
            hw: HardwareParams::default(),
        }
    }

    /// The Fig. 12/13 baseline set, MANT first.
    pub fn paper_set() -> Vec<AcceleratorConfig> {
        vec![
            Self::mant(),
            Self::tender(),
            Self::olive(),
            Self::ant_star(),
            Self::bitfusion(),
        ]
    }

    /// MAC throughput (multiply-accumulates per cycle) for an
    /// `act_bits × weight_bits` operation, via BitFusion-style lane
    /// composition at 2-bit granularity: an `a×w` product occupies
    /// `⌈a/2⌉·⌈w/2⌉` 2×2 lanes, and one 4×4 lane is four 2×2 lanes. This
    /// reproduces the paper's PEG throughput table (Sec. VI-B): 1024
    /// INT8×INT8, 2048 INT8×INT4, 4096 INT8×INT2 per cycle.
    pub fn macs_per_cycle(&self, act_bits: u8, weight_bits: u8) -> f64 {
        let ca = act_bits.div_ceil(2).max(1) as f64;
        let cw = weight_bits.div_ceil(2).max(1) as f64;
        self.lanes_4x4 as f64 * 4.0 / (ca * cw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_matches_paper_configurations() {
        let m = AcceleratorConfig::mant();
        // Sec. VI-B: 32×32 for 8×8 (1024), 64×32 for 8×4 (2048),
        // 128×32 for 8×2 (4096).
        assert_eq!(m.macs_per_cycle(8, 8), 1024.0);
        assert_eq!(m.macs_per_cycle(8, 4), 2048.0);
        assert_eq!(m.macs_per_cycle(8, 2), 4096.0);
        assert_eq!(m.macs_per_cycle(16, 16), 256.0);
        assert_eq!(m.macs_per_cycle(4, 4), 4096.0);
        assert_eq!(m.macs_per_cycle(16, 8), 512.0);
    }

    #[test]
    fn storage_bits() {
        let mant = AcceleratorConfig::mant();
        assert!((mant.linear.weight.avg_storage_bits() - 4.375).abs() < 1e-9);
        let bf = AcceleratorConfig::bitfusion();
        assert!(bf.linear.weight.avg_storage_bits() > 16.0);
        let mixed = WeightBits::Mixed48 {
            frac8: 0.5,
            meta_bits: 0.0,
        };
        assert_eq!(mixed.avg_storage_bits(), 6.0);
    }

    #[test]
    fn baselines_do_not_quantize_attention() {
        for acc in [
            AcceleratorConfig::tender(),
            AcceleratorConfig::olive(),
            AcceleratorConfig::ant_star(),
            AcceleratorConfig::bitfusion(),
        ] {
            assert!(acc.attention.is_none(), "{}", acc.name);
        }
        assert!(AcceleratorConfig::mant().attention.is_some());
    }

    #[test]
    fn paper_set_is_five() {
        let set = AcceleratorConfig::paper_set();
        assert_eq!(set.len(), 5);
        assert_eq!(set[0].name, "MANT");
        // Iso-area: identical lane counts.
        assert!(set.iter().all(|a| a.lanes_4x4 == 4096));
    }
}

//! DRAM/SRAM traffic accounting under a roofline.

/// Byte traffic of one GEMM under a given precision assignment.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Traffic {
    /// Bytes fetched from DRAM.
    pub dram_bytes: f64,
    /// Bytes moved through the on-chip buffers (includes tile re-streaming
    /// and partial-sum read-modify-write).
    pub sram_bytes: f64,
}

/// Computes the traffic of an `M×K×N` GEMM.
///
/// Model: weights stream from DRAM once (`k·n` elements at
/// `weight_storage_bits`); activations are fetched once (`m·k` at
/// `act_bits`) and re-streamed from SRAM for every N-tile; outputs leave at
/// `out_bits`; partial sums are read-modify-written in 32-bit SRAM once
/// per K-tile beyond the first.
#[allow(clippy::too_many_arguments)]
pub fn gemm_traffic(
    m: usize,
    k: usize,
    n: usize,
    weight_storage_bits: f64,
    act_bits: u8,
    out_bits: u8,
    tiles_k: usize,
    tiles_n: usize,
) -> Traffic {
    let weights = k as f64 * n as f64 * weight_storage_bits / 8.0;
    let acts = m as f64 * k as f64 * f64::from(act_bits) / 8.0;
    let outs = m as f64 * n as f64 * f64::from(out_bits) / 8.0;
    let dram_bytes = weights + acts + outs;
    let act_restream = acts * tiles_n.max(1) as f64;
    let psum = m as f64 * n as f64 * 4.0 * 2.0 * tiles_k.saturating_sub(1) as f64;
    let sram_bytes = weights + act_restream + outs + psum;
    Traffic {
        dram_bytes,
        sram_bytes,
    }
}

/// Memory time in cycles for `dram_bytes` at `gb_s` bandwidth and
/// `freq_ghz` clock.
pub fn dram_cycles(dram_bytes: f64, gb_s: f64, freq_ghz: f64) -> u64 {
    // bytes / (GB/s) = ns · freq(GHz) = cycles.
    (dram_bytes / gb_s * freq_ghz).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_traffic_scales_with_bits() {
        let t4 = gemm_traffic(1, 4096, 4096, 4.375, 8, 16, 64, 128);
        let t8 = gemm_traffic(1, 4096, 4096, 8.0, 8, 16, 128, 128);
        // GEMV: weights dominate → traffic ratio tracks bit ratio.
        let r = t8.dram_bytes / t4.dram_bytes;
        assert!((1.7..1.9).contains(&r), "{r}");
    }

    #[test]
    fn dram_cycles_roundtrip() {
        // 256 bytes at 256 GB/s, 1 GHz → 1 cycle.
        assert_eq!(dram_cycles(256.0, 256.0, 1.0), 1);
        assert_eq!(dram_cycles(0.0, 256.0, 1.0), 0);
    }

    #[test]
    fn sram_exceeds_dram() {
        let t = gemm_traffic(2048, 4096, 4096, 4.375, 8, 16, 64, 128);
        assert!(t.sram_bytes > t.dram_bytes);
    }
}

//! Analytical cycle/energy/area simulator for the M-ANT accelerator and
//! its baselines (paper Secs. VI–VII).
//!
//! The paper's performance evaluation compares five accelerators — MANT,
//! Tender, OliVe, ANT* and BitFusion — at iso-area, shared memory
//! bandwidth / buffer size / frequency, on LLaMA/OPT linear and attention
//! layers. All of those comparisons are first-order architectural: they
//! follow from (a) how many effective MAC lanes each bit-width
//! configuration yields on the same silicon, (b) how many bytes each
//! format moves, and (c) how long the array is busy. This crate models
//! exactly that:
//!
//! - [`arch`]: accelerator configurations (PE arrays, precision policies);
//! - [`systolic`]: weight-stationary tiling cycles with fill/drain and
//!   mixed-precision reconfiguration (32×32 / 64×32 / 128×32, Sec. VI-B);
//! - [`rqu`]: the real-time quantization unit pipeline and the 12-cycle
//!   divider-hiding rule (Sec. VI-C/E);
//! - [`memory`]: DRAM/SRAM traffic under a roofline;
//! - [`energy`]: per-op energy with the paper's core/buffer/DRAM/static
//!   breakdown (Fig. 12);
//! - [`area`]: the component areas of Tbl. IV;
//! - [`workload`]: GEMM lists for a model's linear and attention layers;
//! - [`trace`]: seeded serving traces (Poisson arrivals, prompt/output
//!   length distributions) for the continuous-batching runtime;
//! - [`run`]: end-to-end layer runs, speedups, energy ratios.

pub mod arch;
pub mod area;
pub mod decode;
pub mod energy;
pub mod memory;
pub mod rqu;
pub mod run;
pub mod systolic;
pub mod trace;
pub mod workload;

pub use arch::{AcceleratorConfig, HardwareParams, PrecisionPolicy, WeightBits};
pub use area::{area_report, AreaReport};
pub use decode::{decode_step, generation_latency_ms, DecodeStep};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use run::{run_attention, run_gemm, run_linear, run_model, LayerRun, ModelRun};
pub use trace::{
    poisson_trace, shared_prefix_trace, trace_tokens, LengthDist, SharedPrefixConfig,
    SharedPrefixRequest, TraceConfig, TraceRequest,
};
pub use workload::{attention_gemms, linear_gemms, Gemm};

//! Weight-stationary systolic-array tiling model (paper Secs. VI-B/E).

/// Bytes per cycle the multi-bank weight buffer can install into the array
/// (Sec. VI-D's banked buffers). Byte-width ports make weight-stationary
/// GEMV latency proportional to the weight *bits*, which is what makes the
/// decode stage memory-bound and low-bit formats fast there.
pub const WEIGHT_PORT_BYTES_PER_CYCLE: f64 = 128.0;

/// The logical array shape for a given operand precision: 32 columns of
/// PEGs, with the row (accumulation) dimension growing as weights narrow —
/// 32×32 for INT8×INT8, 64×32 for INT8×INT4, 128×32 for INT8×INT2
/// (Sec. VI-B). Wider operands compose lanes and shrink the array.
pub fn array_shape(act_bits: u8, weight_bits: u8) -> (usize, usize) {
    let rows = (32 * 8 / usize::from(weight_bits.div_ceil(2) * 2)).max(1);
    let cols = (32 * 8 / usize::from(act_bits.div_ceil(2) * 2)).max(1);
    (rows, cols)
}

/// Cycles for an `M×K×N` GEMM on the weight-stationary array.
///
/// The tiling follows Fig. 11: the array holds a `rows × cols` weight tile
/// (rows along K); activations stream `m` rows through it per tile, with
/// the next tile's weights loading concurrently (double buffering). The
/// run is bound by the slower of activation streaming and weight
/// installation, plus one pipeline fill/drain.
pub fn gemm_cycles(act_bits: u8, weight_bits: u8, m: usize, k: usize, n: usize) -> u64 {
    if m == 0 || k == 0 || n == 0 {
        return 0;
    }
    let (rows, cols) = array_shape(act_bits, weight_bits);
    let tiles_k = k.div_ceil(rows) as u64;
    let tiles_n = n.div_ceil(cols) as u64;
    let streaming = tiles_k * tiles_n * m as u64;
    let weight_bytes = k as f64 * n as f64 * f64::from(weight_bits) / 8.0;
    let loading = (weight_bytes / WEIGHT_PORT_BYTES_PER_CYCLE).ceil() as u64;
    streaming.max(loading) + rows as u64 + cols as u64
}

/// Ideal (100%-utilization) cycles, for utilization accounting.
pub fn ideal_cycles(macs_per_cycle: f64, m: usize, k: usize, n: usize) -> u64 {
    let macs = m as f64 * k as f64 * n as f64;
    (macs / macs_per_cycle).ceil() as u64
}

/// Non-overlapped quantization cycles per output tile (Sec. VI-E): the
/// 12-cycle non-pipelined division unit is fully hidden iff the GEMM has at
/// least 12 K-dimension iterations; otherwise the residue stalls the array.
pub fn divider_stall_cycles(act_bits: u8, weight_bits: u8, k: usize, n: usize) -> u64 {
    const DIVIDER_LATENCY: u64 = 12;
    let (rows, cols) = array_shape(act_bits, weight_bits);
    let tiles_k = k.div_ceil(rows) as u64;
    let tiles_n = n.div_ceil(cols) as u64;
    if tiles_k >= DIVIDER_LATENCY {
        0
    } else {
        (DIVIDER_LATENCY - tiles_k) * tiles_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        assert_eq!(array_shape(8, 8), (32, 32));
        assert_eq!(array_shape(8, 4), (64, 32));
        assert_eq!(array_shape(8, 2), (128, 32));
        assert_eq!(array_shape(8, 16), (16, 32));
        assert_eq!(array_shape(16, 16), (16, 16));
    }

    #[test]
    fn utilization_high_for_large_gemm() {
        // LLaMA-7B linear shape at seq 2048.
        let cycles = gemm_cycles(8, 4, 2048, 4096, 4096);
        let ideal = ideal_cycles(2048.0, 2048, 4096, 4096);
        let util = ideal as f64 / cycles as f64;
        assert!(util > 0.9, "utilization {util}");
        assert!(util <= 1.0);
    }

    #[test]
    fn gemv_is_weight_load_bound() {
        // Decode-stage GEMV (m = 1): installing the weights dominates; the
        // array utilization collapses, as expected of a memory-bound stage.
        let cycles = gemm_cycles(8, 4, 1, 4096, 4096);
        let ideal = ideal_cycles(2048.0, 1, 4096, 4096);
        assert!(cycles > ideal * 5);
        // And the time tracks weight *bytes*: 8-bit takes ~2× longer.
        let cycles8 = gemm_cycles(8, 8, 1, 4096, 4096);
        let r = cycles8 as f64 / cycles as f64;
        assert!((1.8..=2.2).contains(&r), "{r}");
    }

    #[test]
    fn narrower_weights_run_faster() {
        let c8 = gemm_cycles(8, 8, 512, 4096, 4096);
        let c4 = gemm_cycles(8, 4, 512, 4096, 4096);
        let c16 = gemm_cycles(8, 16, 512, 4096, 4096);
        assert!(c4 < c8 && c8 < c16);
        // Roughly 2× per halving for large GEMMs.
        let r = c8 as f64 / c4 as f64;
        assert!((1.6..=2.2).contains(&r), "{r}");
    }

    #[test]
    fn divider_hidden_for_deep_k() {
        // K/rows ≥ 12 → fully hidden (the paper's 0.3% example).
        assert_eq!(divider_stall_cycles(8, 4, 4096, 4096), 0);
        // Shallow K: stalls appear.
        assert!(divider_stall_cycles(8, 4, 128, 4096) > 0);
    }

    #[test]
    fn zero_dims() {
        assert_eq!(gemm_cycles(8, 4, 0, 128, 128), 0);
        assert_eq!(gemm_cycles(8, 4, 128, 0, 128), 0);
    }
}

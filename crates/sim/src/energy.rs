//! Energy model with the paper's breakdown (Fig. 12).
//!
//! Per-op energies are representative 28 nm values in picojoules; what the
//! experiments depend on is their *ratios* (MAC energy ∝ operand width
//! product, DRAM ≫ SRAM ≫ MAC, static ∝ busy time), which are standard.

use crate::arch::AcceleratorConfig;

/// Energy breakdown in joules (paper Fig. 12's four stacks).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// PE-array switching energy.
    pub core: f64,
    /// On-chip buffer access energy.
    pub buffer: f64,
    /// DRAM access energy.
    pub dram: f64,
    /// Leakage + clock energy over the busy time.
    pub static_: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.core + self.buffer + self.dram + self.static_
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            core: self.core + other.core,
            buffer: self.buffer + other.buffer,
            dram: self.dram + other.dram,
            static_: self.static_ + other.static_,
        }
    }
}

/// Per-op energy coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Energy of one INT8×INT8 MAC (pJ).
    pub mac8_pj: f64,
    /// Extra core energy factor for MANT's dual-lane (MAC+SAC) PEs and
    /// in-array dequantization — the reason the paper's Fig. 12 shows MANT
    /// with *similar* core energy to 8-bit baselines despite 4-bit weights.
    pub mant_lane_overhead: f64,
    /// Energy of one FP16 MAC relative to INT8×INT8.
    pub fp16_mac_factor: f64,
    /// SRAM access energy per byte (pJ).
    pub sram_pj_per_byte: f64,
    /// DRAM access energy per byte (pJ).
    pub dram_pj_per_byte: f64,
    /// Static (leakage + clock-tree) power in watts for the whole chip,
    /// buffer-dominated and therefore equal across the iso-area designs.
    pub static_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mac8_pj: 0.6,
            mant_lane_overhead: 1.9,
            fp16_mac_factor: 4.0,
            sram_pj_per_byte: 1.2,
            dram_pj_per_byte: 15.0,
            static_watts: 0.8,
        }
    }
}

impl EnergyModel {
    /// Energy (pJ) of one `a×w` integer MAC: scales with the operand-width
    /// product (multiplier area/energy is roughly bilinear in widths).
    pub fn int_mac_pj(&self, act_bits: u8, weight_bits: u8) -> f64 {
        self.mac8_pj * f64::from(act_bits) * f64::from(weight_bits) / 64.0
    }

    /// Energy (pJ) of one MAC under an accelerator's actual datapath:
    /// FP16 when `weight_bits == 16` (the baselines' attention path),
    /// integer otherwise, with MANT's lane overhead when `fused` is set.
    pub fn mac_pj(&self, acc: &AcceleratorConfig, act_bits: u8, weight_bits: u8) -> f64 {
        let base = if weight_bits >= 16 || act_bits >= 16 {
            self.mac8_pj * self.fp16_mac_factor
        } else {
            self.int_mac_pj(act_bits, weight_bits)
        };
        if acc.fused_group_pipeline && weight_bits < 16 {
            base * self.mant_lane_overhead
        } else {
            base
        }
    }

    /// Static energy (J) over `cycles` at `freq_ghz`.
    pub fn static_energy(&self, cycles: u64, freq_ghz: f64) -> f64 {
        let seconds = cycles as f64 / (freq_ghz * 1e9);
        self.static_watts * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scaling() {
        let e = EnergyModel::default();
        assert_eq!(e.int_mac_pj(8, 8), e.mac8_pj);
        assert_eq!(e.int_mac_pj(8, 4), e.mac8_pj / 2.0);
        assert_eq!(e.int_mac_pj(4, 4), e.mac8_pj / 4.0);
    }

    #[test]
    fn mant_core_parity_with_int8() {
        // The headline Fig. 12 effect: MANT's 8×4 MAC+SAC+dequant lane
        // costs about as much as a plain 8×8 MAC.
        let e = EnergyModel::default();
        let mant = AcceleratorConfig::mant();
        let ant = AcceleratorConfig::ant_star();
        let mant_mac = e.mac_pj(&mant, 8, 4);
        let int8_mac = e.mac_pj(&ant, 8, 8);
        let ratio = mant_mac / int8_mac;
        assert!((0.8..=1.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn fp16_is_expensive() {
        let e = EnergyModel::default();
        let ant = AcceleratorConfig::ant_star();
        assert!(e.mac_pj(&ant, 16, 16) > 3.0 * e.mac_pj(&ant, 8, 8));
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            core: 1.0,
            buffer: 2.0,
            dram: 3.0,
            static_: 4.0,
        };
        assert_eq!(a.total(), 10.0);
        let b = a.add(&a);
        assert_eq!(b.total(), 20.0);
    }

    #[test]
    fn static_energy_time_linear() {
        let e = EnergyModel::default();
        let one = e.static_energy(1_000_000, 1.0);
        let two = e.static_energy(2_000_000, 1.0);
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}

//! Concurrency and conservation properties of the global recorder, in a
//! dedicated binary so the process-wide registry, enable flag, and ring
//! capacity are this file's alone (in-crate unit tests share a different
//! process).
//!
//! The pinned property: however producer threads interleave with each
//! other and with a concurrent drainer, the final [`Aggregate`] is exactly
//! the schedule-independent fold of what was recorded — counter totals are
//! sums, histogram counts/sums match the emitted events, nothing is lost
//! below ring capacity, and overflow is *accounted*, never silent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mant_trace::{Aggregate, Collector};
use proptest::prelude::*;

/// Every test here mutates process-global state (the enable flag, the
/// shared registry); serialize them.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Pins the per-thread ring capacity for this whole process *before* any
/// event is recorded (the capacity env var is read once, lazily). Every
/// test calls this first so whichever runs first sets the same value.
const RING_CAP: usize = 512;
fn pin_ring_capacity() {
    // Edition-2021 safe API; called only while holding GLOBAL, before the
    // current test's worker threads exist.
    std::env::set_var("MANT_TRACE_RING", RING_CAP.to_string());
}

/// Fixed label universe: labels must be `&'static str` on the hot path.
const LABELS: [&str; 3] = ["prop.alpha", "prop.beta", "prop.gamma"];

/// One generated recorder operation: `sel` picks the kind and label,
/// `payload` the delta / duration / level.
#[derive(Clone, Copy, Debug)]
struct Op {
    sel: u8,
    payload: u64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Kind {
    Counter,
    Sample,
    SpanAt,
    Gauge,
}

impl Op {
    fn kind(self) -> Kind {
        match self.sel % 4 {
            0 => Kind::Counter,
            1 => Kind::Sample,
            2 => Kind::SpanAt,
            _ => Kind::Gauge,
        }
    }

    fn label(self) -> &'static str {
        LABELS[(self.sel as usize / 4) % LABELS.len()]
    }

    /// Executes the operation against the global recorder.
    fn run(self) {
        match self.kind() {
            Kind::Counter => mant_trace::counter(self.label(), self.payload),
            Kind::Sample => mant_trace::sample(self.label(), self.payload),
            // `span_at` with a caller-supplied duration: exact, unlike the
            // RAII guard whose duration is wall-clock noise.
            Kind::SpanAt => mant_trace::span_at(self.label(), Instant::now(), self.payload),
            Kind::Gauge => mant_trace::gauge(self.label(), self.payload),
        }
    }
}

/// The schedule-independent expectation for a set of op lists.
#[derive(Default)]
struct Expected {
    counters: std::collections::BTreeMap<&'static str, u64>,
    hist_count: std::collections::BTreeMap<&'static str, u64>,
    hist_sum: std::collections::BTreeMap<&'static str, u64>,
    gauge_values: std::collections::BTreeMap<&'static str, Vec<u64>>,
}

impl Expected {
    fn fold(threads: &[Vec<Op>]) -> Expected {
        let mut e = Expected::default();
        for ops in threads {
            for op in ops {
                match op.kind() {
                    Kind::Counter => *e.counters.entry(op.label()).or_insert(0) += op.payload,
                    Kind::Sample | Kind::SpanAt => {
                        *e.hist_count.entry(op.label()).or_insert(0) += 1;
                        *e.hist_sum.entry(op.label()).or_insert(0) += op.payload;
                    }
                    Kind::Gauge => e
                        .gauge_values
                        .entry(op.label())
                        .or_default()
                        .push(op.payload),
                }
            }
        }
        e
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..12, 0u64..1_000_000).prop_map(|(sel, payload)| Op { sel, payload })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of producer threads — racing each other *and* a
    /// concurrent drainer — folds to the same aggregate as a sequential
    /// replay of the ops. No event is lost (op counts stay below ring
    /// capacity), no event is double-counted across drains.
    #[test]
    fn interleaved_threads_drain_to_consistent_aggregate(
        threads in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..200), 1..5)
    ) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        pin_ring_capacity();
        mant_trace::set_enabled(true);
        let _ = mant_trace::drain(); // flush prior tests' leftovers

        let expected = Expected::fold(&threads);
        let done = AtomicBool::new(false);
        let mut collector = Collector::new(false);
        std::thread::scope(|scope| {
            // A drainer racing the producers: events must land exactly
            // once whether swept mid-production or in the final drain.
            let drainer = scope.spawn(|| {
                let mut mid = Collector::new(false);
                while !done.load(Ordering::SeqCst) {
                    mid.collect();
                    std::thread::yield_now();
                }
                mid
            });
            let producers: Vec<_> = threads
                .iter()
                .map(|ops| scope.spawn(move || ops.iter().for_each(|op| op.run())))
                .collect();
            for p in producers {
                p.join().expect("producer");
            }
            done.store(true, Ordering::SeqCst);
            collector = drainer.join().expect("drainer");
        });
        mant_trace::set_enabled(false);
        collector.collect(); // final sweep after the last producer

        let agg = &collector.agg;
        prop_assert_eq!(agg.dropped, 0, "below ring capacity nothing drops");
        for (label, total) in &expected.counters {
            prop_assert_eq!(agg.counters.get(label).copied().unwrap_or(0), *total);
        }
        for (label, count) in &expected.hist_count {
            let hist = &agg.hists[label];
            prop_assert_eq!(hist.count, *count, "histogram count for {}", label);
            prop_assert_eq!(hist.sum, expected.hist_sum[label], "histogram sum for {}", label);
            prop_assert_eq!(hist.buckets.iter().sum::<u64>(), *count);
        }
        // Gauge resolution races are real (newest-by-timestamp wins), but
        // the survivor must be a value some thread actually wrote.
        for (label, written) in &expected.gauge_values {
            let got = agg.gauges[label].value;
            prop_assert!(written.contains(&got),
                "gauge {} resolved to {} which no thread wrote", label, got);
        }
        // No labels appear from nowhere.
        for label in agg.counters.keys().chain(agg.hists.keys()) {
            prop_assert!(LABELS.contains(label), "phantom label {}", label);
        }
    }

    /// The histogram quantile estimate is within one octave of the exact
    /// rank-order statistic: both live in the same log₂ bucket, so the
    /// estimate is in `(exact/2, 2*exact]` for in-range samples.
    #[test]
    fn quantile_estimate_within_one_octave_of_exact(
        samples in proptest::collection::vec(2u64..(1 << 38), 1..300),
        q in 0.0f64..1.0
    ) {
        let mut hist = mant_trace::Hist::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = sorted[(q * (sorted.len() - 1) as f64).floor() as usize] as f64;
        let est = hist.quantile(q).expect("non-empty");
        prop_assert!(est > exact / 2.0 && est <= 2.0 * exact,
            "estimate {} vs exact {} at q={} (n={})", est, exact, q, samples.len());
    }
}

/// Overflow conservation through the whole public pipeline: push far more
/// events than the ring holds without draining; every event is either
/// delivered to the aggregate or counted in `dropped` — none vanish.
#[test]
fn overflow_is_counted_never_silent() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    pin_ring_capacity();
    mant_trace::set_enabled(true);
    let _ = mant_trace::drain();

    const PUSHED: u64 = 10_000;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..PUSHED {
                mant_trace::sample("prop.overflow", i);
            }
        });
    });
    mant_trace::set_enabled(false);
    let mut agg = Aggregate::new();
    agg.absorb(&mant_trace::drain());
    let delivered = agg.hists.get("prop.overflow").map_or(0, |h| h.count);
    assert!(delivered > 0, "the ring must deliver up to its capacity");
    assert!(
        delivered < PUSHED,
        "the test must actually overflow (ring cap {RING_CAP})"
    );
    assert_eq!(
        delivered + agg.dropped,
        PUSHED,
        "every event is delivered or counted as dropped"
    );
}

/// The drop counter resets per drain: after an overflow is reported once,
/// a quiet follow-up drain reports nothing — drops are attributed to the
/// drain that observed them, not re-reported forever.
#[test]
fn drops_are_attributed_to_one_drain() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    pin_ring_capacity();
    mant_trace::set_enabled(true);
    let _ = mant_trace::drain();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..(RING_CAP as u64 * 4) {
                mant_trace::counter("prop.dropcount", 1 + (i % 3));
            }
        });
    });
    mant_trace::set_enabled(false);
    let first: u64 = mant_trace::drain().iter().map(|t| t.dropped).sum();
    assert!(first > 0, "the burst must overflow the ring");
    let second: u64 = mant_trace::drain().iter().map(|t| t.dropped).sum();
    assert_eq!(second, 0, "drops already reported must not repeat");
}

//! Log₂-bucketed latency histograms.
//!
//! Durations land in power-of-two buckets: bucket 0 holds values `< 2`,
//! bucket `i` (for `1 ≤ i < `[`HIST_BUCKETS`]` - 1`) holds
//! `[2^i, 2^(i+1))`, and the last bucket is the overflow catch-all
//! `[2^(HIST_BUCKETS-1), ∞)`. With nanosecond samples the finite range
//! tops out at 2³⁹ ns ≈ 9 minutes — far beyond any per-tick or
//! per-request latency this stack produces. Log₂ buckets cost one
//! `leading_zeros` on record, merge by addition, and bound quantile
//! estimation error to a factor of 2 (one octave) — the right trade for
//! an always-on recorder where exact percentiles still exist offline via
//! `mant_serve::percentile` over raw samples.

/// Number of buckets, the last being the unbounded overflow bucket.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-size log₂ histogram of `u64` samples (by convention,
/// nanoseconds). Merging and recording never allocate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Per-bucket sample counts; see the module docs for boundaries.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// The bucket a value lands in: 0 for `v < 2`, else
/// `min(floor(log2 v), HIST_BUCKETS - 1)`.
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        ((63 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// The exclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket, whose true bound is infinite).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`): finds the bucket holding
    /// the interpolation rank `q · (count - 1)` and interpolates linearly
    /// inside it. The estimate is always within the true value's bucket
    /// or the rank's bucket — off by at most one octave. `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is NaN or outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = q * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c - 1) as f64 >= target {
                let lo = bucket_lower(i) as f64;
                // Interpolate toward the bucket's width; the overflow
                // bucket has no finite width, so report its lower bound.
                let hi = if i >= HIST_BUCKETS - 1 {
                    lo
                } else {
                    bucket_upper(i) as f64
                };
                let within = (target - cum as f64 + 0.5) / c as f64;
                return Some(lo + (hi - lo) * within.clamp(0.0, 1.0));
            }
            cum += c;
        }
        unreachable!("count > 0 means some bucket holds the target rank");
    }

    /// `quantile(1.0)`: an upper estimate of the largest sample.
    pub fn max_estimate(&self) -> Option<f64> {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Exhaustive around every boundary: 2^i - 1 / 2^i / 2^i + 1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        for i in 1..HIST_BUCKETS - 1 {
            let lo = 1u64 << i;
            assert_eq!(bucket_index(lo - 1), i - 1, "below 2^{i}");
            assert_eq!(bucket_index(lo), i, "at 2^{i}");
            assert_eq!(bucket_index(lo + 1), i, "above 2^{i}");
            assert_eq!(bucket_index(2 * lo - 1), i, "top of bucket {i}");
        }
        // Everything at or past the last boundary lands in the overflow
        // bucket, up to u64::MAX.
        let top = 1u64 << (HIST_BUCKETS - 1);
        assert_eq!(bucket_index(top - 1), HIST_BUCKETS - 2);
        assert_eq!(bucket_index(top), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn record_updates_count_sum_bucket() {
        let mut h = Hist::new();
        h.record(0);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1027);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [1u64, 7, 130, 5000, 1 << 20] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 9, 130, 1 << 35, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal recording the union");
    }

    #[test]
    fn quantiles_on_empty_and_singleton() {
        let h = Hist::new();
        assert_eq!(h.quantile(0.5), None);
        let mut h = Hist::new();
        h.record(100);
        // The sole sample sits in [64, 128); every quantile estimate must
        // stay inside that bucket.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((64.0..128.0).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        let _ = Hist::new().quantile(1.5);
    }
}

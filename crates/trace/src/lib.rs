//! `mant-trace`: zero-dependency structured tracing, metrics, and
//! per-tick profiling for the serving stack.
//!
//! Every layer of the stack (gateway workers, the engine ticker,
//! [`BatchRunner::step`]'s kernel buckets, the KV pool) records fixed-size
//! events into **per-thread bounded ring buffers**; an aggregation pass
//! ([`Aggregate`]) turns drained events into counters, gauges, and
//! log₂-bucketed latency histograms ([`Hist`]), and two exporters render
//! them: Prometheus text format ([`prometheus_text`]) and Chrome
//! trace-event JSON ([`chrome_trace_json`], loadable in `chrome://tracing`
//! or Perfetto).
//!
//! # Overhead discipline
//!
//! The recorder must be cheap enough to leave on in production paths and
//! *free* when off:
//!
//! - **Disabled cost is one branch.** Every recording entry point loads
//!   one process-global relaxed [`AtomicBool`] and returns. No clock
//!   read, no TLS access, no allocation.
//! - **The enabled hot path is lock-free.** A recording thread writes
//!   into its own SPSC [`Ring`]; the only atomics are the ring's own
//!   head/tail (single-producer, so uncontended). No mutex is ever taken
//!   while recording — locks exist only on the drain side.
//! - **Overflow drops, never blocks.** A full ring counts the event into
//!   a drop counter and returns; a stalled scraper can cost events, never
//!   latency. Drops are reported as `mant_trace_dropped_events_total`.
//! - **Fixed-size events.** An [`Event`] is `Copy` — a kind, a
//!   `&'static str` label, and two `u64`s. Labels are static so the hot
//!   path never formats or allocates.
//!
//! # Event kinds
//!
//! - [`EventKind::Span`]: a wall-positioned interval (start + duration).
//!   Spans nest per thread and become Chrome trace slices *and* duration
//!   histograms. Emit via the RAII [`span`] guard, [`span_at`] for
//!   explicitly timed sections, or [`tail_spans`] for per-tick aggregate
//!   buckets laid end-to-end (the kernel-bucket trick: one span per
//!   bucket per tick instead of one per call).
//! - [`EventKind::Sample`]: a duration with no meaningful wall position
//!   (TTFT, queue wait — intervals spanning threads). Histogram fodder
//!   only; excluded from the Chrome dump so per-thread nesting stays
//!   exact.
//! - [`EventKind::Counter`]: a monotone increment.
//! - [`EventKind::Gauge`]: a level; the newest observation wins.
//!
//! [`BatchRunner::step`]: ../mant_model/batch/struct.BatchRunner.html#method.step
//! [`Ring`]: ring::Ring

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod agg;
pub mod chrome;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod hist;
pub mod prom;
pub mod ring;

pub use agg::{Aggregate, Collector, GaugeValue};
pub use chrome::{chrome_trace_json, validate_spans};
pub use hist::{Hist, HIST_BUCKETS};
pub use prom::{parse_text, prometheus_text, Series};
pub use ring::Ring;

/// What one recorded event means. See the module docs for the contract of
/// each kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A wall-positioned interval: `start_ns` + `value` (duration ns).
    Span,
    /// A duration sample without a wall position: `value` is ns.
    Sample,
    /// A monotone counter increment of `value`.
    Counter,
    /// A gauge observation: the level was `value` at `start_ns`.
    Gauge,
}

/// One fixed-size recorded event. `Copy` on purpose: the ring stores these
/// by value and the hot path never allocates.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// How to interpret the payload.
    pub kind: EventKind,
    /// Static label; also the metric key after aggregation (see
    /// [`prom::metric_name`] for the Prometheus mapping).
    pub label: &'static str,
    /// Nanoseconds since the process trace epoch: a span's start, or the
    /// emission instant for samples/counters/gauges.
    pub start_ns: u64,
    /// Span/sample duration in ns, counter increment, or gauge level.
    pub value: u64,
}

/// Everything one thread's ring yielded in a drain.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    /// Small dense id assigned at first record (registration order).
    pub tid: u32,
    /// The OS thread's name at registration, or `thread-<tid>`.
    pub name: String,
    /// Drained events, in record order.
    pub events: Vec<Event>,
    /// Events this thread's ring dropped to overflow since the previous
    /// drain.
    pub dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process trace epoch: all event timestamps are nanoseconds since
/// this instant. Initialized the first time it is needed — and eagerly by
/// [`set_enabled`]`(true)`, so no recorded span can start before it.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn instant_ns(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos() as u64
}

/// Nanoseconds since the trace epoch, right now.
pub fn now_ns() -> u64 {
    instant_ns(Instant::now())
}

/// Turns recording on or off process-wide. Off is the default; when off,
/// every recording entry point is a single relaxed load and a branch.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first event can be recorded so every
        // timestamp is non-negative relative to it.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is on — the one-branch disabled check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One registered per-thread ring.
struct Registered {
    ring: Arc<Ring>,
    tid: u32,
    name: String,
}

/// All per-thread rings ever registered. The mutex serializes
/// registration (once per thread) and draining (the single consumer);
/// recording threads never touch it.
static REGISTRY: Mutex<Vec<Registered>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<Registered>> {
    // A panicking drainer (a failing test assertion mid-drain) must not
    // poison tracing for the rest of the process.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("MANT_TRACE_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c >= 2)
            .unwrap_or(16_384)
    })
}

thread_local! {
    static LOCAL: OnceLock<Arc<Ring>> = const { OnceLock::new() };
}

/// Records into the calling thread's ring, registering it on first use.
fn record(ev: Event) {
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring::new(ring_capacity()));
            let mut reg = registry();
            let tid = reg.len() as u32;
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_owned);
            reg.push(Registered {
                ring: Arc::clone(&ring),
                tid,
                name,
            });
            ring
        });
        ring.push(ev);
    });
}

/// RAII span guard: created by [`span`], records one [`EventKind::Span`]
/// event covering its lifetime when dropped. Does nothing at all when
/// tracing was disabled at creation.
#[must_use = "a span guard measures its lifetime; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    label: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let value = start.elapsed().as_nanos() as u64;
            record(Event {
                kind: EventKind::Span,
                label: self.label,
                start_ns: instant_ns(start),
                value,
            });
        }
    }
}

/// Opens a span covering the guard's lifetime. When tracing is disabled
/// this costs one branch and the guard's drop is a no-op.
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    SpanGuard {
        label,
        start: enabled().then(Instant::now),
    }
}

/// Records a span whose bounds the caller measured itself — for code that
/// needs the duration anyway (histogram updates) and should not pay for a
/// second clock read.
pub fn span_at(label: &'static str, start: Instant, dur_ns: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Span,
        label,
        start_ns: instant_ns(start),
        value: dur_ns,
    });
}

/// Records per-tick aggregate buckets as spans laid **end-to-end, ending
/// now**: the last bucket ends at the current instant and each earlier one
/// abuts the next. Because the buckets were accumulated inside the
/// enclosing interval, their sum cannot exceed it — so the emitted spans
/// sit inside the enclosing span and never overlap each other, keeping
/// Chrome nesting exact while costing one event per bucket per tick
/// instead of one per call. Zero-duration buckets are skipped.
pub fn tail_spans(parts: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    let total: u64 = parts.iter().map(|&(_, d)| d).sum();
    let mut cursor = end.saturating_sub(total);
    for &(label, dur) in parts {
        if dur == 0 {
            continue;
        }
        record(Event {
            kind: EventKind::Span,
            label,
            start_ns: cursor,
            value: dur,
        });
        cursor += dur;
    }
}

/// Records a duration sample (histogram only, no wall position).
pub fn sample(label: &'static str, dur_ns: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Sample,
        label,
        start_ns: now_ns(),
        value: dur_ns,
    });
}

/// Increments a counter by `delta`.
pub fn counter(label: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Counter,
        label,
        start_ns: now_ns(),
        value: delta,
    });
}

/// Records a gauge observation; aggregation keeps the newest per label.
pub fn gauge(label: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Gauge,
        label,
        start_ns: now_ns(),
        value,
    });
}

/// Drains every registered thread ring: each thread's pending events (in
/// record order) plus its overflow-drop count since the last drain.
/// Threads with nothing new are omitted. Holding the registry lock for
/// the whole sweep makes this the single consumer the rings require;
/// recording threads are never blocked by it.
pub fn drain() -> Vec<ThreadEvents> {
    let reg = registry();
    reg.iter()
        .filter_map(|r| {
            let mut events = Vec::new();
            let dropped = r.ring.drain_into(&mut events);
            (!events.is_empty() || dropped > 0).then(|| ThreadEvents {
                tid: r.tid,
                name: r.name.clone(),
                events,
                dropped,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests share the process-wide registry; serialize them.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_invisible() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let _ = drain(); // flush anything a prior test left behind
        counter("test.invisible", 1);
        gauge("test.invisible", 2);
        sample("test.invisible", 3);
        let _s = span("test.invisible");
        drop(_s);
        tail_spans(&[("test.invisible", 4)]);
        let drained = drain();
        assert!(
            drained
                .iter()
                .all(|t| t.events.iter().all(|e| e.label != "test.invisible")),
            "disabled recording must produce no events"
        );
    }

    #[test]
    fn span_guard_records_its_lifetime() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let _ = drain();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        set_enabled(false);
        let drained = drain();
        let mine: Vec<&Event> = drained
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.label.starts_with("test."))
            .collect();
        // Guards drop inner-first, so the inner span is recorded first.
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].label, "test.inner");
        assert_eq!(mine[1].label, "test.outer");
        // The outer interval contains the inner one.
        let (i, o) = (mine[0], mine[1]);
        assert!(o.start_ns <= i.start_ns);
        assert!(i.start_ns + i.value <= o.start_ns + o.value);
    }

    #[test]
    fn tail_spans_abut_and_end_now() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let _ = drain();
        tail_spans(&[("test.a", 100), ("test.zero", 0), ("test.b", 50)]);
        let after = now_ns();
        set_enabled(false);
        let drained = drain();
        let mine: Vec<&Event> = drained
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.label.starts_with("test."))
            .collect();
        assert_eq!(mine.len(), 2, "zero-duration buckets are skipped");
        let (a, b) = (mine[0], mine[1]);
        assert_eq!(a.label, "test.a");
        assert_eq!(b.label, "test.b");
        assert_eq!(a.start_ns + a.value, b.start_ns, "buckets abut");
        assert!(b.start_ns + b.value <= after, "the last bucket ends 'now'");
    }
}

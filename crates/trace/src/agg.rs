//! Aggregation: folding drained events into counters, gauges, and
//! histograms, and the [`Collector`] that accumulates across drains.

use std::collections::BTreeMap;

use crate::hist::Hist;
use crate::{Event, EventKind, ThreadEvents};

/// A gauge's most recent observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeValue {
    /// When it was observed (ns since the trace epoch).
    pub at_ns: u64,
    /// The observed level.
    pub value: u64,
}

/// Metrics folded out of drained events. Spans and samples become
/// duration histograms keyed by label; counters sum; gauges keep the
/// newest observation (by timestamp, so cross-thread drain order does not
/// matter). `BTreeMap`s keep export order deterministic.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Counter totals by label.
    pub counters: BTreeMap<&'static str, u64>,
    /// Latest gauge observation by label.
    pub gauges: BTreeMap<&'static str, GaugeValue>,
    /// Span/sample duration histograms by label (nanoseconds).
    pub hists: BTreeMap<&'static str, Hist>,
    /// Ring-overflow drops attributed across every absorbed drain.
    pub dropped: u64,
}

impl Aggregate {
    /// An empty aggregate.
    pub fn new() -> Aggregate {
        Aggregate::default()
    }

    /// Folds one drain's worth of per-thread events in.
    pub fn absorb(&mut self, threads: &[ThreadEvents]) {
        for t in threads {
            self.dropped += t.dropped;
            for ev in &t.events {
                self.absorb_event(ev);
            }
        }
    }

    fn absorb_event(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Span | EventKind::Sample => {
                self.hists.entry(ev.label).or_default().record(ev.value);
            }
            EventKind::Counter => {
                *self.counters.entry(ev.label).or_insert(0) += ev.value;
            }
            EventKind::Gauge => {
                let g = GaugeValue {
                    at_ns: ev.start_ns,
                    value: ev.value,
                };
                self.gauges
                    .entry(ev.label)
                    .and_modify(|cur| {
                        if g.at_ns >= cur.at_ns {
                            *cur = g;
                        }
                    })
                    .or_insert(g);
            }
        }
    }

    /// Total events folded into histograms and counters (histogram sample
    /// counts plus counter-increment events are not distinguishable here,
    /// so this reports histogram samples only — the consistency quantity
    /// the concurrency tests pin).
    pub fn hist_samples(&self) -> u64 {
        self.hists.values().map(|h| h.count).sum()
    }
}

/// Accumulates the global registry's events across repeated drains: an
/// ever-growing [`Aggregate`] for metrics export, plus (optionally) the
/// raw per-thread event log for a Chrome trace dump. The retained log is
/// capped; events beyond the cap are counted in
/// [`Collector::log_dropped`] rather than growing without bound.
#[derive(Debug)]
pub struct Collector {
    /// Metrics folded from every drain so far.
    pub agg: Aggregate,
    /// Retained raw events per thread (empty unless `keep_events`).
    pub threads: Vec<ThreadEvents>,
    /// Events discarded from the retained log after the cap was reached
    /// (they still reached `agg`).
    pub log_dropped: u64,
    keep_events: bool,
    cap: usize,
}

/// Default cap on retained raw events (~40 MB of `Event`s at the
/// extreme); far beyond any example run, small enough to bound a
/// long-lived server.
const DEFAULT_LOG_CAP: usize = 1 << 20;

impl Collector {
    /// A fresh collector; `keep_events` retains raw events for a Chrome
    /// dump in addition to aggregating.
    pub fn new(keep_events: bool) -> Collector {
        Collector {
            agg: Aggregate::new(),
            threads: Vec::new(),
            log_dropped: 0,
            keep_events,
            cap: DEFAULT_LOG_CAP,
        }
    }

    /// Overrides the retained-event cap (still aggregates everything).
    pub fn with_log_cap(mut self, cap: usize) -> Collector {
        self.cap = cap;
        self
    }

    /// Drains the global registry ([`crate::drain`]) into this collector.
    pub fn collect(&mut self) {
        self.absorb(crate::drain());
    }

    /// Folds an already-drained batch in (useful for tests that drain
    /// explicitly).
    pub fn absorb(&mut self, drained: Vec<ThreadEvents>) {
        self.agg.absorb(&drained);
        if !self.keep_events {
            return;
        }
        let mut retained: usize = self.threads.iter().map(|t| t.events.len()).sum();
        for t in drained {
            let slot = match self.threads.iter_mut().find(|x| x.tid == t.tid) {
                Some(slot) => slot,
                None => {
                    self.threads.push(ThreadEvents {
                        tid: t.tid,
                        name: t.name.clone(),
                        events: Vec::new(),
                        dropped: 0,
                    });
                    self.threads.last_mut().expect("just pushed")
                }
            };
            slot.dropped += t.dropped;
            let room = self.cap.saturating_sub(retained);
            let take = t.events.len().min(room);
            self.log_dropped += (t.events.len() - take) as u64;
            slot.events.extend(t.events.into_iter().take(take));
            retained += take;
        }
    }

    /// Raw events currently retained across all threads.
    pub fn retained_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread_with(events: Vec<Event>, tid: u32, dropped: u64) -> ThreadEvents {
        ThreadEvents {
            tid,
            name: format!("t{tid}"),
            events,
            dropped,
        }
    }

    fn ev(kind: EventKind, label: &'static str, start_ns: u64, value: u64) -> Event {
        Event {
            kind,
            label,
            start_ns,
            value,
        }
    }

    #[test]
    fn absorb_folds_all_kinds() {
        let mut agg = Aggregate::new();
        agg.absorb(&[
            thread_with(
                vec![
                    ev(EventKind::Span, "a", 0, 100),
                    ev(EventKind::Sample, "a", 5, 300),
                    ev(EventKind::Counter, "c", 1, 2),
                    ev(EventKind::Gauge, "g", 10, 7),
                ],
                0,
                3,
            ),
            thread_with(
                vec![
                    ev(EventKind::Counter, "c", 2, 5),
                    // An *older* gauge observation from another thread
                    // must not clobber the newer one.
                    ev(EventKind::Gauge, "g", 4, 99),
                ],
                1,
                0,
            ),
        ]);
        assert_eq!(agg.counters["c"], 7);
        assert_eq!(agg.gauges["g"].value, 7);
        assert_eq!(agg.hists["a"].count, 2);
        assert_eq!(agg.hists["a"].sum, 400);
        assert_eq!(agg.dropped, 3);
        assert_eq!(agg.hist_samples(), 2);
    }

    #[test]
    fn collector_caps_the_log_but_not_the_metrics() {
        let mut c = Collector::new(true).with_log_cap(3);
        c.absorb(vec![thread_with(
            (0..5)
                .map(|i| ev(EventKind::Span, "s", i, 10))
                .collect::<Vec<_>>(),
            0,
            0,
        )]);
        assert_eq!(c.retained_events(), 3, "log capped");
        assert_eq!(c.log_dropped, 2);
        assert_eq!(c.agg.hists["s"].count, 5, "metrics see everything");
    }
}

//! The per-thread bounded event ring: a single-producer single-consumer
//! queue that **drops on overflow instead of blocking**.
//!
//! The producer is the owning thread's recording hot path; the consumer
//! is whoever holds the drain lock (the registry serializes drains, so
//! there is never more than one). Capacity is rounded up to a power of
//! two so positions wrap with a mask; `head`/`tail` are free-running
//! `u64` counters, so "full" is `head - tail == capacity` with no
//! reserved slot.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Event;

/// A bounded SPSC event queue. See the module docs for the producer /
/// consumer roles; [`Ring::push`] must only be called from one thread at
/// a time, and [`Ring::drain_into`] from one (possibly different) thread
/// at a time.
pub struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    mask: u64,
    /// Next write position; stored by the producer only.
    head: AtomicU64,
    /// Next read position; stored by the consumer only.
    tail: AtomicU64,
    /// Events refused because the ring was full (monotone).
    dropped: AtomicU64,
    /// Drops already attributed by a previous drain (consumer-owned).
    dropped_reported: AtomicU64,
}

// SAFETY: a slot is written only by the producer, between observing
// `tail` (Acquire) and publishing the advanced `head` (Release), and read
// only by the consumer, between observing `head` (Acquire) and publishing
// the advanced `tail` (Release). `head` and `tail` never cross, so no
// slot is ever accessed concurrently from both sides; the Release/Acquire
// pairs make the slot contents visible before the position that exposes
// them.
unsafe impl Sync for Ring {}

impl Ring {
    /// Builds a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[UnsafeCell<MaybeUninit<Event>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Ring {
            slots,
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dropped_reported: AtomicU64::new(0),
        }
    }

    /// Event slots the ring holds.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently buffered (racy snapshot from either side).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail) as usize
    }

    /// Whether the ring is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever dropped to overflow (monotone).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one event, or counts a drop if the ring is full. Returns
    /// whether the event was stored. **Producer side**: must not be
    /// called concurrently with itself.
    pub fn push(&self, ev: Event) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let idx = (head & self.mask) as usize;
        // SAFETY: `head - tail < capacity`, so this slot is not in the
        // consumer's readable window `[tail, head)`; the producer is the
        // only writer (single producer), so the slot is exclusively ours
        // until the Release store below publishes it.
        unsafe { (*self.slots[idx].get()).write(ev) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Moves every buffered event into `out` (record order) and returns
    /// the number of overflow drops since the previous drain. **Consumer
    /// side**: callers must serialize drains (the registry lock does).
    pub fn drain_into(&self, out: &mut Vec<Event>) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        out.reserve(head.wrapping_sub(tail) as usize);
        while tail != head {
            let idx = (tail & self.mask) as usize;
            // SAFETY: slots in `[tail, head)` were fully written before
            // the producer's Release store of `head` made them visible to
            // our Acquire load; the producer will not overwrite them
            // until our Release store of `tail` below. `Event` is `Copy`,
            // so reading out of the slot leaves nothing to drop.
            let ev = unsafe { (*self.slots[idx].get()).assume_init_read() };
            out.push(ev);
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
        let total = self.dropped.load(Ordering::Relaxed);
        let seen = self.dropped_reported.swap(total, Ordering::Relaxed);
        total.wrapping_sub(seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(value: u64) -> Event {
        Event {
            kind: EventKind::Counter,
            label: "ring.test",
            start_ns: value,
            value,
        }
    }

    #[test]
    fn round_trips_in_order() {
        let ring = Ring::new(8);
        for i in 0..5 {
            assert!(ring.push(ev(i)));
        }
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), 0);
        let got: Vec<u64> = out.iter().map(|e| e.value).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_exactly_and_never_blocks() {
        // Capacity rounds 6 up to 8; pushing 8 + 3 must store the first 8
        // and count exactly 3 drops — no panic, no blocking, no
        // overwriting.
        let ring = Ring::new(6);
        assert_eq!(ring.capacity(), 8);
        for i in 0..11 {
            let stored = ring.push(ev(i));
            assert_eq!(stored, i < 8, "event {i}");
        }
        assert_eq!(ring.dropped(), 3);
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), 3, "drops since last drain");
        let got: Vec<u64> = out.iter().map(|e| e.value).collect();
        assert_eq!(got, (0..8).collect::<Vec<u64>>(), "survivors keep order");
        // Drops are attributed once: a second drain reports none.
        out.clear();
        assert_eq!(ring.drain_into(&mut out), 0);
        assert!(out.is_empty());
        // The ring is usable again after overflow.
        assert!(ring.push(ev(99)));
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 99);
    }

    #[test]
    fn interleaved_push_drain_wraps() {
        let ring = Ring::new(4);
        let mut out = Vec::new();
        let mut expect = Vec::new();
        let mut next = 0u64;
        // Push/drain far past the capacity so positions wrap many times.
        for round in 0..50 {
            for _ in 0..=(round % 4) {
                if ring.push(ev(next)) {
                    expect.push(next);
                }
                next += 1;
            }
            ring.drain_into(&mut out);
        }
        ring.drain_into(&mut out);
        let got: Vec<u64> = out.iter().map(|e| e.value).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_but_overflow() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::new(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    ring.push(ev(i));
                }
            })
        };
        let mut out = Vec::new();
        while !producer.is_finished() {
            ring.drain_into(&mut out);
        }
        producer.join().unwrap();
        ring.drain_into(&mut out);
        let total_dropped = ring.dropped();
        // Every event was either drained or counted dropped — none lost,
        // and the drained ones kept their order.
        assert_eq!(out.len() as u64 + total_dropped, 10_000);
        assert!(out.windows(2).all(|w| w[0].value < w[1].value));
    }
}

//! Prometheus text-format export (and a validating parser for tests).
//!
//! The mapping from trace labels to metric names is deliberately small:
//!
//! - Counters named `requests.<outcome>` fold into one family,
//!   `mant_requests_total{outcome="<outcome>"}` — the shape PromQL wants
//!   for rate-by-outcome queries.
//! - Every other counter becomes `mant_<label>_total`.
//! - Gauges become `mant_<label>`.
//! - Histograms (recorded in nanoseconds) become `mant_<label>_seconds`
//!   with the classic cumulative `_bucket{le=...}` / `_sum` / `_count`
//!   triple; `le` bounds are the log₂ bucket uppers converted to seconds.
//! - Ring-overflow drops are always exported as
//!   `mant_trace_dropped_events_total`, so a scraper can tell "no data"
//!   from "data lost".
//!
//! Label characters outside `[a-zA-Z0-9_:]` are rewritten to `_` (so
//! `tick.step` exports as `mant_tick_step_seconds`).

use crate::agg::Aggregate;
use crate::hist::{bucket_upper, HIST_BUCKETS};

/// Rewrites a trace label into Prometheus-legal metric-name characters.
pub fn sanitize(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for (i, c) in label.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// The Prometheus base name for a trace label: `mant_<sanitized label>`.
/// Exporters append the conventional suffix (`_total` for counters,
/// `_seconds` for duration histograms).
pub fn metric_name(label: &str) -> String {
    format!("mant_{}", sanitize(label))
}

/// Escapes a label *value* for the text format.
fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Prefix of counter labels folded into the `mant_requests_total` family.
const REQUESTS_PREFIX: &str = "requests.";

/// Renders an aggregate as Prometheus text exposition format.
pub fn prometheus_text(agg: &Aggregate) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    // The requests-by-outcome family first: one TYPE line, one sample per
    // outcome.
    let outcomes: Vec<(&str, u64)> = agg
        .counters
        .iter()
        .filter_map(|(&label, &v)| label.strip_prefix(REQUESTS_PREFIX).map(|o| (o, v)))
        .collect();
    if !outcomes.is_empty() {
        out.push_str("# HELP mant_requests_total Requests by terminal outcome.\n");
        out.push_str("# TYPE mant_requests_total counter\n");
        for (outcome, v) in outcomes {
            let _ = writeln!(
                out,
                "mant_requests_total{{outcome=\"{}\"}} {v}",
                escape_value(outcome)
            );
        }
    }

    for (&label, &v) in &agg.counters {
        if label.starts_with(REQUESTS_PREFIX) {
            continue;
        }
        let name = metric_name(label);
        let _ = writeln!(out, "# HELP {name}_total Trace counter `{label}`.");
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total {v}");
    }

    // Always present, even at zero: "no data" and "data lost" must be
    // distinguishable on the scrape side.
    out.push_str(
        "# HELP mant_trace_dropped_events_total Events dropped to ring-buffer overflow.\n",
    );
    out.push_str("# TYPE mant_trace_dropped_events_total counter\n");
    let _ = writeln!(out, "mant_trace_dropped_events_total {}", agg.dropped);

    for (&label, g) in &agg.gauges {
        let name = metric_name(label);
        let _ = writeln!(out, "# HELP {name} Trace gauge `{label}`.");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }

    for (&label, h) in &agg.hists {
        let name = format!("{}_seconds", metric_name(label));
        let _ = writeln!(out, "# HELP {name} Trace duration histogram `{label}`.");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            if i == HIST_BUCKETS - 1 {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            } else {
                let le = bucket_upper(i) as f64 / 1e9;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum as f64 / 1e9);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }

    out
}

/// One parsed sample line from the text format.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Metric name (for histograms, including the `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Series {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse::<f64>()
            .map_err(|e| format!("bad value {s:?}: {e}")),
    }
}

/// Parses (and thereby validates) Prometheus text exposition format,
/// returning every sample line. Errors carry the offending line number.
pub fn parse_text(text: &str) -> Result<Vec<Series>, String> {
    let mut series = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: bad TYPE metric name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: bad TYPE kind {kind:?}"));
                    }
                }
                Some("HELP") => {}
                // Any other comment is legal and ignored.
                _ => {}
            }
            continue;
        }
        series.push(parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(series)
}

fn parse_sample(line: &str) -> Result<Series, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..]
                .find('}')
                .map(|i| brace + i)
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => (line, None),
    };
    let (name, labels, value_part) = match rest {
        Some((label_src, tail)) => (name_part, parse_labels(label_src)?, tail.trim()),
        None => {
            let mut it = name_part.split_whitespace();
            let name = it.next().ok_or("empty sample line")?;
            let value = it
                .next()
                .ok_or_else(|| format!("missing value in {line:?}"))?;
            if it.next().is_some() {
                return Err(format!("trailing tokens in {line:?}"));
            }
            (name, Vec::new(), value)
        }
    };
    if !valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    // A timestamp after the value is legal in the format; we don't emit
    // one, so reject it to keep the validator strict about our output.
    if value_part.split_whitespace().count() != 1 {
        return Err(format!("expected a single value, got {value_part:?}"));
    }
    Ok(Series {
        name: name.to_owned(),
        labels,
        value: parse_value(value_part.trim())?,
    })
}

fn parse_labels(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = src.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {src:?}"))?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("label value must be quoted in {src:?}"));
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {src:?}"))?;
        labels.push((key.to_owned(), value));
        rest = rest[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels in {src:?}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::GaugeValue;
    use crate::hist::Hist;

    fn sample_agg() -> Aggregate {
        let mut agg = Aggregate::new();
        agg.counters.insert("requests.done", 5);
        agg.counters.insert("requests.shed", 2);
        agg.counters.insert("tokens.generated", 123);
        agg.gauges.insert(
            "queue.depth",
            GaugeValue {
                at_ns: 10,
                value: 4,
            },
        );
        let mut h = Hist::new();
        for v in [900_000u64, 1_500_000, 40_000_000] {
            h.record(v);
        }
        agg.hists.insert("tick.step", h);
        agg.dropped = 7;
        agg
    }

    #[test]
    fn export_parses_and_round_trips_values() {
        let text = prometheus_text(&sample_agg());
        let series = parse_text(&text).expect("our own output must parse");

        let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
            series
                .iter()
                .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
                .unwrap_or_else(|| panic!("missing series {name} {label:?}"))
                .value
        };

        assert_eq!(find("mant_requests_total", Some(("outcome", "done"))), 5.0);
        assert_eq!(find("mant_requests_total", Some(("outcome", "shed"))), 2.0);
        assert_eq!(find("mant_tokens_generated_total", None), 123.0);
        assert_eq!(find("mant_queue_depth", None), 4.0);
        assert_eq!(find("mant_trace_dropped_events_total", None), 7.0);
        assert_eq!(find("mant_tick_step_seconds_count", None), 3.0);
        let sum = find("mant_tick_step_seconds_sum", None);
        assert!((sum - 0.0424).abs() < 1e-9, "sum {sum}");
        assert_eq!(
            find("mant_tick_step_seconds_bucket", Some(("le", "+Inf"))),
            3.0
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded_in_seconds() {
        let text = prometheus_text(&sample_agg());
        let series = parse_text(&text).unwrap();
        let buckets: Vec<&Series> = series
            .iter()
            .filter(|s| s.name == "mant_tick_step_seconds_bucket")
            .collect();
        assert_eq!(buckets.len(), crate::HIST_BUCKETS);
        let mut prev = 0.0;
        let mut prev_le = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "bucket counts must be cumulative");
            prev = b.value;
            let le = parse_value(b.label("le").unwrap()).unwrap();
            assert!(le > prev_le, "le bounds must increase");
            prev_le = le;
        }
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        // 0.9 ms and 1.5 ms sit at or below the 2^21 ns ≈ 2.097 ms bound;
        // 40 ms does not.
        let le_2ms: f64 = (1u64 << 21) as f64 / 1e9;
        let at_2ms = buckets
            .iter()
            .find(|b| parse_value(b.label("le").unwrap()).unwrap() == le_2ms)
            .expect("2^21 ns bucket exists");
        assert_eq!(at_2ms.value, 2.0);
    }

    #[test]
    fn sanitize_and_metric_name() {
        assert_eq!(sanitize("tick.step"), "tick_step");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize("a-b c9"), "a_b_c9");
        assert_eq!(metric_name("pool.used_blocks"), "mant_pool_used_blocks");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("ok_metric 1\n").is_ok());
        assert!(parse_text("9bad_name 1\n").is_err());
        assert!(parse_text("no_value\n").is_err());
        assert!(parse_text("unterminated{a=\"b\" 1\n").is_err());
        assert!(parse_text("bad_type_kind 1\n# TYPE bad_type_kind banana\n").is_err());
        assert!(parse_text("m{le=\"0.5\"} not_a_number\n").is_err());
        let esc = parse_text("m{v=\"a\\\"b\\\\c\"} 1\n").unwrap();
        assert_eq!(esc[0].label("v"), Some("a\"b\\c"));
    }
}

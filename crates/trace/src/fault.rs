//! Seeded, deterministic fault injection for the serving stack.
//!
//! This module only exists when the `fault-inject` feature is enabled; a
//! default build carries **zero** fault symbols (CI asserts this by
//! inspecting the compiled rlib). Every injection site in the workspace
//! is likewise wrapped in `#[cfg(feature = "fault-inject")]`, so the
//! production hot paths pay nothing — not even a branch — for the
//! existence of this machinery.
//!
//! # Model
//!
//! A [`FaultPlan`] maps **named injection sites** (the constants in
//! [`site`]) to a [`SiteRule`] deciding *which* hits of that site fire:
//! skip the first `after` hits, then fire every `every`-th eligible hit,
//! at most `limit` times, optionally carrying a `payload` magnitude
//! (milliseconds of clock skew, iterations of stall, ...). Hit and fire
//! counts are per-site atomics, so a plan behaves identically across
//! runs of the same deterministic workload — which is what lets the
//! chaos soak compare a faulted run against a fault-free replay
//! byte-for-byte.
//!
//! One plan is installed process-wide ([`install`]) and removed with
//! [`clear`]. Tests that install plans must serialize against each other
//! (the chaos suites hold a module-local mutex); with no plan installed
//! every site is inert.
//!
//! ```
//! use mant_trace::fault::{self, site, FaultPlan, SiteRule};
//!
//! fault::install(FaultPlan::new().with_site(site::POOL_ALLOC, SiteRule::nth(3)));
//! assert!(!fault::fire(site::POOL_ALLOC)); // hit 1
//! assert!(!fault::fire(site::POOL_ALLOC)); // hit 2
//! assert!(fault::fire(site::POOL_ALLOC)); // hit 3 fires
//! assert_eq!(fault::fires(site::POOL_ALLOC), 1);
//! fault::clear();
//! assert!(!fault::fire(site::POOL_ALLOC)); // inert without a plan
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Canonical injection-site names, one per seam the plan can break.
/// Keeping them here (rather than ad-hoc strings at call sites) makes the
/// failure-domain matrix in `DESIGN.md` greppable against the code.
pub mod site {
    /// `PagedKvCache::push` reports a forced `PoolExhausted` before
    /// touching the pool.
    pub const POOL_ALLOC: &str = "pool.alloc";
    /// `BatchRunner::step` panics at entry (before any KV mutation).
    pub const BATCH_STEP: &str = "batch.step";
    /// `BatchRunner::speculate_step` panics at entry.
    pub const SPEC_STEP: &str = "batch.spec_step";
    /// A drafted candidate token is corrupted before verification
    /// (payload offsets the token id); the verify pass must reject it.
    pub const SPEC_DRAFT_CORRUPT: &str = "batch.spec_draft_corrupt";
    /// The engine's deadline sweep sees its iteration clock skewed
    /// forward by `payload` iterations (early expiry).
    pub const ENGINE_CLOCK_SKEW: &str = "engine.clock_skew";
    /// The gateway ticker stalls for `payload` milliseconds (simulated
    /// hung engine thread; the watchdog must catch it).
    pub const TICKER_STALL: &str = "gateway.ticker_stall";
    /// A worker's submission hand-off transiently fails as if the
    /// bounded queue were full (the jittered retry must absorb it).
    pub const SUBMIT_TRANSIENT: &str = "gateway.submit_transient";
    /// Connection reads return at most one byte (short read).
    pub const GW_READ_SHORT: &str = "gateway.read_short";
    /// Connection reads fail with `WouldBlock` (timeout storm).
    pub const GW_READ_WOULDBLOCK: &str = "gateway.read_wouldblock";
    /// Connection writes accept at most one byte (short write).
    pub const GW_WRITE_SHORT: &str = "gateway.write_short";
    /// The connection drops mid-stream (`ConnectionReset` on write).
    pub const GW_DISCONNECT: &str = "gateway.disconnect";
}

/// Every site name, for seeding a whole-stack plan in one call.
pub const ALL_SITES: [&str; 11] = [
    site::POOL_ALLOC,
    site::BATCH_STEP,
    site::SPEC_STEP,
    site::SPEC_DRAFT_CORRUPT,
    site::ENGINE_CLOCK_SKEW,
    site::TICKER_STALL,
    site::SUBMIT_TRANSIENT,
    site::GW_READ_SHORT,
    site::GW_READ_WOULDBLOCK,
    site::GW_WRITE_SHORT,
    site::GW_DISCONNECT,
];

/// When a site's hits fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteRule {
    /// Hits to let pass before the site becomes eligible.
    pub after: u64,
    /// Of the eligible hits, fire every `every`-th (`1` = every one).
    pub every: u64,
    /// Stop firing after this many fires (`u64::MAX` = unbounded).
    pub limit: u64,
    /// Site-specific magnitude (skew iterations, stall ms, token offset).
    pub payload: u64,
}

impl SiteRule {
    /// Fires exactly once, on the `n`-th hit (`n >= 1`).
    pub fn nth(n: u64) -> SiteRule {
        SiteRule {
            after: n.saturating_sub(1),
            every: 1,
            limit: 1,
            payload: 0,
        }
    }

    /// Fires on every `n`-th hit, forever.
    pub fn every(n: u64) -> SiteRule {
        SiteRule {
            after: 0,
            every: n.max(1),
            limit: u64::MAX,
            payload: 0,
        }
    }

    /// Same rule with a payload attached.
    pub fn with_payload(mut self, payload: u64) -> SiteRule {
        self.payload = payload;
        self
    }

    /// Same rule firing at most `limit` times.
    pub fn with_limit(mut self, limit: u64) -> SiteRule {
        self.limit = limit;
        self
    }
}

/// Per-site live state: the rule plus its deterministic counters.
#[derive(Debug)]
struct SiteState {
    rule: SiteRule,
    hits: AtomicU64,
    fires: AtomicU64,
}

/// A set of armed injection sites. Install process-wide with [`install`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: HashMap<String, SiteState>,
}

/// splitmix64: tiny, seedable, and good enough to scatter rule
/// parameters — kept local so this crate stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no armed sites).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `site` with `rule` (replacing any previous rule for it).
    pub fn with_site(mut self, site: &str, rule: SiteRule) -> FaultPlan {
        self.sites.insert(
            site.to_owned(),
            SiteState {
                rule,
                hits: AtomicU64::new(0),
                fires: AtomicU64::new(0),
            },
        );
        self
    }

    /// Derives a randomized-but-reproducible rule for each named site:
    /// the same `(seed, sites)` always arms the same plan, so a chaos run
    /// can be replayed exactly from its seed alone. Rules skip a small
    /// random prefix of hits, fire sparsely, and cap total fires so a
    /// soak degrades the run without extinguishing it.
    pub fn seeded(seed: u64, sites: &[&str]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for (i, s) in sites.iter().enumerate() {
            let mut state = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64 + 1);
            let after = splitmix64(&mut state) % 24;
            let every = 2 + splitmix64(&mut state) % 7;
            let limit = 1 + splitmix64(&mut state) % 3;
            let payload = 1 + splitmix64(&mut state) % 8;
            plan = plan.with_site(
                s,
                SiteRule {
                    after,
                    every,
                    limit,
                    payload,
                },
            );
        }
        plan
    }

    /// Whether a hit on `site` fires now, advancing the site's counters.
    fn check(&self, site: &str) -> Option<u64> {
        let state = self.sites.get(site)?;
        let hit = state.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if hit <= state.rule.after {
            return None;
        }
        if (hit - state.rule.after) % state.rule.every != 0 {
            return None;
        }
        // Reserve a fire slot; back out if the limit is already spent.
        let fired = state.fires.fetch_add(1, Ordering::SeqCst);
        if fired >= state.rule.limit {
            state.fires.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(state.rule.payload)
    }
}

/// The process-wide installed plan (None = every site inert).
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

fn plan() -> Option<Arc<FaultPlan>> {
    PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs `plan` process-wide, replacing any previous plan (and its
/// counters).
pub fn install(new_plan: FaultPlan) {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(new_plan));
}

/// Removes the installed plan; every site becomes inert.
pub fn clear() {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether any plan is installed.
pub fn active() -> bool {
    plan().is_some()
}

/// Records a hit on `site`; `true` when the installed plan says this hit
/// fires. Inert (and does not count hits) without a plan.
pub fn fire(site: &str) -> bool {
    payload(site).is_some()
}

/// Like [`fire`], but hands back the rule's payload when firing.
pub fn payload(site: &str) -> Option<u64> {
    let p = plan()?.check(site)?;
    crate::counter("fault.injected", 1);
    Some(p)
}

/// How many times `site` has fired under the current plan (0 without
/// one) — lets tests assert a fault actually landed.
pub fn fires(site: &str) -> u64 {
    plan().map_or(0, |p| {
        p.sites
            .get(site)
            .map_or(0, |s| s.fires.load(Ordering::SeqCst))
    })
}

/// How many times `site` has been hit under the current plan.
pub fn hits(site: &str) -> u64 {
    plan().map_or(0, |p| {
        p.sites
            .get(site)
            .map_or(0, |s| s.hits.load(Ordering::SeqCst))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The plan is process-global; these tests must not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn rule_after_every_limit_semantics() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::new().with_site(
            "t.site",
            SiteRule {
                after: 2,
                every: 3,
                limit: 2,
                payload: 7,
            },
        ));
        // Hits 1..=2 skipped; eligible hits 3,4,5,... fire every 3rd
        // eligible => hits 5, 8 fire (limit 2 stops hit 11).
        let fired: Vec<u64> = (1..=12).filter(|_| fire("t.site")).collect();
        assert_eq!(fired.len(), 2);
        assert_eq!(fires("t.site"), 2);
        assert_eq!(hits("t.site"), 12);
        clear();
    }

    #[test]
    fn unarmed_sites_and_cleared_plans_are_inert() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!active());
        assert!(!fire(site::POOL_ALLOC));
        install(FaultPlan::new().with_site(site::BATCH_STEP, SiteRule::nth(1)));
        assert!(!fire(site::POOL_ALLOC), "unarmed site must stay inert");
        assert!(fire(site::BATCH_STEP));
        clear();
        assert!(!fire(site::BATCH_STEP));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = FaultPlan::seeded(42, &ALL_SITES);
        let b = FaultPlan::seeded(42, &ALL_SITES);
        let c = FaultPlan::seeded(43, &ALL_SITES);
        let rules = |p: &FaultPlan| {
            let mut v: Vec<(String, SiteRule)> =
                p.sites.iter().map(|(k, s)| (k.clone(), s.rule)).collect();
            v.sort_by(|x, y| x.0.cmp(&y.0));
            v
        };
        assert_eq!(rules(&a), rules(&b));
        assert_ne!(rules(&a), rules(&c));
        clear();
    }

    #[test]
    fn payload_round_trips() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::new().with_site("t.pay", SiteRule::nth(1).with_payload(99)));
        assert_eq!(payload("t.pay"), Some(99));
        assert_eq!(payload("t.pay"), None, "limit 1 spent");
        clear();
    }
}

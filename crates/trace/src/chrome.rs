//! Chrome trace-event JSON export (`chrome://tracing` / Perfetto), plus a
//! nesting validator used by tests and CI.
//!
//! Only [`EventKind::Span`] events are exported: spans are recorded per
//! thread with the thread's own clock, so within a track they nest
//! strictly. Samples (cross-thread durations like TTFT) are histogram
//! fodder only — including them would draw meaningless slices and break
//! the nesting invariant the validator checks.

use crate::{EventKind, ThreadEvents};

/// Formats nanoseconds as microseconds with three decimals — exact, since
/// 1 µs = 1000 ns.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders retained events as a Chrome trace-event JSON document: one
/// `"M"` (metadata) event naming each thread track, then one `"X"`
/// (complete) event per span, with `ts`/`dur` in microseconds.
pub fn chrome_trace_json(threads: &[ThreadEvents]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for t in threads {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            t.tid,
            escape(&t.name)
        );
        for ev in &t.events {
            if ev.kind != EventKind::Span {
                continue;
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}}}",
                escape(ev.label),
                t.tid,
                us(ev.start_ns),
                us(ev.value)
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Checks that every thread's spans nest properly — each pair of spans on
/// a track is either disjoint or one contains the other — and returns the
/// number of spans checked. This is the structural invariant a Chrome
/// trace viewer needs to lay out slices without overlap.
pub fn validate_spans(threads: &[ThreadEvents]) -> Result<usize, String> {
    let mut checked = 0usize;
    for t in threads {
        let mut spans: Vec<(u64, u64, &'static str)> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| (e.start_ns, e.start_ns.saturating_add(e.value), e.label))
            .collect();
        // Sorting by (start asc, end desc) puts each enclosing span before
        // everything it contains; a stack of open ends then catches any
        // partial overlap.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut open: Vec<(u64, &'static str)> = Vec::new();
        for (start, end, label) in spans {
            while open.last().is_some_and(|&(e, _)| e <= start) {
                open.pop();
            }
            if let Some(&(open_end, open_label)) = open.last() {
                if end > open_end {
                    return Err(format!(
                        "thread {} ({}): span `{label}` [{start}, {end}) overlaps \
                         `{open_label}` ending at {open_end}",
                        t.tid, t.name
                    ));
                }
            }
            open.push((end, label));
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn span(label: &'static str, start_ns: u64, dur: u64) -> Event {
        Event {
            kind: EventKind::Span,
            label,
            start_ns,
            value: dur,
        }
    }

    fn thread(events: Vec<Event>) -> ThreadEvents {
        ThreadEvents {
            tid: 3,
            name: "ticker".into(),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn exports_metadata_and_complete_events_in_microseconds() {
        let t = thread(vec![
            span("tick", 1_000, 2_500_000),
            Event {
                kind: EventKind::Sample,
                label: "ttft",
                start_ns: 5,
                value: 9,
            },
        ]);
        let json = chrome_trace_json(&[t]);
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"args\":{\"name\":\"ticker\"}"));
        // 1000 ns = 1.000 µs start, 2.5 ms = 2500.000 µs duration.
        assert!(json.contains("\"ts\":1.000,\"dur\":2500.000"), "{json}");
        assert!(!json.contains("ttft"), "samples must not be exported");
    }

    #[test]
    fn validates_nested_and_disjoint_spans() {
        let t = thread(vec![
            span("outer", 0, 100),
            span("inner", 10, 20),
            span("inner2", 40, 60), // shares outer's end exactly
            span("later", 200, 50),
        ]);
        assert_eq!(validate_spans(&[t]), Ok(4));
    }

    #[test]
    fn rejects_partial_overlap() {
        let t = thread(vec![span("a", 0, 100), span("b", 50, 100)]);
        let err = validate_spans(&[t]).unwrap_err();
        assert!(err.contains('`'), "{err}");
        assert!(err.contains('b'), "{err}");
    }

    #[test]
    fn tail_span_shapes_validate() {
        // The layout tail_spans produces: buckets abutting inside an
        // enclosing step span.
        let t = thread(vec![
            span("tick.step", 0, 1_000),
            span("kernel.gemm", 100, 300),
            span("kernel.attn", 400, 250),
            span("kernel.gemv", 650, 350),
        ]);
        assert_eq!(validate_spans(&[t]), Ok(4));
    }
}

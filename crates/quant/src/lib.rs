//! The M-ANT group-wise quantization framework (paper Secs. IV–V).
//!
//! This crate turns the raw numeric formats of `mant-numerics` into a full
//! quantization system:
//!
//! - [`scheme`]: granularities (tensor / channel / group) and schemes;
//! - [`quantizer`]: the generic [`FakeQuantizer`] interface all methods
//!   implement, plus grid-based INT/FP16 reference quantizers;
//! - [`mantq`]: the MANT weight quantizer — per-group coefficient search
//!   over the paper's candidate set, quantized storage, exact dequantize;
//! - [`search`]: MSE and calibration-weighted coefficient selection
//!   (paper Eq. (6));
//! - [`variance`]: the variance→`a` mapping used for real-time KV-cache
//!   selection (paper Sec. V-C, Eq. (7));
//! - [`activation`]: group-wise INT8 activation quantization with a
//!   streaming max (paper Sec. V-B);
//! - [`fused`]: the decode-free integer GEMM/GEMV of Eq. (5), consuming
//!   **nibble-packed** groups through 256-entry pair-decode tables with
//!   i32 in-group accumulation, cache-blocked four output rows per sweep
//!   (kernels live in `mant_numerics::kernels`); [`mant_gemv`] is the
//!   per-token primitive of the quantized execution backend, and
//!   [`mant_gemv_scalar`] keeps the pre-packing one-code-per-byte path
//!   as the bench baseline and bit-identity oracle;
//! - [`plan`]: interned `&'static` pair-decode tables per group dtype —
//!   built once per process, cached per matrix as its decode plan;
//! - [`kv`]: real-time K-cache (spatial) and V-cache (two-phase temporal)
//!   quantization engines (paper Sec. V-C, Fig. 8), with incremental
//!   group-wise access — [`KCacheQuantizer::fused_dot`] for `Q·Kᵀ` and
//!   [`VCacheQuantizer::attend`] for `P·V` — so decode-step attention
//!   never dequantizes the full cache;
//! - [`pool`]: the paged, packed KV-cache pool for continuous-batching
//!   serving — a **refcounted** block allocator owning MANT4/INT8 group
//!   storage that hands fixed-size blocks to per-sequence
//!   [`PagedKvCache`] views, bit-identical to the owned quantizers;
//!   views fork **copy-on-write** ([`PagedKvCache::fork`]), so identical
//!   prompt prefixes share physical blocks; [`mant_gemv_batch`] is the
//!   matching multi-query GEMM (one weight-group decode pass amortized
//!   across the whole batch).

pub mod activation;
pub mod error;
pub mod fused;
pub mod kv;
pub mod mantq;
pub mod plan;
pub mod pool;
pub mod quantizer;
pub mod scheme;
pub mod search;
pub mod smooth;
pub mod variance;

pub use activation::{
    quantize_activations_int8, quantize_vector_int8, ActivationTensor, QuantizedVector,
};
pub use error::QuantError;
pub use fused::{
    dequant_then_gemm, dequant_then_gemv, group_dot, group_dot_packed, mant_gemm, mant_gemm_with,
    mant_gemv, mant_gemv_batch, mant_gemv_batch_with, mant_gemv_scalar, mant_gemv_with,
    UnpackedWeights, DECODE_ONCE_MIN_BATCH,
};
pub use kv::{KCacheQuantizer, VCacheQuantizer};
pub use mantq::{GroupDtype, MantQuantizedMatrix, MantWeightQuantizer};
pub use plan::pair_table;
pub use pool::{attention_incremental_paged, KvCachePool, PagedKvCache, PoolConfig};
pub use quantizer::{FakeQuantizer, Fp16Quantizer, GridQuantizer};
pub use scheme::Granularity;
pub use search::{
    group_quantization_error, group_quantization_error_weighted, par_select_group_dtypes_batch,
    select_group_dtype, select_group_dtype_weighted, select_group_dtypes_batch, CandidateSet,
};
pub use smooth::Smoother;
pub use variance::VarianceMap;

//! Variance-based real-time data-type selection (paper Sec. V-C).
//!
//! MSE search needs one trial quantization per candidate — fine offline,
//! "intolerable in a real-time scenario". Instead the KV engines compute
//! each group's variance in a streaming fashion (Eq. (7)) and look the
//! coefficient up in a precalibrated variance→type table.
//!
//! The table is a small LUT over log-spaced normalized-variance buckets:
//! per bucket, the type minimizing the total (scale-normalized, optionally
//! position-weighted) quantization error over the calibration groups in
//! that variance range. (A single contiguous range per type — the paper's
//! simplest description — cannot express that INT wins at *both* variance
//! extremes: near-constant bias channels and uniform groups. A bucketed
//! LUT is exactly as cheap in hardware and strictly more faithful to the
//! calibration data.)

use mant_tensor::par::par_map_slice;
use mant_tensor::{abs_max, variance, RunningGroupStats};

use crate::error::QuantError;
use crate::mantq::GroupDtype;
use crate::search::{group_quantization_error_weighted, CandidateSet};

/// Number of log-spaced variance buckets in the LUT.
const BUCKETS: usize = 48;
/// Smallest distinguishable normalized variance.
const NVAR_FLOOR: f64 = 1e-6;

/// A calibrated mapping from normalized group variance to a data type.
#[derive(Clone, Debug)]
pub struct VarianceMap {
    /// Per-bucket selected type (log-spaced over `[NVAR_FLOOR, 1]`).
    buckets: Vec<GroupDtype>,
    /// `(representative_variance, dtype)` pairs for introspection, sorted
    /// ascending (one entry per candidate, anchored to calibration means
    /// or the grid variance when never selected).
    entries: Vec<(f64, GroupDtype)>,
}

impl VarianceMap {
    /// Builds the map from calibration groups (Sec. V-C: "sample the K and
    /// V tensors through a calibration dataset, and select a for each group
    /// to minimize quantization error; next, calculate the variance of the
    /// groups"). Every candidate's quantization error is accumulated per
    /// variance bucket, and each bucket records the candidate minimizing
    /// the *total* error over its calibration groups — the minimum-expected-
    /// error selector conditioned on the observable (the variance), which
    /// is strictly more faithful than majority voting when a bucket's
    /// per-group winners disagree but one type is near-optimal throughout.
    ///
    /// Buckets with no calibration coverage inherit from their nearest
    /// covered neighbor; with no data at all, every bucket falls back to
    /// the analytically nearest grid.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn from_calibration<'a>(
        groups: impl IntoIterator<Item = &'a [f32]>,
        set: &CandidateSet,
    ) -> Result<Self, QuantError> {
        Self::from_calibration_weighted(groups.into_iter().map(|g| (g, None)), set)
    }

    /// Like [`VarianceMap::from_calibration`], with optional per-position
    /// error weights for each group (Eq. (6)'s diagonal surrogate — e.g.
    /// `E[q_j²]` for K-cache groups, so bucket winners minimize expected
    /// attention-*score* error rather than plain weight error). Bucketing
    /// still uses the unweighted normalized variance, since that is the
    /// statistic available to the runtime selector.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn from_calibration_weighted<'a>(
        groups: impl IntoIterator<Item = (&'a [f32], Option<&'a [f32]>)>,
        set: &CandidateSet,
    ) -> Result<Self, QuantError> {
        if set.is_empty() {
            return Err(QuantError::EmptyCandidateSet);
        }
        // errs[bucket][candidate]: accumulated quantization error of each
        // candidate over the groups landing in that bucket. Also track the
        // per-candidate variance sums (for the introspection entries),
        // attributed to each group's MSE winner.
        let items: Vec<(&[f32], Option<&[f32]>)> = groups.into_iter().collect();
        // The 16-candidate error sweep per group is the hot kernel; fan it
        // across threads (bit-identical: per-group results are reduced in
        // input order below, so no accumulation is reordered).
        // (bucket, normalized variance, winning candidate, per-candidate errors)
        type GroupCalib = (usize, f64, usize, Vec<f64>);
        let per_group: Vec<Option<GroupCalib>> = par_map_slice(&items, |&(group, weights)| {
            let amax = abs_max(group);
            if amax == 0.0 {
                return None;
            }
            let nvar = variance(group) / (f64::from(amax) * f64::from(amax));
            // Normalize by max² (and the mean weight) so every
            // calibration group contributes at equal weight regardless
            // of its scale.
            let mean_w = weights.map_or(1.0, |ws| {
                let n = ws.len().max(1) as f64;
                ws.iter().map(|&w| f64::from(w)).sum::<f64>() / n
            });
            let norm = f64::from(amax) * f64::from(amax) * mean_w.max(1e-30);
            let mut win_idx = 0usize;
            let mut win_err = f64::INFINITY;
            let cand_errs: Vec<f64> = set
                .candidates()
                .iter()
                .enumerate()
                .map(|(i, &cand)| {
                    let e = group_quantization_error_weighted(group, weights, cand) / norm;
                    if e < win_err {
                        win_err = e;
                        win_idx = i;
                    }
                    e
                })
                .collect();
            Some((bucket_of(nvar), nvar, win_idx, cand_errs))
        });

        let mut errs = vec![vec![0.0f64; set.len()]; BUCKETS];
        let mut populated = [false; BUCKETS];
        let mut sums: Vec<(f64, usize)> = vec![(0.0, 0); set.len()];
        for (bucket, nvar, win_idx, cand_errs) in per_group.into_iter().flatten() {
            populated[bucket] = true;
            for (acc, e) in errs[bucket].iter_mut().zip(cand_errs) {
                *acc += e;
            }
            sums[win_idx].0 += nvar;
            sums[win_idx].1 += 1;
        }

        // Bucket winners minimize total calibration error; empty buckets
        // inherit from the nearest covered.
        let mut winners: Vec<Option<usize>> = errs
            .iter()
            .zip(populated.iter())
            .map(|(es, &has_data)| {
                if !has_data {
                    return None;
                }
                es.iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite errors"))
                    .map(|(i, _)| i)
            })
            .collect();
        let covered: Vec<usize> = winners
            .iter()
            .enumerate()
            .filter_map(|(b, w)| w.map(|_| b))
            .collect();
        if covered.is_empty() {
            // No calibration data: anchor every bucket to the candidate
            // whose grid variance is nearest the bucket center.
            let anchors: Vec<(f64, usize)> = set
                .candidates()
                .iter()
                .enumerate()
                .map(|(i, &d)| (analytic_variance(d), i))
                .collect();
            for (b, w) in winners.iter_mut().enumerate() {
                let center = bucket_center(b);
                let best = anchors
                    .iter()
                    .min_by(|a, c| {
                        (a.0 - center)
                            .abs()
                            .partial_cmp(&(c.0 - center).abs())
                            .expect("finite variances")
                    })
                    .expect("non-empty set");
                *w = Some(best.1);
            }
        } else {
            for b in 0..BUCKETS {
                if winners[b].is_none() {
                    let nearest = covered
                        .iter()
                        .min_by_key(|&&c| c.abs_diff(b))
                        .expect("covered is non-empty");
                    winners[b] = winners[*nearest];
                }
            }
        }
        let buckets: Vec<GroupDtype> = winners
            .into_iter()
            .map(|w| set.candidates()[w.expect("all buckets filled")])
            .collect();

        let mut entries: Vec<(f64, GroupDtype)> = set
            .candidates()
            .iter()
            .zip(sums.iter())
            .map(|(&dtype, &(sum, n))| {
                let rep = if n > 0 {
                    sum / n as f64
                } else {
                    analytic_variance(dtype)
                };
                (rep, dtype)
            })
            .collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("variances are finite"));
        Ok(VarianceMap { buckets, entries })
    }

    /// Builds the map without user calibration data by self-calibrating on
    /// a built-in corpus of synthetic groups spanning the distribution
    /// families LLM tensors exhibit (Gaussian/Laplace/uniform/heavy-tailed
    /// at several spreads, plus near-constant "outlier channel" groups —
    /// the V-cache case where INT beats every exponential grid).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCandidateSet`] if `set` is empty.
    pub fn analytic(set: &CandidateSet) -> Result<Self, QuantError> {
        if set.is_empty() {
            return Err(QuantError::EmptyCandidateSet);
        }
        let corpus = builtin_corpus();
        Self::from_calibration(corpus.iter().map(Vec::as_slice), set)
    }

    /// The `(representative_variance, dtype)` pairs, sorted ascending.
    pub fn entries(&self) -> &[(f64, GroupDtype)] {
        &self.entries
    }

    /// Selects the type for a group with the given normalized variance.
    pub fn select(&self, normalized_variance: f64) -> GroupDtype {
        self.buckets[bucket_of(normalized_variance)]
    }

    /// Selects from a streaming accumulator (the RQU's Σx/Σx²/max state).
    pub fn select_for(&self, stats: &RunningGroupStats) -> GroupDtype {
        self.select(stats.normalized_variance())
    }
}

/// Log-spaced bucket index for a normalized variance.
fn bucket_of(nvar: f64) -> usize {
    let clamped = nvar.clamp(NVAR_FLOOR, 1.0);
    let t = (clamped / NVAR_FLOOR).ln() / (1.0 / NVAR_FLOOR).ln();
    ((t * BUCKETS as f64) as usize).min(BUCKETS - 1)
}

/// Geometric center of a bucket.
fn bucket_center(b: usize) -> f64 {
    let t = (b as f64 + 0.5) / BUCKETS as f64;
    NVAR_FLOOR * (1.0 / NVAR_FLOOR).powf(t)
}

/// The variance of a type's max-normalized grid points — the fallback
/// anchor when no calibration data exists.
fn analytic_variance(dtype: GroupDtype) -> f64 {
    match dtype {
        GroupDtype::Mant(m) => m.normalized_grid_variance(),
        GroupDtype::Int4 => {
            let pts: Vec<f64> = (-7..=7).map(|i| f64::from(i) / 7.0).collect();
            pts.iter().map(|p| p * p).sum::<f64>() / pts.len() as f64
        }
    }
}

/// Deterministic self-calibration corpus: 64-element groups across the
/// distribution families and spreads that occur in LLM weights, K vectors,
/// and V channels (including near-constant bias channels).
fn builtin_corpus() -> Vec<Vec<f32>> {
    use mant_tensor::{DistributionKind, TensorGenerator};
    let mut gen = TensorGenerator::new(0xca11_b7a7e);
    let mut corpus: Vec<Vec<f32>> = Vec::new();
    for kind in DistributionKind::ALL {
        for spread_exp in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
            for _ in 0..8 {
                let scale = 10.0f32.powf(spread_exp);
                corpus.push((0..64).map(|_| gen.sample(kind, scale)).collect());
            }
        }
    }
    // Mean-shifted groups (V-cache temporal channel windows): c ± jitter·c,
    // from near-constant bias channels through mean-dominated Gaussians to
    // sign-crossing mixtures.
    for jitter in [0.01f32, 0.03, 0.08, 0.15, 0.25, 0.4, 0.6, 1.0, 1.5] {
        for sign in [1.0f32, -1.0] {
            for _ in 0..6 {
                let c = sign * gen.uniform(0.5, 2.0);
                corpus.push(
                    (0..64)
                        .map(|_| c * (1.0 + jitter * gen.standard_normal()))
                        .collect(),
                );
            }
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::select_group_dtype;
    use mant_tensor::{DistributionKind, TensorGenerator};

    #[test]
    fn analytic_map_is_total_and_entries_sorted() {
        let set = CandidateSet::paper();
        let map = VarianceMap::analytic(&set).unwrap();
        assert_eq!(map.entries().len(), set.len());
        for w in map.entries().windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        // Every variance value selects something.
        for nvar in [0.0, 1e-7, 1e-4, 0.01, 0.1, 0.3, 0.6, 1.0, 5.0] {
            let _ = map.select(nvar);
        }
    }

    #[test]
    fn near_constant_groups_get_uniform_like_grids() {
        // The V-cache case: tiny normalized variance must NOT map to PoT.
        let map = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let d = map.select(0.002);
        let uniform_like = match d {
            GroupDtype::Int4 => true,
            GroupDtype::Mant(m) => m.coefficient() >= 40,
        };
        assert!(uniform_like, "nvar 0.002 selected {d:?}");
    }

    #[test]
    fn gaussian_variance_selects_medium_a() {
        let map = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        // Gaussian groups normalized by their max have nvar ≈ 0.1–0.15.
        let d = map.select(0.12);
        match d {
            GroupDtype::Mant(m) => {
                let a = m.coefficient();
                assert!((5..=80).contains(&a), "a = {a}");
            }
            GroupDtype::Int4 => panic!("INT selected for Gaussian variance"),
        }
    }

    #[test]
    fn calibrated_map_agrees_with_mse_often() {
        let set = CandidateSet::paper();
        let mut g = TensorGenerator::new(41);
        let calib = g.group_diverse_matrix(32, 512, 64, 0.02);
        let groups: Vec<&[f32]> = calib.as_slice().chunks_exact(64).collect();
        let map = VarianceMap::from_calibration(groups, &set).unwrap();

        let test = g.group_diverse_matrix(16, 512, 64, 0.02);
        let mut var_err = 0.0f64;
        let mut mse_err = 0.0f64;
        for group in test.as_slice().chunks_exact(64) {
            let amax = abs_max(group);
            if amax == 0.0 {
                continue;
            }
            let mut stats = RunningGroupStats::new();
            stats.extend_from_slice(group);
            let dv = map.select_for(&stats);
            let (_, best) = select_group_dtype(group, &set).unwrap();
            let sv = dv.scale_for(amax);
            let ev: f64 = group
                .iter()
                .map(|&x| {
                    let e = f64::from(x - dv.quantize_value(x, sv));
                    e * e
                })
                .sum::<f64>()
                / group.len() as f64;
            var_err += ev;
            mse_err += best;
        }
        assert!(
            var_err <= mse_err * 2.5,
            "variance-selected error {var_err} vs oracle {mse_err}"
        );
    }

    #[test]
    fn streaming_and_batch_selection_agree() {
        let map = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let mut g = TensorGenerator::new(42);
        let data: Vec<f32> = (0..64)
            .map(|_| g.sample(DistributionKind::Gaussian, 0.1))
            .collect();
        let mut stats = RunningGroupStats::new();
        stats.extend_from_slice(&data);
        let amax = abs_max(&data);
        let nvar = variance(&data) / (f64::from(amax) * f64::from(amax));
        assert_eq!(map.select_for(&stats), map.select(nvar));
    }

    #[test]
    fn empty_set_rejected() {
        let empty = CandidateSet::custom(&[], false).unwrap();
        assert!(VarianceMap::analytic(&empty).is_err());
        assert!(VarianceMap::from_calibration(Vec::<&[f32]>::new(), &empty).is_err());
    }

    #[test]
    fn no_calibration_data_falls_back_to_grid_anchors() {
        let set = CandidateSet::paper();
        let map = VarianceMap::from_calibration(Vec::<&[f32]>::new(), &set).unwrap();
        // Still total: low variance → low-a grids under the fallback.
        let low = map.select(0.02);
        if let GroupDtype::Mant(m) = low {
            assert!(m.coefficient() <= 40, "a = {}", m.coefficient());
        }
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(2.0), BUCKETS - 1);
        let mut prev = 0usize;
        for e in [-5, -4, -3, -2, -1] {
            let b = bucket_of(10f64.powi(e));
            assert!(b >= prev);
            prev = b;
        }
        assert!(bucket_center(0) < bucket_center(BUCKETS - 1));
    }
}

//! Per-group data-type selection (paper Secs. V-A and V-C).
//!
//! Weights are encoded offline: for every group the framework searches the
//! paper's candidate set — fifteen MANT coefficients plus plain INT4 — for
//! the type minimizing quantization error. The plain variant minimizes the
//! weight-space MSE; the weighted variant minimizes the *output* MSE of
//! Eq. (6) under a diagonal approximation, using per-position second
//! moments `E[x²]` gathered from a calibration set.

use mant_numerics::NumericsError;
use mant_tensor::abs_max;

use crate::error::QuantError;
use crate::mantq::GroupDtype;

/// The paper's weight/KV candidate coefficients (Sec. V-A):
/// `{0, 5, 10, 17, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}`.
pub const PAPER_A_SET: [u32; 15] = [0, 5, 10, 17, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120];

/// The set of per-group data-type candidates to search over.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    candidates: Vec<GroupDtype>,
}

impl CandidateSet {
    /// The paper's configuration: fifteen MANT coefficients and "an
    /// additional INT option".
    pub fn paper() -> Self {
        let mut candidates: Vec<GroupDtype> = PAPER_A_SET
            .iter()
            .map(|&a| GroupDtype::mant(a).expect("paper set is within range"))
            .collect();
        candidates.push(GroupDtype::Int4);
        CandidateSet { candidates }
    }

    /// A custom set of MANT coefficients, optionally with the INT fallback.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidCoefficient`] if any `a ≥ 128`.
    pub fn custom(coefficients: &[u32], include_int: bool) -> Result<Self, NumericsError> {
        let mut candidates = Vec::with_capacity(coefficients.len() + 1);
        for &a in coefficients {
            candidates.push(GroupDtype::mant(a)?);
        }
        if include_int {
            candidates.push(GroupDtype::Int4);
        }
        Ok(CandidateSet { candidates })
    }

    /// The candidate data types.
    pub fn candidates(&self) -> &[GroupDtype] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

impl Default for CandidateSet {
    fn default() -> Self {
        CandidateSet::paper()
    }
}

/// Selects the candidate minimizing plain weight MSE over `group`.
/// Returns the winning type and its MSE.
///
/// # Errors
///
/// Returns [`QuantError::EmptyCandidateSet`] if `set` has no candidates.
pub fn select_group_dtype(
    group: &[f32],
    set: &CandidateSet,
) -> Result<(GroupDtype, f64), QuantError> {
    select_group_dtype_weighted(group, None, set)
}

/// Selects the candidate minimizing `Σ e_j²·ω_j`, where `ω_j` is the
/// calibration second moment of the activation multiplying weight `j`
/// (`None` means uniform weights → plain MSE). This is the diagonal
/// surrogate of the paper's output-MSE objective (Eq. (6)).
///
/// # Errors
///
/// Returns [`QuantError::EmptyCandidateSet`] if `set` has no candidates, and
/// [`QuantError::ShapeMismatch`] if `weights` is present with a different
/// length than `group`.
pub fn select_group_dtype_weighted(
    group: &[f32],
    weights: Option<&[f32]>,
    set: &CandidateSet,
) -> Result<(GroupDtype, f64), QuantError> {
    if set.is_empty() {
        return Err(QuantError::EmptyCandidateSet);
    }
    if let Some(w) = weights {
        if w.len() != group.len() {
            return Err(QuantError::ShapeMismatch {
                context: "calibration weights vs group length",
            });
        }
    }
    let amax = abs_max(group);
    let mut best = set.candidates()[0];
    let mut best_err = f64::INFINITY;
    for &cand in set.candidates() {
        let err = weighted_group_error(group, weights, amax, cand);
        if err < best_err {
            best_err = err;
            best = cand;
        }
    }
    Ok((best, best_err))
}

/// Mean squared quantization error of encoding `group` with `dtype` at the
/// type's own symmetric scale — the quantity the per-group search minimizes.
/// Exposed for LUT calibration and benchmarking.
pub fn group_quantization_error(group: &[f32], dtype: GroupDtype) -> f64 {
    weighted_group_error(group, None, abs_max(group), dtype)
}

/// Like [`group_quantization_error`], with optional per-position weights
/// `ω_j` (the diagonal output-MSE surrogate of Eq. (6)); `None` means
/// uniform weights.
pub fn group_quantization_error_weighted(
    group: &[f32],
    weights: Option<&[f32]>,
    dtype: GroupDtype,
) -> f64 {
    weighted_group_error(group, weights, abs_max(group), dtype)
}

/// Runs the per-group search over a batch of groups, serially.
///
/// # Errors
///
/// Returns [`QuantError::EmptyCandidateSet`] if `set` has no candidates.
pub fn select_group_dtypes_batch(
    groups: &[&[f32]],
    set: &CandidateSet,
) -> Result<Vec<(GroupDtype, f64)>, QuantError> {
    groups.iter().map(|g| select_group_dtype(g, set)).collect()
}

/// Runs the per-group search over a batch of groups, fanned across
/// threads. Bit-identical to [`select_group_dtypes_batch`] (groups are
/// independent and results are reassembled in order); serial when the
/// `parallel` feature is disabled.
///
/// # Errors
///
/// Returns [`QuantError::EmptyCandidateSet`] if `set` has no candidates.
pub fn par_select_group_dtypes_batch(
    groups: &[&[f32]],
    set: &CandidateSet,
) -> Result<Vec<(GroupDtype, f64)>, QuantError> {
    mant_tensor::par::par_map_slice(groups, |g| select_group_dtype(g, set))
        .into_iter()
        .collect()
}

fn weighted_group_error(
    group: &[f32],
    weights: Option<&[f32]>,
    amax: f32,
    dtype: GroupDtype,
) -> f64 {
    if amax == 0.0 {
        return 0.0;
    }
    let scale = dtype.scale_for(amax);
    let mut acc = 0.0f64;
    for (j, &x) in group.iter().enumerate() {
        let q = dtype.quantize_value(x, scale);
        let e = f64::from(x - q);
        let w = weights.map_or(1.0, |ws| f64::from(ws[j]));
        acc += e * e * w;
    }
    acc / group.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_tensor::{DistributionKind, TensorGenerator};

    #[test]
    fn paper_set_has_16_candidates() {
        let set = CandidateSet::paper();
        assert_eq!(set.len(), 16);
        assert!(set.candidates().contains(&GroupDtype::Int4));
    }

    #[test]
    fn custom_set_validates_coefficients() {
        assert!(CandidateSet::custom(&[0, 17, 200], true).is_err());
        let s = CandidateSet::custom(&[17], false).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_set_is_error() {
        let s = CandidateSet::custom(&[], false).unwrap();
        assert_eq!(
            select_group_dtype(&[1.0, 2.0], &s),
            Err(QuantError::EmptyCandidateSet)
        );
    }

    #[test]
    fn uniform_data_selects_int_like() {
        // Uniform distributions are INT's home turf (Sec. II-B).
        let mut g = TensorGenerator::new(21);
        let data: Vec<f32> = (0..128)
            .map(|_| g.sample(DistributionKind::Uniform, 1.0))
            .collect();
        let (dtype, _) = select_group_dtype(&data, &CandidateSet::paper()).unwrap();
        // INT4 or a large-a MANT (which approaches uniform).
        let ok = match dtype {
            GroupDtype::Int4 => true,
            GroupDtype::Mant(m) => m.coefficient() >= 60,
        };
        assert!(ok, "selected {dtype:?}");
    }

    #[test]
    fn peaked_data_selects_small_a() {
        // Laplace-like data wants PoT-like (small a) grids.
        let mut g = TensorGenerator::new(22);
        let data: Vec<f32> = (0..128)
            .map(|_| g.sample(DistributionKind::Laplace, 1.0))
            .collect();
        // Sharpen the peak further to make PoT clearly optimal.
        let data: Vec<f32> = data.iter().map(|&x| x * x * x.signum() * 0.1).collect();
        let (dtype, _) = select_group_dtype(&data, &CandidateSet::paper()).unwrap();
        match dtype {
            GroupDtype::Mant(m) => assert!(m.coefficient() <= 20, "a={}", m.coefficient()),
            GroupDtype::Int4 => panic!("INT selected for sharply peaked data"),
        }
    }

    #[test]
    fn selection_error_is_minimal() {
        let mut g = TensorGenerator::new(23);
        let data: Vec<f32> = (0..64)
            .map(|_| g.sample(DistributionKind::Gaussian, 0.3))
            .collect();
        let set = CandidateSet::paper();
        let (best, best_err) = select_group_dtype(&data, &set).unwrap();
        for &cand in set.candidates() {
            let err = group_quantization_error(&data, cand);
            assert!(best_err <= err + 1e-12, "{best:?} beaten by {cand:?}");
        }
    }

    #[test]
    fn weighted_selection_prioritizes_hot_positions() {
        // Group with one large-magnitude position; weighting that position
        // heavily must not increase its weighted error vs unweighted choice.
        let group = [0.01f32, 0.02, -0.015, 0.9, 0.02, -0.01, 0.015, 0.01];
        let mut weights = [1.0f32; 8];
        weights[3] = 100.0;
        let set = CandidateSet::paper();
        let (_, unweighted_err) =
            select_group_dtype_weighted(&group, Some(&weights), &set).unwrap();
        let (dt_plain, _) = select_group_dtype(&group, &set).unwrap();
        let plain_under_weights =
            weighted_group_error(&group, Some(&weights), abs_max(&group), dt_plain);
        assert!(unweighted_err <= plain_under_weights + 1e-12);
    }

    #[test]
    fn weight_length_mismatch_is_error() {
        let set = CandidateSet::paper();
        let err = select_group_dtype_weighted(&[1.0, 2.0], Some(&[1.0]), &set);
        assert!(matches!(err, Err(QuantError::ShapeMismatch { .. })));
    }

    #[test]
    fn zero_group_costs_nothing() {
        let set = CandidateSet::paper();
        let (_, err) = select_group_dtype(&[0.0; 16], &set).unwrap();
        assert_eq!(err, 0.0);
    }
}

//! Error type for the quantization framework.

use std::error::Error;
use std::fmt;

/// Errors produced by quantizer construction or use.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuantError {
    /// A group size of zero or one that does not divide the inner dimension.
    BadGroupSize {
        /// Requested group size.
        group_size: usize,
        /// Inner dimension it must divide.
        inner_dim: usize,
    },
    /// A shape mismatch between cooperating tensors.
    ShapeMismatch {
        /// Human-readable context.
        context: &'static str,
    },
    /// An empty candidate set for coefficient search.
    EmptyCandidateSet,
    /// The paged KV-cache pool has no free blocks left — the admission
    /// layer above let a sequence grow past the pool's reserved capacity.
    PoolExhausted {
        /// Total blocks in the pool.
        blocks: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::BadGroupSize {
                group_size,
                inner_dim,
            } => write!(
                f,
                "group size {group_size} does not evenly divide inner dimension {inner_dim}"
            ),
            QuantError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            QuantError::EmptyCandidateSet => write!(f, "coefficient candidate set is empty"),
            QuantError::PoolExhausted { blocks } => {
                write!(f, "KV-cache pool exhausted: all {blocks} blocks in use")
            }
        }
    }
}

impl Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QuantError::BadGroupSize {
            group_size: 3,
            inner_dim: 64
        }
        .to_string()
        .contains("64"));
        assert!(!QuantError::EmptyCandidateSet.to_string().is_empty());
    }
}

//! Quantization granularities.

use crate::error::QuantError;

/// The unit of elements that shares one scale (and, for adaptive types, one
/// data-type choice).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One scale for the whole tensor (ANT/OliVe activations).
    Tensor,
    /// One scale per row along the inner dimension (per output channel for
    /// weights stored `out × in`).
    Channel,
    /// One scale per `group_size` contiguous elements within a row — the
    /// paper's standard configuration (64 or 128).
    Group(usize),
}

impl Granularity {
    /// The effective group length within a row of width `inner_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if a group granularity does not
    /// divide `inner_dim` or is zero.
    pub fn span(&self, inner_dim: usize) -> Result<usize, QuantError> {
        match *self {
            Granularity::Tensor | Granularity::Channel => Ok(inner_dim),
            Granularity::Group(g) => {
                if g == 0 || !inner_dim.is_multiple_of(g) {
                    Err(QuantError::BadGroupSize {
                        group_size: g,
                        inner_dim,
                    })
                } else {
                    Ok(g)
                }
            }
        }
    }

    /// Scale metadata entries per row of width `inner_dim`.
    ///
    /// # Errors
    ///
    /// Propagates [`Granularity::span`] errors.
    pub fn groups_per_row(&self, inner_dim: usize) -> Result<usize, QuantError> {
        Ok(inner_dim / self.span(inner_dim)?)
    }

    /// Average metadata overhead in bits per element, assuming an FP16
    /// scale per group (the paper's 4.125-bit figure for G-128).
    pub fn scale_bits_per_element(&self, inner_dim: usize, rows: usize) -> f64 {
        let span = match self.span(inner_dim) {
            Ok(s) => s,
            Err(_) => return f64::NAN,
        };
        match self {
            // Tensor level amortizes one scale over everything.
            Granularity::Tensor => 16.0 / (inner_dim as f64 * rows as f64),
            _ => 16.0 / span as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans() {
        assert_eq!(Granularity::Tensor.span(4096).unwrap(), 4096);
        assert_eq!(Granularity::Channel.span(4096).unwrap(), 4096);
        assert_eq!(Granularity::Group(128).span(4096).unwrap(), 128);
        assert!(Granularity::Group(100).span(4096).is_err());
        assert!(Granularity::Group(0).span(4096).is_err());
    }

    #[test]
    fn groups_per_row() {
        assert_eq!(Granularity::Group(128).groups_per_row(4096).unwrap(), 32);
        assert_eq!(Granularity::Channel.groups_per_row(4096).unwrap(), 1);
    }

    #[test]
    fn overhead_bits_match_paper() {
        // G-128 → 16/128 = 0.125 extra bits/element: "4.125 bits" (Sec. III-A).
        let b = Granularity::Group(128).scale_bits_per_element(4096, 1);
        assert!((b - 0.125).abs() < 1e-12);
        // G-32 → 0.5 extra bits: the 4× overhead the paper notes.
        let b32 = Granularity::Group(32).scale_bits_per_element(4096, 1);
        assert!((b32 - 0.5).abs() < 1e-12);
    }
}

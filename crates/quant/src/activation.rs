//! Group-wise INT8 activation quantization (paper Sec. V-B).
//!
//! Activations keep 8 bits: they are transient (<5% of memory), and INT8
//! keeps them compatible with the integer MAC units the fused MANT GEMM
//! uses. The hardware derives each group's max with a streaming comparator
//! pipelined into the systolic-array output (Sec. VI-C); functionally that
//! is a per-group `max |x|` → scale → round.

use mant_numerics::fp16::quantize_fp16;
use mant_numerics::kernels;
use mant_tensor::Matrix;

use crate::error::QuantError;

/// An INT8 group-quantized activation tensor.
///
/// Layout matches the weight side: `rows × cols`, with the accumulation
/// dimension contiguous and grouped.
#[derive(Clone, Debug)]
pub struct ActivationTensor {
    rows: usize,
    cols: usize,
    group_size: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

/// Quantizes `x` to group-wise INT8 along its inner dimension.
///
/// # Errors
///
/// Returns [`QuantError::BadGroupSize`] if `group_size` does not divide
/// `x.cols()`.
///
/// # Example
///
/// ```
/// use mant_quant::quantize_activations_int8;
/// use mant_tensor::Matrix;
///
/// let x = Matrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, 127.0]);
/// let q = quantize_activations_int8(&x, 4)?;
/// assert_eq!(q.group_codes(0, 0)[3], 127);
/// # Ok::<(), mant_quant::QuantError>(())
/// ```
pub fn quantize_activations_int8(
    x: &Matrix,
    group_size: usize,
) -> Result<ActivationTensor, QuantError> {
    if group_size == 0 || !x.cols().is_multiple_of(group_size) {
        return Err(QuantError::BadGroupSize {
            group_size,
            inner_dim: x.cols(),
        });
    }
    let gpr = x.cols() / group_size;
    let mut codes = vec![0i8; x.rows() * x.cols()];
    let mut scales = Vec::with_capacity(x.rows() * gpr);
    // Per group: a vectorized max-|x| sweep, then a vectorized
    // divide-round-clamp pass through the process kernel tier —
    // bit-identical to the scalar fold + `quantize_symmetric_int` loop
    // (see `mant_numerics::simd` for the exactness argument).
    let d = kernels();
    for r in 0..x.rows() {
        let row = x.row(r);
        for g in 0..gpr {
            let lo = g * group_size;
            let group = &row[lo..lo + group_size];
            let amax = d.abs_max(group);
            let scale = if amax == 0.0 {
                1.0
            } else {
                quantize_fp16(amax / 127.0).max(f32::MIN_POSITIVE)
            };
            scales.push(scale);
            let base = r * x.cols() + lo;
            d.quantize_i8(group, scale, &mut codes[base..base + group_size]);
        }
    }
    Ok(ActivationTensor {
        rows: x.rows(),
        cols: x.cols(),
        group_size,
        codes,
        scales,
    })
}

impl ActivationTensor {
    /// Number of rows (tokens).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Accumulation-dimension length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.group_size
    }

    /// INT8 codes of group `g` in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn group_codes(&self, r: usize, g: usize) -> &[i8] {
        let base = r * self.cols + g * self.group_size;
        &self.codes[base..base + self.group_size]
    }

    /// Scale of group `g` in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn scale(&self, r: usize, g: usize) -> f32 {
        self.scales[r * self.groups_per_row() + g]
    }

    /// All INT8 codes of row `r`, groups consecutive — the operand of the
    /// grouped row-tile kernel sweep.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row_codes(&self, r: usize) -> &[i8] {
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantizes to f32.
    pub fn dequantize(&self) -> Matrix {
        let gpr = self.groups_per_row();
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let g = c / self.group_size;
            f32::from(self.codes[r * self.cols + c]) * self.scales[r * gpr + g]
        })
    }

    /// Storage bits: 8 per element + 16 per group scale.
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * 8 + self.scales.len() * 16
    }
}

/// A single activation vector quantized to group-wise INT8 — the per-step
/// operand of the quantized execution backend's GEMV and of the fused
/// `Q·Kᵀ` attention path.
#[derive(Clone, Debug)]
pub struct QuantizedVector {
    group_size: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

/// Quantizes one activation vector to group-wise INT8 along its length,
/// with the same FP16-rounded scale rule as [`quantize_activations_int8`].
///
/// # Errors
///
/// Returns [`QuantError::BadGroupSize`] if `group_size` does not divide
/// `x.len()`.
///
/// # Example
///
/// ```
/// use mant_quant::quantize_vector_int8;
///
/// let q = quantize_vector_int8(&[1.0, -2.0, 0.5, 127.0], 4)?;
/// assert_eq!(q.group_codes(0)[3], 127);
/// # Ok::<(), mant_quant::QuantError>(())
/// ```
pub fn quantize_vector_int8(x: &[f32], group_size: usize) -> Result<QuantizedVector, QuantError> {
    if group_size == 0 || !x.len().is_multiple_of(group_size) {
        return Err(QuantError::BadGroupSize {
            group_size,
            inner_dim: x.len(),
        });
    }
    let mut codes = vec![0i8; x.len()];
    let mut scales = Vec::with_capacity(x.len() / group_size);
    // Same vectorized two-pass group quantization as the matrix path.
    let d = kernels();
    for (group, out) in x
        .chunks_exact(group_size)
        .zip(codes.chunks_exact_mut(group_size))
    {
        let amax = d.abs_max(group);
        let scale = if amax == 0.0 {
            1.0
        } else {
            quantize_fp16(amax / 127.0).max(f32::MIN_POSITIVE)
        };
        scales.push(scale);
        d.quantize_i8(group, scale, out);
    }
    Ok(QuantizedVector {
        group_size,
        codes,
        scales,
    })
}

impl QuantizedVector {
    /// Vector length.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.codes.len() / self.group_size
    }

    /// INT8 codes of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn group_codes(&self, g: usize) -> &[i8] {
        let lo = g * self.group_size;
        &self.codes[lo..lo + self.group_size]
    }

    /// All INT8 codes, groups consecutive — the operand of the grouped
    /// row-tile kernel sweep.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Scale of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn scale(&self, g: usize) -> f32 {
        self.scales[g]
    }

    /// Dequantizes to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .enumerate()
            .map(|(i, &c)| f32::from(c) * self.scales[i / self.group_size])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_tensor::{mse, TensorGenerator};

    #[test]
    fn roundtrip_error_small() {
        let mut g = TensorGenerator::new(51);
        let x = g.activation_matrix(8, 256, 1.0, 0.02, 30.0);
        let q = quantize_activations_int8(&x, 64).unwrap();
        let deq = q.dequantize();
        let err = mse(x.as_slice(), deq.as_slice());
        let power = mse(x.as_slice(), &vec![0.0; x.len()]);
        // INT8 group-wise is near-lossless even with outlier channels.
        assert!(err / power < 1e-3, "relative error {}", err / power);
    }

    #[test]
    fn codes_saturate_at_127() {
        let x = Matrix::from_vec(1, 4, vec![100.0, -100.0, 50.0, 0.0]);
        let q = quantize_activations_int8(&x, 4).unwrap();
        let codes = q.group_codes(0, 0);
        assert_eq!(codes[0], 127);
        assert_eq!(codes[1], -127);
        assert_eq!(codes[3], 0);
    }

    #[test]
    fn zero_group_unit_scale() {
        let x = Matrix::zeros(1, 8);
        let q = quantize_activations_int8(&x, 8).unwrap();
        assert_eq!(q.scale(0, 0), 1.0);
        assert!(q.group_codes(0, 0).iter().all(|&c| c == 0));
    }

    #[test]
    fn bad_group_size() {
        let x = Matrix::zeros(1, 10);
        assert!(quantize_activations_int8(&x, 4).is_err());
        assert!(quantize_activations_int8(&x, 0).is_err());
    }

    #[test]
    fn storage_accounting() {
        let x = Matrix::zeros(2, 128);
        let q = quantize_activations_int8(&x, 64).unwrap();
        assert_eq!(q.storage_bits(), 256 * 8 + 4 * 16);
    }

    #[test]
    fn vector_matches_matrix_quantization() {
        let mut g = TensorGenerator::new(52);
        let x = g.activation_matrix(1, 128, 1.0, 0.02, 30.0);
        let qm = quantize_activations_int8(&x, 32).unwrap();
        let qv = quantize_vector_int8(x.row(0), 32).unwrap();
        assert_eq!(qv.len(), 128);
        assert_eq!(qv.groups(), 4);
        for gi in 0..4 {
            assert_eq!(qv.group_codes(gi), qm.group_codes(0, gi));
            assert_eq!(qv.scale(gi), qm.scale(0, gi));
        }
        assert_eq!(qv.dequantize(), qm.dequantize().row(0));
    }

    #[test]
    fn vector_bad_group_size() {
        assert!(quantize_vector_int8(&[1.0; 10], 4).is_err());
        assert!(quantize_vector_int8(&[1.0; 10], 0).is_err());
    }
}

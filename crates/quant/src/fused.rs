//! Decode-free integer GEMM (paper Eq. (5) and Fig. 7).
//!
//! The whole point of MANT's formulation: for INT8 activations `x` and a
//! MANT-encoded weight group with coefficient `a`,
//!
//! ```text
//! Σ x·(±(a·i + 2^i))  =  a · Σ x·(±i)   +   Σ x·(±2^i)
//!                          └── psum1 ──┘     └── psum2 ──┘
//!                            (MAC lane)       (SAC lane)
//! ```
//!
//! so the hardware runs a multiply-accumulate and a shift-accumulate in
//! parallel and multiplies `psum1` by `a` once per group — no per-element
//! dequantization, no data-type-specific decoder. Groups that selected the
//! INT option instead run a single plain MAC lane. The group scales
//! `s_X · s_W` multiply the integer result afterwards, outside the array.

use mant_numerics::{
    decode_group, dot_decoded, int4_decode_lut, int4_group_mac, mant_decode_lut, mant_group_psums,
};
use mant_tensor::{gemm, matvec, Matrix};

use crate::activation::{ActivationTensor, QuantizedVector};
use crate::error::QuantError;
use crate::mantq::{GroupDtype, GroupMeta, MantQuantizedMatrix};

/// Dispatches one group's integer dot product to the matching kernel:
/// two-psum MANT recombination or the single-lane INT4 MAC.
pub fn group_dot(meta: GroupMeta, xcodes: &[i8], wcodes: &[u8]) -> i64 {
    match meta.dtype {
        GroupDtype::Mant(mant) => mant_group_psums(xcodes, wcodes, mant),
        GroupDtype::Int4 => int4_group_mac(xcodes, wcodes),
    }
}

/// The 16-entry decoded-operand table for a group's dtype — the per-group
/// setup of the batched decode-pass kernels.
fn group_decode_table(dtype: GroupDtype) -> [i32; 16] {
    match dtype {
        GroupDtype::Mant(mant) => mant_decode_lut(mant),
        GroupDtype::Int4 => int4_decode_lut(),
    }
}

/// Computes `X · Wᵀ` entirely in integer arithmetic plus one scale multiply
/// per (row, group): `x` is `M×K` INT8, `w` is `N×K` MANT-encoded (rows are
/// output channels), both grouped identically along K. Returns the `M×N`
/// f32 result.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if the inner dimensions or group
/// sizes disagree.
///
/// # Example
///
/// ```
/// use mant_quant::{mant_gemm, quantize_activations_int8, MantWeightQuantizer};
/// use mant_tensor::{Matrix, TensorGenerator, DistributionKind};
///
/// let mut g = TensorGenerator::new(1);
/// let x = g.matrix(2, 64, DistributionKind::Gaussian, 1.0);
/// let w = g.matrix(3, 64, DistributionKind::Gaussian, 0.02);
/// let xq = quantize_activations_int8(&x, 64)?;
/// let wq = MantWeightQuantizer::new(64).quantize(&w)?;
/// let y = mant_gemm(&xq, &wq)?;
/// assert_eq!(y.shape(), (2, 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mant_gemm(x: &ActivationTensor, w: &MantQuantizedMatrix) -> Result<Matrix, QuantError> {
    if x.cols() != w.cols() {
        return Err(QuantError::ShapeMismatch {
            context: "activation inner dim vs weight inner dim",
        });
    }
    if x.group_size() != w.group_size() {
        return Err(QuantError::ShapeMismatch {
            context: "activation group size vs weight group size",
        });
    }
    let m = x.rows();
    let n = w.rows();
    let groups = x.groups_per_row();
    let mut out = Matrix::zeros(m, n);
    // Multi-query loop order: each weight group is decoded into integer
    // operands ONCE and swept across every activation row, so the
    // per-group setup (dtype dispatch, lane-LUT walk, scale widening)
    // amortizes over the batch. Each output element still accumulates its
    // groups in ascending order with the identical f64 expression, so the
    // result is bit-identical to the row-at-a-time formulation.
    let mut wdec = vec![0i64; x.group_size()];
    let mut accs = vec![0.0f64; m];
    for ni in 0..n {
        accs.iter_mut().for_each(|a| *a = 0.0);
        for g in 0..groups {
            let meta = w.meta(ni, g);
            decode_group(
                w.group_codes(ni, g),
                &group_decode_table(meta.dtype),
                &mut wdec,
            );
            let w_scale = f64::from(meta.scale);
            for (mi, acc) in accs.iter_mut().enumerate() {
                let int_result = dot_decoded(x.group_codes(mi, g), &wdec);
                *acc += f64::from(x.scale(mi, g)) * w_scale * int_result as f64;
            }
        }
        for (mi, &acc) in accs.iter().enumerate() {
            out[(mi, ni)] = acc as f32;
        }
    }
    Ok(out)
}

/// Batched [`mant_gemv`]: one weight matrix against a whole batch of
/// independently quantized activation vectors (a continuous-batching
/// decode iteration's ragged batch). Runs the multi-query decode-pass
/// loop: per weight group, the 4-bit codes are decoded to integer operands
/// once, then every batch member's codes sweep them with a single MAC
/// lane — amortizing the per-group constant overhead that makes the
/// software GEMV lose to f32 at batch 1. Output `[i][n]` is
/// **bit-identical** to `mant_gemv(&xs[i], w)[n]`.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if any vector's length or group
/// size disagrees with the weights.
pub fn mant_gemv_batch(
    xs: &[QuantizedVector],
    w: &MantQuantizedMatrix,
) -> Result<Vec<Vec<f32>>, QuantError> {
    for x in xs {
        if x.len() != w.cols() {
            return Err(QuantError::ShapeMismatch {
                context: "activation vector length vs weight inner dim",
            });
        }
        if x.group_size() != w.group_size() {
            return Err(QuantError::ShapeMismatch {
                context: "activation group size vs weight group size",
            });
        }
    }
    let groups = w.cols() / w.group_size();
    let mut out: Vec<Vec<f32>> = xs.iter().map(|_| vec![0.0f32; w.rows()]).collect();
    let mut wdec = vec![0i64; w.group_size()];
    let mut accs = vec![0.0f64; xs.len()];
    for n in 0..w.rows() {
        accs.iter_mut().for_each(|a| *a = 0.0);
        for g in 0..groups {
            let meta = w.meta(n, g);
            decode_group(
                w.group_codes(n, g),
                &group_decode_table(meta.dtype),
                &mut wdec,
            );
            let w_scale = f64::from(meta.scale);
            for (acc, x) in accs.iter_mut().zip(xs.iter()) {
                let int_result = dot_decoded(x.group_codes(g), &wdec);
                *acc += f64::from(x.scale(g)) * w_scale * int_result as f64;
            }
        }
        for (y, &acc) in out.iter_mut().zip(accs.iter()) {
            y[n] = acc as f32;
        }
    }
    Ok(out)
}

/// Computes `y = W · x` for one INT8-quantized activation vector against a
/// MANT-encoded weight matrix (`N×K`, rows are output channels), entirely
/// in integer arithmetic plus one scale multiply per group — the
/// per-token linear-projection primitive of the quantized execution
/// backend (decode-step GEMMs degenerate to GEMVs).
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if the inner dimensions or group
/// sizes disagree.
///
/// # Example
///
/// ```
/// use mant_quant::{mant_gemv, quantize_vector_int8, MantWeightQuantizer};
/// use mant_tensor::TensorGenerator;
///
/// let mut g = TensorGenerator::new(2);
/// let w = g.group_diverse_matrix(3, 64, 64, 0.02);
/// let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
/// let wq = MantWeightQuantizer::new(64).quantize(&w)?;
/// let xq = quantize_vector_int8(&x, 64)?;
/// assert_eq!(mant_gemv(&xq, &wq)?.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mant_gemv(x: &QuantizedVector, w: &MantQuantizedMatrix) -> Result<Vec<f32>, QuantError> {
    if x.len() != w.cols() {
        return Err(QuantError::ShapeMismatch {
            context: "activation vector length vs weight inner dim",
        });
    }
    if x.group_size() != w.group_size() {
        return Err(QuantError::ShapeMismatch {
            context: "activation group size vs weight group size",
        });
    }
    let groups = x.groups();
    Ok((0..w.rows())
        .map(|n| {
            let mut acc = 0.0f64;
            for g in 0..groups {
                let meta = w.meta(n, g);
                let int_result = group_dot(meta, x.group_codes(g), w.group_codes(n, g));
                acc += f64::from(x.scale(g)) * f64::from(meta.scale) * int_result as f64;
            }
            acc as f32
        })
        .collect())
}

/// Reference path for the GEMV: dequantize both operands and run the f32
/// matvec — what the fused path must match up to accumulation order.
pub fn dequant_then_gemv(x: &QuantizedVector, w: &MantQuantizedMatrix) -> Vec<f32> {
    matvec(&w.dequantize(), &x.dequantize())
}

/// Reference path: dequantize both operands to f32 and run a dense GEMM.
/// Used by tests to prove the fused path is exact, and by the ablation
/// bench to quantify what decode-free computation saves.
pub fn dequant_then_gemm(x: &ActivationTensor, w: &MantQuantizedMatrix) -> Matrix {
    let xf = x.dequantize();
    let wf = w.dequantize().transpose(); // N×K → K×N
    gemm(&xf, &wf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::quantize_activations_int8;
    use crate::mantq::MantWeightQuantizer;
    use crate::search::CandidateSet;
    use mant_tensor::{DistributionKind, TensorGenerator};

    fn setup(
        seed: u64,
        m: usize,
        n: usize,
        k: usize,
        g: usize,
    ) -> (ActivationTensor, MantQuantizedMatrix) {
        let mut gen = TensorGenerator::new(seed);
        let x = gen.activation_matrix(m, k, 1.0, 0.02, 20.0);
        let w = gen.group_diverse_matrix(n, k, g, 0.02);
        let xq = quantize_activations_int8(&x, g).unwrap();
        let wq = MantWeightQuantizer::new(g).quantize(&w).unwrap();
        (xq, wq)
    }

    #[test]
    fn fused_matches_dequantized_reference() {
        let (xq, wq) = setup(61, 4, 6, 128, 64);
        let fused = mant_gemm(&xq, &wq).unwrap();
        let reference = dequant_then_gemm(&xq, &wq);
        // Same math, different accumulation order → tiny fp differences.
        let denom = reference
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() / denom < 1e-4, "fused {a} vs reference {b}");
        }
    }

    #[test]
    fn pure_int_groups_also_exact() {
        // Force the INT-only candidate set: the fused kernel must fall back
        // to the single-lane MAC and still match.
        let mut gen = TensorGenerator::new(62);
        let x = gen.matrix(3, 64, DistributionKind::Uniform, 1.0);
        let w = gen.matrix(2, 64, DistributionKind::Uniform, 0.1);
        let xq = quantize_activations_int8(&x, 64).unwrap();
        let set = CandidateSet::custom(&[], true).unwrap();
        let wq = MantWeightQuantizer::new(64)
            .with_candidates(set)
            .quantize(&w)
            .unwrap();
        let fused = mant_gemm(&xq, &wq).unwrap();
        let reference = dequant_then_gemm(&xq, &wq);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn approximates_fp32_gemm() {
        // End-to-end W4A8 quantized GEMM should track the FP32 product.
        let mut gen = TensorGenerator::new(63);
        let x = gen.matrix(4, 256, DistributionKind::Gaussian, 1.0);
        let w = gen.group_diverse_matrix(8, 256, 64, 0.02);
        let exact = gemm(&x, &w.transpose());
        let xq = quantize_activations_int8(&x, 64).unwrap();
        let wq = MantWeightQuantizer::new(64).quantize(&w).unwrap();
        let approx = mant_gemm(&xq, &wq).unwrap();
        // RMS relative error (Frobenius) is the right global metric here;
        // single-element max error is noisy under 4-bit weights.
        let norm = exact
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        // ~7% is expected: it is dominated by the 4-bit weight error
        // (per-group relative RMS ≈ √(grid MSE) ≈ 5–8% on diverse groups).
        let rel = exact.distance(&approx) / norm;
        assert!(rel < 0.10, "relative Frobenius error {rel}");
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (xq, _) = setup(64, 2, 2, 128, 64);
        let (_, wq_other) = setup(65, 2, 2, 256, 64);
        assert!(matches!(
            mant_gemm(&xq, &wq_other),
            Err(QuantError::ShapeMismatch { .. })
        ));
        let (xq32, _) = setup(66, 2, 2, 128, 32);
        let (_, wq64) = setup(67, 2, 2, 128, 64);
        assert!(mant_gemm(&xq32, &wq64).is_err());
    }

    #[test]
    fn group_dot_dispatch_is_integer_exact() {
        // `group_dot` must route each dtype to a kernel that matches the
        // scalar decode-multiply model exactly.
        use mant_numerics::{Mant, MantCode};
        let xcodes: Vec<i8> = vec![5, -3, 127, -128_i8, 0, 1];
        let wcodes: Vec<u8> = vec![0x0, 0x9, 0x7, 0xf, 0x3, 0x8];

        let mant = Mant::new(17).unwrap();
        let meta = GroupMeta {
            dtype: GroupDtype::Mant(mant),
            scale: 1.0,
        };
        let mut expect = 0i64;
        for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
            expect += i64::from(x) * i64::from(mant.decode(MantCode::from_bits(w)));
        }
        assert_eq!(group_dot(meta, &xcodes, &wcodes), expect);

        let meta_int = GroupMeta {
            dtype: GroupDtype::Int4,
            scale: 1.0,
        };
        let mut expect_int = 0i64;
        for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
            let wv = ((w << 4) as i8) >> 4;
            expect_int += i64::from(x) * i64::from(wv);
        }
        assert_eq!(group_dot(meta_int, &xcodes, &wcodes), expect_int);
    }

    #[test]
    fn fused_gemv_matches_dequantized_reference() {
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(68);
        let x = gen.activation_matrix(1, 256, 1.0, 0.02, 20.0);
        let w = gen.group_diverse_matrix(6, 256, 64, 0.02);
        let xq = quantize_vector_int8(x.row(0), 64).unwrap();
        let wq = MantWeightQuantizer::new(64).quantize(&w).unwrap();
        let fused = mant_gemv(&xq, &wq).unwrap();
        let reference = dequant_then_gemv(&xq, &wq);
        let denom = reference
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        for (a, b) in fused.iter().zip(reference.iter()) {
            assert!((a - b).abs() / denom < 1e-4, "fused {a} vs reference {b}");
        }
    }

    #[test]
    fn gemv_agrees_with_gemm_row() {
        use crate::activation::quantize_vector_int8;
        let (xq_mat, wq) = setup(69, 3, 5, 128, 64);
        let via_gemm = mant_gemm(&xq_mat, &wq).unwrap();
        for r in 0..3 {
            // Rebuild the row as a QuantizedVector from the same f32 data.
            let row = xq_mat.dequantize();
            let xq = quantize_vector_int8(row.row(r), 64).unwrap();
            let via_gemv = mant_gemv(&xq, &wq).unwrap();
            for (a, b) in via_gemv.iter().zip(via_gemm.row(r).iter()) {
                // Requantizing dequantized INT8 is idempotent, so the two
                // paths see identical codes.
                assert!((a - b).abs() < 1e-5, "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gemv_batch_bit_identical_to_gemv() {
        // The multi-query decode-pass GEMM must not change a single bit of
        // any sequence's result relative to the one-vector-at-a-time GEMV
        // — the invariant the batch-vs-sequential serving equivalence
        // rests on.
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(71);
        let w = gen.group_diverse_matrix(9, 192, 64, 0.02);
        let wq = MantWeightQuantizer::new(64).quantize(&w).unwrap();
        let xs: Vec<_> = (0..5)
            .map(|_| {
                let x: Vec<f32> = (0..192).map(|_| gen.standard_normal()).collect();
                quantize_vector_int8(&x, 64).unwrap()
            })
            .collect();
        let batched = mant_gemv_batch(&xs, &wq).unwrap();
        assert_eq!(batched.len(), 5);
        for (x, y) in xs.iter().zip(batched.iter()) {
            let single = mant_gemv(x, &wq).unwrap();
            let y_bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            let s_bits: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            assert_eq!(y_bits, s_bits, "batched GEMV drifted from GEMV");
        }
        assert!(mant_gemv_batch(&[], &wq).unwrap().is_empty());
    }

    #[test]
    fn gemv_batch_shape_mismatches_rejected() {
        use crate::activation::quantize_vector_int8;
        let (_, wq) = setup(72, 2, 2, 128, 64);
        let bad_len = quantize_vector_int8(&vec![0.5; 256], 64).unwrap();
        assert!(matches!(
            mant_gemv_batch(&[bad_len], &wq),
            Err(QuantError::ShapeMismatch { .. })
        ));
        let bad_group = quantize_vector_int8(&vec![0.5; 128], 32).unwrap();
        assert!(mant_gemv_batch(&[bad_group], &wq).is_err());
    }

    #[test]
    fn gemv_shape_mismatches_rejected() {
        use crate::activation::quantize_vector_int8;
        let (_, wq) = setup(70, 2, 2, 128, 64);
        let xq = quantize_vector_int8(&vec![0.5; 256], 64).unwrap();
        assert!(matches!(
            mant_gemv(&xq, &wq),
            Err(QuantError::ShapeMismatch { .. })
        ));
        let xq32 = quantize_vector_int8(&vec![0.5; 128], 32).unwrap();
        assert!(mant_gemv(&xq32, &wq).is_err());
    }
}

//! Decode-free integer GEMM (paper Eq. (5) and Fig. 7).
//!
//! The whole point of MANT's formulation: for INT8 activations `x` and a
//! MANT-encoded weight group with coefficient `a`,
//!
//! ```text
//! Σ x·(±(a·i + 2^i))  =  a · Σ x·(±i)   +   Σ x·(±2^i)
//!                          └── psum1 ──┘     └── psum2 ──┘
//!                            (MAC lane)       (SAC lane)
//! ```
//!
//! so the hardware runs a multiply-accumulate and a shift-accumulate in
//! parallel and multiplies `psum1` by `a` once per group — no per-element
//! dequantization, no data-type-specific decoder. Groups that selected the
//! INT option instead run a single plain MAC lane. The group scales
//! `s_X · s_W` multiply the integer result afterwards, outside the array.

use mant_numerics::{int4_group_mac, kernels, mant_group_psums, unpack_nibbles, KernelDispatch};
use mant_tensor::{gemm, matvec, Matrix};

use crate::activation::{ActivationTensor, QuantizedVector};
use crate::error::QuantError;
use crate::mantq::{GroupDtype, GroupMeta, MantQuantizedMatrix};
use crate::plan::kernel_table;

/// Dispatches one group's integer dot product over **unpacked** (one code
/// per byte) weights to the matching lane kernel: two-psum MANT
/// recombination or the single-lane INT4 MAC. This is the scalar
/// reference twin of [`group_dot_packed`] — the pre-packing hot path,
/// kept as the bit-identity oracle and the bench baseline.
pub fn group_dot(meta: GroupMeta, xcodes: &[i8], wcodes: &[u8]) -> i64 {
    match meta.dtype {
        GroupDtype::Mant(mant) => mant_group_psums(xcodes, wcodes, mant),
        GroupDtype::Int4 => int4_group_mac(xcodes, wcodes),
    }
}

/// One group's integer dot product over **packed** nibble codes through
/// the process-wide kernel tier ([`fn@mant_numerics::kernels`]): a pair-LUT
/// walk on the scalar tier, `pshufb`-decoded `pmaddwd` lanes on the SIMD
/// tiers — bit-identical to [`group_dot`] on the unpacked codes either
/// way. The primitive the K/V caches and the paged pool consume their
/// storage with.
pub fn group_dot_packed(meta: GroupMeta, xcodes: &[i8], wpacked: &[u8]) -> i64 {
    kernels().dot_packed(xcodes, wpacked, kernel_table(meta.dtype))
}

/// Computes `X · Wᵀ` entirely in integer arithmetic plus one scale multiply
/// per (row, group): `x` is `M×K` INT8, `w` is `N×K` MANT-encoded (rows are
/// output channels), both grouped identically along K. Returns the `M×N`
/// f32 result.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if the inner dimensions or group
/// sizes disagree.
///
/// # Example
///
/// ```
/// use mant_quant::{mant_gemm, quantize_activations_int8, MantWeightQuantizer};
/// use mant_tensor::{Matrix, TensorGenerator, DistributionKind};
///
/// let mut g = TensorGenerator::new(1);
/// let x = g.matrix(2, 64, DistributionKind::Gaussian, 1.0);
/// let w = g.matrix(3, 64, DistributionKind::Gaussian, 0.02);
/// let xq = quantize_activations_int8(&x, 64)?;
/// let wq = MantWeightQuantizer::new(64).quantize(&w)?;
/// let y = mant_gemm(&xq, &wq)?;
/// assert_eq!(y.shape(), (2, 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mant_gemm(x: &ActivationTensor, w: &MantQuantizedMatrix) -> Result<Matrix, QuantError> {
    mant_gemm_with(kernels(), x, w)
}

/// [`mant_gemm`] through an explicit kernel tier — bit-identical across
/// tiers; benches and differential tests use it to time or compare the
/// scalar oracle against the detected SIMD tier in one process.
///
/// # Errors
///
/// As [`mant_gemm`].
pub fn mant_gemm_with(
    d: KernelDispatch,
    x: &ActivationTensor,
    w: &MantQuantizedMatrix,
) -> Result<Matrix, QuantError> {
    if x.cols() != w.cols() {
        return Err(QuantError::ShapeMismatch {
            context: "activation inner dim vs weight inner dim",
        });
    }
    if x.group_size() != w.group_size() {
        return Err(QuantError::ShapeMismatch {
            context: "activation group size vs weight group size",
        });
    }
    let m = x.rows();
    let n = w.rows();
    let groups = x.groups_per_row();
    let mut out = Matrix::zeros(m, n);
    // Cache-blocked multi-query loop: FOUR output rows per sweep. For each
    // weight group index, the tile's four packed code slices and interned
    // pair tables are gathered once, then every activation row's codes for
    // that group — hot in L1 — feed all four rows through the tiled
    // packed kernel. Each output element still accumulates its groups in
    // ascending order with the identical f64 expression, so the result is
    // bit-identical to the row-at-a-time GEMV.
    // Resolve every activation row's per-group f64 scale once up front —
    // they are re-swept for each of the n/4 weight tiles.
    let xscales: Vec<Vec<f64>> = (0..m)
        .map(|mi| (0..groups).map(|g| f64::from(x.scale(mi, g))).collect())
        .collect();
    let gs = w.group_size();
    let mut gout = vec![[0i64; 4]; groups];
    let mut accs = vec![[0.0f64; 4]; m];
    let mut tile_lo = 0usize;
    while tile_lo < n {
        let tile = (n - tile_lo).min(4);
        accs.iter_mut().for_each(|a| *a = [0.0; 4]);
        if tile == 4 {
            let wrows = [0, 1, 2, 3].map(|lane| w.packed_row(tile_lo + lane));
            let lrows = [0, 1, 2, 3].map(|lane| w.plan_row(tile_lo + lane));
            let mrows = [0, 1, 2, 3].map(|lane| w.meta_row(tile_lo + lane));
            for (mi, acc) in accs.iter_mut().enumerate() {
                d.dot_packed_x4_groups(x.row_codes(mi), wrows, gs, lrows, &mut gout);
                for (g, ints) in gout.iter().enumerate() {
                    let xs = xscales[mi][g];
                    for lane in 0..4 {
                        acc[lane] += xs * f64::from(mrows[lane][g].scale) * ints[lane] as f64;
                    }
                }
            }
        } else {
            for g in 0..groups {
                for lane in 0..tile {
                    let ni = tile_lo + lane;
                    let wrow = w.packed_group_codes(ni, g);
                    let lut = w.plan_table(ni, g);
                    let ws = f64::from(w.meta(ni, g).scale);
                    for (mi, acc) in accs.iter_mut().enumerate() {
                        let int_result = d.dot_packed(x.group_codes(mi, g), wrow, lut);
                        acc[lane] += f64::from(x.scale(mi, g)) * ws * int_result as f64;
                    }
                }
            }
        }
        for (mi, acc) in accs.iter().enumerate() {
            for lane in 0..tile {
                out[(mi, tile_lo + lane)] = acc[lane] as f32;
            }
        }
        tile_lo += tile;
    }
    Ok(out)
}

/// Batched [`mant_gemv`]: one weight matrix against a whole batch of
/// independently quantized activation vectors (a continuous-batching
/// decode iteration's ragged batch, or a speculative verify pass's token
/// run). Output `[i][n]` is **bit-identical** to `mant_gemv(&xs[i], w)[n]`.
///
/// From [`DECODE_ONCE_MIN_BATCH`] members up, each 4-row weight tile is
/// **decoded once** to i16 operands and every member sweeps the decoded
/// tile with plain sign-extend-and-`pmaddwd` dots — the nibble-decode
/// work that dominates the fused kernels is paid once per tile instead of
/// once per member, which is what makes the k-token GEMM shapes of
/// speculative verification materially cheaper per row than k GEMVs.
/// Below the threshold the decode cost has nothing to amortize against,
/// so small batches keep the fused per-member kernels. Both paths produce
/// identical bits: the decoded operands are the same integers the pair
/// tables hold, and the integer group dots are exact.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if any vector's length or group
/// size disagrees with the weights.
/// Batch size from which [`mant_gemv_batch`] decodes each weight tile
/// once instead of running the fused per-member kernels: the tile decode
/// costs about one member's fused sweep, so it starts paying for itself
/// once three or more members reuse it.
pub const DECODE_ONCE_MIN_BATCH: usize = 3;

pub fn mant_gemv_batch(
    xs: &[QuantizedVector],
    w: &MantQuantizedMatrix,
) -> Result<Vec<Vec<f32>>, QuantError> {
    mant_gemv_batch_with(kernels(), xs, w)
}

/// [`mant_gemv_batch`] through an explicit kernel tier — bit-identical
/// across tiers (see [`mant_gemm_with`]).
///
/// # Errors
///
/// As [`mant_gemv_batch`].
pub fn mant_gemv_batch_with(
    d: KernelDispatch,
    xs: &[QuantizedVector],
    w: &MantQuantizedMatrix,
) -> Result<Vec<Vec<f32>>, QuantError> {
    for x in xs {
        if x.len() != w.cols() {
            return Err(QuantError::ShapeMismatch {
                context: "activation vector length vs weight inner dim",
            });
        }
        if x.group_size() != w.group_size() {
            return Err(QuantError::ShapeMismatch {
                context: "activation group size vs weight group size",
            });
        }
    }
    let groups = w.cols() / w.group_size();
    let n = w.rows();
    let mut out: Vec<Vec<f32>> = xs.iter().map(|_| vec![0.0f32; n]).collect();
    // Same cache-blocked tiling as [`mant_gemm`]: four weight rows per
    // sweep, each batch member's group codes loaded once per tile.
    // Resolve every batch member's per-group f64 scale once up front —
    // they are re-swept for each of the n/4 weight tiles.
    let xscales: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| (0..groups).map(|g| f64::from(x.scale(g))).collect())
        .collect();
    let gs = w.group_size();
    let gb = gs.div_ceil(2);
    let decode_once = xs.len() >= DECODE_ONCE_MIN_BATCH;
    // The decode-once scratch: one 4-row tile's decoded i16 operands,
    // reused across tiles (at most `4 · cols` i16s live at a time).
    let mut wdec: Vec<Vec<i16>> = if decode_once {
        (0..4).map(|_| vec![0i16; groups * gs]).collect()
    } else {
        Vec::new()
    };
    let mut gout = vec![[0i64; 4]; groups];
    let mut gout_b = vec![[0i64; 4]; groups];
    let mut accs = vec![[0.0f64; 4]; xs.len()];
    let mut tile_lo = 0usize;
    while tile_lo < n {
        let tile = (n - tile_lo).min(4);
        accs.iter_mut().for_each(|a| *a = [0.0; 4]);
        if tile == 4 {
            let wrows = [0, 1, 2, 3].map(|lane| w.packed_row(tile_lo + lane));
            let lrows = [0, 1, 2, 3].map(|lane| w.plan_row(tile_lo + lane));
            let mrows = [0, 1, 2, 3].map(|lane| w.meta_row(tile_lo + lane));
            if decode_once {
                for lane in 0..4 {
                    for g in 0..groups {
                        d.decode_packed_i16(
                            &wrows[lane][g * gb..(g + 1) * gb],
                            gs,
                            lrows[lane][g],
                            &mut wdec[lane][g * gs..(g + 1) * gs],
                        );
                    }
                }
                let wdecs = [&wdec[0][..], &wdec[1][..], &wdec[2][..], &wdec[3][..]];
                // Members sweep the decoded tile in pairs: the paired
                // kernel loads each row block once for both members,
                // halving the weight-load traffic that gates the sweep.
                let mut members = accs
                    .iter_mut()
                    .zip(xs.iter())
                    .zip(xscales.iter())
                    .map(|((acc, x), xsc)| (acc, x, xsc));
                while let Some((acc_a, x_a, xsc_a)) = members.next() {
                    match members.next() {
                        Some((acc_b, x_b, xsc_b)) => {
                            d.dot_i16_x4_groups_x2(
                                x_a.codes(),
                                x_b.codes(),
                                wdecs,
                                gs,
                                &mut gout,
                                &mut gout_b,
                            );
                            for (member_acc, member_xsc, member_gout) in
                                [(acc_a, xsc_a, &gout), (acc_b, xsc_b, &gout_b)]
                            {
                                for (g, ints) in member_gout.iter().enumerate() {
                                    let xs_scale = member_xsc[g];
                                    for lane in 0..4 {
                                        member_acc[lane] += xs_scale
                                            * f64::from(mrows[lane][g].scale)
                                            * ints[lane] as f64;
                                    }
                                }
                            }
                        }
                        None => {
                            d.dot_i16_x4_groups(x_a.codes(), wdecs, gs, &mut gout);
                            for (g, ints) in gout.iter().enumerate() {
                                let xs_scale = xsc_a[g];
                                for lane in 0..4 {
                                    acc_a[lane] += xs_scale
                                        * f64::from(mrows[lane][g].scale)
                                        * ints[lane] as f64;
                                }
                            }
                        }
                    }
                }
            } else {
                for ((acc, x), xsc) in accs.iter_mut().zip(xs.iter()).zip(xscales.iter()) {
                    d.dot_packed_x4_groups(x.codes(), wrows, gs, lrows, &mut gout);
                    for (g, ints) in gout.iter().enumerate() {
                        let xs_scale = xsc[g];
                        for lane in 0..4 {
                            acc[lane] +=
                                xs_scale * f64::from(mrows[lane][g].scale) * ints[lane] as f64;
                        }
                    }
                }
            }
        } else {
            for g in 0..groups {
                for lane in 0..tile {
                    let ni = tile_lo + lane;
                    let wrow = w.packed_group_codes(ni, g);
                    let lut = w.plan_table(ni, g);
                    let ws = f64::from(w.meta(ni, g).scale);
                    for (acc, x) in accs.iter_mut().zip(xs.iter()) {
                        let int_result = d.dot_packed(x.group_codes(g), wrow, lut);
                        acc[lane] += f64::from(x.scale(g)) * ws * int_result as f64;
                    }
                }
            }
        }
        for (y, acc) in out.iter_mut().zip(accs.iter()) {
            for lane in 0..tile {
                y[tile_lo + lane] = acc[lane] as f32;
            }
        }
        tile_lo += tile;
    }
    Ok(out)
}

/// Computes `y = W · x` for one INT8-quantized activation vector against a
/// MANT-encoded weight matrix (`N×K`, rows are output channels), entirely
/// in integer arithmetic plus one scale multiply per group — the
/// per-token linear-projection primitive of the quantized execution
/// backend (decode-step GEMMs degenerate to GEMVs).
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if the inner dimensions or group
/// sizes disagree.
///
/// # Example
///
/// ```
/// use mant_quant::{mant_gemv, quantize_vector_int8, MantWeightQuantizer};
/// use mant_tensor::TensorGenerator;
///
/// let mut g = TensorGenerator::new(2);
/// let w = g.group_diverse_matrix(3, 64, 64, 0.02);
/// let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
/// let wq = MantWeightQuantizer::new(64).quantize(&w)?;
/// let xq = quantize_vector_int8(&x, 64)?;
/// assert_eq!(mant_gemv(&xq, &wq)?.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mant_gemv(x: &QuantizedVector, w: &MantQuantizedMatrix) -> Result<Vec<f32>, QuantError> {
    mant_gemv_with(kernels(), x, w)
}

/// [`mant_gemv`] through an explicit kernel tier — bit-identical across
/// tiers (see [`mant_gemm_with`]); the bench's SIMD-vs-scalar GEMV
/// comparison runs both tiers through this entry in one process.
///
/// # Errors
///
/// As [`mant_gemv`].
pub fn mant_gemv_with(
    d: KernelDispatch,
    x: &QuantizedVector,
    w: &MantQuantizedMatrix,
) -> Result<Vec<f32>, QuantError> {
    if x.len() != w.cols() {
        return Err(QuantError::ShapeMismatch {
            context: "activation vector length vs weight inner dim",
        });
    }
    if x.group_size() != w.group_size() {
        return Err(QuantError::ShapeMismatch {
            context: "activation group size vs weight group size",
        });
    }
    let groups = x.groups();
    let n = w.rows();
    let mut out = vec![0.0f32; n];
    // Packed hot loop with the same 4-output-row tiling as the GEMM: per
    // group, one byte load and one pair-table hit per code pair across
    // four weight rows while the activation codes sit in L1, i32
    // accumulation inside the group, the decode plan's interned table per
    // group. Per-element accumulation order matches the row-at-a-time
    // formulation, so tiling changes no bit.
    // The activation side is identical for every output row: resolve each
    // group's f64 scale once, not once per 4-row tile; `gout` is the
    // reused per-tile buffer of raw group dots from the grouped sweep.
    let xscales: Vec<f64> = (0..groups).map(|g| f64::from(x.scale(g))).collect();
    let mut gout = vec![[0i64; 4]; groups];
    let gs = w.group_size();
    let mut tile_lo = 0usize;
    while tile_lo < n {
        let tile = (n - tile_lo).min(4);
        if tile == 4 {
            let wrows = [0, 1, 2, 3].map(|lane| w.packed_row(tile_lo + lane));
            let lrows = [0, 1, 2, 3].map(|lane| w.plan_row(tile_lo + lane));
            let mrows = [0, 1, 2, 3].map(|lane| w.meta_row(tile_lo + lane));
            d.dot_packed_x4_groups(x.codes(), wrows, gs, lrows, &mut gout);
            let mut acc = [0.0f64; 4];
            for (g, (ints, &xs)) in gout.iter().zip(xscales.iter()).enumerate() {
                for lane in 0..4 {
                    acc[lane] += xs * f64::from(mrows[lane][g].scale) * ints[lane] as f64;
                }
            }
            for lane in 0..4 {
                out[tile_lo + lane] = acc[lane] as f32;
            }
        } else {
            for (ni, o) in out.iter_mut().enumerate().skip(tile_lo).take(tile) {
                let mut acc = 0.0f64;
                for g in 0..groups {
                    let int_result = d.dot_packed(
                        x.group_codes(g),
                        w.packed_group_codes(ni, g),
                        w.plan_table(ni, g),
                    );
                    acc +=
                        f64::from(x.scale(g)) * f64::from(w.meta(ni, g).scale) * int_result as f64;
                }
                *o = acc as f32;
            }
        }
        tile_lo += tile;
    }
    Ok(out)
}

/// The pre-packing storage layout of a quantized matrix — one 4-bit code
/// per byte — kept as the **scalar baseline**: what the hot path consumed
/// before the packed working representation (2× the memory traffic, a
/// masked 16-entry LUT walk per element, i64 accumulation). Benches
/// measure [`mant_gemv_scalar`] over this against [`mant_gemv`] over the
/// packed matrix; tests use it as a bit-identity oracle.
#[derive(Clone, Debug)]
pub struct UnpackedWeights {
    rows: usize,
    cols: usize,
    group_size: usize,
    /// One code per byte, `rows × cols`.
    codes: Vec<u8>,
    /// Per-group metadata, row-major.
    meta: Vec<GroupMeta>,
}

impl UnpackedWeights {
    /// Unpacks a packed matrix into the one-code-per-byte layout.
    pub fn from_packed(w: &MantQuantizedMatrix) -> Self {
        let gpr = w.groups_per_row();
        let mut codes = Vec::with_capacity(w.rows() * w.cols());
        let mut meta = Vec::with_capacity(w.rows() * gpr);
        for r in 0..w.rows() {
            for g in 0..gpr {
                codes.extend(unpack_nibbles(w.packed_group_codes(r, g), w.group_size()));
                meta.push(w.meta(r, g));
            }
        }
        UnpackedWeights {
            rows: w.rows(),
            cols: w.cols(),
            group_size: w.group_size(),
            codes,
            meta,
        }
    }

    /// Number of output channels.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Resident bytes of the code storage — 2× the packed layout's.
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    fn group_codes(&self, r: usize, g: usize) -> &[u8] {
        let base = r * self.cols + g * self.group_size;
        &self.codes[base..base + self.group_size]
    }

    fn meta(&self, r: usize, g: usize) -> GroupMeta {
        self.meta[r * (self.cols / self.group_size) + g]
    }
}

/// The scalar GEMV over one-code-per-byte weights: per element, a masked
/// 16-entry two-lane LUT walk with i64 accumulation — exactly the hot
/// path before the packed working representation. **Bit-identical** to
/// [`mant_gemv`] on the packed twin of the same matrix (both are exact
/// integer accumulations of the same decoded operands); kept for the
/// scalar-vs-packed kernel bench and the equivalence tests.
///
/// # Panics
///
/// Panics if `x`'s length or group size disagrees with the weights.
pub fn mant_gemv_scalar(x: &QuantizedVector, w: &UnpackedWeights) -> Vec<f32> {
    assert_eq!(x.len(), w.cols, "activation length vs weight inner dim");
    assert_eq!(x.group_size(), w.group_size, "group size mismatch");
    let groups = x.groups();
    (0..w.rows)
        .map(|n| {
            let mut acc = 0.0f64;
            for g in 0..groups {
                let meta = w.meta(n, g);
                let int_result = group_dot(meta, x.group_codes(g), w.group_codes(n, g));
                acc += f64::from(x.scale(g)) * f64::from(meta.scale) * int_result as f64;
            }
            acc as f32
        })
        .collect()
}

/// Reference path for the GEMV: dequantize both operands and run the f32
/// matvec — what the fused path must match up to accumulation order.
pub fn dequant_then_gemv(x: &QuantizedVector, w: &MantQuantizedMatrix) -> Vec<f32> {
    matvec(&w.dequantize(), &x.dequantize())
}

/// Reference path: dequantize both operands to f32 and run a dense GEMM.
/// Used by tests to prove the fused path is exact, and by the ablation
/// bench to quantify what decode-free computation saves.
pub fn dequant_then_gemm(x: &ActivationTensor, w: &MantQuantizedMatrix) -> Matrix {
    let xf = x.dequantize();
    let wf = w.dequantize().transpose(); // N×K → K×N
    gemm(&xf, &wf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::quantize_activations_int8;
    use crate::mantq::MantWeightQuantizer;
    use crate::search::CandidateSet;
    use mant_tensor::{DistributionKind, TensorGenerator};

    fn setup(
        seed: u64,
        m: usize,
        n: usize,
        k: usize,
        g: usize,
    ) -> (ActivationTensor, MantQuantizedMatrix) {
        let mut gen = TensorGenerator::new(seed);
        let x = gen.activation_matrix(m, k, 1.0, 0.02, 20.0);
        let w = gen.group_diverse_matrix(n, k, g, 0.02);
        let xq = quantize_activations_int8(&x, g).unwrap();
        let wq = MantWeightQuantizer::new(g).quantize(&w).unwrap();
        (xq, wq)
    }

    #[test]
    fn fused_matches_dequantized_reference() {
        let (xq, wq) = setup(61, 4, 6, 128, 64);
        let fused = mant_gemm(&xq, &wq).unwrap();
        let reference = dequant_then_gemm(&xq, &wq);
        // Same math, different accumulation order → tiny fp differences.
        let denom = reference
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() / denom < 1e-4, "fused {a} vs reference {b}");
        }
    }

    #[test]
    fn pure_int_groups_also_exact() {
        // Force the INT-only candidate set: the fused kernel must fall back
        // to the single-lane MAC and still match.
        let mut gen = TensorGenerator::new(62);
        let x = gen.matrix(3, 64, DistributionKind::Uniform, 1.0);
        let w = gen.matrix(2, 64, DistributionKind::Uniform, 0.1);
        let xq = quantize_activations_int8(&x, 64).unwrap();
        let set = CandidateSet::custom(&[], true).unwrap();
        let wq = MantWeightQuantizer::new(64)
            .with_candidates(set)
            .quantize(&w)
            .unwrap();
        let fused = mant_gemm(&xq, &wq).unwrap();
        let reference = dequant_then_gemm(&xq, &wq);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn approximates_fp32_gemm() {
        // End-to-end W4A8 quantized GEMM should track the FP32 product.
        let mut gen = TensorGenerator::new(63);
        let x = gen.matrix(4, 256, DistributionKind::Gaussian, 1.0);
        let w = gen.group_diverse_matrix(8, 256, 64, 0.02);
        let exact = gemm(&x, &w.transpose());
        let xq = quantize_activations_int8(&x, 64).unwrap();
        let wq = MantWeightQuantizer::new(64).quantize(&w).unwrap();
        let approx = mant_gemm(&xq, &wq).unwrap();
        // RMS relative error (Frobenius) is the right global metric here;
        // single-element max error is noisy under 4-bit weights.
        let norm = exact
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        // ~7% is expected: it is dominated by the 4-bit weight error
        // (per-group relative RMS ≈ √(grid MSE) ≈ 5–8% on diverse groups).
        let rel = exact.distance(&approx) / norm;
        assert!(rel < 0.10, "relative Frobenius error {rel}");
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (xq, _) = setup(64, 2, 2, 128, 64);
        let (_, wq_other) = setup(65, 2, 2, 256, 64);
        assert!(matches!(
            mant_gemm(&xq, &wq_other),
            Err(QuantError::ShapeMismatch { .. })
        ));
        let (xq32, _) = setup(66, 2, 2, 128, 32);
        let (_, wq64) = setup(67, 2, 2, 128, 64);
        assert!(mant_gemm(&xq32, &wq64).is_err());
    }

    #[test]
    fn group_dot_dispatch_is_integer_exact() {
        // `group_dot` must route each dtype to a kernel that matches the
        // scalar decode-multiply model exactly.
        use mant_numerics::{Mant, MantCode};
        let xcodes: Vec<i8> = vec![5, -3, 127, -128_i8, 0, 1];
        let wcodes: Vec<u8> = vec![0x0, 0x9, 0x7, 0xf, 0x3, 0x8];

        let mant = Mant::new(17).unwrap();
        let meta = GroupMeta {
            dtype: GroupDtype::Mant(mant),
            scale: 1.0,
        };
        let mut expect = 0i64;
        for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
            expect += i64::from(x) * i64::from(mant.decode(MantCode::from_bits(w)));
        }
        assert_eq!(group_dot(meta, &xcodes, &wcodes), expect);

        let meta_int = GroupMeta {
            dtype: GroupDtype::Int4,
            scale: 1.0,
        };
        let mut expect_int = 0i64;
        for (&x, &w) in xcodes.iter().zip(wcodes.iter()) {
            let wv = ((w << 4) as i8) >> 4;
            expect_int += i64::from(x) * i64::from(wv);
        }
        assert_eq!(group_dot(meta_int, &xcodes, &wcodes), expect_int);
    }

    #[test]
    fn fused_gemv_matches_dequantized_reference() {
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(68);
        let x = gen.activation_matrix(1, 256, 1.0, 0.02, 20.0);
        let w = gen.group_diverse_matrix(6, 256, 64, 0.02);
        let xq = quantize_vector_int8(x.row(0), 64).unwrap();
        let wq = MantWeightQuantizer::new(64).quantize(&w).unwrap();
        let fused = mant_gemv(&xq, &wq).unwrap();
        let reference = dequant_then_gemv(&xq, &wq);
        let denom = reference
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        for (a, b) in fused.iter().zip(reference.iter()) {
            assert!((a - b).abs() / denom < 1e-4, "fused {a} vs reference {b}");
        }
    }

    #[test]
    fn gemv_agrees_with_gemm_row() {
        use crate::activation::quantize_vector_int8;
        let (xq_mat, wq) = setup(69, 3, 5, 128, 64);
        let via_gemm = mant_gemm(&xq_mat, &wq).unwrap();
        for r in 0..3 {
            // Rebuild the row as a QuantizedVector from the same f32 data.
            let row = xq_mat.dequantize();
            let xq = quantize_vector_int8(row.row(r), 64).unwrap();
            let via_gemv = mant_gemv(&xq, &wq).unwrap();
            for (a, b) in via_gemv.iter().zip(via_gemm.row(r).iter()) {
                // Requantizing dequantized INT8 is idempotent, so the two
                // paths see identical codes.
                assert!((a - b).abs() < 1e-5, "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gemv_batch_bit_identical_to_gemv() {
        // The multi-query decode-pass GEMM must not change a single bit of
        // any sequence's result relative to the one-vector-at-a-time GEMV
        // — the invariant the batch-vs-sequential serving equivalence
        // rests on.
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(71);
        let w = gen.group_diverse_matrix(9, 192, 64, 0.02);
        let wq = MantWeightQuantizer::new(64).quantize(&w).unwrap();
        let xs: Vec<_> = (0..5)
            .map(|_| {
                let x: Vec<f32> = (0..192).map(|_| gen.standard_normal()).collect();
                quantize_vector_int8(&x, 64).unwrap()
            })
            .collect();
        let batched = mant_gemv_batch(&xs, &wq).unwrap();
        assert_eq!(batched.len(), 5);
        for (x, y) in xs.iter().zip(batched.iter()) {
            let single = mant_gemv(x, &wq).unwrap();
            let y_bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            let s_bits: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            assert_eq!(y_bits, s_bits, "batched GEMV drifted from GEMV");
        }
        assert!(mant_gemv_batch(&[], &wq).unwrap().is_empty());
    }

    #[test]
    fn packed_gemv_bit_identical_to_scalar() {
        // The packed pair-LUT GEMV must match the pre-packing scalar path
        // bit for bit — including on an odd group size, where packed
        // groups carry a pad nibble.
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(73);
        for (k, g) in [(256usize, 64usize), (15, 5)] {
            let w = gen.group_diverse_matrix(7, k, g, 0.02);
            let wq = MantWeightQuantizer::new(g).quantize(&w).unwrap();
            let scalar_w = UnpackedWeights::from_packed(&wq);
            assert_eq!(scalar_w.code_bytes(), 7 * k);
            let x: Vec<f32> = (0..k).map(|_| gen.standard_normal()).collect();
            let xq = quantize_vector_int8(&x, g).unwrap();
            let packed = mant_gemv(&xq, &wq).unwrap();
            let scalar = mant_gemv_scalar(&xq, &scalar_w);
            let p_bits: Vec<u32> = packed.iter().map(|v| v.to_bits()).collect();
            let s_bits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
            assert_eq!(p_bits, s_bits, "k={k} g={g}");
        }
    }

    #[test]
    fn gemm_tile_remainders_bit_identical_to_gemv() {
        // Output-row counts straddling the 4-row tile (1, 3, 4, 5, 9)
        // must all match the untiled GEMV bit for bit.
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(74);
        for n in [1usize, 3, 4, 5, 9] {
            let w = gen.group_diverse_matrix(n, 128, 32, 0.02);
            let wq = MantWeightQuantizer::new(32).quantize(&w).unwrap();
            let xs: Vec<_> = (0..3)
                .map(|_| {
                    let x: Vec<f32> = (0..128).map(|_| gen.standard_normal()).collect();
                    quantize_vector_int8(&x, 32).unwrap()
                })
                .collect();
            let batched = mant_gemv_batch(&xs, &wq).unwrap();
            for (x, y) in xs.iter().zip(batched.iter()) {
                let single = mant_gemv(x, &wq).unwrap();
                let y_bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
                let s_bits: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
                assert_eq!(y_bits, s_bits, "n={n}");
            }
        }
    }

    #[test]
    fn gemv_batch_decode_once_threshold_bit_identical() {
        // Batch sizes straddling DECODE_ONCE_MIN_BATCH take different
        // paths (fused per-member kernels vs decode-once tile sweep); all
        // must match the one-vector GEMV bit for bit on every tier, and an
        // odd group size exercises the decode tail's pad-nibble handling.
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(76);
        for (k, g) in [(128usize, 64usize), (15, 5)] {
            let w = gen.group_diverse_matrix(9, k, g, 0.02);
            let wq = MantWeightQuantizer::new(g).quantize(&w).unwrap();
            for m in [1usize, 2, 3, 4, 8] {
                let xs: Vec<_> = (0..m)
                    .map(|_| {
                        let x: Vec<f32> = (0..k).map(|_| gen.standard_normal()).collect();
                        quantize_vector_int8(&x, g).unwrap()
                    })
                    .collect();
                for d in [KernelDispatch::Scalar, kernels()] {
                    let batched = mant_gemv_batch_with(d, &xs, &wq).unwrap();
                    for (x, y) in xs.iter().zip(batched.iter()) {
                        let single = mant_gemv_with(d, x, &wq).unwrap();
                        let y_bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
                        let s_bits: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(y_bits, s_bits, "tier {} m={m} k={k} g={g}", d.name());
                    }
                }
            }
        }
    }

    #[test]
    fn gemv_batch_shape_mismatches_rejected() {
        use crate::activation::quantize_vector_int8;
        let (_, wq) = setup(72, 2, 2, 128, 64);
        let bad_len = quantize_vector_int8(&vec![0.5; 256], 64).unwrap();
        assert!(matches!(
            mant_gemv_batch(&[bad_len], &wq),
            Err(QuantError::ShapeMismatch { .. })
        ));
        let bad_group = quantize_vector_int8(&vec![0.5; 128], 32).unwrap();
        assert!(mant_gemv_batch(&[bad_group], &wq).is_err());
    }

    #[test]
    fn gemv_shape_mismatches_rejected() {
        use crate::activation::quantize_vector_int8;
        let (_, wq) = setup(70, 2, 2, 128, 64);
        let xq = quantize_vector_int8(&vec![0.5; 256], 64).unwrap();
        assert!(matches!(
            mant_gemv(&xq, &wq),
            Err(QuantError::ShapeMismatch { .. })
        ));
        let xq32 = quantize_vector_int8(&vec![0.5; 128], 32).unwrap();
        assert!(mant_gemv(&xq32, &wq).is_err());
    }
}

//! SmoothQuant-style activation smoothing (paper Sec. V-C: "emerging
//! incoherent processing algorithms (where SmoothQuant is a special case)
//! are very promising to further mitigate this gap").
//!
//! Smoothing migrates per-channel magnitude from activations into weights:
//! with a diagonal `s`, `(x ⊘ s)·(s ⊙ Wᵀ)` is mathematically identical to
//! `x·Wᵀ`, but the outlier channels of `x` shrink by `s_c` while the
//! corresponding weight columns grow — turning an activation-quantization
//! problem into a (much easier) weight-quantization one.

use mant_tensor::Matrix;

/// A per-channel smoothing transform.
#[derive(Clone, Debug, PartialEq)]
pub struct Smoother {
    scales: Vec<f32>,
}

impl Smoother {
    /// Builds the SmoothQuant scales `s_c = max|x_c|^α / max|w_c|^(1−α)`
    /// from calibrated per-channel activation maxima and the weight matrix
    /// (`out × in`; column `c` multiplies activation channel `c`).
    ///
    /// `alpha ∈ [0, 1]` balances migration strength; SmoothQuant's default
    /// is 0.5. Degenerate channels (zero activation or weight max) get a
    /// unit scale.
    ///
    /// # Panics
    ///
    /// Panics if `act_max.len() != w.cols()` or `alpha` is outside [0, 1].
    pub fn from_calibration(act_max: &[f32], w: &Matrix, alpha: f32) -> Self {
        assert_eq!(act_max.len(), w.cols(), "channel count mismatch");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let scales = (0..w.cols())
            .map(|c| {
                let a = act_max[c].abs();
                let wmax = (0..w.rows())
                    .map(|r| w[(r, c)].abs())
                    .fold(0.0f32, f32::max);
                if a == 0.0 || wmax == 0.0 {
                    1.0
                } else {
                    (a.powf(alpha) / wmax.powf(1.0 - alpha)).max(1e-6)
                }
            })
            .collect();
        Smoother { scales }
    }

    /// The per-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Applies the inverse scales to an activation vector (`x ⊘ s`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the channel count.
    pub fn smooth_activations(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.scales.len(), "channel count mismatch");
        x.iter()
            .zip(self.scales.iter())
            .map(|(&v, &s)| v / s)
            .collect()
    }

    /// Folds the scales into a weight matrix (`out × in`): column `c` is
    /// multiplied by `s_c`, preserving the product exactly.
    ///
    /// # Panics
    ///
    /// Panics if `w.cols()` differs from the channel count.
    pub fn fold_into_weights(&self, w: &Matrix) -> Matrix {
        assert_eq!(w.cols(), self.scales.len(), "channel count mismatch");
        Matrix::from_fn(w.rows(), w.cols(), |r, c| w[(r, c)] * self.scales[c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_tensor::{abs_max, DistributionKind, TensorGenerator};

    fn setup() -> (Vec<f32>, Matrix, Smoother) {
        let mut gen = TensorGenerator::new(909);
        let mut x: Vec<f32> = (0..64)
            .map(|_| gen.sample(DistributionKind::Gaussian, 1.0))
            .collect();
        // Two outlier channels.
        x[10] = 40.0;
        x[50] = -35.0;
        let w = gen.matrix(32, 64, DistributionKind::Gaussian, 0.1);
        let s = Smoother::from_calibration(&x.iter().map(|v| v.abs()).collect::<Vec<_>>(), &w, 0.5);
        (x, w, s)
    }

    #[test]
    fn transform_is_exact() {
        let (x, w, s) = setup();
        let xs = s.smooth_activations(&x);
        let ws = s.fold_into_weights(&w);
        for r in 0..w.rows() {
            let orig: f32 = w.row(r).iter().zip(x.iter()).map(|(&a, &b)| a * b).sum();
            let smoothed: f32 = ws.row(r).iter().zip(xs.iter()).map(|(&a, &b)| a * b).sum();
            assert!((orig - smoothed).abs() < orig.abs().max(1.0) * 1e-4);
        }
    }

    #[test]
    fn outliers_shrink_after_smoothing() {
        let (x, _, s) = setup();
        let xs = s.smooth_activations(&x);
        let ratio_before = abs_max(&x) / median_abs(&x);
        let ratio_after = abs_max(&xs) / median_abs(&xs);
        assert!(
            ratio_after < ratio_before / 2.0,
            "outlier ratio {ratio_before} -> {ratio_after}"
        );
    }

    #[test]
    fn smoothing_improves_int4_activation_error() {
        let (x, _, s) = setup();
        let quantize4 = |v: &[f32]| -> Vec<f32> {
            let amax = abs_max(v);
            let scale = amax / 7.0;
            v.iter()
                .map(|&t| (t / scale).round().clamp(-7.0, 7.0) * scale)
                .collect()
        };
        let raw_q = quantize4(&x);
        let raw_err = mant_tensor::mse(&x, &raw_q);
        let xs = s.smooth_activations(&x);
        let xs_q = quantize4(&xs);
        // Compare in the smoothed domain, scaled back for fairness.
        let back: Vec<f32> = xs_q
            .iter()
            .zip(s.scales().iter())
            .map(|(&v, &sc)| v * sc)
            .collect();
        let smooth_err = mant_tensor::mse(&x, &back);
        assert!(
            smooth_err < raw_err / 4.0,
            "smoothing {smooth_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn degenerate_channels_get_unit_scale() {
        let w = Matrix::zeros(4, 3);
        let s = Smoother::from_calibration(&[1.0, 0.0, 2.0], &w, 0.5);
        assert_eq!(s.scales(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_validated() {
        let w = Matrix::zeros(1, 1);
        let _ = Smoother::from_calibration(&[1.0], &w, 1.5);
    }

    fn median_abs(v: &[f32]) -> f32 {
        let mut s: Vec<f32> = v.iter().map(|x| x.abs()).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2].max(1e-9)
    }
}

//! Interned kernel decode tables: the decode plans of the packed kernels.
//!
//! A [`KernelLut`] carries a group dtype's decode tables in every shape
//! the kernel tiers consume — the 256-entry pair table
//! (`PairLut`, scalar tier and vector tails) plus the 16-entry
//! byte-shuffle tables the SIMD tiers feed to `pshufb`. It depends only
//! on the group's [`GroupDtype`] — and there are at most 129 of those
//! (128 MANT coefficients plus INT4) — so the tables are built **once per
//! process** and shared by every consumer: weight matrices cache one
//! `&'static` table per group in their decode plan, while the streaming
//! K/V caches and the paged pool resolve a group's table from its
//! metadata at use time in O(1). Nothing ever rebuilds a table per token,
//! per batch row, or per sequence.

use std::sync::OnceLock;

use mant_numerics::{int4_decode_lut, kernel_lut, mant_decode_lut, KernelLut, Mant, PairLut};

use crate::mantq::GroupDtype;

/// Index of a dtype in the interned store: MANT coefficients map to `a`
/// (0–127), INT4 to 128.
fn dtype_key(dtype: GroupDtype) -> usize {
    match dtype {
        GroupDtype::Mant(m) => m.coefficient() as usize,
        GroupDtype::Int4 => 128,
    }
}

fn tables() -> &'static [KernelLut] {
    static TABLES: OnceLock<Vec<KernelLut>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut all: Vec<KernelLut> = (0..128)
            .map(|a| kernel_lut(&mant_decode_lut(Mant::new(a).expect("a < 128"))))
            .collect();
        all.push(kernel_lut(&int4_decode_lut()));
        all
    })
}

/// The interned kernel decode tables of a group dtype. The first call
/// builds all 129 entries (~270 KiB, microseconds); every later call is
/// an index into static memory.
pub fn kernel_table(dtype: GroupDtype) -> &'static KernelLut {
    &tables()[dtype_key(dtype)]
}

/// The interned 256-entry pair-decode table of a group dtype — the
/// scalar-tier view of [`kernel_table`], kept for oracle paths and tests.
pub fn pair_table(dtype: GroupDtype) -> &'static PairLut {
    &kernel_table(dtype).pair
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::MantCode;

    #[test]
    fn tables_decode_every_dtype_exactly() {
        for a in [0u32, 17, 60, 127] {
            let mant = Mant::new(a).unwrap();
            let t = pair_table(GroupDtype::Mant(mant));
            for b in 0..=255u8 {
                assert_eq!(t[b as usize][0], mant.decode(MantCode::from_bits(b & 0x0f)));
                assert_eq!(t[b as usize][1], mant.decode(MantCode::from_bits(b >> 4)));
            }
        }
        let t = pair_table(GroupDtype::Int4);
        for b in 0..=255u8 {
            assert_eq!(t[b as usize][0], i32::from(((b << 4) as i8) >> 4));
            assert_eq!(t[b as usize][1], i32::from((b as i8) >> 4));
        }
    }

    #[test]
    fn shuffle_tables_agree_with_pair_tables() {
        // The SIMD tiers' byte-split operand tables must reassemble the
        // same decoded values the scalar pair table holds.
        for dtype in [GroupDtype::mant(17).unwrap(), GroupDtype::Int4] {
            let t = kernel_table(dtype);
            for b in 0..16usize {
                let v = i16::from_le_bytes([t.lo8[b], t.hi8[b]]);
                assert_eq!(i32::from(v), t.pair[b][0], "code {b}");
            }
        }
    }

    #[test]
    fn interning_returns_stable_references() {
        let a = kernel_table(GroupDtype::mant(17).unwrap());
        let b = kernel_table(GroupDtype::mant(17).unwrap());
        assert!(std::ptr::eq(a, b), "same dtype must intern to one table");
        let c = kernel_table(GroupDtype::Int4);
        assert!(!std::ptr::eq(a, c));
        assert!(std::ptr::eq(
            pair_table(GroupDtype::Int4),
            &kernel_table(GroupDtype::Int4).pair
        ));
    }
}

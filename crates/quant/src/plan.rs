//! Interned pair-decode tables: the decode plans of the packed kernels.
//!
//! A [`PairLut`] maps a packed byte to its two pre-decoded integer
//! operands. It depends only on the group's [`GroupDtype`] — and there
//! are at most 129 of those (128 MANT coefficients plus INT4) — so the
//! tables are built **once per process** and shared by every consumer:
//! weight matrices cache one `&'static` table per group in their decode
//! plan, while the streaming K/V caches and the paged pool resolve a
//! group's table from its metadata at use time in O(1). Nothing ever
//! rebuilds a table per token, per batch row, or per sequence.

use std::sync::OnceLock;

use mant_numerics::{int4_decode_lut, mant_decode_lut, pair_decode_lut, Mant, PairLut};

use crate::mantq::GroupDtype;

/// Index of a dtype in the interned store: MANT coefficients map to `a`
/// (0–127), INT4 to 128.
fn dtype_key(dtype: GroupDtype) -> usize {
    match dtype {
        GroupDtype::Mant(m) => m.coefficient() as usize,
        GroupDtype::Int4 => 128,
    }
}

fn tables() -> &'static [PairLut] {
    static TABLES: OnceLock<Vec<PairLut>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut all: Vec<PairLut> = (0..128)
            .map(|a| pair_decode_lut(&mant_decode_lut(Mant::new(a).expect("a < 128"))))
            .collect();
        all.push(pair_decode_lut(&int4_decode_lut()));
        all
    })
}

/// The interned 256-entry pair-decode table of a group dtype. The first
/// call builds all 129 tables (~260 KiB, microseconds); every later call
/// is an index into static memory.
pub fn pair_table(dtype: GroupDtype) -> &'static PairLut {
    &tables()[dtype_key(dtype)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::MantCode;

    #[test]
    fn tables_decode_every_dtype_exactly() {
        for a in [0u32, 17, 60, 127] {
            let mant = Mant::new(a).unwrap();
            let t = pair_table(GroupDtype::Mant(mant));
            for b in 0..=255u8 {
                assert_eq!(t[b as usize][0], mant.decode(MantCode::from_bits(b & 0x0f)));
                assert_eq!(t[b as usize][1], mant.decode(MantCode::from_bits(b >> 4)));
            }
        }
        let t = pair_table(GroupDtype::Int4);
        for b in 0..=255u8 {
            assert_eq!(t[b as usize][0], i32::from(((b << 4) as i8) >> 4));
            assert_eq!(t[b as usize][1], i32::from((b as i8) >> 4));
        }
    }

    #[test]
    fn interning_returns_stable_references() {
        let a = pair_table(GroupDtype::mant(17).unwrap());
        let b = pair_table(GroupDtype::mant(17).unwrap());
        assert!(std::ptr::eq(a, b), "same dtype must intern to one table");
        let c = pair_table(GroupDtype::Int4);
        assert!(!std::ptr::eq(a, c));
    }
}

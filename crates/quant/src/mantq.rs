//! MANT weight quantization: per-group adaptive types with packed storage.

use mant_numerics::fp16::quantize_fp16;
use mant_numerics::{int4_grid, Grid, Mant, MantCode, NumericsError};
use mant_tensor::par::par_map_indexed;
use mant_tensor::{abs_max, Matrix};

use mant_numerics::KernelLut;

use crate::error::QuantError;
use crate::plan::kernel_table;
use crate::quantizer::FakeQuantizer;
use crate::search::{select_group_dtype_weighted, CandidateSet};

/// Encodes one group straight into its **packed** nibble storage: two
/// codes per byte, first code in the low nibble, an odd tail in a final
/// low nibble. Shared by the weight quantizer, the streaming K-cache
/// encoder, and the V-window commit, so every packed buffer in the
/// workspace has one layout.
pub(crate) fn encode_group_packed(dtype: GroupDtype, scale: f32, group: &[f32], out: &mut [u8]) {
    debug_assert_eq!(out.len(), group.len().div_ceil(2));
    let enc = |x: f32| {
        let code = dtype.encode(x, scale);
        // Same hardening as `pack_nibbles`: a >4-bit code here would OR
        // into the neighboring nibble and corrupt two elements into
        // plausible-looking packed data. Debug builds assert; release
        // builds mask so the packed buffer stays well-formed either way.
        debug_assert!(code < 16, "encoder produced a non-4-bit code");
        code & 0x0f
    };
    let mut pairs = group.chunks_exact(2);
    for (o, pair) in out.iter_mut().zip(pairs.by_ref()) {
        *o = enc(pair[0]) | (enc(pair[1]) << 4);
    }
    if let [last] = pairs.remainder() {
        out[group.len() / 2] = enc(*last);
    }
}

/// Decodes the packed code of element `j` within a group slice.
pub(crate) fn packed_code(codes: &[u8], j: usize) -> u8 {
    let b = codes[j / 2];
    if j.is_multiple_of(2) {
        b & 0x0f
    } else {
        b >> 4
    }
}

/// Encodes one row: per-group candidate search, scale derivation, and
/// packed 4-bit encoding. The unit of work for both the serial and
/// parallel quantization paths (groups within a row are processed in
/// order, so splitting by rows cannot reorder any floating-point
/// operation).
fn encode_row(
    row: &[f32],
    group_size: usize,
    set: &CandidateSet,
    col_weights: Option<&[f32]>,
) -> Result<(Vec<u8>, Vec<GroupMeta>), QuantError> {
    let groups_per_row = row.len() / group_size;
    let group_bytes = group_size.div_ceil(2);
    let mut codes = vec![0u8; groups_per_row * group_bytes];
    let mut meta = Vec::with_capacity(groups_per_row);
    for g in 0..groups_per_row {
        let lo = g * group_size;
        let group = &row[lo..lo + group_size];
        let gw = col_weights.map(|cw| &cw[lo..lo + group_size]);
        let (dtype, _) = select_group_dtype_weighted(group, gw, set)?;
        let scale = dtype.scale_for(abs_max(group));
        meta.push(GroupMeta { dtype, scale });
        encode_group_packed(
            dtype,
            scale,
            group,
            &mut codes[g * group_bytes..(g + 1) * group_bytes],
        );
    }
    Ok((codes, meta))
}

/// The data type assigned to one group: a MANT coefficient or plain INT4
/// (the paper's search set is 15 coefficients "and an additional INT
/// option", Sec. V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupDtype {
    /// A MANT family member.
    Mant(Mant),
    /// Symmetric INT4.
    Int4,
}

impl GroupDtype {
    /// A MANT group type with coefficient `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidCoefficient`] if `a ≥ 128`.
    pub fn mant(a: u32) -> Result<Self, NumericsError> {
        Ok(GroupDtype::Mant(Mant::new(a)?))
    }

    /// The largest unscaled level of the type's grid.
    pub fn max_level(&self) -> f32 {
        match self {
            GroupDtype::Mant(m) => m.max_level() as f32,
            GroupDtype::Int4 => 7.0,
        }
    }

    /// The symmetric scale mapping a group of max-magnitude `amax` onto this
    /// type, rounded through FP16 like the stored metadata (Eq. (4)).
    pub fn scale_for(&self, amax: f32) -> f32 {
        if amax == 0.0 {
            return 1.0;
        }
        quantize_fp16(amax / self.max_level()).max(f32::MIN_POSITIVE)
    }

    /// Encodes `x / scale` to a 4-bit code.
    pub fn encode(&self, x: f32, scale: f32) -> u8 {
        let v = x / scale;
        match self {
            GroupDtype::Mant(m) => m.encode(v).to_bits(),
            GroupDtype::Int4 => {
                let q = mant_numerics::int::quantize_symmetric_int(v, 7);
                (q as i8 as u8) & 0x0f
            }
        }
    }

    /// Decodes a 4-bit code to its unscaled value.
    pub fn decode(&self, code: u8) -> f32 {
        match self {
            GroupDtype::Mant(m) => m.decode(MantCode::from_bits(code)) as f32,
            GroupDtype::Int4 => {
                // Sign-extend the low nibble.
                (((code << 4) as i8) >> 4) as f32
            }
        }
    }

    /// Quantizes a value through encode/decode at the given scale.
    pub fn quantize_value(&self, x: f32, scale: f32) -> f32 {
        self.decode(self.encode(x, scale)) * scale
    }

    /// The representable-value grid (unscaled).
    pub fn grid(&self) -> Grid {
        match self {
            GroupDtype::Mant(m) => m.grid(),
            GroupDtype::Int4 => int4_grid(),
        }
    }

    /// A short label (`"a=17"`, `"INT"`) for histograms (Fig. 15).
    pub fn label(&self) -> String {
        match self {
            GroupDtype::Mant(m) => format!("a={}", m.coefficient()),
            GroupDtype::Int4 => "INT".to_owned(),
        }
    }
}

/// Per-group metadata: the selected type and the FP16 scale — exactly the
/// paper's per-group storage (16-bit scale + 8-bit coefficient).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupMeta {
    /// The selected data type.
    pub dtype: GroupDtype,
    /// The symmetric scale factor.
    pub scale: f32,
}

impl GroupMeta {
    /// Arena/placeholder initializer (INT4 at scale 0) — always
    /// overwritten before any read; exists so fixed-size metadata storage
    /// can be pre-allocated.
    pub const ZERO: GroupMeta = GroupMeta {
        dtype: GroupDtype::Int4,
        scale: 0.0,
    };
}

/// A weight matrix quantized group-wise with MANT.
///
/// Layout: `rows` output channels, each row's `cols` elements along the
/// accumulation dimension split into `cols / group_size` groups. Codes are
/// stored **genuinely nibble-packed** — two 4-bit codes per byte, each
/// group padded to a byte boundary — which is the working representation
/// the packed kernels consume directly; nothing unpacks on the forward
/// path. Alongside the codes lives the matrix's **decode plan**: one
/// interned `&'static` kernel decode table per group
/// ([`crate::plan::kernel_table`]: the 256-entry pair table plus the
/// SIMD tiers' shuffle tables), resolved once at quantization and
/// reused across every token and batch row.
#[derive(Clone, Debug)]
pub struct MantQuantizedMatrix {
    rows: usize,
    cols: usize,
    group_size: usize,
    /// Packed codes, `rows × groups_per_row × group_bytes` bytes.
    codes: Vec<u8>,
    meta: Vec<GroupMeta>,
    /// The decode plan: `meta[i]`'s interned kernel table, same indexing.
    plan: Vec<&'static KernelLut>,
}

impl MantQuantizedMatrix {
    /// Quantizes `w` with per-group MSE search over `set`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` does not divide
    /// `w.cols()`, or [`QuantError::EmptyCandidateSet`].
    pub fn quantize(w: &Matrix, group_size: usize, set: &CandidateSet) -> Result<Self, QuantError> {
        Self::quantize_weighted(w, group_size, set, None)
    }

    /// Quantizes with calibration-weighted selection: `col_weights[j]` is
    /// the second moment `E[x_j²]` of the activation feeding column `j`
    /// (the diagonal surrogate of Eq. (6)).
    ///
    /// # Errors
    ///
    /// As [`MantQuantizedMatrix::quantize`], plus
    /// [`QuantError::ShapeMismatch`] if `col_weights` length differs from
    /// `w.cols()`.
    pub fn quantize_weighted(
        w: &Matrix,
        group_size: usize,
        set: &CandidateSet,
        col_weights: Option<&[f32]>,
    ) -> Result<Self, QuantError> {
        Self::validate(w, group_size, set, col_weights)?;
        let mut codes =
            Vec::with_capacity(w.rows() * (w.cols() / group_size) * group_size.div_ceil(2));
        let mut meta = Vec::with_capacity(w.rows() * (w.cols() / group_size));
        for r in 0..w.rows() {
            let (row_codes, row_meta) = encode_row(w.row(r), group_size, set, col_weights)?;
            codes.extend(row_codes);
            meta.extend(row_meta);
        }
        Ok(Self::assemble(w, group_size, codes, meta))
    }

    /// Finishes construction: resolves the decode plan from the metadata.
    fn assemble(w: &Matrix, group_size: usize, codes: Vec<u8>, meta: Vec<GroupMeta>) -> Self {
        let plan = meta.iter().map(|m| kernel_table(m.dtype)).collect();
        MantQuantizedMatrix {
            rows: w.rows(),
            cols: w.cols(),
            group_size,
            codes,
            meta,
            plan,
        }
    }

    /// [`MantQuantizedMatrix::quantize`] with the per-group candidate
    /// search fanned across threads, one row per work item. Output is
    /// **bit-identical** to the serial path: rows are processed in
    /// contiguous chunks and reassembled in order, and no group's
    /// floating-point operations are reordered. Falls back to the serial
    /// loop when the `parallel` feature is disabled.
    ///
    /// # Errors
    ///
    /// As [`MantQuantizedMatrix::quantize`].
    pub fn par_quantize(
        w: &Matrix,
        group_size: usize,
        set: &CandidateSet,
    ) -> Result<Self, QuantError> {
        Self::par_quantize_weighted(w, group_size, set, None)
    }

    /// Parallel counterpart of [`MantQuantizedMatrix::quantize_weighted`];
    /// see [`MantQuantizedMatrix::par_quantize`] for the determinism
    /// guarantee.
    ///
    /// # Errors
    ///
    /// As [`MantQuantizedMatrix::quantize_weighted`].
    pub fn par_quantize_weighted(
        w: &Matrix,
        group_size: usize,
        set: &CandidateSet,
        col_weights: Option<&[f32]>,
    ) -> Result<Self, QuantError> {
        Self::validate(w, group_size, set, col_weights)?;
        let rows = par_map_indexed(w.rows(), |r| {
            encode_row(w.row(r), group_size, set, col_weights)
        });
        let mut codes =
            Vec::with_capacity(w.rows() * (w.cols() / group_size) * group_size.div_ceil(2));
        let mut meta = Vec::with_capacity(w.rows() * (w.cols() / group_size));
        for row in rows {
            let (row_codes, row_meta) = row?;
            codes.extend(row_codes);
            meta.extend(row_meta);
        }
        Ok(Self::assemble(w, group_size, codes, meta))
    }

    fn validate(
        w: &Matrix,
        group_size: usize,
        set: &CandidateSet,
        col_weights: Option<&[f32]>,
    ) -> Result<(), QuantError> {
        if group_size == 0 || !w.cols().is_multiple_of(group_size) {
            return Err(QuantError::BadGroupSize {
                group_size,
                inner_dim: w.cols(),
            });
        }
        if set.is_empty() {
            return Err(QuantError::EmptyCandidateSet);
        }
        if let Some(cw) = col_weights {
            if cw.len() != w.cols() {
                return Err(QuantError::ShapeMismatch {
                    context: "calibration column weights vs weight columns",
                });
            }
        }
        Ok(())
    }

    /// Number of output channels (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Accumulation-dimension length (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.group_size
    }

    /// Metadata for group `g` of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn meta(&self, r: usize, g: usize) -> GroupMeta {
        self.meta[r * self.groups_per_row() + g]
    }

    /// Bytes one packed group occupies (`⌈group_size / 2⌉`).
    pub fn group_bytes(&self) -> usize {
        self.group_size.div_ceil(2)
    }

    /// The **packed** 4-bit codes of group `g` in row `r` — two codes per
    /// byte, the operand the packed kernels consume directly.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn packed_group_codes(&self, r: usize, g: usize) -> &[u8] {
        let gb = self.group_bytes();
        let base = (r * self.groups_per_row() + g) * gb;
        &self.codes[base..base + gb]
    }

    /// The interned kernel decode table of group `g` in row `r` — the
    /// matrix's decode plan, resolved once at quantization.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn plan_table(&self, r: usize, g: usize) -> &'static KernelLut {
        self.plan[r * self.groups_per_row() + g]
    }

    /// The full packed codes of row `r`, groups consecutive
    /// (`groups_per_row() · group_bytes()` bytes) — the operand of the
    /// grouped row-tile kernel sweep.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn packed_row(&self, r: usize) -> &[u8] {
        let rb = self.groups_per_row() * self.group_bytes();
        &self.codes[r * rb..(r + 1) * rb]
    }

    /// Row `r`'s interned decode tables, one per group.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn plan_row(&self, r: usize) -> &[&'static KernelLut] {
        let gpr = self.groups_per_row();
        &self.plan[r * gpr..(r + 1) * gpr]
    }

    /// Row `r`'s group metadata, one entry per group.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn meta_row(&self, r: usize) -> &[GroupMeta] {
        let gpr = self.groups_per_row();
        &self.meta[r * gpr..(r + 1) * gpr]
    }

    /// Dequantizes to an f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        let gpr = self.groups_per_row();
        let gb = self.group_bytes();
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let g = c / self.group_size;
            let j = c % self.group_size;
            let m = self.meta[r * gpr + g];
            let base = (r * gpr + g) * gb;
            m.dtype.decode(packed_code(&self.codes[base..base + gb], j)) * m.scale
        })
    }

    /// Total storage in bits: the packed code bytes (4 bits per element —
    /// the codes really are nibble-packed now) plus per-group metadata
    /// (16-bit FP16 scale + 8-bit coefficient).
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * 8 + self.meta.len() * (16 + 8)
    }

    /// Average bits per element including metadata.
    pub fn bits_per_element(&self) -> f64 {
        self.storage_bits() as f64 / (self.rows * self.cols) as f64
    }

    /// Histogram of selected types over all groups, labeled per Fig. 15.
    pub fn dtype_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for m in &self.meta {
            let label = m.dtype.label();
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, c)) => *c += 1,
                None => counts.push((label, 1)),
            }
        }
        counts
    }
}

/// The MANT weight quantizer as a [`FakeQuantizer`] for the accuracy
/// experiments.
#[derive(Clone, Debug)]
pub struct MantWeightQuantizer {
    group_size: usize,
    set: CandidateSet,
    col_weights: Option<Vec<f32>>,
}

impl MantWeightQuantizer {
    /// Creates the paper-default quantizer (candidate set of Sec. V-A).
    pub fn new(group_size: usize) -> Self {
        MantWeightQuantizer {
            group_size,
            set: CandidateSet::paper(),
            col_weights: None,
        }
    }

    /// Uses a custom candidate set.
    pub fn with_candidates(mut self, set: CandidateSet) -> Self {
        self.set = set;
        self
    }

    /// Supplies calibration second moments `E[x_j²]` per input column.
    pub fn with_calibration(mut self, col_weights: Vec<f32>) -> Self {
        self.col_weights = Some(col_weights);
        self
    }

    /// The configured group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Full (non-fake) quantization, exposing codes and metadata.
    ///
    /// # Errors
    ///
    /// See [`MantQuantizedMatrix::quantize_weighted`].
    pub fn quantize(&self, w: &Matrix) -> Result<MantQuantizedMatrix, QuantError> {
        MantQuantizedMatrix::quantize_weighted(
            w,
            self.group_size,
            &self.set,
            self.col_weights.as_deref(),
        )
    }

    /// Multi-threaded [`MantWeightQuantizer::quantize`]: bit-identical
    /// output, per-row fan-out (serial when the `parallel` feature is off).
    ///
    /// # Errors
    ///
    /// See [`MantQuantizedMatrix::quantize_weighted`].
    pub fn par_quantize(&self, w: &Matrix) -> Result<MantQuantizedMatrix, QuantError> {
        MantQuantizedMatrix::par_quantize_weighted(
            w,
            self.group_size,
            &self.set,
            self.col_weights.as_deref(),
        )
    }
}

impl FakeQuantizer for MantWeightQuantizer {
    fn name(&self) -> String {
        format!("MANT-g{}", self.group_size)
    }

    fn bits_per_element(&self, _inner_dim: usize) -> f64 {
        4.0 + 24.0 / self.group_size as f64
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        // Routed through the parallel engine: bit-identical to the serial
        // path by construction, so every consumer (including
        // `mant_core::Pipeline::quantize_w4`) scales across cores when the
        // default `parallel` feature is on.
        self.par_quantize(w)
            .expect("group size must divide the weight inner dimension")
            .dequantize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::int4_grid;
    use mant_tensor::{mse, Matrix, TensorGenerator};

    use crate::quantizer::GridQuantizer;
    use crate::scheme::Granularity;

    #[test]
    fn int4_code_roundtrip() {
        let d = GroupDtype::Int4;
        for v in -7..=7i32 {
            let code = d.encode(v as f32, 1.0);
            assert_eq!(d.decode(code), v as f32, "v={v}");
        }
    }

    #[test]
    fn mant_code_roundtrip() {
        let d = GroupDtype::mant(17).unwrap();
        for &lvl in &[1.0f32, 19.0, 59.0, 247.0] {
            let code = d.encode(lvl, 1.0);
            assert_eq!(d.decode(code), lvl);
            let ncode = d.encode(-lvl, 1.0);
            assert_eq!(d.decode(ncode), -lvl);
        }
    }

    #[test]
    fn scale_maps_amax_to_max_level() {
        let d = GroupDtype::mant(17).unwrap();
        let s = d.scale_for(494.0);
        assert!((s - 2.0).abs() < 0.01); // 494 / 247
        assert_eq!(GroupDtype::Int4.scale_for(0.0), 1.0);
    }

    #[test]
    fn quantize_dequantize_shape_and_error() {
        let mut g = TensorGenerator::new(31);
        let w = g.group_diverse_matrix(8, 256, 64, 0.02);
        let q = MantQuantizedMatrix::quantize(&w, 64, &CandidateSet::paper()).unwrap();
        let deq = q.dequantize();
        assert_eq!(deq.shape(), w.shape());
        // Relative RMS error should be small for 4-bit adaptive encoding.
        let err = mse(w.as_slice(), deq.as_slice());
        let power = mse(w.as_slice(), &vec![0.0; w.len()]);
        assert!(err / power < 0.02, "relative error {}", err / power);
    }

    #[test]
    fn beats_plain_int4_on_diverse_groups() {
        // The core claim (Fig. 2 / Tbl. V): adaptive per-group types beat
        // fixed INT4 on group-diverse data.
        let mut g = TensorGenerator::new(32);
        let w = g.group_diverse_matrix(16, 512, 64, 0.02);
        let mant = MantWeightQuantizer::new(64);
        let int4 = GridQuantizer::new("int4", int4_grid(), 4, Granularity::Group(64));
        let err_mant = mse(w.as_slice(), mant.fake_quantize(&w).as_slice());
        let err_int = mse(w.as_slice(), int4.fake_quantize(&w).as_slice());
        assert!(
            err_mant < err_int * 0.9,
            "MANT {err_mant} vs INT4 {err_int}"
        );
    }

    #[test]
    fn par_quantize_bit_identical_to_serial() {
        let mut g = TensorGenerator::new(35);
        let w = g.group_diverse_matrix(33, 512, 64, 0.02); // odd row count: uneven chunks
        let moments: Vec<f32> = (0..512).map(|i| 1.0 + (i % 7) as f32).collect();
        for cw in [None, Some(moments.as_slice())] {
            let ser =
                MantQuantizedMatrix::quantize_weighted(&w, 64, &CandidateSet::paper(), cw).unwrap();
            let par =
                MantQuantizedMatrix::par_quantize_weighted(&w, 64, &CandidateSet::paper(), cw)
                    .unwrap();
            assert_eq!(
                ser.codes,
                par.codes,
                "codes diverge (weighted={})",
                cw.is_some()
            );
            assert_eq!(
                ser.meta,
                par.meta,
                "metadata diverges (weighted={})",
                cw.is_some()
            );
            let bits =
                |m: &Matrix| -> Vec<u32> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
            assert_eq!(bits(&ser.dequantize()), bits(&par.dequantize()));
        }
    }

    #[test]
    fn par_quantize_validates_like_serial() {
        let w = Matrix::zeros(2, 100);
        assert!(matches!(
            MantQuantizedMatrix::par_quantize(&w, 64, &CandidateSet::paper()),
            Err(QuantError::BadGroupSize { .. })
        ));
        let empty = CandidateSet::custom(&[], false).unwrap();
        assert!(matches!(
            MantQuantizedMatrix::par_quantize(&Matrix::zeros(2, 64), 64, &empty),
            Err(QuantError::EmptyCandidateSet)
        ));
    }

    #[test]
    fn bad_group_size_is_error() {
        let w = Matrix::zeros(2, 100);
        assert!(matches!(
            MantQuantizedMatrix::quantize(&w, 64, &CandidateSet::paper()),
            Err(QuantError::BadGroupSize { .. })
        ));
    }

    #[test]
    fn storage_accounting() {
        let w = Matrix::zeros(4, 128);
        let q = MantQuantizedMatrix::quantize(&w, 64, &CandidateSet::paper()).unwrap();
        // 512 elements × 4 bits + 8 groups × 24 bits.
        assert_eq!(q.storage_bits(), 512 * 4 + 8 * 24);
        assert!((q.bits_per_element() - 4.375).abs() < 1e-12);
    }

    #[test]
    fn histogram_covers_all_groups() {
        let mut g = TensorGenerator::new(33);
        let w = g.group_diverse_matrix(4, 256, 64, 0.02);
        let q = MantQuantizedMatrix::quantize(&w, 64, &CandidateSet::paper()).unwrap();
        let hist = q.dtype_histogram();
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4 * 4);
    }

    #[test]
    fn calibration_weights_validated() {
        let w = Matrix::zeros(2, 128);
        let q = MantWeightQuantizer::new(64).with_calibration(vec![1.0; 64]);
        assert!(q.quantize(&w).is_err());
    }

    #[test]
    fn meta_and_codes_accessors() {
        let mut g = TensorGenerator::new(34);
        let w = g.group_diverse_matrix(2, 128, 64, 0.02);
        let q = MantQuantizedMatrix::quantize(&w, 64, &CandidateSet::paper()).unwrap();
        assert_eq!(q.packed_group_codes(1, 1).len(), 32, "64 codes in 32 bytes");
        let m = q.meta(1, 1);
        assert!(m.scale > 0.0);
        assert_eq!(q.groups_per_row(), 2);
        // The decode plan resolves each group's dtype to its interned
        // kernel table.
        let t = q.plan_table(1, 1);
        for b in 0..=255u8 {
            assert_eq!(t.pair[b as usize][0], m.dtype.decode(b & 0x0f) as i32);
            assert_eq!(t.pair[b as usize][1], m.dtype.decode(b >> 4) as i32);
        }
    }

    #[test]
    fn packed_storage_is_half_the_bytes() {
        // The working representation really is nibble-packed: a 4×128
        // matrix holds 512 codes in 256 bytes (it used to resident-store
        // one code per byte and only *account* for 4 bits).
        let mut g = TensorGenerator::new(36);
        let w = g.group_diverse_matrix(4, 128, 64, 0.02);
        let q = MantQuantizedMatrix::quantize(&w, 64, &CandidateSet::paper()).unwrap();
        assert_eq!(q.packed_group_codes(0, 0).len(), 32);
        assert_eq!(q.storage_bits(), 4 * 128 * 4 + 8 * 24);
        // Odd group sizes pad each group to a byte boundary.
        let w_odd = g.group_diverse_matrix(2, 9, 3, 0.02);
        let q_odd = MantQuantizedMatrix::quantize(&w_odd, 3, &CandidateSet::paper()).unwrap();
        assert_eq!(q_odd.group_bytes(), 2);
        assert_eq!(q_odd.packed_group_codes(1, 2).len(), 2);
        assert_eq!(q_odd.dequantize().shape(), (2, 9));
    }
}

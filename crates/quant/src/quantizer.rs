//! The common quantizer interface and reference implementations.

use mant_numerics::fp16::quantize_fp16;
use mant_numerics::Grid;
use mant_tensor::{abs_max, Matrix};

use crate::scheme::Granularity;

/// A weight quantizer evaluated by simulated ("fake") quantization:
/// quantize then immediately dequantize, so downstream f32 code measures
/// the induced error. Every accuracy experiment in the paper reduces to
/// this interface; MANT additionally has a true integer execution path in
/// [`crate::fused`].
pub trait FakeQuantizer {
    /// Human-readable method name for report tables.
    fn name(&self) -> String;

    /// Average storage bits per weight element, including metadata.
    fn bits_per_element(&self, inner_dim: usize) -> f64;

    /// Quantizes and dequantizes `w` (rows are output channels; the inner /
    /// accumulation dimension is contiguous within a row).
    fn fake_quantize(&self, w: &Matrix) -> Matrix;
}

/// Quantizes one group symmetrically onto `grid`, returning dequantized
/// values: the scale maps `max |group|` onto `grid.max_abs()` (Eq. (4)).
pub fn fake_quantize_group(grid: &Grid, group: &[f32], out: &mut [f32]) {
    debug_assert_eq!(group.len(), out.len());
    let amax = abs_max(group);
    if amax == 0.0 {
        out.fill(0.0);
        return;
    }
    let scale = quantize_fp16(amax / grid.max_abs()).max(f32::MIN_POSITIVE);
    for (o, &x) in out.iter_mut().zip(group.iter()) {
        *o = grid.quantize(x / scale) * scale;
    }
}

/// A [`FakeQuantizer`] that applies one fixed [`Grid`] at a granularity —
/// the INT4/INT8 baselines and any single-type method.
#[derive(Clone, Debug)]
pub struct GridQuantizer {
    name: String,
    grid: Grid,
    bits: u8,
    granularity: Granularity,
}

impl GridQuantizer {
    /// Creates a quantizer for `grid` at `granularity`; `bits` is the code
    /// width used for storage accounting.
    pub fn new(name: impl Into<String>, grid: Grid, bits: u8, granularity: Granularity) -> Self {
        GridQuantizer {
            name: name.into(),
            grid,
            bits,
            granularity,
        }
    }

    /// The grid in use.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }
}

impl FakeQuantizer for GridQuantizer {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn bits_per_element(&self, inner_dim: usize) -> f64 {
        f64::from(self.bits) + self.granularity.scale_bits_per_element(inner_dim, 1)
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        let span = self
            .granularity
            .span(w.cols())
            .expect("granularity must divide the inner dimension");
        let mut out = w.clone();
        match self.granularity {
            Granularity::Tensor => {
                // One scale across all rows.
                let amax = abs_max(w.as_slice());
                let scale = quantize_fp16(amax / self.grid.max_abs()).max(f32::MIN_POSITIVE);
                for (o, &x) in out.as_mut_slice().iter_mut().zip(w.as_slice()) {
                    *o = if amax == 0.0 {
                        0.0
                    } else {
                        self.grid.quantize(x / scale) * scale
                    };
                }
            }
            _ => {
                for r in 0..w.rows() {
                    let row_in = w.row(r).to_vec();
                    let row_out = out.row_mut(r);
                    for (gin, gout) in row_in
                        .chunks_exact(span)
                        .zip(row_out.chunks_exact_mut(span))
                    {
                        fake_quantize_group(&self.grid, gin, gout);
                    }
                }
            }
        }
        out
    }
}

/// The FP16 "quantizer": rounds every element through binary16. Serves as
/// the lossless-reference row of the paper's tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fp16Quantizer;

impl FakeQuantizer for Fp16Quantizer {
    fn name(&self) -> String {
        "FP16".to_owned()
    }

    fn bits_per_element(&self, _inner_dim: usize) -> f64 {
        16.0
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        w.map(quantize_fp16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::int4_grid;
    use mant_tensor::{mse, DistributionKind, TensorGenerator};

    #[test]
    fn group_quantize_exact_for_representable() {
        let grid = int4_grid();
        let group = [7.0f32, -3.0, 0.0, 1.0];
        let mut out = [0.0f32; 4];
        fake_quantize_group(&grid, &group, &mut out);
        assert_eq!(out, group);
    }

    #[test]
    fn zero_group_stays_zero() {
        let grid = int4_grid();
        let group = [0.0f32; 8];
        let mut out = [1.0f32; 8];
        fake_quantize_group(&grid, &group, &mut out);
        assert_eq!(out, [0.0f32; 8]);
    }

    #[test]
    fn group_granularity_beats_channel_on_diverse_rows() {
        // A row whose halves have wildly different ranges: channel-wise
        // stretches one scale over both, crushing the quiet half to zero.
        // Group-wise adapts per 64 elements — Fig. 1's mechanism. The win
        // shows on the quiet columns (absolute MSE is dominated by the loud
        // half either way, but perplexity is sensitive to the relative
        // distortion of every weight).
        let mut g = TensorGenerator::new(11);
        let mut data = Vec::new();
        for _ in 0..8 {
            for _ in 0..64 {
                data.push(g.sample(DistributionKind::Gaussian, 0.01));
            }
            for _ in 0..64 {
                data.push(g.sample(DistributionKind::Gaussian, 1.0));
            }
        }
        let w = Matrix::from_vec(8, 128, data);
        let channel = GridQuantizer::new("int4-ch", int4_grid(), 4, Granularity::Channel);
        let grouped = GridQuantizer::new("int4-g64", int4_grid(), 4, Granularity::Group(64));
        let q_ch = channel.fake_quantize(&w);
        let q_g = grouped.fake_quantize(&w);
        let quiet =
            |m: &Matrix| -> Vec<f32> { (0..8).flat_map(|r| m.row(r)[..64].to_vec()).collect() };
        let err_ch = mse(&quiet(&w), &quiet(&q_ch));
        let err_g = mse(&quiet(&w), &quiet(&q_g));
        assert!(
            err_g < err_ch / 10.0,
            "quiet-half error: group {err_g} vs channel {err_ch}"
        );
    }

    #[test]
    fn tensor_granularity_single_scale() {
        let w = Matrix::from_vec(2, 2, vec![7.0, 1.0, 0.5, -7.0]);
        let q = GridQuantizer::new("int4-t", int4_grid(), 4, Granularity::Tensor);
        let out = q.fake_quantize(&w);
        // Scale is 1.0 (amax 7 → grid max 7): integers representable; the
        // 0.5 midpoint tie resolves toward the smaller value (0).
        assert_eq!(out.as_slice(), &[7.0, 1.0, 0.0, -7.0]);
    }

    #[test]
    fn fp16_quantizer_near_identity() {
        let w = Matrix::from_vec(1, 3, vec![1.0, 0.333_333_34, -2.5]);
        let out = Fp16Quantizer.fake_quantize(&w);
        assert_eq!(out[(0, 0)], 1.0);
        assert!((out[(0, 1)] - 0.333_333_34).abs() < 1e-4);
        assert_eq!(Fp16Quantizer.bits_per_element(4096), 16.0);
    }

    #[test]
    fn bits_accounting() {
        let q = GridQuantizer::new("int4-g128", int4_grid(), 4, Granularity::Group(128));
        assert!((q.bits_per_element(4096) - 4.125).abs() < 1e-9);
    }
}

//! Real-time KV-cache quantization (paper Sec. V-C, Fig. 8).
//!
//! The K and V caches are "dynamic weights", but their inner (accumulation)
//! dimensions differ:
//!
//! - `Q·Kᵀ` accumulates over the **head dimension**, so each arriving key
//!   vector contains *whole* groups → the K cache quantizes **spatially**,
//!   immediately on arrival.
//! - `P·V` accumulates over the **sequence dimension**, so each arriving
//!   value vector contributes *one element per group* → the V cache
//!   quantizes **temporally**, in two phases: new vectors are staged in an
//!   INT8 process window (with channel scales from prefill) while the RQU
//!   accumulates `Σv`, `Σv²`, and `max|v|` per channel; when the window
//!   fills (one group size of iterations), variance selects `a` and the
//!   window is committed to 4-bit MANT.

use mant_numerics::fp16::quantize_fp16;
use mant_numerics::int::quantize_symmetric_int;
use mant_tensor::{abs_max, Matrix, RunningGroupStats};

use crate::error::QuantError;
use crate::mantq::GroupMeta;
use crate::variance::VarianceMap;

/// Spatial real-time quantizer for the K cache.
///
/// Keys are stored as rows of length `dim` (the head dimension), each row
/// grouped along `dim` and quantized the moment it arrives.
#[derive(Clone, Debug)]
pub struct KCacheQuantizer {
    dim: usize,
    group_size: usize,
    vmap: VarianceMap,
    codes: Vec<u8>,
    meta: Vec<GroupMeta>,
    rows: usize,
}

impl KCacheQuantizer {
    /// Creates a K-cache quantizer for key vectors of length `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` does not divide
    /// `dim`.
    pub fn new(dim: usize, group_size: usize, vmap: VarianceMap) -> Result<Self, QuantError> {
        if group_size == 0 || !dim.is_multiple_of(group_size) {
            return Err(QuantError::BadGroupSize {
                group_size,
                inner_dim: dim,
            });
        }
        Ok(KCacheQuantizer {
            dim,
            group_size,
            vmap,
            codes: Vec::new(),
            meta: Vec::new(),
            rows: 0,
        })
    }

    /// Number of cached key vectors.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The head dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Quantizes and appends one key vector (one decode step).
    ///
    /// # Panics
    ///
    /// Panics if `k.len() != dim`.
    pub fn push(&mut self, k: &[f32]) {
        assert_eq!(k.len(), self.dim, "key vector length mismatch");
        for group in k.chunks_exact(self.group_size) {
            let mut stats = RunningGroupStats::new();
            stats.extend_from_slice(group);
            let dtype = self.vmap.select_for(&stats);
            let scale = dtype.scale_for(stats.abs_max());
            self.meta.push(GroupMeta { dtype, scale });
            for &x in group {
                self.codes.push(dtype.encode(x, scale));
            }
        }
        self.rows += 1;
    }

    /// Quantizes a whole prefill K matrix (`seq × dim`) row by row.
    ///
    /// # Panics
    ///
    /// Panics if `k.cols() != dim`.
    pub fn prefill(&mut self, k: &Matrix) {
        assert_eq!(k.cols(), self.dim, "prefill width mismatch");
        for r in 0..k.rows() {
            self.push(k.row(r));
        }
    }

    /// Dequantizes the cache to a `seq × dim` matrix.
    pub fn dequantize(&self) -> Matrix {
        let gpr = self.dim / self.group_size;
        Matrix::from_fn(self.rows, self.dim, |r, c| {
            let g = c / self.group_size;
            let m = self.meta[r * gpr + g];
            m.dtype.decode(self.codes[r * self.dim + c]) * m.scale
        })
    }

    /// Storage bits: 4 per element + 24 per group (scale + coefficient).
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * 4 + self.meta.len() * 24
    }
}

/// One committed (fully quantized) V-cache window: `group_size` rows, each
/// channel with its own type/scale.
#[derive(Clone, Debug)]
struct CommittedWindow {
    /// Per-channel metadata (`dim` entries).
    meta: Vec<GroupMeta>,
    /// Codes in `[t][c]` row-major order (`group_size × dim` nibbles).
    codes: Vec<u8>,
}

/// Temporal two-phase real-time quantizer for the V cache (Fig. 8).
#[derive(Clone, Debug)]
pub struct VCacheQuantizer {
    dim: usize,
    group_size: usize,
    vmap: VarianceMap,
    /// Per-channel INT8 scales for the staging window (from prefill, or
    /// bootstrapped from the first vectors seen).
    channel_scales: Vec<f32>,
    /// Phase-1 staging buffer: INT8 rows, at most `group_size` of them.
    window: Vec<Vec<i8>>,
    /// RQU accumulators per channel over the current window.
    stats: Vec<RunningGroupStats>,
    committed: Vec<CommittedWindow>,
}

impl VCacheQuantizer {
    /// Creates a V-cache quantizer for value vectors of length `dim`; the
    /// process window spans `group_size` decode iterations.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` is zero.
    pub fn new(dim: usize, group_size: usize, vmap: VarianceMap) -> Result<Self, QuantError> {
        if group_size == 0 {
            return Err(QuantError::BadGroupSize {
                group_size,
                inner_dim: dim,
            });
        }
        Ok(VCacheQuantizer {
            dim,
            group_size,
            vmap,
            channel_scales: vec![0.0; dim],
            window: Vec::new(),
            stats: vec![RunningGroupStats::new(); dim],
            committed: Vec::new(),
        })
    }

    /// Number of cached value vectors (committed + staged).
    pub fn len(&self) -> usize {
        self.committed.len() * self.group_size + self.window.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows currently staged in the INT8 process window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Number of committed 4-bit windows.
    pub fn committed_windows(&self) -> usize {
        self.committed.len()
    }

    /// Ingests a whole prefill V matrix (`seq × dim`): derives channel
    /// scales, commits every full window spatially, stages the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `v.cols() != dim`.
    pub fn prefill(&mut self, v: &Matrix) {
        assert_eq!(v.cols(), self.dim, "prefill width mismatch");
        // Channel-wise INT8 scales for the decode-stage staging window are
        // derived from the prefill statistics (Sec. V-C: "scales" in Fig. 8).
        for c in 0..self.dim {
            let amax = abs_max(&v.col(c));
            self.channel_scales[c] = int8_scale(amax);
        }
        for r in 0..v.rows() {
            self.push(v.row(r));
        }
    }

    /// Phase 1 of Fig. 8: quantizes one value vector to INT8 into the
    /// process window and updates the per-channel `Σv/Σv²/max`
    /// accumulators; when the window fills, runs phase 2 (commit to MANT4).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "value vector length mismatch");
        let mut row = Vec::with_capacity(self.dim);
        for (c, &x) in v.iter().enumerate() {
            if self.channel_scales[c] == 0.0 && x != 0.0 {
                // No prefill happened: bootstrap the channel scale from the
                // first nonzero observation.
                self.channel_scales[c] = int8_scale(x.abs());
            }
            if x.abs() > 127.0 * self.channel_scales[c] {
                // The channel outgrew its prefill range: widen the scale
                // and re-encode the staged codes for this channel (cheap —
                // the window holds at most one group of rows).
                let old = self.channel_scales[c].max(f32::MIN_POSITIVE);
                let new = int8_scale(x.abs());
                for staged in &mut self.window {
                    let rescaled = f32::from(staged[c]) * old / new;
                    staged[c] = quantize_symmetric_int(rescaled, 127) as i8;
                }
                self.channel_scales[c] = new;
            }
            let s = self.channel_scales[c].max(f32::MIN_POSITIVE);
            row.push(quantize_symmetric_int(x / s, 127) as i8);
            self.stats[c].push(x);
        }
        self.window.push(row);
        if self.window.len() == self.group_size {
            self.commit_window();
        }
    }

    /// Phase 2 of Fig. 8: variance → `a`, then requantize the staged INT8
    /// window to 4-bit MANT, one group per channel.
    fn commit_window(&mut self) {
        let mut meta = Vec::with_capacity(self.dim);
        let mut codes = vec![0u8; self.group_size * self.dim];
        for c in 0..self.dim {
            let dtype = self.vmap.select_for(&self.stats[c]);
            // The group contents are the *staged INT8* values (the paper
            // requantizes the stacked INT8 V cache), so the scale comes
            // from their dequantized max.
            let s8 = self.channel_scales[c].max(f32::MIN_POSITIVE);
            let amax = self
                .window
                .iter()
                .map(|row| (f32::from(row[c]) * s8).abs())
                .fold(0.0f32, f32::max);
            let scale = dtype.scale_for(amax);
            meta.push(GroupMeta { dtype, scale });
            for (t, row) in self.window.iter().enumerate() {
                let x = f32::from(row[c]) * s8;
                codes[t * self.dim + c] = dtype.encode(x, scale);
            }
            self.stats[c].reset();
        }
        self.committed.push(CommittedWindow { meta, codes });
        self.window.clear();
    }

    /// Dequantizes the full cache (committed 4-bit windows + INT8 staging
    /// rows) to a `seq × dim` matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        for w in &self.committed {
            for t in 0..self.group_size {
                let row: Vec<f32> = (0..self.dim)
                    .map(|c| {
                        let m = w.meta[c];
                        m.dtype.decode(w.codes[t * self.dim + c]) * m.scale
                    })
                    .collect();
                out.push_row(&row);
            }
        }
        for row8 in &self.window {
            let row: Vec<f32> = row8
                .iter()
                .enumerate()
                .map(|(c, &q)| f32::from(q) * self.channel_scales[c].max(f32::MIN_POSITIVE))
                .collect();
            out.push_row(&row);
        }
        if out.rows() == 0 {
            Matrix::zeros(0, self.dim)
        } else {
            out
        }
    }

    /// Storage bits: committed windows at 4 bits + 24-bit group metadata;
    /// staged rows at 8 bits (the "marginal and tolerable" INT8 overhead).
    pub fn storage_bits(&self) -> usize {
        let committed = self.committed.len() * (self.group_size * self.dim * 4 + self.dim * 24);
        let staged = self.window.len() * self.dim * 8;
        committed + staged
    }
}

/// FP16-rounded INT8 scale for a given max magnitude.
fn int8_scale(amax: f32) -> f32 {
    if amax == 0.0 {
        0.0
    } else {
        quantize_fp16(amax / 127.0).max(f32::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::CandidateSet;
    use mant_tensor::{mse, TensorGenerator};

    fn vmap() -> VarianceMap {
        VarianceMap::analytic(&CandidateSet::paper()).unwrap()
    }

    fn relative_error(orig: &Matrix, deq: &Matrix) -> f64 {
        let err = mse(orig.as_slice(), deq.as_slice());
        let power = mse(orig.as_slice(), &vec![0.0; orig.len()]);
        err / power.max(1e-30)
    }

    #[test]
    fn k_cache_spatial_roundtrip() {
        let mut gen = TensorGenerator::new(71);
        let mut kq = KCacheQuantizer::new(128, 64, vmap()).unwrap();
        let k = gen.group_diverse_matrix(40, 128, 64, 0.5);
        kq.prefill(&k);
        assert_eq!(kq.len(), 40);
        let deq = kq.dequantize();
        assert_eq!(deq.shape(), (40, 128));
        // Variance-based type selection is a fast surrogate for the MSE
        // search; its 4-bit error stays within a few percent.
        assert!(
            relative_error(&k, &deq) < 0.05,
            "{}",
            relative_error(&k, &deq)
        );
    }

    #[test]
    fn k_cache_incremental_matches_batch() {
        let mut gen = TensorGenerator::new(72);
        let k = gen.group_diverse_matrix(10, 128, 64, 0.5);
        let mut a = KCacheQuantizer::new(128, 64, vmap()).unwrap();
        a.prefill(&k);
        let mut b = KCacheQuantizer::new(128, 64, vmap()).unwrap();
        for r in 0..k.rows() {
            b.push(k.row(r));
        }
        assert_eq!(a.dequantize().as_slice(), b.dequantize().as_slice());
    }

    #[test]
    fn k_cache_bad_group_size() {
        assert!(KCacheQuantizer::new(100, 64, vmap()).is_err());
    }

    #[test]
    fn v_cache_two_phase_counts() {
        let mut gen = TensorGenerator::new(73);
        let mut vq = VCacheQuantizer::new(32, 8, vmap()).unwrap();
        let v = gen.group_diverse_matrix(20, 32, 32, 0.5);
        vq.prefill(&v);
        // 20 rows with window 8 → 2 committed windows + 4 staged rows.
        assert_eq!(vq.committed_windows(), 2);
        assert_eq!(vq.window_len(), 4);
        assert_eq!(vq.len(), 20);
    }

    #[test]
    fn v_cache_roundtrip_error_small() {
        let mut gen = TensorGenerator::new(74);
        let mut vq = VCacheQuantizer::new(64, 16, vmap()).unwrap();
        let v = gen.group_diverse_matrix(64, 64, 64, 0.5);
        vq.prefill(&v);
        let deq = vq.dequantize();
        assert_eq!(deq.shape(), (64, 64));
        // 4-bit committed + INT8 staged: overall error stays small.
        assert!(
            relative_error(&v, &deq) < 0.03,
            "{}",
            relative_error(&v, &deq)
        );
    }

    #[test]
    fn v_cache_window_commits_on_fill() {
        let mut gen = TensorGenerator::new(75);
        let mut vq = VCacheQuantizer::new(16, 4, vmap()).unwrap();
        for i in 0..4 {
            let row: Vec<f32> = (0..16).map(|_| gen.uniform(-1.0, 1.0)).collect();
            vq.push(&row);
            if i < 3 {
                assert_eq!(vq.committed_windows(), 0);
                assert_eq!(vq.window_len(), i + 1);
            }
        }
        assert_eq!(vq.committed_windows(), 1);
        assert_eq!(vq.window_len(), 0);
    }

    #[test]
    fn v_cache_decode_only_bootstraps_scales() {
        // No prefill at all: the engine must still work (scales bootstrap).
        let mut gen = TensorGenerator::new(76);
        let mut vq = VCacheQuantizer::new(8, 4, vmap()).unwrap();
        let mut rows = Matrix::zeros(0, 0);
        for _ in 0..8 {
            let row: Vec<f32> = (0..8).map(|_| gen.uniform(-2.0, 2.0)).collect();
            vq.push(&row);
            rows.push_row(&row);
        }
        let deq = vq.dequantize();
        assert_eq!(deq.shape(), (8, 8));
        // Bootstrapped scales may clip later larger values; error is
        // bounded but nonzero.
        assert!(relative_error(&rows, &deq) < 0.3);
    }

    #[test]
    fn v_cache_recent_tokens_kept_at_int8() {
        // The staging window holds the newest tokens in INT8 — the paper
        // argues this *helps* quality since recent tokens matter more. The
        // staged rows should be more accurate than committed 4-bit rows.
        let mut gen = TensorGenerator::new(77);
        let mut vq = VCacheQuantizer::new(32, 16, vmap()).unwrap();
        let v = gen.group_diverse_matrix(24, 32, 32, 0.5);
        vq.prefill(&v); // 1 window committed, 8 rows staged
        let deq = vq.dequantize();
        let committed_err = mse(&v.as_slice()[..16 * 32], &deq.as_slice()[..16 * 32]);
        let staged_err = mse(&v.as_slice()[16 * 32..], &deq.as_slice()[16 * 32..]);
        assert!(
            staged_err < committed_err,
            "{staged_err} vs {committed_err}"
        );
    }

    #[test]
    fn storage_accounting() {
        let mut vq = VCacheQuantizer::new(16, 4, vmap()).unwrap();
        for _ in 0..6 {
            vq.push(&[0.5; 16]);
        }
        // 1 committed window (4×16 codes + 16 metas) + 2 staged rows.
        assert_eq!(vq.storage_bits(), (4 * 16 * 4 + 16 * 24) + 2 * 16 * 8);
        let mut kq = KCacheQuantizer::new(16, 16, vmap()).unwrap();
        kq.push(&[0.5; 16]);
        assert_eq!(kq.storage_bits(), 16 * 4 + 24);
    }

    #[test]
    fn empty_caches() {
        let kq = KCacheQuantizer::new(16, 16, vmap()).unwrap();
        assert!(kq.is_empty());
        let vq = VCacheQuantizer::new(16, 4, vmap()).unwrap();
        assert!(vq.is_empty());
        assert_eq!(vq.dequantize().shape(), (0, 16));
    }
}

//! Real-time KV-cache quantization (paper Sec. V-C, Fig. 8).
//!
//! The K and V caches are "dynamic weights", but their inner (accumulation)
//! dimensions differ:
//!
//! - `Q·Kᵀ` accumulates over the **head dimension**, so each arriving key
//!   vector contains *whole* groups → the K cache quantizes **spatially**,
//!   immediately on arrival.
//! - `P·V` accumulates over the **sequence dimension**, so each arriving
//!   value vector contributes *one element per group* → the V cache
//!   quantizes **temporally**, in two phases: new vectors are staged in an
//!   INT8 process window (with channel scales from prefill) while the RQU
//!   accumulates `Σv`, `Σv²`, and `max|v|` per channel; when the window
//!   fills (one group size of iterations), variance selects `a` and the
//!   window is committed to 4-bit MANT.

use mant_numerics::fp16::quantize_fp16;
use mant_numerics::int::quantize_symmetric_int;
use mant_numerics::kernels;
use mant_tensor::ops::softmax_inplace;
use mant_tensor::{abs_max, Matrix, RunningGroupStats};

use crate::activation::{quantize_vector_int8, QuantizedVector};
use crate::error::QuantError;
use crate::fused::group_dot_packed;
use crate::mantq::{encode_group_packed, packed_code, GroupMeta};
use crate::variance::VarianceMap;

/// Spatial real-time quantizer for the K cache.
///
/// Keys are stored as rows of length `dim` (the head dimension), each row
/// grouped along `dim` and quantized the moment it arrives. Codes are
/// **nibble-packed** (two per byte, each group byte-aligned): the packed
/// buffer is the working representation `fused_dot` consumes through the
/// pair-LUT kernels, not an accounting fiction.
#[derive(Clone, Debug)]
pub struct KCacheQuantizer {
    dim: usize,
    group_size: usize,
    vmap: VarianceMap,
    /// Packed codes, `rows × groups_per_row × ⌈group_size/2⌉` bytes.
    codes: Vec<u8>,
    meta: Vec<GroupMeta>,
    rows: usize,
}

impl KCacheQuantizer {
    /// Creates a K-cache quantizer for key vectors of length `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` does not divide
    /// `dim`.
    pub fn new(dim: usize, group_size: usize, vmap: VarianceMap) -> Result<Self, QuantError> {
        if group_size == 0 || !dim.is_multiple_of(group_size) {
            return Err(QuantError::BadGroupSize {
                group_size,
                inner_dim: dim,
            });
        }
        Ok(KCacheQuantizer {
            dim,
            group_size,
            vmap,
            codes: Vec::new(),
            meta: Vec::new(),
            rows: 0,
        })
    }

    /// Number of cached key vectors.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The head dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Groups per cached key vector.
    pub fn groups_per_row(&self) -> usize {
        self.dim / self.group_size
    }

    /// Bytes one packed group occupies (`⌈group_size / 2⌉`).
    pub fn group_bytes(&self) -> usize {
        self.group_size.div_ceil(2)
    }

    /// Packed bytes one cached key row occupies.
    fn row_bytes(&self) -> usize {
        self.groups_per_row() * self.group_bytes()
    }

    /// The **packed** 4-bit codes of group `g` in cached key vector `t`
    /// (two codes per byte).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn packed_group_codes(&self, t: usize, g: usize) -> &[u8] {
        let gb = self.group_bytes();
        let base = t * self.row_bytes() + g * gb;
        &self.codes[base..base + gb]
    }

    /// Metadata of group `g` in cached key vector `t`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn group_meta(&self, t: usize, g: usize) -> GroupMeta {
        self.meta[t * self.groups_per_row() + g]
    }

    /// The fused `q · k_t` partial dot over `n_groups` consecutive groups,
    /// consuming the packed key codes directly (Eq. (5)): for each group,
    /// an integer psum kernel plus one `s_q · s_k` scale multiply. This is
    /// the incremental `Q·Kᵀ` primitive — no cache dequantization.
    ///
    /// `q_lo` indexes the query's groups, `k_lo` this cache's groups (they
    /// differ under GQA, where several query heads share one KV head).
    ///
    /// # Panics
    ///
    /// Panics if the query's group size differs from the cache's, or if
    /// any group index is out of bounds.
    pub fn fused_dot(
        &self,
        t: usize,
        q: &QuantizedVector,
        q_lo: usize,
        k_lo: usize,
        n_groups: usize,
    ) -> f32 {
        assert_eq!(q.group_size(), self.group_size, "query group size mismatch");
        let mut acc = 0.0f64;
        for j in 0..n_groups {
            let meta = self.group_meta(t, k_lo + j);
            let int_result = group_dot_packed(
                meta,
                q.group_codes(q_lo + j),
                self.packed_group_codes(t, k_lo + j),
            );
            acc += f64::from(q.scale(q_lo + j)) * f64::from(meta.scale) * int_result as f64;
        }
        acc as f32
    }

    /// Quantizes and appends one key vector (one decode step).
    ///
    /// # Panics
    ///
    /// Panics if `k.len() != dim`.
    pub fn push(&mut self, k: &[f32]) {
        assert_eq!(k.len(), self.dim, "key vector length mismatch");
        let c0 = self.codes.len();
        let m0 = self.meta.len();
        self.codes.resize(c0 + self.row_bytes(), 0);
        self.meta
            .resize(m0 + self.groups_per_row(), GroupMeta::ZERO);
        encode_k_row_into(
            &self.vmap,
            self.group_size,
            k,
            &mut self.codes[c0..],
            &mut self.meta[m0..],
        );
        self.rows += 1;
    }

    /// Clears the cache so a finished session's storage can be recycled by
    /// a new sequence, retaining the allocated capacity. A reset cache is
    /// **bit-identical** to a freshly constructed one: keys are encoded
    /// independently on arrival, so every later push produces the same
    /// codes and metadata a fresh cache would.
    pub fn reset(&mut self) {
        self.codes.clear();
        self.meta.clear();
        self.rows = 0;
    }

    /// Drops every cached key vector beyond the first `len` — the rollback
    /// primitive for speculative decode and prefix reuse. Keys are encoded
    /// row-independently, so the truncated cache is bit-identical to a
    /// fresh cache fed only the kept prefix.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn truncate(&mut self, len: usize) {
        assert!(
            len <= self.rows,
            "truncate length {len} exceeds cached rows {}",
            self.rows
        );
        self.codes.truncate(len * self.row_bytes());
        self.meta.truncate(len * self.groups_per_row());
        self.rows = len;
    }

    /// Quantizes a whole prefill K matrix (`seq × dim`) row by row.
    ///
    /// # Panics
    ///
    /// Panics if `k.cols() != dim`.
    pub fn prefill(&mut self, k: &Matrix) {
        assert_eq!(k.cols(), self.dim, "prefill width mismatch");
        for r in 0..k.rows() {
            self.push(k.row(r));
        }
    }

    /// Dequantizes the cache to a `seq × dim` matrix.
    pub fn dequantize(&self) -> Matrix {
        let gpr = self.dim / self.group_size;
        Matrix::from_fn(self.rows, self.dim, |r, c| {
            let g = c / self.group_size;
            let m = self.meta[r * gpr + g];
            let code = packed_code(self.packed_group_codes(r, g), c % self.group_size);
            m.dtype.decode(code) * m.scale
        })
    }

    /// Storage bits: the packed code bytes (4 per element — genuinely
    /// packed) + 24 per group (scale + coefficient).
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * 8 + self.meta.len() * 24
    }
}

/// Encodes one key row's groups into pre-sized **packed** code/metadata
/// slices: per group, streaming stats → variance-selected dtype → FP16
/// scale → packed 4-bit codes (two per byte, byte-aligned groups). Shared
/// verbatim by the owned [`KCacheQuantizer`] and the paged pool's
/// per-sequence views (`crate::pool`), so the two storage engines produce
/// bit-identical cache contents.
pub(crate) fn encode_k_row_into(
    vmap: &VarianceMap,
    group_size: usize,
    k: &[f32],
    codes_out: &mut [u8],
    meta_out: &mut [GroupMeta],
) {
    let group_bytes = group_size.div_ceil(2);
    debug_assert_eq!(codes_out.len(), (k.len() / group_size) * group_bytes);
    debug_assert_eq!(meta_out.len(), k.len() / group_size);
    for (g, group) in k.chunks_exact(group_size).enumerate() {
        let mut stats = RunningGroupStats::new();
        stats.extend_from_slice(group);
        let dtype = vmap.select_for(&stats);
        let scale = dtype.scale_for(stats.abs_max());
        meta_out[g] = GroupMeta { dtype, scale };
        encode_group_packed(
            dtype,
            scale,
            group,
            &mut codes_out[g * group_bytes..(g + 1) * group_bytes],
        );
    }
}

/// One committed (fully quantized) V-cache window: `group_size` rows, each
/// channel with its own type/scale.
#[derive(Clone, Debug)]
pub(crate) struct CommittedWindow {
    /// Per-channel metadata (`dim` entries).
    pub(crate) meta: Vec<GroupMeta>,
    /// **Packed** codes in `[c][t]` channel-major order
    /// (`dim × ⌈group_size/2⌉` bytes): each channel's temporal group is a
    /// contiguous packed operand, so the `P·V` kernels consume it directly
    /// with no strided gather and no unpacking.
    pub(crate) codes: Vec<u8>,
}

/// `P·V` accumulation over one committed window: `meta`/`codes` are the
/// window's per-channel metadata and channel-major **packed** codes
/// (`dim × ⌈group_size/2⌉` bytes), `pcodes`/`pscale` the window's
/// INT8-quantized probabilities. Adds into `out` for channels `chan_lo..`.
/// Shared by the owned [`VCacheQuantizer`] and the paged pool so both
/// consume committed storage with bit-identical arithmetic.
pub(crate) fn attend_window(
    meta: &[GroupMeta],
    codes: &[u8],
    group_size: usize,
    pcodes: &[i8],
    pscale: f32,
    chan_lo: usize,
    out: &mut [f32],
) {
    let gb = group_size.div_ceil(2);
    for (o, c) in out.iter_mut().zip(chan_lo..) {
        let m = meta[c];
        // Channel-major packed storage: the temporal group is one
        // contiguous packed operand for the pair-LUT kernel.
        let group = &codes[c * gb..(c + 1) * gb];
        let int_result = group_dot_packed(m, pcodes, group);
        *o += (f64::from(pscale) * f64::from(m.scale) * int_result as f64) as f32;
    }
}

/// Phase-1 state of the temporal V-cache engine (Fig. 8): the INT8
/// process window, its per-channel RQU accumulators and scales, and the
/// original f32 rows of the window (retained — bounded by one group of
/// rows — so truncation can rebuild the accumulators exactly). Owns the
/// staging/commit logic; the owned [`VCacheQuantizer`] and the paged
/// pool's views differ only in where committed windows land.
#[derive(Clone, Debug)]
pub(crate) struct VStaging {
    pub(crate) dim: usize,
    pub(crate) group_size: usize,
    pub(crate) vmap: VarianceMap,
    /// Per-channel INT8 scales for the staging window (from prefill, or
    /// bootstrapped from the first vectors seen).
    pub(crate) channel_scales: Vec<f32>,
    /// Snapshot of `channel_scales` as of the current window's first row —
    /// refreshed on construction, reset, prefill-scale derivation, and
    /// every commit. [`VStaging::truncate`] restores these before
    /// re-pushing the kept rows, so a widening triggered by a *dropped*
    /// row is undone and the rebuilt window is bit-identical to one that
    /// never staged the dropped rows.
    pub(crate) window_start_scales: Vec<f32>,
    /// Phase-1 staging buffer: INT8 rows, at most `group_size` of them.
    pub(crate) window: Vec<Vec<i8>>,
    /// The staged rows' original f32 values in arrival order — what
    /// [`VStaging::truncate`] re-pushes to rebuild the RQU stats
    /// bit-exactly. A software rollback convenience (the accelerator keeps
    /// the arriving vectors in SRAM for the window anyway); not packed
    /// storage and not counted in the bit accounting.
    pub(crate) window_f32: Vec<Vec<f32>>,
    /// RQU accumulators per channel over the current window.
    pub(crate) stats: Vec<RunningGroupStats>,
}

impl VStaging {
    pub(crate) fn new(dim: usize, group_size: usize, vmap: VarianceMap) -> Self {
        VStaging {
            dim,
            group_size,
            vmap,
            channel_scales: vec![0.0; dim],
            window_start_scales: vec![0.0; dim],
            window: Vec::new(),
            window_f32: Vec::new(),
            stats: vec![RunningGroupStats::new(); dim],
        }
    }

    /// Derives the staging window's per-channel INT8 scales from a prefill
    /// V matrix (Sec. V-C: "scales" in Fig. 8).
    pub(crate) fn set_scales_from_prefill(&mut self, v: &Matrix) {
        for c in 0..self.dim {
            let amax = abs_max(&v.col(c));
            self.channel_scales[c] = int8_scale(amax);
        }
        self.window_start_scales
            .copy_from_slice(&self.channel_scales);
    }

    /// Phase 1 of Fig. 8: quantizes one value vector to INT8 into the
    /// process window and updates the per-channel `Σv/Σv²/max`
    /// accumulators; when the window fills, runs phase 2 and returns the
    /// committed 4-bit window.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub(crate) fn push(&mut self, v: &[f32]) -> Option<CommittedWindow> {
        assert_eq!(v.len(), self.dim, "value vector length mismatch");
        let mut row = Vec::with_capacity(self.dim);
        for (c, &x) in v.iter().enumerate() {
            if self.channel_scales[c] == 0.0 && x != 0.0 {
                // No prefill happened: bootstrap the channel scale from the
                // first nonzero observation.
                self.channel_scales[c] = int8_scale(x.abs());
            }
            if x.abs() > 127.0 * self.channel_scales[c] {
                // The channel outgrew its prefill range: widen the scale
                // and re-encode the staged codes for this channel (cheap —
                // the window holds at most one group of rows).
                let old = self.channel_scales[c].max(f32::MIN_POSITIVE);
                let new = int8_scale(x.abs());
                for staged in &mut self.window {
                    let rescaled = f32::from(staged[c]) * old / new;
                    staged[c] = quantize_symmetric_int(rescaled, 127) as i8;
                }
                self.channel_scales[c] = new;
            }
            let s = self.channel_scales[c].max(f32::MIN_POSITIVE);
            row.push(quantize_symmetric_int(x / s, 127) as i8);
            self.stats[c].push(x);
        }
        self.window.push(row);
        self.window_f32.push(v.to_vec());
        if self.window.len() == self.group_size {
            Some(self.commit())
        } else {
            None
        }
    }

    /// Phase 2 of Fig. 8: variance → `a`, then requantize the staged INT8
    /// window to packed 4-bit MANT, one group per channel.
    fn commit(&mut self) -> CommittedWindow {
        let gb = self.group_size.div_ceil(2);
        let mut meta = Vec::with_capacity(self.dim);
        let mut codes = vec![0u8; gb * self.dim];
        let mut group = vec![0.0f32; self.group_size];
        for c in 0..self.dim {
            let dtype = self.vmap.select_for(&self.stats[c]);
            // The group contents are the *staged INT8* values (the paper
            // requantizes the stacked INT8 V cache), so the scale comes
            // from their dequantized max.
            let s8 = self.channel_scales[c].max(f32::MIN_POSITIVE);
            for (t, row) in self.window.iter().enumerate() {
                group[t] = f32::from(row[c]) * s8;
            }
            let amax = group.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = dtype.scale_for(amax);
            meta.push(GroupMeta { dtype, scale });
            encode_group_packed(dtype, scale, &group, &mut codes[c * gb..(c + 1) * gb]);
            self.stats[c].reset();
        }
        self.window.clear();
        self.window_f32.clear();
        self.window_start_scales
            .copy_from_slice(&self.channel_scales);
        CommittedWindow { meta, codes }
    }

    /// The staged-rows lane of `P·V`: INT8 probabilities × INT8 staged
    /// codes per channel, scaled by the channel's staging scale. Adds into
    /// `out` for channels `chan_lo..`.
    pub(crate) fn attend_staged(&self, probs_tail: &[f32], chan_lo: usize, out: &mut [f32]) {
        if self.window.is_empty() {
            return;
        }
        let Some((pcodes, pscale)) = quantize_probs_int8(probs_tail) else {
            return;
        };
        let mut col8 = Vec::with_capacity(self.window.len());
        for (o, c) in out.iter_mut().zip(chan_lo..) {
            col8.clear();
            col8.extend(self.window.iter().map(|row| row[c]));
            let s8 = self.channel_scales[c].max(f32::MIN_POSITIVE);
            let int_result = kernels().int8_dot(&pcodes, &col8);
            *o += (f64::from(pscale) * f64::from(s8) * int_result as f64) as f32;
        }
    }

    /// Keeps only the first `keep` staged rows by **replaying** them:
    /// channel scales are restored to their window-start snapshot, the
    /// window and RQU accumulators are cleared, and the retained rows'
    /// original f32 values are re-pushed in arrival order through the
    /// normal [`VStaging::push`] path. Scale bootstraps and widenings
    /// caused by kept rows re-trigger identically; those caused only by
    /// dropped rows are undone — the result is bit-identical to a staging
    /// buffer that never saw the dropped rows.
    pub(crate) fn truncate(&mut self, keep: usize) {
        debug_assert!(keep <= self.window.len());
        let kept: Vec<Vec<f32>> = self.window_f32.drain(..).take(keep).collect();
        self.window.clear();
        self.channel_scales
            .copy_from_slice(&self.window_start_scales);
        for s in &mut self.stats {
            s.reset();
        }
        for row in &kept {
            let committed = self.push(row);
            debug_assert!(
                committed.is_none(),
                "re-staging fewer rows than a full window cannot commit"
            );
        }
    }

    /// Clears all staging state (window, stats, channel scales) so the
    /// storage can be recycled by a new sequence; bit-identical afterwards
    /// to a freshly constructed staging buffer.
    pub(crate) fn reset(&mut self) {
        self.window.clear();
        self.window_f32.clear();
        for s in &mut self.stats {
            s.reset();
        }
        self.channel_scales.iter_mut().for_each(|s| *s = 0.0);
        self.window_start_scales.iter_mut().for_each(|s| *s = 0.0);
    }
}

/// Temporal two-phase real-time quantizer for the V cache (Fig. 8).
#[derive(Clone, Debug)]
pub struct VCacheQuantizer {
    staging: VStaging,
    committed: Vec<CommittedWindow>,
}

impl VCacheQuantizer {
    /// Creates a V-cache quantizer for value vectors of length `dim`; the
    /// process window spans `group_size` decode iterations.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` is zero.
    pub fn new(dim: usize, group_size: usize, vmap: VarianceMap) -> Result<Self, QuantError> {
        if group_size == 0 {
            return Err(QuantError::BadGroupSize {
                group_size,
                inner_dim: dim,
            });
        }
        Ok(VCacheQuantizer {
            staging: VStaging::new(dim, group_size, vmap),
            committed: Vec::new(),
        })
    }

    /// Number of cached value vectors (committed + staged).
    pub fn len(&self) -> usize {
        self.committed.len() * self.staging.group_size + self.staging.window.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows currently staged in the INT8 process window.
    pub fn window_len(&self) -> usize {
        self.staging.window.len()
    }

    /// Number of committed 4-bit windows.
    pub fn committed_windows(&self) -> usize {
        self.committed.len()
    }

    /// Ingests a whole prefill V matrix (`seq × dim`): derives channel
    /// scales, commits every full window spatially, stages the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `v.cols() != dim`.
    pub fn prefill(&mut self, v: &Matrix) {
        assert_eq!(v.cols(), self.staging.dim, "prefill width mismatch");
        // Channel-wise INT8 scales for the decode-stage staging window are
        // derived from the prefill statistics (Sec. V-C: "scales" in Fig. 8).
        self.staging.set_scales_from_prefill(v);
        for r in 0..v.rows() {
            self.push(v.row(r));
        }
    }

    /// Phase 1 of Fig. 8: quantizes one value vector to INT8 into the
    /// process window and updates the per-channel `Σv/Σv²/max`
    /// accumulators; when the window fills, runs phase 2 (commit to MANT4).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        if let Some(window) = self.staging.push(v) {
            self.committed.push(window);
        }
    }

    /// Clears the cache (committed windows, staging window, channel
    /// scales, RQU accumulators) so a finished session's storage can be
    /// recycled, retaining allocated capacity. A reset cache is
    /// **bit-identical** to a freshly constructed one on every later
    /// operation.
    pub fn reset(&mut self) {
        self.committed.clear();
        self.staging.reset();
    }

    /// Drops every cached value vector beyond the first `len` — the
    /// rollback primitive for speculative decode and prefix reuse.
    ///
    /// A cut inside the staging window **replays** exactly: channel scales
    /// revert to their window-start snapshot and the kept rows' original
    /// f32 values are re-pushed, so the result is bit-identical to a cache
    /// that never saw the dropped rows (scale widenings triggered only by
    /// dropped rows are undone). A cut at a committed-window boundary
    /// keeps the committed prefix and empties the staging window; scales
    /// revert to the *latest* window-start snapshot, which still reflects
    /// widenings from dropped committed windows (their INT8 history is
    /// gone, so exact replay is impossible there — acceptable for prefix
    /// reuse, where scales only ever widen). A cut strictly inside a
    /// committed window is rejected: commitment discards the INT8 staging
    /// data, so such a cut cannot be represented — truncate at a window
    /// boundary instead.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`, or if `len` falls strictly inside a
    /// committed window.
    pub fn truncate(&mut self, len: usize) {
        assert!(
            len <= self.len(),
            "truncate length {len} exceeds cached rows {}",
            self.len()
        );
        let g = self.staging.group_size;
        let committed_len = self.committed.len() * g;
        if len >= committed_len {
            self.staging.truncate(len - committed_len);
        } else {
            assert!(
                len.is_multiple_of(g),
                "cannot truncate inside a committed V window (len {len}, window {g})"
            );
            self.committed.truncate(len / g);
            self.staging.truncate(0);
        }
    }

    /// The temporal group size (process-window length in decode steps).
    pub fn group_size(&self) -> usize {
        self.staging.group_size
    }

    /// Incremental `P·V`: accumulates `Σ_t probs[t] · v_t[c]` into
    /// `out[c - chan_lo]` for channels `chan_lo..chan_lo + out.len()`,
    /// consuming the cache's packed storage directly — committed windows
    /// via the two-psum integer kernels (Eq. (5)), the INT8 process window
    /// via its staged codes and channel scales. The probabilities are
    /// quantized to INT8 per window (the paper's integer `P·V` datapath),
    /// so every lane is integer arithmetic with one scale multiply per
    /// (window, channel). No cache dequantization, no `seq × dim`
    /// materialization.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != self.len()` or the channel range exceeds
    /// `dim`.
    pub fn attend(&self, probs: &[f32], chan_lo: usize, out: &mut [f32]) {
        assert_eq!(probs.len(), self.len(), "probability length mismatch");
        assert!(
            chan_lo + out.len() <= self.staging.dim,
            "channel range out of bounds"
        );
        let g = self.staging.group_size;
        let mut t0 = 0usize;
        for w in &self.committed {
            let window_probs = &probs[t0..t0 + g];
            t0 += g;
            let Some((pcodes, pscale)) = quantize_probs_int8(window_probs) else {
                continue;
            };
            attend_window(&w.meta, &w.codes, g, &pcodes, pscale, chan_lo, out);
        }
        // Staged rows: INT8 × INT8 per channel, scaled by the channel's
        // staging scale.
        self.staging.attend_staged(&probs[t0..], chan_lo, out);
    }

    /// Dequantizes the full cache (committed 4-bit windows + INT8 staging
    /// rows) to a `seq × dim` matrix.
    pub fn dequantize(&self) -> Matrix {
        let dim = self.staging.dim;
        let g = self.staging.group_size;
        let gb = g.div_ceil(2);
        let mut out = Matrix::zeros(0, 0);
        for w in &self.committed {
            for t in 0..g {
                let row: Vec<f32> = (0..dim)
                    .map(|c| {
                        let m = w.meta[c];
                        m.dtype
                            .decode(packed_code(&w.codes[c * gb..(c + 1) * gb], t))
                            * m.scale
                    })
                    .collect();
                out.push_row(&row);
            }
        }
        for row8 in &self.staging.window {
            let row: Vec<f32> = row8
                .iter()
                .enumerate()
                .map(|(c, &q)| f32::from(q) * self.staging.channel_scales[c].max(f32::MIN_POSITIVE))
                .collect();
            out.push_row(&row);
        }
        if out.rows() == 0 {
            Matrix::zeros(0, dim)
        } else {
            out
        }
    }

    /// Storage bits: committed windows at their physical packed bytes
    /// (4 bits per element, plus a pad nibble per channel group when the
    /// group size is odd) + 24-bit group metadata; staged rows at 8 bits
    /// (the "marginal and tolerable" INT8 overhead).
    pub fn storage_bits(&self) -> usize {
        let dim = self.staging.dim;
        let gb = self.staging.group_size.div_ceil(2);
        let committed = self.committed.len() * (dim * gb * 8 + dim * 24);
        let staged = self.staging.window.len() * dim * 8;
        committed + staged
    }
}

/// Multi-head attention of one query vector against the packed caches on
/// the **dequantize path**: both caches are materialized to `seq × dim`
/// matrices, then scored in f32 — the reference twin of
/// [`attention_incremental`], and the per-step cost the quantized
/// execution backend eliminates. With `kv_heads < heads`, query heads
/// share K/V heads (GQA).
///
/// # Panics
///
/// Panics if `q.len() != heads · head_dim`, if `kv_heads` is zero or does
/// not divide `heads`, or if the caches' width is not
/// `kv_heads · head_dim`.
pub fn attention_dequantize(
    q: &[f32],
    kc: &KCacheQuantizer,
    vc: &VCacheQuantizer,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> Vec<f32> {
    validate_attention_shapes(q, kc, vc, heads, kv_heads, head_dim);
    let k_all = kc.dequantize();
    let v_all = vc.dequantize();
    let seq = k_all.rows();
    let queries_per_kv = heads / kv_heads;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut out = vec![0.0f32; heads * head_dim];
    for h in 0..heads {
        let lo = h * head_dim;
        let hi = lo + head_dim;
        let kv_lo = (h / queries_per_kv) * head_dim;
        let kv_hi = kv_lo + head_dim;
        let qh = &q[lo..hi];
        let mut scores: Vec<f32> = (0..seq)
            .map(|t| {
                let kh = &k_all.row(t)[kv_lo..kv_hi];
                qh.iter().zip(kh.iter()).map(|(&a, &b)| a * b).sum::<f32>() * scale
            })
            .collect();
        softmax_inplace(&mut scores);
        let oh = &mut out[lo..hi];
        for (t, &s) in scores.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let vh = &v_all.row(t)[kv_lo..kv_hi];
            for (o, &v) in oh.iter_mut().zip(vh.iter()) {
                *o += s * v;
            }
        }
    }
    out
}

/// Multi-head attention of one query vector against the packed caches on
/// the **incremental path**: `Q·Kᵀ` runs the fused per-group integer dots
/// ([`KCacheQuantizer::fused_dot`]) against the query quantized to
/// group-wise INT8, and `P·V` consumes committed windows and INT8 staging
/// rows via [`VCacheQuantizer::attend`]. Nothing materializes a
/// `seq × dim` matrix — per-step work is proportional to the codes read,
/// which is what makes long-sequence decode cheap. GQA as in
/// [`attention_dequantize`].
///
/// # Panics
///
/// As [`attention_dequantize`], plus if the K-cache group size does not
/// divide `head_dim` (groups must not straddle heads).
pub fn attention_incremental(
    q: &[f32],
    kc: &KCacheQuantizer,
    vc: &VCacheQuantizer,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> Vec<f32> {
    validate_attention_shapes(q, kc, vc, heads, kv_heads, head_dim);
    let g = kc.group_size();
    assert!(
        head_dim.is_multiple_of(g),
        "fused attention needs the group size ({g}) to divide the head dimension ({head_dim})"
    );
    let seq = kc.len();
    let queries_per_kv = heads / kv_heads;
    let groups_per_head = head_dim / g;
    let qv = quantize_vector_int8(q, g).expect("group divides head dim, hence q length");
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut out = vec![0.0f32; heads * head_dim];
    for h in 0..heads {
        let lo = h * head_dim;
        let kv_head = h / queries_per_kv;
        let q_lo_group = lo / g;
        let k_lo_group = kv_head * head_dim / g;
        let mut scores: Vec<f32> = (0..seq)
            .map(|t| kc.fused_dot(t, &qv, q_lo_group, k_lo_group, groups_per_head) * scale)
            .collect();
        softmax_inplace(&mut scores);
        vc.attend(&scores, kv_head * head_dim, &mut out[lo..lo + head_dim]);
    }
    out
}

fn validate_attention_shapes(
    q: &[f32],
    kc: &KCacheQuantizer,
    vc: &VCacheQuantizer,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
) {
    assert_eq!(q.len(), heads * head_dim, "query length mismatch");
    assert!(
        kv_heads > 0 && heads.is_multiple_of(kv_heads),
        "kv_heads ({kv_heads}) must divide heads ({heads})"
    );
    assert_eq!(kc.dim(), kv_heads * head_dim, "K-cache width mismatch");
    assert_eq!(
        kc.len(),
        vc.len(),
        "K and V caches disagree on sequence length"
    );
}

/// Quantizes one window's attention probabilities to symmetric INT8 with a
/// single FP16-rounded scale; `None` when every probability is zero (the
/// whole window then contributes nothing).
pub(crate) fn quantize_probs_int8(probs: &[f32]) -> Option<(Vec<i8>, f32)> {
    // Vectorized through the process kernel tier, bit-identical to the
    // scalar fold + per-element `quantize_symmetric_int` loop.
    let d = kernels();
    let amax = d.abs_max(probs);
    if amax == 0.0 {
        return None;
    }
    let scale = int8_scale(amax).max(f32::MIN_POSITIVE);
    let mut codes = vec![0i8; probs.len()];
    d.quantize_i8(probs, scale, &mut codes);
    Some((codes, scale))
}

/// FP16-rounded INT8 scale for a given max magnitude.
fn int8_scale(amax: f32) -> f32 {
    if amax == 0.0 {
        0.0
    } else {
        quantize_fp16(amax / 127.0).max(f32::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::CandidateSet;
    use mant_tensor::{mse, TensorGenerator};

    fn vmap() -> VarianceMap {
        VarianceMap::analytic(&CandidateSet::paper()).unwrap()
    }

    fn relative_error(orig: &Matrix, deq: &Matrix) -> f64 {
        let err = mse(orig.as_slice(), deq.as_slice());
        let power = mse(orig.as_slice(), &vec![0.0; orig.len()]);
        err / power.max(1e-30)
    }

    #[test]
    fn k_cache_spatial_roundtrip() {
        let mut gen = TensorGenerator::new(71);
        let mut kq = KCacheQuantizer::new(128, 64, vmap()).unwrap();
        let k = gen.group_diverse_matrix(40, 128, 64, 0.5);
        kq.prefill(&k);
        assert_eq!(kq.len(), 40);
        let deq = kq.dequantize();
        assert_eq!(deq.shape(), (40, 128));
        // Variance-based type selection is a fast surrogate for the MSE
        // search; its 4-bit error stays within a few percent.
        assert!(
            relative_error(&k, &deq) < 0.05,
            "{}",
            relative_error(&k, &deq)
        );
    }

    #[test]
    fn k_cache_incremental_matches_batch() {
        let mut gen = TensorGenerator::new(72);
        let k = gen.group_diverse_matrix(10, 128, 64, 0.5);
        let mut a = KCacheQuantizer::new(128, 64, vmap()).unwrap();
        a.prefill(&k);
        let mut b = KCacheQuantizer::new(128, 64, vmap()).unwrap();
        for r in 0..k.rows() {
            b.push(k.row(r));
        }
        assert_eq!(a.dequantize().as_slice(), b.dequantize().as_slice());
    }

    #[test]
    fn k_cache_bad_group_size() {
        assert!(KCacheQuantizer::new(100, 64, vmap()).is_err());
    }

    #[test]
    fn v_cache_two_phase_counts() {
        let mut gen = TensorGenerator::new(73);
        let mut vq = VCacheQuantizer::new(32, 8, vmap()).unwrap();
        let v = gen.group_diverse_matrix(20, 32, 32, 0.5);
        vq.prefill(&v);
        // 20 rows with window 8 → 2 committed windows + 4 staged rows.
        assert_eq!(vq.committed_windows(), 2);
        assert_eq!(vq.window_len(), 4);
        assert_eq!(vq.len(), 20);
    }

    #[test]
    fn v_cache_roundtrip_error_small() {
        let mut gen = TensorGenerator::new(74);
        let mut vq = VCacheQuantizer::new(64, 16, vmap()).unwrap();
        let v = gen.group_diverse_matrix(64, 64, 64, 0.5);
        vq.prefill(&v);
        let deq = vq.dequantize();
        assert_eq!(deq.shape(), (64, 64));
        // 4-bit committed + INT8 staged: overall error stays small.
        assert!(
            relative_error(&v, &deq) < 0.03,
            "{}",
            relative_error(&v, &deq)
        );
    }

    #[test]
    fn v_cache_window_commits_on_fill() {
        let mut gen = TensorGenerator::new(75);
        let mut vq = VCacheQuantizer::new(16, 4, vmap()).unwrap();
        for i in 0..4 {
            let row: Vec<f32> = (0..16).map(|_| gen.uniform(-1.0, 1.0)).collect();
            vq.push(&row);
            if i < 3 {
                assert_eq!(vq.committed_windows(), 0);
                assert_eq!(vq.window_len(), i + 1);
            }
        }
        assert_eq!(vq.committed_windows(), 1);
        assert_eq!(vq.window_len(), 0);
    }

    #[test]
    fn v_cache_decode_only_bootstraps_scales() {
        // No prefill at all: the engine must still work (scales bootstrap).
        let mut gen = TensorGenerator::new(76);
        let mut vq = VCacheQuantizer::new(8, 4, vmap()).unwrap();
        let mut rows = Matrix::zeros(0, 0);
        for _ in 0..8 {
            let row: Vec<f32> = (0..8).map(|_| gen.uniform(-2.0, 2.0)).collect();
            vq.push(&row);
            rows.push_row(&row);
        }
        let deq = vq.dequantize();
        assert_eq!(deq.shape(), (8, 8));
        // Bootstrapped scales may clip later larger values; error is
        // bounded but nonzero.
        assert!(relative_error(&rows, &deq) < 0.3);
    }

    #[test]
    fn v_cache_recent_tokens_kept_at_int8() {
        // The staging window holds the newest tokens in INT8 — the paper
        // argues this *helps* quality since recent tokens matter more. The
        // staged rows should be more accurate than committed 4-bit rows.
        let mut gen = TensorGenerator::new(77);
        let mut vq = VCacheQuantizer::new(32, 16, vmap()).unwrap();
        let v = gen.group_diverse_matrix(24, 32, 32, 0.5);
        vq.prefill(&v); // 1 window committed, 8 rows staged
        let deq = vq.dequantize();
        let committed_err = mse(&v.as_slice()[..16 * 32], &deq.as_slice()[..16 * 32]);
        let staged_err = mse(&v.as_slice()[16 * 32..], &deq.as_slice()[16 * 32..]);
        assert!(
            staged_err < committed_err,
            "{staged_err} vs {committed_err}"
        );
    }

    #[test]
    fn storage_accounting() {
        let mut vq = VCacheQuantizer::new(16, 4, vmap()).unwrap();
        for _ in 0..6 {
            vq.push(&[0.5; 16]);
        }
        // 1 committed window (4×16 codes + 16 metas) + 2 staged rows.
        assert_eq!(vq.storage_bits(), (4 * 16 * 4 + 16 * 24) + 2 * 16 * 8);
        let mut kq = KCacheQuantizer::new(16, 16, vmap()).unwrap();
        kq.push(&[0.5; 16]);
        assert_eq!(kq.storage_bits(), 16 * 4 + 24);
    }

    #[test]
    fn fused_dot_matches_dequantized_scores() {
        use crate::activation::quantize_vector_int8;
        let mut gen = TensorGenerator::new(78);
        let dim = 128;
        let g = 32;
        let mut kq = KCacheQuantizer::new(dim, g, vmap()).unwrap();
        let k = gen.group_diverse_matrix(24, dim, g, 0.5);
        kq.prefill(&k);
        let q_vec: Vec<f32> = (0..dim).map(|_| gen.standard_normal()).collect();
        let qv = quantize_vector_int8(&q_vec, g).unwrap();
        let q_deq = qv.dequantize();
        let k_deq = kq.dequantize();
        // Whole-row dots and per-head (2-group) partial dots both match
        // the dequantize-then-f32 reference on the same quantized query.
        for t in 0..24 {
            let full = kq.fused_dot(t, &qv, 0, 0, dim / g);
            let reference: f32 = q_deq
                .iter()
                .zip(k_deq.row(t).iter())
                .map(|(&a, &b)| a * b)
                .sum();
            assert!(
                (full - reference).abs() <= reference.abs().max(1.0) * 1e-4,
                "t={t}: {full} vs {reference}"
            );
            let partial = kq.fused_dot(t, &qv, 2, 2, 2);
            let reference_p: f32 = q_deq[2 * g..4 * g]
                .iter()
                .zip(k_deq.row(t)[2 * g..4 * g].iter())
                .map(|(&a, &b)| a * b)
                .sum();
            assert!((partial - reference_p).abs() <= reference_p.abs().max(1.0) * 1e-4);
        }
    }

    #[test]
    fn attend_matches_dequantized_weighted_sum() {
        let mut gen = TensorGenerator::new(79);
        let dim = 64;
        let g = 16;
        let mut vq = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        let v = gen.group_diverse_matrix(40, dim, dim, 0.5);
        vq.prefill(&v); // 2 committed windows + 8 staged rows
        assert_eq!(vq.committed_windows(), 2);
        assert_eq!(vq.window_len(), 8);
        // Softmax-like probabilities.
        let mut probs: Vec<f32> = (0..40).map(|i| (-(i as f32) * 0.1).exp()).collect();
        let z: f32 = probs.iter().sum();
        probs.iter_mut().for_each(|p| *p /= z);

        let mut fused = vec![0.0f32; dim];
        vq.attend(&probs, 0, &mut fused);
        // Reference: the same weighted sum over the dequantized cache with
        // probabilities quantized the same way per window (the only extra
        // error source the integer path introduces).
        let deq = vq.dequantize();
        for (c, &f) in fused.iter().enumerate() {
            let mut reference = 0.0f32;
            for t0 in (0..40).step_by(g) {
                let hi = (t0 + g).min(40);
                let (pcodes, pscale) = quantize_probs_int8(&probs[t0..hi]).unwrap();
                for (j, &pc) in pcodes.iter().enumerate() {
                    reference += f32::from(pc) * pscale * deq[(t0 + j, c)];
                }
            }
            assert!(
                (f - reference).abs() < 1e-4,
                "channel {c}: {f} vs {reference}"
            );
        }
        // And the INT8 prob quantization itself is near-lossless: the
        // fused result tracks the exact f32 weighted sum closely.
        for (c, &f) in fused.iter().enumerate() {
            let exact: f32 = (0..40).map(|t| probs[t] * deq[(t, c)]).sum();
            assert!(
                (f - exact).abs() < 2e-2,
                "channel {c}: fused {f} vs exact {exact}"
            );
        }
        // Channel sub-ranges accumulate (attend adds into `out`).
        let mut partial = vec![1.0f32; 8];
        vq.attend(&probs, 8, &mut partial);
        for (j, &p) in partial.iter().enumerate() {
            assert!((p - 1.0 - fused[8 + j]).abs() < 1e-6);
        }
    }

    #[test]
    fn attention_helpers_agree_incl_gqa() {
        // The shared incremental/dequantize attention pair must agree up
        // to the INT8 query/probability rounding, for MHA and GQA head
        // layouts alike.
        let mut gen = TensorGenerator::new(80);
        let (head_dim, g) = (32, 16);
        for (heads, kv_heads) in [(4usize, 4usize), (4, 2), (4, 1)] {
            let kv_dim = kv_heads * head_dim;
            let vmap = vmap();
            let mut kc = KCacheQuantizer::new(kv_dim, g, vmap.clone()).unwrap();
            let mut vc = VCacheQuantizer::new(kv_dim, g, vmap).unwrap();
            kc.prefill(&gen.group_diverse_matrix(40, kv_dim, g, 0.5));
            vc.prefill(&gen.group_diverse_matrix(40, kv_dim, kv_dim, 0.5));
            let q: Vec<f32> = (0..heads * head_dim)
                .map(|_| gen.standard_normal())
                .collect();
            let reference = attention_dequantize(&q, &kc, &vc, heads, kv_heads, head_dim);
            let fused = attention_incremental(&q, &kc, &vc, heads, kv_heads, head_dim);
            let norm: f32 = reference
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt()
                .max(1e-6);
            let dist: f32 = reference
                .iter()
                .zip(fused.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            assert!(
                dist / norm < 0.05,
                "heads={heads} kv_heads={kv_heads}: rel diff {}",
                dist / norm
            );
        }
    }

    #[test]
    fn reset_caches_reproduce_fresh_caches_bit_exactly() {
        // Recycling a finished session's cache via reset() must leave no
        // trace: the next sequence's codes, metadata, and fused results
        // must equal a freshly constructed cache's bit for bit.
        let mut gen = TensorGenerator::new(81);
        let (dim, g) = (64, 16);
        let first = gen.group_diverse_matrix(21, dim, g, 0.5);
        let second = gen.group_diverse_matrix(13, dim, g, 0.7);
        let q_vec: Vec<f32> = (0..dim).map(|_| gen.standard_normal()).collect();
        let qv = quantize_vector_int8(&q_vec, g).unwrap();
        let probs: Vec<f32> = (0..13).map(|i| 1.0 / (i as f32 + 2.0)).collect();

        let mut kq = KCacheQuantizer::new(dim, g, vmap()).unwrap();
        kq.prefill(&first);
        kq.reset();
        assert!(kq.is_empty());
        let mut vq = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        vq.prefill(&first);
        vq.reset();
        assert!(vq.is_empty());
        assert_eq!(vq.committed_windows(), 0);

        let mut kq_fresh = KCacheQuantizer::new(dim, g, vmap()).unwrap();
        let mut vq_fresh = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        for r in 0..second.rows() {
            kq.push(second.row(r));
            kq_fresh.push(second.row(r));
            vq.push(second.row(r));
            vq_fresh.push(second.row(r));
        }
        assert_eq!(kq.dequantize().as_slice(), kq_fresh.dequantize().as_slice());
        for t in 0..13 {
            assert_eq!(
                kq.fused_dot(t, &qv, 0, 0, dim / g).to_bits(),
                kq_fresh.fused_dot(t, &qv, 0, 0, dim / g).to_bits()
            );
        }
        assert_eq!(vq.dequantize().as_slice(), vq_fresh.dequantize().as_slice());
        let (mut a, mut b) = (vec![0.0f32; dim], vec![0.0f32; dim]);
        vq.attend(&probs, 0, &mut a);
        vq_fresh.attend(&probs, 0, &mut b);
        assert_eq!(a, b);
        assert_eq!(vq.storage_bits(), vq_fresh.storage_bits());
    }

    #[test]
    fn k_truncate_matches_fresh_prefix() {
        let mut gen = TensorGenerator::new(82);
        let k = gen.group_diverse_matrix(17, 64, 16, 0.5);
        let mut full = KCacheQuantizer::new(64, 16, vmap()).unwrap();
        full.prefill(&k);
        full.truncate(9);
        assert_eq!(full.len(), 9);
        let mut prefix = KCacheQuantizer::new(64, 16, vmap()).unwrap();
        prefix.prefill(&k.top_rows(9));
        assert_eq!(full.dequantize().as_slice(), prefix.dequantize().as_slice());
        // Continuing after the rollback behaves like a fresh cache too.
        full.push(k.row(16));
        prefix.push(k.row(16));
        assert_eq!(full.dequantize().as_slice(), prefix.dequantize().as_slice());
        full.truncate(0);
        assert!(full.is_empty());
    }

    #[test]
    fn v_truncate_in_staging_and_at_window_boundaries() {
        let mut gen = TensorGenerator::new(83);
        let (dim, g) = (32, 8);
        let v = gen.group_diverse_matrix(21, dim, dim, 0.5);
        let mut vq = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        vq.prefill(&v); // 2 committed windows + 5 staged rows
        assert_eq!((vq.committed_windows(), vq.window_len()), (2, 5));

        // Cut inside the staging window: staged suffix dropped, committed
        // windows untouched, and continuing re-commits identically to a
        // cache that never saw the dropped rows.
        let mut twin = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        twin.prefill(&v);
        vq.truncate(18);
        assert_eq!((vq.committed_windows(), vq.window_len()), (2, 2));
        let deq_full = twin.dequantize();
        let deq_cut = vq.dequantize();
        assert_eq!(&deq_full.as_slice()[..18 * dim], deq_cut.as_slice());
        // Refill the dropped rows: the rebuilt RQU stats must commit the
        // third window exactly as the uncut cache did.
        for r in 18..21 {
            vq.push(v.row(r));
        }
        for _ in 21..24 {
            let row: Vec<f32> = (0..dim).map(|_| gen.uniform(-1.0, 1.0)).collect();
            vq.push(&row);
            twin.push(&row);
        }
        assert_eq!(vq.committed_windows(), 3);
        assert_eq!(vq.dequantize().as_slice(), twin.dequantize().as_slice());

        // Window-boundary cut in the committed region.
        vq.truncate(8);
        assert_eq!((vq.committed_windows(), vq.window_len()), (1, 0));
        assert_eq!(vq.len(), 8);
    }

    #[test]
    fn v_truncate_undoes_widening_from_dropped_rows() {
        // A dropped staged row widened a channel scale; after truncation
        // the cache must be bit-identical to a twin that never saw it —
        // including the staged INT8 codes, whose widening-time re-encode
        // is lossy and must be undone by replay, not kept.
        let (dim, g) = (4usize, 8usize);
        let mut vq = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        let mut twin = VCacheQuantizer::new(dim, g, vmap()).unwrap();
        let quiet = vec![0.25f32, -0.5, 0.125, 0.75];
        for _ in 0..3 {
            vq.push(&quiet);
            twin.push(&quiet);
        }
        // The spike bootstraps channel 0 far wider than `quiet` needs.
        vq.push(&[100.0, -0.5, 0.125, 0.75]);
        vq.truncate(3);
        assert_eq!(vq.dequantize().as_slice(), twin.dequantize().as_slice());
        // Continuing after the rollback matches the twin bit for bit,
        // through the next commit and beyond.
        for i in 0..g {
            let row: Vec<f32> = (0..dim)
                .map(|c| 0.3 * (i as f32 + 1.0) - c as f32 * 0.1)
                .collect();
            vq.push(&row);
            twin.push(&row);
        }
        assert_eq!(vq.committed_windows(), twin.committed_windows());
        assert_eq!(vq.dequantize().as_slice(), twin.dequantize().as_slice());
    }

    #[test]
    #[should_panic(expected = "inside a committed V window")]
    fn v_truncate_inside_committed_window_rejected() {
        let mut gen = TensorGenerator::new(84);
        let mut vq = VCacheQuantizer::new(16, 8, vmap()).unwrap();
        vq.prefill(&gen.group_diverse_matrix(16, 16, 16, 0.5));
        vq.truncate(3);
    }

    #[test]
    #[should_panic(expected = "exceeds cached rows")]
    fn truncate_beyond_len_rejected() {
        let mut kq = KCacheQuantizer::new(16, 16, vmap()).unwrap();
        kq.push(&[0.5; 16]);
        kq.truncate(2);
    }

    #[test]
    fn empty_caches() {
        let kq = KCacheQuantizer::new(16, 16, vmap()).unwrap();
        assert!(kq.is_empty());
        let vq = VCacheQuantizer::new(16, 4, vmap()).unwrap();
        assert!(vq.is_empty());
        assert_eq!(vq.dequantize().shape(), (0, 16));
    }
}

//! Paged, packed KV-cache pool — the serving runtime's cache memory.
//!
//! A serving engine admits and retires sequences continuously; per-request
//! `Vec` growth would fragment memory and make admission control
//! guesswork. This module owns all quantized KV storage in one arena,
//! split into fixed-size **blocks** of `block_tokens` token slots, and
//! hands blocks to per-sequence [`PagedKvCache`] views on demand (the
//! vLLM paged-attention idea, applied to *packed* MANT4/INT8 group storage
//! so capacity is accounted in real packed bits, not f32 equivalents).
//!
//! One block holds both engines' storage for its token range:
//!
//! - **K** (spatial, Sec. V-C): per token slot, `kv_dim` 4-bit codes plus
//!   one [`GroupMeta`] per `group_size` channels — written the moment the
//!   key arrives, exactly like [`KCacheQuantizer`].
//! - **V** (temporal, Fig. 8): per window of `group_size` token slots,
//!   `kv_dim × group_size` channel-major codes plus per-channel metadata —
//!   written when the per-sequence INT8 process window (which lives in the
//!   [`PagedKvCache`] view, not the arena) commits.
//!
//! `block_tokens` is a multiple of `group_size`, so a V window never
//! straddles blocks. Both views share the owned quantizers' encode/commit/
//! attend helpers (`encode_k_row_into`, [`crate::kv`]'s `VStaging`,
//! `attend_window`), so pooled caches are **bit-identical** to
//! [`KCacheQuantizer`]/[`VCacheQuantizer`] fed the same vectors — the
//! property the batch-vs-sequential equivalence suite pins down.
//!
//! # Sharing: refcounted blocks and copy-on-write
//!
//! Packed groups are immutable once written — a committed K row or V
//! window is never touched again — so physical blocks can be **shared**
//! between sequences whose cached prefixes are identical. Every block
//! carries a reference count; [`PagedKvCache::fork`] clones a view in
//! O(blocks) by retaining every block (including the trailing partial
//! one) and copying only the per-sequence V staging window. A fork that
//! later writes into a block still shared with its sibling first copies
//! that block to a private one (**copy-on-write**), so divergence after a
//! fork is invisible to the other holder — the cornerstone of prompt
//! prefix sharing in the serving runtime, where requests with a common
//! system prompt map their shared prefix onto the *same* physical packed
//! blocks.

use mant_tensor::Matrix;

use crate::activation::{quantize_vector_int8, QuantizedVector};
use crate::error::QuantError;
use crate::fused::group_dot_packed;
use crate::kv::{attend_window, encode_k_row_into, quantize_probs_int8, VStaging};
#[allow(unused_imports)] // doc links
use crate::kv::{KCacheQuantizer, VCacheQuantizer};
use crate::mantq::{packed_code, GroupMeta};
use crate::variance::VarianceMap;

use mant_tensor::ops::softmax_inplace;

/// Shape of a [`KvCachePool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Width of the cached K/V vectors (`kv_heads × head_dim`).
    pub kv_dim: usize,
    /// Quantization group size (spatial for K, temporal for V).
    pub group_size: usize,
    /// Token slots per block; must be a multiple of `group_size`.
    pub block_tokens: usize,
    /// Total blocks in the pool.
    pub blocks: usize,
}

/// The block allocator owning all packed KV-cache storage.
#[derive(Clone, Debug)]
pub struct KvCachePool {
    cfg: PoolConfig,
    /// K codes, `blocks × block_tokens × kv_dim` nibbles **genuinely
    /// packed two per byte** (each spatial group byte-aligned).
    k_codes: Vec<u8>,
    /// K metadata, `blocks × block_tokens × (kv_dim / group_size)`.
    k_meta: Vec<GroupMeta>,
    /// Committed V codes, `blocks × block_tokens × kv_dim` packed nibbles
    /// (channel-major within each `group_size`-token window).
    v_codes: Vec<u8>,
    /// Committed V metadata, `blocks × windows_per_block × kv_dim`.
    v_meta: Vec<GroupMeta>,
    /// Free block ids (LIFO: released blocks are reused first, keeping the
    /// hot working set compact).
    free: Vec<u32>,
    /// Per-block reference counts; 0 exactly for the blocks on the free
    /// list. The allocator invariant `free.len() + #{refs > 0} == blocks`
    /// holds across every alloc/retain/release.
    refs: Vec<u32>,
}

impl KvCachePool {
    /// Builds a pool with every block free.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` does not
    /// divide `kv_dim` or `block_tokens` or if `block_tokens` is zero,
    /// and [`QuantError::ShapeMismatch`] if `blocks` is zero.
    pub fn new(cfg: PoolConfig) -> Result<Self, QuantError> {
        if cfg.group_size == 0
            || !cfg.kv_dim.is_multiple_of(cfg.group_size)
            || cfg.block_tokens == 0
            || !cfg.block_tokens.is_multiple_of(cfg.group_size)
        {
            return Err(QuantError::BadGroupSize {
                group_size: cfg.group_size,
                inner_dim: cfg.kv_dim.min(cfg.block_tokens),
            });
        }
        if cfg.blocks == 0 {
            return Err(QuantError::ShapeMismatch {
                context: "pool must hold at least one block",
            });
        }
        let slots = cfg.blocks * cfg.block_tokens;
        let gpr = cfg.kv_dim / cfg.group_size;
        let group_bytes = cfg.group_size.div_ceil(2);
        Ok(KvCachePool {
            cfg,
            k_codes: vec![0u8; slots * gpr * group_bytes],
            k_meta: vec![GroupMeta::ZERO; slots * gpr],
            v_codes: vec![0u8; (slots / cfg.group_size) * cfg.kv_dim * group_bytes],
            v_meta: vec![GroupMeta::ZERO; (slots / cfg.group_size) * cfg.kv_dim],
            free: (0..cfg.blocks as u32).rev().collect(),
            refs: vec![0u32; cfg.blocks],
        })
    }

    /// The pool's shape.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Bytes one packed group occupies (`⌈group_size / 2⌉`).
    fn group_bytes(&self) -> usize {
        self.cfg.group_size.div_ceil(2)
    }

    /// Packed bytes of one token slot's K row.
    fn k_row_bytes(&self) -> usize {
        (self.cfg.kv_dim / self.cfg.group_size) * self.group_bytes()
    }

    /// Packed bytes of one committed V window (`kv_dim` channel groups).
    fn v_window_bytes(&self) -> usize {
        self.cfg.kv_dim * self.group_bytes()
    }

    /// Resident bytes of the pool's code arenas — the physical allocation
    /// backing every block's K rows and committed V windows. With packed
    /// nibbles this is **half** what the one-code-per-byte layout held for
    /// the same geometry, i.e. an identical byte budget now holds twice
    /// the token slots.
    pub fn resident_code_bytes(&self) -> usize {
        self.k_codes.len() + self.v_codes.len()
    }

    /// Token slots per block.
    pub fn block_tokens(&self) -> usize {
        self.cfg.block_tokens
    }

    /// Total blocks.
    pub fn total_blocks(&self) -> usize {
        self.cfg.blocks
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently handed out to sequences.
    pub fn used_blocks(&self) -> usize {
        self.cfg.blocks - self.free.len()
    }

    /// Blocks needed to hold `tokens` cached tokens of one sequence in one
    /// layer.
    pub fn blocks_for_tokens(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.cfg.block_tokens)
    }

    /// Packed bits per block: the physical code bytes (4 bits per element
    /// for even group sizes; odd group sizes carry a pad nibble per
    /// group, counted here so the accounting always equals resident
    /// memory) + 24-bit metadata per spatial group / (window, channel).
    pub fn block_bits(&self) -> usize {
        let gpr = self.cfg.kv_dim / self.cfg.group_size;
        let wpb = self.cfg.block_tokens / self.cfg.group_size;
        let k = self.cfg.block_tokens * (self.k_row_bytes() * 8 + gpr * 24);
        let v = wpb * (self.v_window_bytes() * 8 + self.cfg.kv_dim * 24);
        k + v
    }

    /// Total packed capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.cfg.blocks * self.block_bits()
    }

    /// Packed bits of every handed-out block (reserved capacity, the
    /// admission-control quantity; a block is charged whole even while
    /// partially filled).
    pub fn used_bits(&self) -> usize {
        self.used_blocks() * self.block_bits()
    }

    /// Blocks currently shared by more than one holder (refcount ≥ 2) —
    /// the prefix-sharing payoff a serving report can surface.
    pub fn shared_blocks(&self) -> usize {
        self.refs.iter().filter(|&&r| r > 1).count()
    }

    /// The reference count of `block` (0 for a free block).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a block id of this pool.
    pub fn refcount(&self, block: u32) -> u32 {
        self.refs[block as usize]
    }

    fn alloc(&mut self) -> Option<u32> {
        let id = self.free.pop()?;
        debug_assert_eq!(self.refs[id as usize], 0, "free block with live refs");
        self.refs[id as usize] = 1;
        mant_trace::counter("pool.block_allocs", 1);
        Some(id)
    }

    /// Adds one holder to an allocated block (fork/share).
    fn retain_block(&mut self, id: u32) {
        debug_assert!((id as usize) < self.cfg.blocks, "foreign block id");
        debug_assert!(self.refs[id as usize] > 0, "retain of a free block {id}");
        self.refs[id as usize] += 1;
    }

    /// Drops one holder; the block returns to the free list when the last
    /// holder lets go.
    fn release_block(&mut self, id: u32) {
        debug_assert!((id as usize) < self.cfg.blocks, "foreign block id");
        debug_assert!(self.refs[id as usize] > 0, "double free of block {id}");
        self.refs[id as usize] -= 1;
        if self.refs[id as usize] == 0 {
            self.free.push(id);
        }
    }

    /// Copies block `src`'s whole packed contents (K codes/meta, committed
    /// V codes/meta) into block `dst` — the copy-on-write primitive.
    fn copy_block(&mut self, src: u32, dst: u32) {
        let bt = self.cfg.block_tokens;
        let dim = self.cfg.kv_dim;
        let gpr = dim / self.cfg.group_size;
        let wpb = bt / self.cfg.group_size;
        let (s, d) = (src as usize, dst as usize);
        let kb = bt * self.k_row_bytes();
        self.k_codes.copy_within(s * kb..(s + 1) * kb, d * kb);
        self.k_meta
            .copy_within(s * bt * gpr..(s + 1) * bt * gpr, d * bt * gpr);
        let vb = wpb * self.v_window_bytes();
        self.v_codes.copy_within(s * vb..(s + 1) * vb, d * vb);
        self.v_meta
            .copy_within(s * wpb * dim..(s + 1) * wpb * dim, d * wpb * dim);
    }

    fn k_row(&self, block: u32, slot: usize) -> (&[u8], &[GroupMeta]) {
        let gpr = self.cfg.kv_dim / self.cfg.group_size;
        let rb = self.k_row_bytes();
        let c0 = (block as usize * self.cfg.block_tokens + slot) * rb;
        let m0 = (block as usize * self.cfg.block_tokens + slot) * gpr;
        (&self.k_codes[c0..c0 + rb], &self.k_meta[m0..m0 + gpr])
    }

    fn k_row_mut(&mut self, block: u32, slot: usize) -> (&mut [u8], &mut [GroupMeta]) {
        let gpr = self.cfg.kv_dim / self.cfg.group_size;
        let rb = self.k_row_bytes();
        let c0 = (block as usize * self.cfg.block_tokens + slot) * rb;
        let m0 = (block as usize * self.cfg.block_tokens + slot) * gpr;
        (
            &mut self.k_codes[c0..c0 + rb],
            &mut self.k_meta[m0..m0 + gpr],
        )
    }

    fn v_window(&self, block: u32, win_in_block: usize) -> (&[GroupMeta], &[u8]) {
        let wb = self.v_window_bytes();
        let wpb = self.cfg.block_tokens / self.cfg.group_size;
        let c0 = (block as usize * wpb + win_in_block) * wb;
        let m0 = (block as usize * wpb + win_in_block) * self.cfg.kv_dim;
        (
            &self.v_meta[m0..m0 + self.cfg.kv_dim],
            &self.v_codes[c0..c0 + wb],
        )
    }

    fn v_window_mut(&mut self, block: u32, win_in_block: usize) -> (&mut [GroupMeta], &mut [u8]) {
        let wb = self.v_window_bytes();
        let wpb = self.cfg.block_tokens / self.cfg.group_size;
        let c0 = (block as usize * wpb + win_in_block) * wb;
        let m0 = (block as usize * wpb + win_in_block) * self.cfg.kv_dim;
        (
            &mut self.v_meta[m0..m0 + self.cfg.kv_dim],
            &mut self.v_codes[c0..c0 + wb],
        )
    }
}

/// One sequence's K+V cache for one layer: an ordered list of pool blocks
/// plus the per-sequence V staging window. The paged twin of a
/// `(KCacheQuantizer, VCacheQuantizer)` pair — same arithmetic, pooled
/// storage, so sequences join and leave the batch without reallocation.
///
/// Deliberately **not** `Clone`: a bitwise clone would alias pool blocks
/// without adding holders. Use [`PagedKvCache::fork`], which retains every
/// shared block so copy-on-write and release stay sound.
#[derive(Debug)]
pub struct PagedKvCache {
    blocks: Vec<u32>,
    rows: usize,
    committed_windows: usize,
    kmap: VarianceMap,
    staging: VStaging,
}

impl PagedKvCache {
    /// Creates an empty view over `pool`'s geometry with the given K and V
    /// variance→type maps. No block is reserved until the first push.
    pub fn new(pool: &KvCachePool, kmap: VarianceMap, vmap: VarianceMap) -> Self {
        PagedKvCache {
            blocks: Vec::new(),
            rows: 0,
            committed_windows: 0,
            kmap,
            staging: VStaging::new(pool.cfg.kv_dim, pool.cfg.group_size, vmap),
        }
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the cache holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The cached vector width.
    pub fn dim(&self) -> usize {
        self.staging.dim
    }

    /// The group size (spatial for K, temporal for V).
    pub fn group_size(&self) -> usize {
        self.staging.group_size
    }

    /// Rows currently staged in the per-sequence INT8 process window.
    pub fn window_len(&self) -> usize {
        self.staging.window.len()
    }

    /// Committed 4-bit V windows.
    pub fn committed_windows(&self) -> usize {
        self.committed_windows
    }

    /// Blocks this sequence currently holds (shared blocks included).
    pub fn reserved_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks this sequence holds that are still shared with another
    /// holder (a fork that has not yet diverged past them).
    pub fn shared_blocks(&self, pool: &KvCachePool) -> usize {
        self.blocks
            .iter()
            .filter(|&&b| pool.refcount(b) > 1)
            .count()
    }

    /// Whether releasing this view would return at least one block to the
    /// free list (it is the sole holder of some block). A view that only
    /// aliases blocks held elsewhere costs nothing to keep — the signal
    /// cache-eviction policies use to skip pointless evictions.
    pub fn holds_sole_reference(&self, pool: &KvCachePool) -> bool {
        self.blocks.iter().any(|&b| pool.refcount(b) == 1)
    }

    /// Forks this view: the child shares **every** block — full ones and
    /// the trailing partial one — and clones the per-sequence V staging
    /// window, so it is bit-identical to this cache at fork time. Writes
    /// on either side copy a still-shared block before touching it
    /// (copy-on-write), so the two sides diverge without perturbing each
    /// other. O(blocks) refcount bumps plus one staging-window clone; no
    /// packed data is copied until a divergent write happens.
    pub fn fork(&self, pool: &mut KvCachePool) -> PagedKvCache {
        for &b in &self.blocks {
            pool.retain_block(b);
        }
        PagedKvCache {
            blocks: self.blocks.clone(),
            rows: self.rows,
            committed_windows: self.committed_windows,
            kmap: self.kmap.clone(),
            staging: self.staging.clone(),
        }
    }

    /// What the next [`PagedKvCache::push`] will demand from the free
    /// list: a fresh block when the current one is full, plus a
    /// copy-on-write block when the K row's target block is still shared.
    /// A committing V window never needs its own copy: windows are
    /// `group_size`-aligned and `block_tokens` is a multiple of
    /// `group_size`, so the window ends at (and lives in) the very block
    /// the K row targets — fresh or already made private. Admission/step
    /// control sums this across sequences to know whether a batch
    /// iteration can proceed.
    pub fn blocks_needed_for_push(&self, pool: &KvCachePool) -> usize {
        let bt = pool.cfg.block_tokens;
        let new_block = self.rows == self.blocks.len() * bt;
        let cow_k = !new_block && pool.refcount(self.blocks[self.rows / bt]) > 1;
        usize::from(new_block) + usize::from(cow_k)
    }

    /// Free blocks the next `n` consecutive pushes will demand together:
    /// a fresh block for every block boundary crossed in
    /// `(rows, rows + n]`, plus one copy-on-write block when the current
    /// partial block is (or is about to be) shared. Nothing else can be
    /// charged: pushes only ever write the trailing block, and a freshly
    /// allocated block is born private. The multi-push generalization of
    /// [`PagedKvCache::blocks_needed_for_push`] that speculative decode's
    /// k-token verify burst budgets against.
    ///
    /// `assume_shared_tail` charges the CoW copy whenever a partial block
    /// exists, regardless of its current refcount — the budget for a step
    /// that will fork a rollback checkpoint *before* pushing (the fork
    /// shares the partial block, so the first push must copy it).
    pub fn blocks_needed_for_pushes(
        &self,
        pool: &KvCachePool,
        n: usize,
        assume_shared_tail: bool,
    ) -> usize {
        if n == 0 {
            return 0;
        }
        let bt = pool.cfg.block_tokens;
        let new_blocks = (self.rows + n).div_ceil(bt) - self.blocks.len();
        let cow_k = self.rows < self.blocks.len() * bt
            && (assume_shared_tail || pool.refcount(self.blocks[self.rows / bt]) > 1);
        new_blocks + usize::from(cow_k)
    }

    /// Rolls the cache back to its first `len` tokens — the paged,
    /// CoW-aware rollback primitive speculative decode uses to discard
    /// rejected draft tokens.
    ///
    /// Cut semantics match [`VCacheQuantizer::truncate`]: a cut in the V
    /// staging region **replays** the kept staged rows from their original
    /// f32 values (scale widenings triggered only by dropped rows are
    /// undone), so the cache is bit-identical to one that never saw the
    /// dropped tokens; a cut at a committed-window boundary drops whole
    /// windows; a cut strictly inside a committed window panics. K rows
    /// need no erasure — they are encoded independently and slots past
    /// `len` are never read again.
    ///
    /// Block accounting is CoW-sound: tail blocks the kept prefix no
    /// longer touches are *released*, which only drops this view's
    /// refcount — a block still referenced by a forked sibling is never
    /// mutated or freed by the rollback, and a kept trailing block that is
    /// still shared gets copy-on-write-copied by the next push as usual.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()` or if `len` falls strictly inside a
    /// committed V window.
    pub fn truncate(&mut self, pool: &mut KvCachePool, len: usize) {
        assert!(
            len <= self.rows,
            "truncate length {len} exceeds cached rows {}",
            self.rows
        );
        if len == self.rows {
            return;
        }
        let g = self.staging.group_size;
        let committed_len = self.committed_windows * g;
        if len >= committed_len {
            self.staging.truncate(len - committed_len);
        } else {
            assert!(
                len.is_multiple_of(g),
                "cannot truncate inside a committed V window (len {len}, window {g})"
            );
            self.committed_windows = len / g;
            self.staging.truncate(0);
        }
        let keep_blocks = len.div_ceil(pool.cfg.block_tokens);
        for b in self.blocks.drain(keep_blocks..) {
            pool.release_block(b);
        }
        self.rows = len;
    }

    /// Replaces a still-shared block with a private copy (copy-on-write).
    /// The caller must have verified a free block exists.
    fn make_private(&mut self, pool: &mut KvCachePool, idx: usize) {
        let b = self.blocks[idx];
        if pool.refcount(b) <= 1 {
            return;
        }
        let nb = pool.alloc().expect("preflight checked a free block exists");
        pool.copy_block(b, nb);
        pool.release_block(b);
        self.blocks[idx] = nb;
        mant_trace::counter("pool.cow_copies", 1);
    }

    /// Quantizes and appends one decode step's key and value vectors,
    /// reserving a fresh block from `pool` when the current one fills and
    /// copying any still-shared target block first (copy-on-write).
    /// Identical arithmetic to [`KCacheQuantizer::push`] +
    /// [`VCacheQuantizer::push`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::PoolExhausted`] if the push needs more free
    /// blocks ([`PagedKvCache::blocks_needed_for_push`]) than the pool
    /// has; the cache is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `v` length differs from the cache width.
    pub fn push(&mut self, pool: &mut KvCachePool, k: &[f32], v: &[f32]) -> Result<(), QuantError> {
        assert_eq!(k.len(), self.staging.dim, "key vector length mismatch");
        assert_eq!(v.len(), self.staging.dim, "value vector length mismatch");
        let bt = pool.cfg.block_tokens;
        // Chaos seam: a forced exhaustion reports exactly like the real
        // preflight failure below — before any mutation — so callers see
        // the same atomic error surface either way.
        #[cfg(feature = "fault-inject")]
        if mant_trace::fault::fire(mant_trace::fault::site::POOL_ALLOC) {
            return Err(QuantError::PoolExhausted {
                blocks: pool.cfg.blocks,
            });
        }
        // Preflight: the push mutates nothing unless every block it needs
        // (fresh or copy-on-write) is available, keeping failure atomic.
        if pool.free_blocks() < self.blocks_needed_for_push(pool) {
            return Err(QuantError::PoolExhausted {
                blocks: pool.cfg.blocks,
            });
        }
        if self.rows == self.blocks.len() * bt {
            let block = pool.alloc().expect("preflight checked");
            self.blocks.push(block);
        } else {
            self.make_private(pool, self.rows / bt);
        }
        let (codes, meta) = pool.k_row_mut(self.blocks[self.rows / bt], self.rows % bt);
        encode_k_row_into(&self.kmap, self.staging.group_size, k, codes, meta);
        if let Some(window) = self.staging.push(v) {
            let g = self.staging.group_size;
            let win_token = self.committed_windows * g;
            // The window is g-aligned and ends at the row just written, so
            // it lives in the K target block — fresh or just made private.
            debug_assert_eq!(
                win_token / bt,
                self.rows / bt,
                "V window strayed from K block"
            );
            debug_assert_eq!(
                pool.refcount(self.blocks[win_token / bt]),
                1,
                "committing into a shared block"
            );
            let (vmeta, vcodes) =
                pool.v_window_mut(self.blocks[win_token / bt], (win_token % bt) / g);
            vmeta.copy_from_slice(&window.meta);
            vcodes.copy_from_slice(&window.codes);
            self.committed_windows += 1;
        }
        self.rows += 1;
        Ok(())
    }

    /// The fused `q · k_t` partial dot over `n_groups` consecutive groups,
    /// consuming the pooled packed key codes directly — bit-identical to
    /// [`KCacheQuantizer::fused_dot`].
    ///
    /// # Panics
    ///
    /// Panics if the query's group size differs from the cache's, or if
    /// any index is out of bounds.
    pub fn fused_dot(
        &self,
        pool: &KvCachePool,
        t: usize,
        q: &QuantizedVector,
        q_lo: usize,
        k_lo: usize,
        n_groups: usize,
    ) -> f32 {
        let g = self.staging.group_size;
        assert_eq!(q.group_size(), g, "query group size mismatch");
        assert!(t < self.rows, "token index {t} out of bounds");
        let bt = pool.cfg.block_tokens;
        let gb = pool.group_bytes();
        let (codes, meta) = pool.k_row(self.blocks[t / bt], t % bt);
        let mut acc = 0.0f64;
        for j in 0..n_groups {
            let m = meta[k_lo + j];
            let group = &codes[(k_lo + j) * gb..(k_lo + j + 1) * gb];
            let int_result = group_dot_packed(m, q.group_codes(q_lo + j), group);
            acc += f64::from(q.scale(q_lo + j)) * f64::from(m.scale) * int_result as f64;
        }
        acc as f32
    }

    /// Incremental `P·V` over pooled committed windows plus the
    /// per-sequence INT8 staging window — bit-identical to
    /// [`VCacheQuantizer::attend`].
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != self.len()` or the channel range exceeds
    /// the cache width.
    pub fn attend(&self, pool: &KvCachePool, probs: &[f32], chan_lo: usize, out: &mut [f32]) {
        assert_eq!(probs.len(), self.rows, "probability length mismatch");
        assert!(
            chan_lo + out.len() <= self.staging.dim,
            "channel range out of bounds"
        );
        let g = self.staging.group_size;
        let bt = pool.cfg.block_tokens;
        let mut t0 = 0usize;
        for w in 0..self.committed_windows {
            let window_probs = &probs[t0..t0 + g];
            t0 += g;
            let Some((pcodes, pscale)) = quantize_probs_int8(window_probs) else {
                continue;
            };
            let win_token = w * g;
            let (meta, codes) = pool.v_window(self.blocks[win_token / bt], (win_token % bt) / g);
            attend_window(meta, codes, g, &pcodes, pscale, chan_lo, out);
        }
        self.staging.attend_staged(&probs[t0..], chan_lo, out);
    }

    /// Drops this view's hold on every block (a block returns to the free
    /// list when its last holder lets go) and clears the per-sequence
    /// state; afterwards the view behaves exactly like a freshly created
    /// one.
    pub fn release(&mut self, pool: &mut KvCachePool) {
        for b in self.blocks.drain(..) {
            pool.release_block(b);
        }
        self.rows = 0;
        self.committed_windows = 0;
        self.staging.reset();
    }

    /// Packed bits actually filled by this sequence (tokens, not whole
    /// blocks): the quantity serving metrics report as live cache memory.
    /// Counts physical packed bytes, pad nibbles of odd group sizes
    /// included, consistent with [`KvCachePool::block_bits`].
    pub fn used_bits(&self) -> usize {
        let dim = self.staging.dim;
        let gpr = dim / self.staging.group_size;
        let gb = self.staging.group_size.div_ceil(2);
        let k = self.rows * (gpr * gb * 8 + gpr * 24);
        let v_committed = self.committed_windows * (dim * gb * 8 + dim * 24);
        let v_staged = self.staging.window.len() * dim * 8;
        k + v_committed + v_staged
    }

    /// Dequantizes the K side to a `seq × dim` matrix (tests/reference).
    pub fn dequantize_k(&self, pool: &KvCachePool) -> Matrix {
        let dim = self.staging.dim;
        let g = self.staging.group_size;
        let gb = pool.group_bytes();
        let bt = pool.cfg.block_tokens;
        Matrix::from_fn(self.rows, dim, |t, c| {
            let (codes, meta) = pool.k_row(self.blocks[t / bt], t % bt);
            let m = meta[c / g];
            let code = packed_code(&codes[(c / g) * gb..(c / g + 1) * gb], c % g);
            m.dtype.decode(code) * m.scale
        })
    }

    /// Dequantizes the V side (committed windows + staging rows) to a
    /// `seq × dim` matrix (tests/reference).
    pub fn dequantize_v(&self, pool: &KvCachePool) -> Matrix {
        let dim = self.staging.dim;
        let g = self.staging.group_size;
        let bt = pool.cfg.block_tokens;
        Matrix::from_fn(self.rows, dim, |t, c| {
            if t < self.committed_windows * g {
                let gb = pool.group_bytes();
                let win_token = (t / g) * g;
                let (meta, codes) =
                    pool.v_window(self.blocks[win_token / bt], (win_token % bt) / g);
                let m = meta[c];
                m.dtype
                    .decode(packed_code(&codes[c * gb..(c + 1) * gb], t % g))
                    * m.scale
            } else {
                let row = &self.staging.window[t - self.committed_windows * g];
                f32::from(row[c]) * self.staging.channel_scales[c].max(f32::MIN_POSITIVE)
            }
        })
    }
}

/// Multi-head attention of one query vector against a pooled cache on the
/// incremental path — the paged twin of
/// [`crate::kv::attention_incremental`], bit-identical to it on equal
/// cache contents. GQA as there: with `kv_heads < heads`, query heads
/// share K/V heads.
///
/// # Panics
///
/// Panics if `q.len() != heads · head_dim`, if `kv_heads` is zero or does
/// not divide `heads`, if the cache width is not `kv_heads · head_dim`,
/// or if the group size does not divide `head_dim`.
pub fn attention_incremental_paged(
    q: &[f32],
    cache: &PagedKvCache,
    pool: &KvCachePool,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> Vec<f32> {
    assert_eq!(q.len(), heads * head_dim, "query length mismatch");
    assert!(
        kv_heads > 0 && heads.is_multiple_of(kv_heads),
        "kv_heads ({kv_heads}) must divide heads ({heads})"
    );
    assert_eq!(
        cache.dim(),
        kv_heads * head_dim,
        "paged cache width mismatch"
    );
    let g = cache.group_size();
    assert!(
        head_dim.is_multiple_of(g),
        "fused attention needs the group size ({g}) to divide the head dimension ({head_dim})"
    );
    let seq = cache.len();
    let queries_per_kv = heads / kv_heads;
    let groups_per_head = head_dim / g;
    let qv = quantize_vector_int8(q, g).expect("group divides head dim, hence q length");
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut out = vec![0.0f32; heads * head_dim];
    for h in 0..heads {
        let lo = h * head_dim;
        let kv_head = h / queries_per_kv;
        let q_lo_group = lo / g;
        let k_lo_group = kv_head * head_dim / g;
        let mut scores: Vec<f32> = (0..seq)
            .map(|t| cache.fused_dot(pool, t, &qv, q_lo_group, k_lo_group, groups_per_head) * scale)
            .collect();
        softmax_inplace(&mut scores);
        cache.attend(
            pool,
            &scores,
            kv_head * head_dim,
            &mut out[lo..lo + head_dim],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{attention_incremental, KCacheQuantizer, VCacheQuantizer};
    use crate::search::CandidateSet;
    use mant_tensor::TensorGenerator;

    fn vmap() -> VarianceMap {
        VarianceMap::analytic(&CandidateSet::paper()).unwrap()
    }

    fn pool(blocks: usize, block_tokens: usize) -> KvCachePool {
        KvCachePool::new(PoolConfig {
            kv_dim: 64,
            group_size: 16,
            block_tokens,
            blocks,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        for bad in [
            PoolConfig {
                kv_dim: 60,
                group_size: 16,
                block_tokens: 32,
                blocks: 2,
            },
            PoolConfig {
                kv_dim: 64,
                group_size: 16,
                block_tokens: 24,
                blocks: 2,
            },
            PoolConfig {
                kv_dim: 64,
                group_size: 0,
                block_tokens: 32,
                blocks: 2,
            },
            PoolConfig {
                kv_dim: 64,
                group_size: 16,
                block_tokens: 0,
                blocks: 2,
            },
            PoolConfig {
                kv_dim: 64,
                group_size: 16,
                block_tokens: 32,
                blocks: 0,
            },
        ] {
            assert!(KvCachePool::new(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pooled_cache_bit_identical_to_owned_quantizers() {
        // The whole point of the pool: a sequence served out of paged
        // blocks computes exactly what a sequence with its own quantizers
        // computes. 37 tokens across 32-token blocks exercises a block
        // boundary and a partially staged window.
        let mut gen = TensorGenerator::new(90);
        let mut pool = pool(4, 32);
        let mut paged = PagedKvCache::new(&pool, vmap(), vmap());
        let mut kq = KCacheQuantizer::new(64, 16, vmap()).unwrap();
        let mut vq = VCacheQuantizer::new(64, 16, vmap()).unwrap();
        let data = gen.group_diverse_matrix(37, 64, 16, 0.5);
        for t in 0..37 {
            paged.push(&mut pool, data.row(t), data.row(t)).unwrap();
            kq.push(data.row(t));
            vq.push(data.row(t));
        }
        assert_eq!(paged.len(), 37);
        assert_eq!(paged.reserved_blocks(), 2);
        assert_eq!(paged.committed_windows(), vq.committed_windows());
        assert_eq!(paged.window_len(), vq.window_len());
        assert_eq!(
            paged.dequantize_k(&pool).as_slice(),
            kq.dequantize().as_slice()
        );
        assert_eq!(
            paged.dequantize_v(&pool).as_slice(),
            vq.dequantize().as_slice()
        );

        let q_vec: Vec<f32> = (0..64).map(|_| gen.standard_normal()).collect();
        let qv = quantize_vector_int8(&q_vec, 16).unwrap();
        for t in 0..37 {
            assert_eq!(
                paged.fused_dot(&pool, t, &qv, 0, 0, 4).to_bits(),
                kq.fused_dot(t, &qv, 0, 0, 4).to_bits(),
                "t={t}"
            );
        }
        let probs: Vec<f32> = (0..37).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let (mut a, mut b) = (vec![0.0f32; 64], vec![0.0f32; 64]);
        paged.attend(&pool, &probs, 0, &mut a);
        vq.attend(&probs, 0, &mut b);
        assert_eq!(a, b);

        // Whole-attention parity, GQA included.
        let q_full: Vec<f32> = (0..128).map(|_| gen.standard_normal()).collect();
        let fused_owned = attention_incremental(&q_full, &kq, &vq, 4, 2, 32);
        let fused_paged = attention_incremental_paged(&q_full, &paged, &pool, 4, 2, 32);
        assert_eq!(fused_owned, fused_paged);
    }

    #[test]
    fn interleaved_sequences_stay_independent() {
        // Two sequences pushing turn-by-turn claim interleaved blocks;
        // each must still equal a standalone cache fed only its own rows.
        let mut gen = TensorGenerator::new(91);
        let mut pool = pool(6, 16);
        let a_data = gen.group_diverse_matrix(20, 64, 16, 0.5);
        let b_data = gen.group_diverse_matrix(20, 64, 16, 0.8);
        let mut a = PagedKvCache::new(&pool, vmap(), vmap());
        let mut b = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..20 {
            a.push(&mut pool, a_data.row(t), a_data.row(t)).unwrap();
            b.push(&mut pool, b_data.row(t), b_data.row(t)).unwrap();
        }
        assert_eq!(pool.used_blocks(), 4);
        for (view, data) in [(&a, &a_data), (&b, &b_data)] {
            let mut kq = KCacheQuantizer::new(64, 16, vmap()).unwrap();
            let mut vq = VCacheQuantizer::new(64, 16, vmap()).unwrap();
            kq.prefill(data);
            for t in 0..20 {
                vq.push(data.row(t));
            }
            assert_eq!(
                view.dequantize_k(&pool).as_slice(),
                kq.dequantize().as_slice()
            );
            assert_eq!(
                view.dequantize_v(&pool).as_slice(),
                vq.dequantize().as_slice()
            );
        }
    }

    #[test]
    fn release_recycles_blocks_bit_exactly() {
        let mut gen = TensorGenerator::new(92);
        let mut pool = pool(2, 32);
        let first = gen.group_diverse_matrix(30, 64, 16, 0.5);
        let second = gen.group_diverse_matrix(18, 64, 16, 0.7);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..30 {
            view.push(&mut pool, first.row(t), first.row(t)).unwrap();
        }
        assert_eq!(pool.free_blocks(), 1);
        view.release(&mut pool);
        assert_eq!(pool.free_blocks(), 2);
        assert!(view.is_empty());
        // The recycled view over dirty blocks equals a fresh standalone
        // cache on the next sequence.
        for t in 0..18 {
            view.push(&mut pool, second.row(t), second.row(t)).unwrap();
        }
        let mut kq = KCacheQuantizer::new(64, 16, vmap()).unwrap();
        kq.prefill(&second.top_rows(18));
        assert_eq!(
            view.dequantize_k(&pool).as_slice(),
            kq.dequantize().as_slice()
        );
    }

    #[test]
    fn exhaustion_is_reported_and_harmless() {
        let mut gen = TensorGenerator::new(93);
        let mut pool = pool(1, 16);
        let data = gen.group_diverse_matrix(17, 64, 16, 0.5);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..16 {
            view.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        let err = view.push(&mut pool, data.row(16), data.row(16));
        assert_eq!(err, Err(QuantError::PoolExhausted { blocks: 1 }));
        assert_eq!(view.len(), 16, "failed push must not corrupt the view");
        // Freeing capacity lets the same push succeed.
        let mut other = PagedKvCache::new(&pool, vmap(), vmap());
        view.release(&mut pool);
        other.push(&mut pool, data.row(16), data.row(16)).unwrap();
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn fork_shares_blocks_and_cow_diverges_bit_exactly() {
        // Fork mid-block (37 rows over 32-token blocks: one full block, one
        // partial, a half-filled staging window), then push different
        // continuations into parent and child. Each side must equal an
        // independent owned-quantizer pair fed its own full stream, and the
        // shared full block must stay physically shared while the partial
        // one is copied on the first divergent write.
        let mut gen = TensorGenerator::new(94);
        let mut pool = pool(6, 32);
        let prefix = gen.group_diverse_matrix(37, 64, 16, 0.5);
        let a_tail = gen.group_diverse_matrix(15, 64, 16, 0.6);
        let b_tail = gen.group_diverse_matrix(15, 64, 16, 0.8);

        let mut a = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..37 {
            a.push(&mut pool, prefix.row(t), prefix.row(t)).unwrap();
        }
        let mut b = a.fork(&mut pool);
        assert_eq!(pool.used_blocks(), 2, "fork allocates nothing");
        assert_eq!(pool.shared_blocks(), 2);
        assert_eq!(a.shared_blocks(&pool), 2);
        assert_eq!(b.len(), 37);
        assert_eq!(
            a.dequantize_k(&pool).as_slice(),
            b.dequantize_k(&pool).as_slice()
        );

        // First divergent write copies the partial block (CoW), never the
        // full one.
        b.push(&mut pool, b_tail.row(0), b_tail.row(0)).unwrap();
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.shared_blocks(), 1, "only the full block stays shared");
        for t in 0..15 {
            a.push(&mut pool, a_tail.row(t), a_tail.row(t)).unwrap();
            if t > 0 {
                b.push(&mut pool, b_tail.row(t), b_tail.row(t)).unwrap();
            }
        }
        for (view, tail) in [(&a, &a_tail), (&b, &b_tail)] {
            let mut kq = KCacheQuantizer::new(64, 16, vmap()).unwrap();
            let mut vq = VCacheQuantizer::new(64, 16, vmap()).unwrap();
            for t in 0..37 {
                kq.push(prefix.row(t));
                vq.push(prefix.row(t));
            }
            for t in 0..15 {
                kq.push(tail.row(t));
                vq.push(tail.row(t));
            }
            assert_eq!(
                view.dequantize_k(&pool).as_slice(),
                kq.dequantize().as_slice()
            );
            assert_eq!(
                view.dequantize_v(&pool).as_slice(),
                vq.dequantize().as_slice()
            );
            let probs: Vec<f32> = (0..52).map(|i| 1.0 / (1.0 + i as f32)).collect();
            let (mut got, mut want) = (vec![0.0f32; 64], vec![0.0f32; 64]);
            view.attend(&pool, &probs, 0, &mut got);
            vq.attend(&probs, 0, &mut want);
            assert_eq!(got, want);
        }

        // Release order is irrelevant; every block comes back.
        a.release(&mut pool);
        assert_eq!(pool.used_blocks(), 2, "B still holds its blocks");
        b.release(&mut pool);
        assert_eq!(pool.free_blocks(), 6);
        assert_eq!(pool.shared_blocks(), 0);
    }

    #[test]
    fn cow_exhaustion_is_reported_and_atomic() {
        // Two blocks total: the parent holds one (partial), the fork's
        // divergent write needs a CoW copy — which succeeds — and the next
        // boundary allocation fails cleanly with both views intact.
        let mut gen = TensorGenerator::new(95);
        let mut pool = pool(2, 16);
        let data = gen.group_diverse_matrix(40, 64, 16, 0.5);
        let mut a = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..8 {
            a.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        let mut b = a.fork(&mut pool);
        assert_eq!(
            b.blocks_needed_for_push(&pool),
            1,
            "CoW of the shared block"
        );
        b.push(&mut pool, data.row(8), data.row(8)).unwrap();
        assert_eq!(pool.free_blocks(), 0);
        // A's next write also targets a still-shared block? No — the fork
        // copied, so A's block is private again and the push succeeds.
        assert_eq!(a.blocks_needed_for_push(&pool), 0);
        a.push(&mut pool, data.row(8), data.row(8)).unwrap();
        // Fill both views to their block boundary; the next push needs a
        // fresh block and none exists.
        for t in 9..16 {
            a.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        let err = a.push(&mut pool, data.row(16), data.row(16));
        assert_eq!(err, Err(QuantError::PoolExhausted { blocks: 2 }));
        assert_eq!(a.len(), 16, "failed push must not corrupt the view");
        b.release(&mut pool);
        a.push(&mut pool, data.row(16), data.row(16)).unwrap();
        a.release(&mut pool);
        assert_eq!(pool.free_blocks(), 2);
    }

    #[test]
    fn truncate_matches_fresh_replay_and_releases_tail_blocks() {
        // 37 rows over 32-token blocks (2 blocks, 2 committed V windows,
        // 5 staged rows). A staging-region cut must be bit-identical to a
        // fresh cache fed only the kept prefix — including after further
        // pushes — and tail blocks must come back to the free list.
        let mut gen = TensorGenerator::new(96);
        let mut pool = pool(4, 32);
        let data = gen.group_diverse_matrix(48, 64, 16, 0.5);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..37 {
            view.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        assert_eq!(view.reserved_blocks(), 2);
        view.truncate(&mut pool, 34);
        assert_eq!(
            (view.len(), view.committed_windows(), view.window_len()),
            (34, 2, 2)
        );
        assert_eq!(view.reserved_blocks(), 2, "row 33 still lives in block 1");

        let mut fresh = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..34 {
            fresh.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        // Continue both past the next commit: the replayed staging state
        // (scales, stats, INT8 codes) must drive identical commits.
        for t in 34..48 {
            view.push(&mut pool, data.row(t), data.row(t)).unwrap();
            fresh.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        assert_eq!(
            view.dequantize_k(&pool).as_slice(),
            fresh.dequantize_k(&pool).as_slice()
        );
        assert_eq!(
            view.dequantize_v(&pool).as_slice(),
            fresh.dequantize_v(&pool).as_slice()
        );

        // A cut to a block boundary releases the tail block.
        let free_before = pool.free_blocks();
        view.truncate(&mut pool, 32);
        assert_eq!(view.reserved_blocks(), 1);
        assert_eq!(pool.free_blocks(), free_before + 1);
        // Committed-window-boundary cut into the committed region.
        view.truncate(&mut pool, 16);
        assert_eq!(
            (view.len(), view.committed_windows(), view.window_len()),
            (16, 1, 0)
        );
        view.truncate(&mut pool, 0);
        assert!(view.is_empty());
        assert_eq!(view.reserved_blocks(), 0);
        fresh.release(&mut pool);
        assert_eq!(pool.free_blocks(), 4);
    }

    #[test]
    fn truncate_on_fork_never_touches_shared_blocks() {
        // Fork at 37 rows, push the child forward (CoW copies the partial
        // block), truncate the child back into its staging window: the
        // parent's bytes must be untouched and the child must equal a
        // fresh replay of its kept stream. Releasing a shared tail block
        // only drops a refcount.
        let mut gen = TensorGenerator::new(97);
        let mut pool = pool(8, 32);
        let data = gen.group_diverse_matrix(44, 64, 16, 0.5);
        let mut parent = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..37 {
            parent.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        let mut child = parent.fork(&mut pool);
        let parent_k = parent.dequantize_k(&pool);
        let parent_v = parent.dequantize_v(&pool);

        // Child truncates while every block is still shared: pure
        // refcount drop, no mutation, no CoW.
        child.truncate(&mut pool, 33);
        assert_eq!(pool.shared_blocks(), 2, "both blocks still shared");
        assert_eq!(parent.dequantize_k(&pool).as_slice(), parent_k.as_slice());
        // Child diverges (CoW of the kept trailing block), then rolls
        // back again past its divergence point.
        for t in 33..44 {
            child.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        child.truncate(&mut pool, 35);
        assert_eq!(parent.dequantize_k(&pool).as_slice(), parent_k.as_slice());
        assert_eq!(parent.dequantize_v(&pool).as_slice(), parent_v.as_slice());
        let mut fresh = PagedKvCache::new(&pool, vmap(), vmap());
        for t in 0..35 {
            fresh.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        assert_eq!(
            child.dequantize_k(&pool).as_slice(),
            fresh.dequantize_k(&pool).as_slice()
        );
        assert_eq!(
            child.dequantize_v(&pool).as_slice(),
            fresh.dequantize_v(&pool).as_slice()
        );
        // Truncating the child below the fork point drops its hold on the
        // shared tail block without freeing it out from under the parent.
        child.truncate(&mut pool, 32);
        assert_eq!(child.reserved_blocks(), 1);
        assert_eq!(parent.dequantize_k(&pool).as_slice(), parent_k.as_slice());
        parent.release(&mut pool);
        child.release(&mut pool);
        fresh.release(&mut pool);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn blocks_needed_for_pushes_budgets_bursts() {
        let mut gen = TensorGenerator::new(98);
        let mut pool = pool(8, 32);
        let data = gen.group_diverse_matrix(40, 64, 16, 0.5);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        assert_eq!(view.blocks_needed_for_pushes(&pool, 0, false), 0);
        assert_eq!(view.blocks_needed_for_pushes(&pool, 1, false), 1);
        assert_eq!(view.blocks_needed_for_pushes(&pool, 33, false), 2);
        for t in 0..30 {
            view.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        // 2 slots left in the current block: a 3-push burst crosses one
        // boundary.
        assert_eq!(view.blocks_needed_for_pushes(&pool, 2, false), 0);
        assert_eq!(view.blocks_needed_for_pushes(&pool, 3, false), 1);
        // Multi-push budget agrees with the single-push primitive.
        assert_eq!(
            view.blocks_needed_for_pushes(&pool, 1, false),
            view.blocks_needed_for_push(&pool)
        );
        // An upcoming checkpoint fork charges the CoW copy up front.
        assert_eq!(view.blocks_needed_for_pushes(&pool, 3, true), 2);
        // A fork makes the partial block shared: one CoW charge on top.
        let mut child = view.fork(&mut pool);
        assert_eq!(view.blocks_needed_for_pushes(&pool, 3, false), 2);
        child.release(&mut pool);
        assert_eq!(view.blocks_needed_for_pushes(&pool, 3, false), 1);
    }

    #[test]
    #[should_panic(expected = "inside a committed V window")]
    fn truncate_inside_committed_window_rejected() {
        let mut pool = pool(4, 32);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        for _ in 0..37 {
            view.push(&mut pool, &[0.5; 64], &[0.5; 64]).unwrap();
        }
        view.truncate(&mut pool, 17);
    }

    #[test]
    #[should_panic(expected = "exceeds cached rows")]
    fn truncate_beyond_len_rejected() {
        let mut pool = pool(4, 32);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        view.push(&mut pool, &[0.5; 64], &[0.5; 64]).unwrap();
        view.truncate(&mut pool, 2);
    }

    #[test]
    fn packed_blocks_hold_double_tokens_per_byte_budget() {
        // The pool's arenas are genuinely nibble-packed: 4 blocks × 32
        // slots × 64 channels hold K and V codes in `slots × kv_dim`
        // bytes total (half a byte per code per side). The pre-packing
        // layout spent one byte per code — `2 × slots × kv_dim` — so an
        // identical byte budget now holds exactly 2× the token slots.
        let pool = pool(4, 32);
        let slots = 4 * 32;
        let packed_bytes = pool.resident_code_bytes();
        assert_eq!(packed_bytes, slots * 64);
        let unpacked_bytes_per_token = 2 * 64; // one byte per K + V code
        let packed_bytes_per_token = packed_bytes / slots;
        assert_eq!(unpacked_bytes_per_token / packed_bytes_per_token, 2);
        // Same budget, twice the tokens: the byte budget that used to back
        // this pool's slots one-per-byte now backs 2× the slots.
        let budget = slots * unpacked_bytes_per_token;
        assert_eq!(budget / packed_bytes_per_token, 2 * slots);
        // And the arithmetic block accounting now matches physical bytes.
        assert_eq!(
            pool.capacity_bits(),
            packed_bytes * 8 + (slots * 4 + (slots / 16) * 64) * 24
        );
    }

    #[test]
    fn bit_accounting() {
        let mut pool = pool(3, 32);
        // Per block: K 32×64×4 + 32×4×24, V 32×64×4 + 2×64×24.
        let expect = 32 * 64 * 4 + 32 * 4 * 24 + 32 * 64 * 4 + 2 * 64 * 24;
        assert_eq!(pool.block_bits(), expect);
        assert_eq!(pool.capacity_bits(), 3 * expect);
        assert_eq!(pool.used_bits(), 0);
        let mut view = PagedKvCache::new(&pool, vmap(), vmap());
        for _ in 0..33 {
            view.push(&mut pool, &[0.5; 64], &[0.5; 64]).unwrap();
        }
        assert_eq!(pool.used_bits(), 2 * expect);
        assert_eq!(pool.blocks_for_tokens(33), 2);
        // Live bits: 33 K rows, 2 committed V windows, 1 staged INT8 row.
        let live = 33 * (64 * 4 + 4 * 24) + 2 * (16 * 64 * 4 + 64 * 24) + 64 * 8;
        assert_eq!(view.used_bits(), live);
        assert!(view.used_bits() <= pool.used_bits());
    }
}

//! Property-based tests for the quantization framework.

use mant_quant::{
    dequant_then_gemv, mant_gemm, mant_gemv, quantize_activations_int8, quantize_vector_int8,
    CandidateSet, KCacheQuantizer, KvCachePool, MantQuantizedMatrix, MantWeightQuantizer,
    PagedKvCache, PoolConfig, VCacheQuantizer, VarianceMap,
};
use mant_tensor::Matrix;
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dequantized MANT weights stay within the group's scaled range and
    /// never blow past 2× the group's max magnitude.
    #[test]
    fn mant_dequantize_bounded(w in small_matrix(4, 64)) {
        let q = MantQuantizedMatrix::quantize(&w, 32, &CandidateSet::paper()).unwrap();
        let deq = q.dequantize();
        for r in 0..4 {
            for g in 0..2 {
                let orig = &w.row(r)[g * 32..(g + 1) * 32];
                let got = &deq.row(r)[g * 32..(g + 1) * 32];
                let amax = orig.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                for &v in got {
                    prop_assert!(v.abs() <= amax * 1.01 + 1e-6,
                        "dequantized {} exceeds group max {}", v, amax);
                }
            }
        }
    }

    /// Quantization error per element is bounded by the worst grid gap.
    #[test]
    fn mant_error_bounded_by_grid_gap(w in small_matrix(2, 32)) {
        let q = MantQuantizedMatrix::quantize(&w, 32, &CandidateSet::paper()).unwrap();
        let deq = q.dequantize();
        for (r, (&x, &y)) in w.as_slice().iter().zip(deq.as_slice()).enumerate() {
            let row = r / 32;
            let meta = q.meta(row, 0);
            // Largest gap between adjacent scaled grid points.
            let grid = meta.dtype.grid();
            let max_gap = grid
                .points()
                .windows(2)
                .map(|p| p[1] - p[0])
                .fold(0.0f32, f32::max) * meta.scale;
            prop_assert!((x - y).abs() <= max_gap / 2.0 + 1e-4,
                "error {} exceeds half max gap {}", (x - y).abs(), max_gap / 2.0);
        }
    }

    /// Fused integer GEMM equals the dequantize-then-GEMM reference.
    #[test]
    fn fused_gemm_exact(x in small_matrix(3, 64), w in small_matrix(2, 64)) {
        let xq = quantize_activations_int8(&x, 32).unwrap();
        let wq = MantWeightQuantizer::new(32).quantize(&w).unwrap();
        let fused = mant_gemm(&xq, &wq).unwrap();
        let reference = mant_quant::dequant_then_gemm(&xq, &wq);
        let scale = reference.as_slice().iter().map(|v| v.abs()).fold(1.0f32, f32::max);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((a - b).abs() / scale < 1e-4, "{} vs {}", a, b);
        }
    }

    /// INT8 activation roundtrip error is within half a quantization step.
    #[test]
    fn int8_activation_half_step(x in small_matrix(2, 32)) {
        let q = quantize_activations_int8(&x, 32).unwrap();
        let deq = q.dequantize();
        for r in 0..2 {
            let scale = q.scale(r, 0);
            for (a, b) in x.row(r).iter().zip(deq.row(r)) {
                prop_assert!((a - b).abs() <= scale * 0.5 + 1e-6);
            }
        }
    }

    /// The K cache preserves vector count and dimension for any sequence.
    #[test]
    fn k_cache_shape(rows in 1usize..20, vals in proptest::collection::vec(-5.0f32..5.0, 20 * 32)) {
        let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let mut kq = KCacheQuantizer::new(32, 16, vmap).unwrap();
        for r in 0..rows {
            kq.push(&vals[r * 32..(r + 1) * 32]);
        }
        let deq = kq.dequantize();
        prop_assert_eq!(deq.shape(), (rows, 32));
    }

    /// Quantized-backend GEMV equals dequantize-then-f32 GEMV within a
    /// tight epsilon (same math, integer-psums-plus-f64 vs f32
    /// accumulation) — the scaled-accumulation half of the backend
    /// equivalence claim.
    #[test]
    fn fused_gemv_tight_epsilon(xv in proptest::collection::vec(-8.0f32..8.0, 64),
                                w in small_matrix(3, 64)) {
        let xq = quantize_vector_int8(&xv, 32).unwrap();
        let wq = MantWeightQuantizer::new(32).quantize(&w).unwrap();
        let fused = mant_gemv(&xq, &wq).unwrap();
        let reference = dequant_then_gemv(&xq, &wq);
        let scale = reference.iter().map(|v| v.abs()).fold(1.0f32, f32::max);
        for (a, b) in fused.iter().zip(reference.iter()) {
            prop_assert!((a - b).abs() / scale < 1e-4, "{} vs {}", a, b);
        }
    }

    /// With pure-integer operands (activation max 127 and weight groups
    /// holding integer levels, so every scale is exactly 1.0) the fused
    /// GEMV is EXACT: integer psums and the f32 reference agree bit for
    /// bit because nothing rounds.
    #[test]
    fn fused_gemv_pure_integer_exact(xints in proptest::collection::vec(-127i32..=127, 32),
                                     wints in proptest::collection::vec(-7i32..=7, 2 * 32)) {
        // Force amax to the grid max in every group so scale_for == 1.0.
        let mut xv: Vec<f32> = xints.iter().map(|&v| v as f32).collect();
        xv[0] = 127.0;
        let mut wv: Vec<f32> = wints.iter().map(|&v| v as f32).collect();
        wv[0] = 7.0;
        wv[32] = -7.0;
        let w = Matrix::from_vec(2, 32, wv);
        let set = CandidateSet::custom(&[], true).unwrap(); // INT4-only groups
        let xq = quantize_vector_int8(&xv, 32).unwrap();
        let wq = MantWeightQuantizer::new(32).with_candidates(set).quantize(&w).unwrap();
        let fused = mant_gemv(&xq, &wq).unwrap();
        let reference = dequant_then_gemv(&xq, &wq);
        for (a, b) in fused.iter().zip(reference.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
    }

    /// The incremental K-cache dot equals the dequantized-row dot against
    /// the same quantized query, within a tight epsilon, at every cached
    /// position.
    #[test]
    fn fused_dot_tight_epsilon(rows in 1usize..8,
                               vals in proptest::collection::vec(-3.0f32..3.0, 8 * 64),
                               qv in proptest::collection::vec(-3.0f32..3.0, 64)) {
        let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let mut kq = KCacheQuantizer::new(64, 32, vmap).unwrap();
        for r in 0..rows {
            kq.push(&vals[r * 64..(r + 1) * 64]);
        }
        let q = quantize_vector_int8(&qv, 32).unwrap();
        let q_deq = q.dequantize();
        let k_deq = kq.dequantize();
        for t in 0..rows {
            let fused = kq.fused_dot(t, &q, 0, 0, 2);
            let reference: f32 = q_deq.iter().zip(k_deq.row(t)).map(|(&a, &b)| a * b).sum();
            prop_assert!((fused - reference).abs() <= reference.abs().max(1.0) * 1e-4,
                "t={}: {} vs {}", t, fused, reference);
        }
    }

    /// The V cache's committed+staged split always accounts for every row.
    #[test]
    fn v_cache_length_invariant(rows in 1usize..40) {
        let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let mut vq = VCacheQuantizer::new(8, 16, vmap).unwrap();
        for i in 0..rows {
            let row: Vec<f32> = (0..8).map(|c| ((i * 8 + c) % 13) as f32 - 6.0).collect();
            vq.push(&row);
        }
        prop_assert_eq!(vq.len(), rows);
        prop_assert_eq!(vq.committed_windows(), rows / 16);
        prop_assert_eq!(vq.window_len(), rows % 16);
        prop_assert_eq!(vq.dequantize().shape(), (rows, 8));
    }
}

/// The allocator invariant the refcounted pool must hold at every moment:
/// every block is either on the free list or held by at least one view,
/// never both, never neither.
fn assert_pool_invariant(pool: &KvCachePool, views: &[PagedKvCache]) {
    let refcounted = (0..pool.total_blocks() as u32)
        .filter(|&b| pool.refcount(b) > 0)
        .count();
    assert_eq!(
        pool.free_blocks() + refcounted,
        pool.total_blocks(),
        "free list + refcounted blocks must cover the pool exactly"
    );
    assert_eq!(pool.used_blocks(), refcounted);
    // Every held block id is sane and live, and total holds equal the sum
    // of refcounts.
    let holds: usize = views.iter().map(PagedKvCache::reserved_blocks).sum();
    let refs_total: usize = (0..pool.total_blocks() as u32)
        .map(|b| pool.refcount(b) as usize)
        .sum();
    assert_eq!(holds, refs_total, "view holds must equal summed refcounts");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Alloc/free churn under random join / push / fork / leave never
    /// leaks or double-frees a block: `free + #{refcount > 0} == capacity`
    /// after every operation, and releasing every survivor empties the
    /// pool completely.
    #[test]
    fn pool_churn_never_leaks_blocks(
        ops in proptest::collection::vec((0usize..4, 0usize..8, 1usize..20), 60),
    ) {
        let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let pool_cfg = PoolConfig { kv_dim: 16, group_size: 8, block_tokens: 8, blocks: 12 };
        let mut pool = KvCachePool::new(pool_cfg).unwrap();
        let mut views: Vec<PagedKvCache> = Vec::new();
        let mut stamp = 0usize;
        for &(op, pick, count) in &ops {
            match op {
                // Join: a new empty view (bounded so forks still happen).
                0 if views.len() < 6 => {
                    views.push(PagedKvCache::new(&pool, vmap.clone(), vmap.clone()));
                }
                // Push: grow a view until done or the pool runs dry.
                1 if !views.is_empty() => {
                    let i = pick % views.len();
                    let v = &mut views[i];
                    for _ in 0..count {
                        stamp += 1;
                        let row: Vec<f32> =
                            (0..16).map(|c| ((stamp * 7 + c) % 11) as f32 - 5.0).collect();
                        if v.push(&mut pool, &row, &row).is_err() {
                            break; // exhaustion is legal; state must stay consistent
                        }
                    }
                }
                // Fork: share every block copy-on-write.
                2 if !views.is_empty() && views.len() < 6 => {
                    let child = views[pick % views.len()].fork(&mut pool);
                    views.push(child);
                }
                // Leave: release a view's holds.
                3 if !views.is_empty() => {
                    let i = pick % views.len();
                    views[i].release(&mut pool);
                    views.remove(i);
                }
                _ => {}
            }
            assert_pool_invariant(&pool, &views);
        }
        for v in &mut views {
            v.release(&mut pool);
        }
        assert_eq!(pool.free_blocks(), pool.total_blocks(), "survivor release must drain to empty");
        assert_eq!(pool.shared_blocks(), 0);
    }

    /// Fork-then-diverge is byte-identical to two caches that never met:
    /// a parent forked at a random point, each side continuing on its own
    /// rows, must dequantize exactly like independent owned quantizers fed
    /// the same streams (CoW isolation leaves no trace).
    #[test]
    fn fork_then_diverge_matches_independent_caches(
        prefix_rows in 1usize..40,
        a_rows in 1usize..20,
        b_rows in 1usize..20,
        seed in 0u64..500,
    ) {
        let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let mut gen = mant_tensor::TensorGenerator::new(seed);
        let pool_cfg = PoolConfig { kv_dim: 32, group_size: 8, block_tokens: 16, blocks: 16 };
        let mut pool = KvCachePool::new(pool_cfg).unwrap();
        let prefix = gen.group_diverse_matrix(prefix_rows, 32, 8, 0.5);
        let a_tail = gen.group_diverse_matrix(a_rows, 32, 8, 0.6);
        let b_tail = gen.group_diverse_matrix(b_rows, 32, 8, 0.8);

        let mut a = PagedKvCache::new(&pool, vmap.clone(), vmap.clone());
        for t in 0..prefix_rows {
            a.push(&mut pool, prefix.row(t), prefix.row(t)).unwrap();
        }
        let mut b = a.fork(&mut pool);
        for t in 0..a_rows.max(b_rows) {
            if t < a_rows {
                a.push(&mut pool, a_tail.row(t), a_tail.row(t)).unwrap();
            }
            if t < b_rows {
                b.push(&mut pool, b_tail.row(t), b_tail.row(t)).unwrap();
            }
        }
        for (view, tail, rows) in [(&a, &a_tail, a_rows), (&b, &b_tail, b_rows)] {
            let mut kq = KCacheQuantizer::new(32, 8, vmap.clone()).unwrap();
            let mut vq = VCacheQuantizer::new(32, 8, vmap.clone()).unwrap();
            for t in 0..prefix_rows {
                kq.push(prefix.row(t));
                vq.push(prefix.row(t));
            }
            for t in 0..rows {
                kq.push(tail.row(t));
                vq.push(tail.row(t));
            }
            let (paged_k, owned_k) = (view.dequantize_k(&pool), kq.dequantize());
            let (paged_v, owned_v) = (view.dequantize_v(&pool), vq.dequantize());
            prop_assert_eq!(paged_k.as_slice(), owned_k.as_slice());
            prop_assert_eq!(paged_v.as_slice(), owned_v.as_slice());
        }
        a.release(&mut pool);
        b.release(&mut pool);
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());
    }

    /// Speculative-rollback soundness: truncating a forked/CoW paged cache
    /// is bit-identical to replaying a fresh cache to the same length —
    /// for cuts landing inside a shared block, inside the V staging
    /// window, and at committed-window boundaries — and stays identical
    /// as both caches keep pushing (the replayed staging scales/stats
    /// drive the next commit exactly). The surviving parent is never
    /// perturbed, and no block leaks.
    #[test]
    fn truncate_on_forked_cache_matches_fresh_replay(
        prefix_rows in 1usize..40,
        extra_rows in 0usize..24,
        cut_back in 0usize..24,
        continue_rows in 0usize..20,
        seed in 0u64..500,
    ) {
        let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
        let mut gen = mant_tensor::TensorGenerator::new(seed ^ 0xa11);
        let pool_cfg = PoolConfig { kv_dim: 32, group_size: 8, block_tokens: 16, blocks: 24 };
        let mut pool = KvCachePool::new(pool_cfg).unwrap();
        let g = pool_cfg.group_size;
        let total = prefix_rows + extra_rows + continue_rows;
        let data = gen.group_diverse_matrix(total.max(1), 32, 8, 0.5);

        let mut parent = PagedKvCache::new(&pool, vmap.clone(), vmap.clone());
        for t in 0..prefix_rows {
            parent.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        let mut child = parent.fork(&mut pool);
        for t in prefix_rows..prefix_rows + extra_rows {
            child.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        // Clamp the cut to a representable length: anywhere in the child's
        // staging region, or a committed-window boundary below it.
        let rows = prefix_rows + extra_rows;
        let committed_len = (rows / g) * g;
        let want = rows.saturating_sub(cut_back);
        let len = if want >= committed_len { want } else { (want / g) * g };
        child.truncate(&mut pool, len);

        let parent_k = parent.dequantize_k(&pool);
        let mut fresh = PagedKvCache::new(&pool, vmap.clone(), vmap.clone());
        for t in 0..len {
            fresh.push(&mut pool, data.row(t), data.row(t)).unwrap();
        }
        prop_assert_eq!(child.len(), fresh.len());
        prop_assert_eq!(child.committed_windows(), fresh.committed_windows());
        let (child_k, fresh_k) = (child.dequantize_k(&pool), fresh.dequantize_k(&pool));
        let (child_v, fresh_v) = (child.dequantize_v(&pool), fresh.dequantize_v(&pool));
        prop_assert_eq!(child_k.as_slice(), fresh_k.as_slice());
        prop_assert_eq!(child_v.as_slice(), fresh_v.as_slice());
        // Staging-region cuts replay exactly: continuing both caches on
        // identical rows (through further commits) stays bit-identical.
        if len >= committed_len {
            for t in 0..continue_rows {
                let row = data.row(prefix_rows + extra_rows + t);
                child.push(&mut pool, row, row).unwrap();
                fresh.push(&mut pool, row, row).unwrap();
            }
            let (child_k, fresh_k) = (child.dequantize_k(&pool), fresh.dequantize_k(&pool));
            let (child_v, fresh_v) = (child.dequantize_v(&pool), fresh.dequantize_v(&pool));
            prop_assert_eq!(child_k.as_slice(), fresh_k.as_slice());
            prop_assert_eq!(child_v.as_slice(), fresh_v.as_slice());
        }
        // The parent never moved.
        let parent_k_after = parent.dequantize_k(&pool);
        prop_assert_eq!(parent_k_after.as_slice(), parent_k.as_slice());
        child.release(&mut pool);
        fresh.release(&mut pool);
        parent.release(&mut pool);
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());
    }
}

//! Allocator-invariant property tests for the refcounted paged KV pool,
//! including truncate/rollback churn and (under `fault-inject`) forced
//! `PoolExhausted` verdicts from the installed fault plan.
//!
//! The invariant under test, from the allocator's own docs:
//! `free.len() + #{blocks with refcount > 0} == total blocks` — every
//! block is either on the free list or held by at least one view, never
//! both, never neither.

use mant_quant::{CandidateSet, KvCachePool, PagedKvCache, PoolConfig, QuantError, VarianceMap};
use proptest::prelude::*;

/// Asserts the allocator invariant plus hold/refcount accounting.
fn assert_pool_invariant(pool: &KvCachePool, views: &[PagedKvCache]) {
    let refcounted = (0..pool.total_blocks() as u32)
        .filter(|&b| pool.refcount(b) > 0)
        .count();
    assert_eq!(
        pool.free_blocks() + refcounted,
        pool.total_blocks(),
        "free list + refcounted blocks must cover the pool exactly"
    );
    assert_eq!(pool.used_blocks(), refcounted);
    let holds: usize = views.iter().map(PagedKvCache::reserved_blocks).sum();
    let refs_total: usize = (0..pool.total_blocks() as u32)
        .map(|b| pool.refcount(b) as usize)
        .sum();
    assert_eq!(holds, refs_total, "view holds must equal summed refcounts");
}

/// One churn pass over a small pool: alloc (join), push (grow), fork
/// (retain/CoW), truncate (rollback), release (leave). Any `Err` from
/// `push` — organic exhaustion on this deliberately tiny pool, or an
/// injected `PoolExhausted` when a fault plan is installed — must leave
/// the allocator consistent, which is also what makes this test immune
/// to a concurrently-installed plan in `fault-inject` builds.
fn churn(ops: &[(usize, usize, usize)], blocks: usize) -> Result<(), TestCaseError> {
    let vmap = VarianceMap::analytic(&CandidateSet::paper()).unwrap();
    let pool_cfg = PoolConfig {
        kv_dim: 16,
        group_size: 8,
        block_tokens: 8,
        blocks,
    };
    let mut pool = KvCachePool::new(pool_cfg).unwrap();
    let mut views: Vec<PagedKvCache> = Vec::new();
    let mut stamp = 0usize;
    let mut exhausted = 0usize;
    for &(op, pick, count) in ops {
        match op {
            0 if views.len() < 6 => {
                views.push(PagedKvCache::new(&pool, vmap.clone(), vmap.clone()));
            }
            1 if !views.is_empty() => {
                let i = pick % views.len();
                let v = &mut views[i];
                for _ in 0..count {
                    stamp += 1;
                    let row: Vec<f32> = (0..16)
                        .map(|c| ((stamp * 7 + c) % 11) as f32 - 5.0)
                        .collect();
                    match v.push(&mut pool, &row, &row) {
                        Ok(()) => {}
                        Err(QuantError::PoolExhausted { .. }) => {
                            exhausted += 1;
                            break;
                        }
                        Err(e) => return Err(format!("unexpected push error: {e}")),
                    }
                }
            }
            2 if !views.is_empty() && views.len() < 6 => {
                let child = views[pick % views.len()].fork(&mut pool);
                views.push(child);
            }
            3 if !views.is_empty() => {
                // Truncate: the speculative-rollback path. Cutting a
                // forked view exercises CoW un-sharing; cuts below the
                // committed V region must land on a window boundary (the
                // documented contract), so round those down.
                let i = pick % views.len();
                let len = views[i].len();
                let mut target = len.saturating_sub(count);
                let committed = views[i].committed_windows() * views[i].group_size();
                if target < committed {
                    target -= target % views[i].group_size();
                }
                views[i].truncate(&mut pool, target);
            }
            4 if !views.is_empty() => {
                let i = pick % views.len();
                views[i].release(&mut pool);
                views.remove(i);
            }
            _ => {}
        }
        assert_pool_invariant(&pool, &views);
    }
    // Exhaustion is expected on a tiny pool; the point is the invariant
    // held at the moment it surfaced.
    let _ = exhausted;
    for v in &mut views {
        v.release(&mut pool);
    }
    prop_assert_eq!(
        pool.free_blocks(),
        pool.total_blocks(),
        "survivor release must drain to empty"
    );
    prop_assert_eq!(pool.shared_blocks(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized alloc / push / fork / truncate / release churn with
    /// organic `PoolExhausted` on an undersized pool: the allocator
    /// invariant holds after every single operation and the pool drains
    /// to empty at the end.
    #[test]
    fn pool_invariant_under_churn_with_truncate(
        ops in proptest::collection::vec((0usize..5, 0usize..8, 1usize..20), 80),
        blocks in 6usize..16,
    ) {
        churn(&ops, blocks)?;
    }
}

/// The same churn under a seeded fault plan forcing `PoolExhausted` from
/// `pool.alloc` at plan-chosen pushes — errors now surface at points the
/// organic path would have succeeded, and the invariant must still hold
/// at every step. The plan is installed only for this test's duration.
#[cfg(feature = "fault-inject")]
#[test]
fn pool_invariant_with_injected_exhaustion() {
    use mant_trace::fault::{self, site, FaultPlan, SiteRule};

    for seed in [7u64, 21, 1234] {
        fault::install(
            FaultPlan::new().with_site(site::POOL_ALLOC, SiteRule::every(3).with_limit(u64::MAX)),
        );
        // A deterministic op tape (seed-mixed) so each seed exercises a
        // different interleaving of injected failures and churn.
        let ops: Vec<(usize, usize, usize)> = (0..120)
            .map(|i| {
                let x = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xbf58476d1ce4e5b9);
                (
                    (x % 5) as usize,
                    ((x >> 8) % 8) as usize,
                    1 + ((x >> 16) % 19) as usize,
                )
            })
            .collect();
        let result = churn(&ops, 12);
        let injected = fault::fires(site::POOL_ALLOC);
        fault::clear();
        result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            injected > 0,
            "seed {seed}: the plan never fired — the churn tape pushed nothing"
        );
    }
}

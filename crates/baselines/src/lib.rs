//! Baseline quantizers for the M-ANT evaluation (paper Sec. VII).
//!
//! Every method the paper compares against, implemented behind the same
//! [`FakeQuantizer`](mant_quant::FakeQuantizer) interface as MANT itself:
//!
//! - [`AntQuantizer`]: ANT (MICRO'22) — adaptive selection among
//!   INT4 / flint4 / PoT4 per tensor, channel, or group;
//! - [`OliveQuantizer`]: OliVe (ISCA'23) — outlier-victim pairs with the
//!   outlier stored in `abfloat`;
//! - [`TenderQuantizer`]: Tender (ISCA'24) — channel chunks whose group
//!   scales are power-of-two multiples of a chunk base scale, enabling
//!   shift-based requantization;
//! - [`GoboQuantizer`]: GOBO (MICRO'20) — k-means codebooks with a small
//!   FP16 outlier set;
//! - [`MokeyQuantizer`]: Mokey (ISCA'22) — one "golden dictionary"
//!   codebook shared by the whole tensor;
//! - [`BitFusionQuantizer`]: plain symmetric INT at 4/8/16 bits;
//! - [`MxfpQuantizer`]: MXFP4 — E2M1 elements under an E8M0 (power-of-two)
//!   shared scale;
//! - [`IdealKMeansQuantizer`]: the per-group clustering oracle of Fig. 2
//!   ("Ideal"), accuracy-optimal but needing per-group codebooks.

pub mod ant;
pub mod bitfusion;
pub mod gobo;
pub mod kmeans;
pub mod mokey;
pub mod mxfp;
pub mod olive;
pub mod tender;

pub use ant::AntQuantizer;
pub use bitfusion::BitFusionQuantizer;
pub use gobo::GoboQuantizer;
pub use kmeans::{kmeans_1d, IdealKMeansQuantizer};
pub use mokey::MokeyQuantizer;
pub use mxfp::MxfpQuantizer;
pub use olive::OliveQuantizer;
pub use tender::TenderQuantizer;

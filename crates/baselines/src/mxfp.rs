//! MXFP4: microscaling float with an E8M0 shared scale.
//!
//! Like group quantization, but the per-block scale is constrained to a
//! power of two (an 8-bit exponent). The paper's Tbl. V measures the cost:
//! at G-32, MXFP4's PPL (7.16) is far worse than INT4 with FP16 scales
//! (5.95) because the scale rounds *up* to the next binade, wasting up to
//! half the grid range.

use mant_numerics::{e8m0_quantize_scale, fp4_e2m1_grid};
use mant_quant::FakeQuantizer;
use mant_tensor::{abs_max, Matrix};

/// The MXFP4 quantizer (E2M1 elements, E8M0 block scale).
#[derive(Clone, Debug)]
pub struct MxfpQuantizer {
    group_size: usize,
}

impl MxfpQuantizer {
    /// Creates an MXFP4 quantizer; the OCP spec's block size is 32.
    pub fn new(group_size: usize) -> Self {
        MxfpQuantizer { group_size }
    }
}

impl Default for MxfpQuantizer {
    fn default() -> Self {
        MxfpQuantizer { group_size: 32 }
    }
}

impl FakeQuantizer for MxfpQuantizer {
    fn name(&self) -> String {
        format!("MXFP4-g{}", self.group_size)
    }

    fn bits_per_element(&self, _inner_dim: usize) -> f64 {
        // 4-bit element + 8-bit E8M0 scale per block.
        4.0 + 8.0 / self.group_size as f64
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        assert!(
            self.group_size > 0 && w.cols().is_multiple_of(self.group_size),
            "group size must divide the inner dimension"
        );
        let grid = fp4_e2m1_grid();
        let elem_max = grid.max_abs();
        let mut out = w.clone();
        for r in 0..w.rows() {
            let row = w.row(r).to_vec();
            let orow = out.row_mut(r);
            for (gin, gout) in row
                .chunks_exact(self.group_size)
                .zip(orow.chunks_exact_mut(self.group_size))
            {
                let amax = abs_max(gin);
                if amax == 0.0 {
                    gout.fill(0.0);
                    continue;
                }
                let scale = e8m0_quantize_scale(amax / elem_max);
                for (o, &x) in gout.iter_mut().zip(gin.iter()) {
                    *o = grid.quantize(x / scale) * scale;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::int4_grid;
    use mant_quant::{Granularity, GridQuantizer};
    use mant_tensor::{mse, TensorGenerator};

    #[test]
    fn e8m0_scale_costs_accuracy_vs_fp16_scale_int() {
        // Tbl. V, G-32 column: MXFP4 worse than group INT4 with FP16 scale.
        let mut g = TensorGenerator::new(151);
        let w = g.group_diverse_matrix(8, 256, 32, 0.02);
        let mxfp = MxfpQuantizer::new(32);
        let int4 = GridQuantizer::new("int4-g32", int4_grid(), 4, Granularity::Group(32));
        let err_m = mse(w.as_slice(), mxfp.fake_quantize(&w).as_slice());
        let err_i = mse(w.as_slice(), int4.fake_quantize(&w).as_slice());
        assert!(err_m > err_i, "MXFP {err_m} should exceed INT4 {err_i}");
    }

    #[test]
    fn values_within_scaled_range() {
        let mut g = TensorGenerator::new(152);
        let w = g.matrix(2, 64, mant_tensor::DistributionKind::Gaussian, 1.0);
        let q = MxfpQuantizer::new(32).fake_quantize(&w);
        for r in 0..2 {
            for gi in 0..2 {
                let orig = &w.row(r)[gi * 32..(gi + 1) * 32];
                let quant = &q.row(r)[gi * 32..(gi + 1) * 32];
                let amax = abs_max(orig);
                // E8M0 rounds up: representable range covers the block max.
                for &v in quant {
                    assert!(v.abs() <= amax * 2.0 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn zero_blocks() {
        let w = Matrix::zeros(1, 32);
        let q = MxfpQuantizer::default().fake_quantize(&w);
        assert!(q.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bits_accounting() {
        assert_eq!(MxfpQuantizer::new(32).bits_per_element(4096), 4.25);
    }
}

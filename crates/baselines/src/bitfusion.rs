//! BitFusion (ISCA'18): the plain mixed-precision INT baseline.
//!
//! BitFusion contributes composable low-bit PEs, not a data type: its
//! quantization is plain symmetric INT at whatever bit width accuracy
//! requires (8 and 16 bits for LLMs, per the paper's Fig. 12 discussion).

use mant_numerics::uniform_symmetric_grid;
use mant_quant::quantizer::fake_quantize_group;
use mant_quant::{FakeQuantizer, Granularity};
use mant_tensor::Matrix;

/// Plain symmetric INT quantizer at an arbitrary bit width.
#[derive(Clone, Debug)]
pub struct BitFusionQuantizer {
    bits: u8,
    granularity: Granularity,
}

impl BitFusionQuantizer {
    /// Creates an INT quantizer with `bits ∈ [2, 16]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn new(bits: u8, granularity: Granularity) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in [2, 16]");
        BitFusionQuantizer { bits, granularity }
    }

    /// The symmetric integer maximum, `2^(bits−1) − 1`.
    pub fn int_max(&self) -> u32 {
        (1u32 << (self.bits - 1)) - 1
    }
}

impl FakeQuantizer for BitFusionQuantizer {
    fn name(&self) -> String {
        format!("INT{}", self.bits)
    }

    fn bits_per_element(&self, inner_dim: usize) -> f64 {
        f64::from(self.bits) + self.granularity.scale_bits_per_element(inner_dim, 1)
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        let grid = uniform_symmetric_grid(self.int_max());
        let mut out = w.clone();
        match self.granularity {
            Granularity::Tensor => {
                let unit = w.as_slice().to_vec();
                fake_quantize_group(&grid, &unit, out.as_mut_slice());
            }
            _ => {
                let span = self
                    .granularity
                    .span(w.cols())
                    .expect("granularity must divide inner dim");
                for r in 0..w.rows() {
                    let row = w.row(r).to_vec();
                    let orow = out.row_mut(r);
                    for (gin, gout) in row.chunks_exact(span).zip(orow.chunks_exact_mut(span)) {
                        fake_quantize_group(&grid, gin, gout);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_tensor::{mse, DistributionKind, TensorGenerator};

    #[test]
    fn int_max_values() {
        assert_eq!(BitFusionQuantizer::new(4, Granularity::Tensor).int_max(), 7);
        assert_eq!(
            BitFusionQuantizer::new(8, Granularity::Tensor).int_max(),
            127
        );
        assert_eq!(
            BitFusionQuantizer::new(16, Granularity::Tensor).int_max(),
            32767
        );
    }

    #[test]
    fn error_shrinks_with_bits() {
        let mut g = TensorGenerator::new(141);
        let w = g.matrix(4, 128, DistributionKind::Gaussian, 1.0);
        let mut last = f64::INFINITY;
        for bits in [4u8, 8, 16] {
            let q = BitFusionQuantizer::new(bits, Granularity::Channel);
            let err = mse(w.as_slice(), q.fake_quantize(&w).as_slice());
            assert!(err < last, "INT{bits} error {err} not below {last}");
            last = err;
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_bad_bits() {
        let _ = BitFusionQuantizer::new(1, Granularity::Tensor);
    }

    #[test]
    fn int16_near_lossless() {
        let mut g = TensorGenerator::new(142);
        let w = g.matrix(2, 64, DistributionKind::Gaussian, 1.0);
        let q = BitFusionQuantizer::new(16, Granularity::Channel);
        let err = mse(w.as_slice(), q.fake_quantize(&w).as_slice());
        let power = mse(w.as_slice(), &vec![0.0; w.len()]);
        assert!(err / power < 1e-7);
    }
}

//! OliVe (ISCA'23): outlier-victim pair quantization.
//!
//! OliVe's insight: outliers matter, their immediate neighbors ("victims")
//! don't. Within each adjacent pair, if one element is an outlier it is
//! stored in the wide-range `abfloat` format and its partner is sacrificed
//! (pruned to zero) to make code space; normal values use INT. The scale is
//! derived from the *normal* values only, so outliers no longer stretch the
//! grid.
//!
//! As the paper's Tbl. V discusses, shrinking the group size erodes OliVe's
//! advantage: group scales already tame outliers, so the sacrificed victims
//! start to cost more than the protected outliers gain.

use mant_numerics::{AbFloat, Grid};
use mant_quant::{FakeQuantizer, Granularity};
use mant_tensor::{abs_max, Matrix};

/// The OliVe quantizer.
#[derive(Clone, Debug)]
pub struct OliveQuantizer {
    bits: u8,
    granularity: Granularity,
    outlier_threshold_sigmas: f32,
}

impl OliveQuantizer {
    /// 4-bit OliVe at the given granularity (the paper's Tbl. II uses
    /// channel-wise weights / tensor-wise activations; Tbl. V group-wise).
    pub fn w4(granularity: Granularity) -> Self {
        OliveQuantizer {
            bits: 4,
            granularity,
            outlier_threshold_sigmas: 3.0,
        }
    }

    /// 8-bit OliVe.
    pub fn w8(granularity: Granularity) -> Self {
        OliveQuantizer {
            bits: 8,
            granularity,
            outlier_threshold_sigmas: 3.0,
        }
    }

    /// Overrides the outlier threshold (in standard deviations).
    pub fn with_threshold(mut self, sigmas: f32) -> Self {
        self.outlier_threshold_sigmas = sigmas;
        self
    }

    fn int_max(&self) -> f32 {
        if self.bits == 8 {
            127.0
        } else {
            7.0
        }
    }

    fn quantize_unit(&self, unit: &[f32], out: &mut [f32]) {
        let n = unit.len();
        if n == 0 {
            return;
        }
        // Identify outliers: beyond k·σ of the unit.
        let mean: f64 = unit.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
        let var: f64 = unit
            .iter()
            .map(|&v| (f64::from(v) - mean) * (f64::from(v) - mean))
            .sum::<f64>()
            / n as f64;
        let sigma = var.sqrt() as f32;
        let thresh = self.outlier_threshold_sigmas * sigma;
        let is_outlier: Vec<bool> = unit
            .iter()
            .map(|&v| v.abs() > thresh && thresh > 0.0)
            .collect();

        // Scale from normal values only.
        let normal_max = unit
            .iter()
            .zip(is_outlier.iter())
            .filter(|&(_, &o)| !o)
            .map(|(&v, _)| v.abs())
            .fold(0.0f32, f32::max);
        let scale = if normal_max == 0.0 {
            abs_max(unit).max(f32::MIN_POSITIVE) / self.int_max()
        } else {
            normal_max / self.int_max()
        };

        // abfloat grid for outliers, scaled by the same unit scale so both
        // populations share the MAC datapath (OliVe's key hardware trick).
        // The format matches the normal bit width (4- or 8-bit abfloat) and
        // its exponent bias is *adaptive* (the "ab" in abfloat): chosen per
        // unit so the largest outlier is representable.
        let outlier_max = unit
            .iter()
            .zip(is_outlier.iter())
            .filter(|&(_, &o)| o)
            .map(|(&v, _)| v.abs())
            .fold(0.0f32, f32::max);
        let base = AbFloat::with_bits(self.bits, 2, 0).expect("2 exponent bits fit");
        let base_max = base.grid().max_abs();
        let ab = if outlier_max > 0.0 {
            let needed = (outlier_max / scale / base_max).log2().ceil() as i32;
            AbFloat::with_bits(self.bits, 2, needed.max(0)).expect("2 exponent bits fit")
        } else {
            AbFloat::with_bits(self.bits, 2, 4).expect("2 exponent bits fit")
        };
        let ab_grid: Grid = ab.grid();

        let mut i = 0usize;
        while i < n {
            let pair_end = (i + 2).min(n);
            // Does this pair contain an outlier? (First one wins.)
            let out_idx = (i..pair_end).find(|&j| is_outlier[j]);
            match out_idx {
                Some(j) if pair_end - i == 2 => {
                    let victim = if j == i { i + 1 } else { i };
                    out[victim] = 0.0;
                    out[j] = ab_grid.quantize(unit[j] / scale) * scale;
                }
                _ => {
                    for j in i..pair_end {
                        let q = (unit[j] / scale)
                            .round()
                            .clamp(-self.int_max(), self.int_max());
                        out[j] = q * scale;
                    }
                }
            }
            i = pair_end;
        }
    }
}

impl FakeQuantizer for OliveQuantizer {
    fn name(&self) -> String {
        match self.granularity {
            Granularity::Group(g) => format!("OliVe{}-g{g}", self.bits),
            Granularity::Channel => format!("OliVe{}-ch", self.bits),
            Granularity::Tensor => format!("OliVe{}-t", self.bits),
        }
    }

    fn bits_per_element(&self, inner_dim: usize) -> f64 {
        f64::from(self.bits) + self.granularity.scale_bits_per_element(inner_dim, 1)
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        let mut out = w.clone();
        match self.granularity {
            Granularity::Tensor => {
                let unit = w.as_slice().to_vec();
                self.quantize_unit(&unit, out.as_mut_slice());
            }
            _ => {
                let span = self
                    .granularity
                    .span(w.cols())
                    .expect("granularity must divide inner dim");
                for r in 0..w.rows() {
                    let row = w.row(r).to_vec();
                    let orow = out.row_mut(r);
                    for (gin, gout) in row.chunks_exact(span).zip(orow.chunks_exact_mut(span)) {
                        self.quantize_unit(gin, gout);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::int4_grid;
    use mant_quant::GridQuantizer;
    use mant_tensor::{mse, TensorGenerator};

    #[test]
    fn handles_outliers_better_than_int_at_channel_level() {
        // Channel-wise data with planted outliers: INT4's scale explodes,
        // OliVe's does not.
        let mut g = TensorGenerator::new(101);
        let mut x = g.matrix(4, 256, mant_tensor::DistributionKind::Gaussian, 1.0);
        for r in 0..4 {
            x[(r, 17)] = 40.0;
            x[(r, 200)] = -35.0;
        }
        let olive = OliveQuantizer::w4(Granularity::Channel);
        let int4 = GridQuantizer::new("int4", int4_grid(), 4, Granularity::Channel);
        let err_o = mse(x.as_slice(), olive.fake_quantize(&x).as_slice());
        let err_i = mse(x.as_slice(), int4.fake_quantize(&x).as_slice());
        assert!(err_o < err_i / 2.0, "OliVe {err_o} vs INT4 {err_i}");
    }

    #[test]
    fn victims_are_zeroed_next_to_outliers() {
        let unit = vec![0.5f32, 0.4, 30.0, 0.3, -0.2, 0.1];
        let q = OliveQuantizer::w4(Granularity::Channel);
        let m = Matrix::from_vec(1, 6, unit);
        let out = q.fake_quantize(&m);
        // Element 2 is the outlier (pair {2,3}); element 3 is the victim.
        assert_eq!(out[(0, 3)], 0.0);
        assert!(out[(0, 2)].abs() > 7.0 * out[(0, 0)].abs());
    }

    #[test]
    fn no_outliers_means_plain_int() {
        let m = Matrix::from_vec(1, 4, vec![1.0, -1.0, 0.5, -0.5]);
        let q = OliveQuantizer::w4(Granularity::Channel).with_threshold(100.0);
        let out = q.fake_quantize(&m);
        // Uniform-ish data, no value crosses 100σ: nothing is zeroed.
        assert!(out.as_slice().iter().all(|&v| v != 0.0));
    }

    #[test]
    fn group_wise_olive_loses_its_edge() {
        // Tbl. V: once groups are small, scales already absorb outliers and
        // the victim cost shows. OliVe-g32 should NOT beat INT4-g32 by much
        // (and is often worse) on group-diverse data without extreme outliers.
        let mut g = TensorGenerator::new(102);
        let w = g.group_diverse_matrix(8, 256, 32, 0.02);
        let olive = OliveQuantizer::w4(Granularity::Group(32));
        let int4 = GridQuantizer::new("int4", int4_grid(), 4, Granularity::Group(32));
        let err_o = mse(w.as_slice(), olive.fake_quantize(&w).as_slice());
        let err_i = mse(w.as_slice(), int4.fake_quantize(&w).as_slice());
        assert!(
            err_o > err_i * 0.5,
            "group-wise OliVe unexpectedly dominant: {err_o} vs {err_i}"
        );
    }

    #[test]
    fn shape_preserved() {
        let m = Matrix::zeros(3, 64);
        let q = OliveQuantizer::w8(Granularity::Group(32));
        assert_eq!(q.fake_quantize(&m).shape(), (3, 64));
        assert_eq!(q.name(), "OliVe8-g32");
    }
}

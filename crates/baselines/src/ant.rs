//! ANT (MICRO'22): adaptive selection among INT, flint, and PoT.
//!
//! ANT packages a small set of fixed data types and picks, per quantization
//! unit, the one minimizing MSE: INT for uniform, PoT for Laplace, flint
//! for Gaussian distributions. In its original form the unit is a tensor
//! (activations) or channel (weights); the paper's Sec. VII-D extension
//! applies it per group for weights, while activations can still only pick
//! one type per tensor because ANT has no real-time type-selection
//! hardware.

use mant_numerics::{flint4_grid, int4_grid, int8_grid, pot4_grid, uniform_symmetric_grid, Grid};
use mant_quant::quantizer::fake_quantize_group;
use mant_quant::{FakeQuantizer, Granularity};
use mant_tensor::Matrix;

/// The ANT quantizer.
#[derive(Clone, Debug)]
pub struct AntQuantizer {
    bits: u8,
    granularity: Granularity,
}

impl AntQuantizer {
    /// 4-bit ANT selecting per `granularity` unit.
    pub fn w4(granularity: Granularity) -> Self {
        AntQuantizer {
            bits: 4,
            granularity,
        }
    }

    /// 8-bit ANT. The paper notes 8-bit ANT degenerates to INT ("ANT*"):
    /// its 8-bit mode does not adaptively select types.
    pub fn w8(granularity: Granularity) -> Self {
        AntQuantizer {
            bits: 8,
            granularity,
        }
    }

    /// The candidate grids for this bit width.
    fn candidate_grids(&self) -> Vec<Grid> {
        if self.bits == 8 {
            vec![int8_grid()]
        } else {
            vec![int4_grid(), flint4_grid(), pot4_grid()]
        }
    }

    /// Quantizes one unit with the best of the candidate grids.
    fn quantize_unit(grids: &[Grid], unit: &[f32], out: &mut [f32]) {
        let mut best_err = f64::INFINITY;
        let mut tmp = vec![0.0f32; unit.len()];
        for grid in grids {
            fake_quantize_group(grid, unit, &mut tmp);
            let err: f64 = unit
                .iter()
                .zip(tmp.iter())
                .map(|(&a, &b)| {
                    let d = f64::from(a - b);
                    d * d
                })
                .sum();
            if err < best_err {
                best_err = err;
                out.copy_from_slice(&tmp);
            }
        }
    }
}

impl FakeQuantizer for AntQuantizer {
    fn name(&self) -> String {
        match self.granularity {
            Granularity::Group(g) => format!("ANT{}-g{g}", self.bits),
            Granularity::Channel => format!("ANT{}-ch", self.bits),
            Granularity::Tensor => format!("ANT{}-t", self.bits),
        }
    }

    fn bits_per_element(&self, inner_dim: usize) -> f64 {
        // Scale (16b) + 2-bit type selector per unit.
        f64::from(self.bits) + self.granularity.scale_bits_per_element(inner_dim, 1) * 18.0 / 16.0
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        let grids = self.candidate_grids();
        let mut out = w.clone();
        match self.granularity {
            Granularity::Tensor => {
                let unit = w.as_slice().to_vec();
                Self::quantize_unit(&grids, &unit, out.as_mut_slice());
            }
            _ => {
                let span = self
                    .granularity
                    .span(w.cols())
                    .expect("granularity must divide inner dim");
                for r in 0..w.rows() {
                    let row = w.row(r).to_vec();
                    let orow = out.row_mut(r);
                    for (gin, gout) in row.chunks_exact(span).zip(orow.chunks_exact_mut(span)) {
                        Self::quantize_unit(&grids, gin, gout);
                    }
                }
            }
        }
        out
    }
}

/// The grid sets ANT can express, exposed for analysis binaries.
pub fn ant4_grids() -> [(&'static str, Grid); 3] {
    [
        ("int4", int4_grid()),
        ("flint4", flint4_grid()),
        ("pot4", pot4_grid()),
    ]
}

/// 16-bit symmetric reference grid (what ANT/OliVe use for the layers they
/// leave unquantized).
pub fn int16_grid() -> Grid {
    uniform_symmetric_grid(32767)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_quant::GridQuantizer;
    use mant_tensor::{mse, DistributionKind, TensorGenerator};

    #[test]
    fn ant_beats_single_type_on_mixed_data() {
        let mut g = TensorGenerator::new(91);
        // Alternate Laplace and uniform groups: no single type fits both.
        let mut data = Vec::new();
        for i in 0..32 {
            let kind = if i % 2 == 0 {
                DistributionKind::Laplace
            } else {
                DistributionKind::Uniform
            };
            for _ in 0..64 {
                data.push(g.sample(kind, 0.1));
            }
        }
        let w = Matrix::from_vec(8, 256, data);
        let ant = AntQuantizer::w4(Granularity::Group(64));
        let int4 = GridQuantizer::new("int4", int4_grid(), 4, Granularity::Group(64));
        let err_ant = mse(w.as_slice(), ant.fake_quantize(&w).as_slice());
        let err_int = mse(w.as_slice(), int4.fake_quantize(&w).as_slice());
        assert!(err_ant < err_int, "ANT {err_ant} vs INT {err_int}");
    }

    #[test]
    fn ant8_is_int8() {
        let mut g = TensorGenerator::new(92);
        let w = g.matrix(4, 64, DistributionKind::Gaussian, 1.0);
        let ant8 = AntQuantizer::w8(Granularity::Channel);
        let int8 = GridQuantizer::new("int8", int8_grid(), 8, Granularity::Channel);
        assert_eq!(
            ant8.fake_quantize(&w).as_slice(),
            int8.fake_quantize(&w).as_slice()
        );
    }

    #[test]
    fn tensor_granularity_selects_one_type() {
        let mut g = TensorGenerator::new(93);
        let w = g.matrix(2, 128, DistributionKind::Laplace, 0.5);
        let ant = AntQuantizer::w4(Granularity::Tensor);
        let q = ant.fake_quantize(&w);
        assert_eq!(q.shape(), w.shape());
        // Tensor-wise is worse than group-wise ANT on diverse data.
        let diverse = g.group_diverse_matrix(4, 256, 64, 0.1);
        let tq = AntQuantizer::w4(Granularity::Tensor).fake_quantize(&diverse);
        let gq = AntQuantizer::w4(Granularity::Group(64)).fake_quantize(&diverse);
        let errt = mse(diverse.as_slice(), tq.as_slice());
        let errg = mse(diverse.as_slice(), gq.as_slice());
        assert!(errg < errt, "group {errg} vs tensor {errt}");
    }

    #[test]
    fn names_and_bits() {
        assert_eq!(AntQuantizer::w4(Granularity::Group(64)).name(), "ANT4-g64");
        assert!(AntQuantizer::w4(Granularity::Group(64)).bits_per_element(4096) > 4.0);
    }
}

//! Tender (ISCA'24): channel decomposition with shift-related group scales.
//!
//! Tender partitions channels into chunks by magnitude and constrains the
//! scales of the groups inside a chunk to be 1-bit shifts of a shared base
//! scale. Requantization between groups then reduces to a shift folded
//! into the accumulator, avoiding per-group FP multipliers. The accuracy
//! effect we model: each group's scale is the chunk base scale divided by
//! the largest power of two that still covers the group's max — a
//! "progressive" range that beats one flat scale but cannot beat truly
//! per-group FP16 scales.

use mant_quant::FakeQuantizer;
use mant_tensor::{abs_max, Matrix};

/// The Tender quantizer.
#[derive(Clone, Debug)]
pub struct TenderQuantizer {
    bits: u8,
    /// Sub-groups per chunk whose scales are power-of-two related.
    group_size: usize,
}

impl TenderQuantizer {
    /// 4-bit Tender with the given intra-chunk group size (each row is one
    /// chunk; groups inside it get shift-related scales).
    pub fn w4(group_size: usize) -> Self {
        TenderQuantizer {
            bits: 4,
            group_size,
        }
    }

    /// 8-bit Tender.
    pub fn w8(group_size: usize) -> Self {
        TenderQuantizer {
            bits: 8,
            group_size,
        }
    }

    fn int_max(&self) -> f32 {
        if self.bits == 8 {
            127.0
        } else {
            7.0
        }
    }
}

impl FakeQuantizer for TenderQuantizer {
    fn name(&self) -> String {
        format!("Tender{}-g{}", self.bits, self.group_size)
    }

    fn bits_per_element(&self, _inner_dim: usize) -> f64 {
        // One FP16 base scale per chunk (row) + 4-bit shift exponent per group.
        f64::from(self.bits) + 4.0 / self.group_size as f64
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        assert!(
            self.group_size > 0 && w.cols().is_multiple_of(self.group_size),
            "group size must divide the inner dimension"
        );
        let imax = self.int_max();
        let mut out = w.clone();
        for r in 0..w.rows() {
            let row = w.row(r).to_vec();
            // Chunk base scale covers the loudest group.
            let base = abs_max(&row) / imax;
            let orow = out.row_mut(r);
            if base == 0.0 {
                orow.fill(0.0);
                continue;
            }
            for (gin, gout) in row
                .chunks_exact(self.group_size)
                .zip(orow.chunks_exact_mut(self.group_size))
            {
                let gmax = abs_max(gin);
                // Largest shift k with gmax ≤ imax · base / 2^k (capped at
                // 15, the 4-bit shift field).
                let mut k = 0u32;
                while k < 15 && gmax <= imax * base / 2.0f32.powi(k as i32 + 1) {
                    k += 1;
                }
                let scale = (base / 2.0f32.powi(k as i32)).max(f32::MIN_POSITIVE);
                for (o, &x) in gout.iter_mut().zip(gin.iter()) {
                    *o = (x / scale).round().clamp(-imax, imax) * scale;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::int4_grid;
    use mant_quant::{Granularity, GridQuantizer};
    use mant_tensor::{mse, TensorGenerator};

    #[test]
    fn beats_channel_int_on_outlier_rows() {
        // A row with one loud group: Tender shifts the quiet groups' scales
        // down; channel-wise INT4 cannot.
        let mut g = TensorGenerator::new(111);
        let mut data = Vec::new();
        for i in 0..8 {
            let s = if i == 0 { 8.0 } else { 0.05 };
            for _ in 0..32 {
                data.push(g.sample(mant_tensor::DistributionKind::Gaussian, s));
            }
        }
        let w = Matrix::from_vec(1, 256, data);
        let tender = TenderQuantizer::w4(32);
        let int4 = GridQuantizer::new("int4-ch", int4_grid(), 4, Granularity::Channel);
        let qt = tender.fake_quantize(&w);
        let qi = int4.fake_quantize(&w);
        // The loud group quantizes identically either way; Tender's win is
        // on the quiet groups, whose scales shift down by 2^k.
        let err_t = mse(&w.as_slice()[32..], &qt.as_slice()[32..]);
        let err_i = mse(&w.as_slice()[32..], &qi.as_slice()[32..]);
        assert!(
            err_t < err_i / 4.0,
            "Tender {err_t} vs channel INT4 {err_i}"
        );
    }

    #[test]
    fn loses_to_free_group_scales() {
        // Shift-constrained scales give up to 2× range slack per group vs a
        // free FP16 group scale, so group-wise INT4 should be at least as
        // good on smooth data.
        let mut g = TensorGenerator::new(112);
        let w = g.group_diverse_matrix(8, 256, 32, 0.02);
        let tender = TenderQuantizer::w4(32);
        let int4g = GridQuantizer::new("int4-g32", int4_grid(), 4, Granularity::Group(32));
        let err_t = mse(w.as_slice(), tender.fake_quantize(&w).as_slice());
        let err_i = mse(w.as_slice(), int4g.fake_quantize(&w).as_slice());
        assert!(
            err_i <= err_t * 1.05,
            "free scales {err_i} vs Tender {err_t}"
        );
    }

    #[test]
    fn zero_row_stays_zero() {
        let w = Matrix::zeros(2, 64);
        let q = TenderQuantizer::w4(32).fake_quantize(&w);
        assert!(q.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scale_shift_is_power_of_two() {
        // Reconstructed values of a quiet group must be representable as
        // (int · base / 2^k): check divisibility structurally by verifying
        // error shrinks ~2^k vs channel scale.
        let mut data = vec![0.0f32; 64];
        data[0] = 7.0; // loud group sets base = 1.0
        for (i, v) in data.iter_mut().enumerate().skip(32) {
            *v = ((i % 5) as f32 - 2.0) * 0.05; // quiet group, max 0.1 ≤ 7/64
        }
        let w = Matrix::from_vec(1, 64, data.clone());
        let q = TenderQuantizer::w4(32).fake_quantize(&w);
        // Quiet group scale is base/2^k ≥ 0.1/7 → error < 0.01 per element.
        for (o, x) in q.row(0)[32..].iter().zip(&data[32..]) {
            assert!((o - x).abs() < 0.01, "{o} vs {x}");
        }
    }

    #[test]
    fn name_and_bits() {
        let q = TenderQuantizer::w8(64);
        assert_eq!(q.name(), "Tender8-g64");
        assert!((q.bits_per_element(4096) - 8.0625).abs() < 1e-9);
    }
}

//! 1-D k-means (Lloyd's algorithm) and the per-group clustering oracle.

use mant_quant::FakeQuantizer;
use mant_tensor::Matrix;

/// Runs 1-D k-means with deterministic quantile initialization.
///
/// Returns the sorted centroids (fewer than `k` if the data has fewer
/// distinct values). Empty data yields an empty vector.
pub fn kmeans_1d(data: &[f32], k: usize, max_iters: usize) -> Vec<f32> {
    if data.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f32> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    sorted.dedup();
    if sorted.len() <= k {
        return sorted;
    }
    // Quantile initialization: evenly spaced order statistics.
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| sorted[i * (sorted.len() - 1) / (k - 1).max(1)])
        .collect();
    centroids.dedup();

    let mut assign = vec![0usize; data.len()];
    for _ in 0..max_iters {
        // Assignment step (centroids sorted → nearest by scan).
        let mut changed = false;
        for (i, &x) in data.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (j, &c) in centroids.iter().enumerate() {
                let d = (x - c).abs();
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, &x) in data.iter().enumerate() {
            sums[assign[i]] += f64::from(x);
            counts[assign[i]] += 1;
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] > 0 {
                *c = (sums[j] / counts[j] as f64) as f32;
            }
        }
        if !changed {
            break;
        }
    }
    centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite centroids"));
    centroids
}

/// Quantizes `x` to its nearest centroid.
pub fn nearest_centroid(centroids: &[f32], x: f32) -> f32 {
    let mut best = centroids.first().copied().unwrap_or(0.0);
    let mut best_d = f32::INFINITY;
    for &c in centroids {
        let d = (x - c).abs();
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// The "Ideal" adaptive method of Fig. 2: an independent k-means codebook
/// per group. Accuracy-optimal, but each group must store its centroids —
/// a 16-entry × 8-bit codebook per 128-element group is effectively 6-bit
/// storage, which is why the paper calls it impractical.
#[derive(Clone, Debug)]
pub struct IdealKMeansQuantizer {
    group_size: usize,
    centroids_per_group: usize,
}

impl IdealKMeansQuantizer {
    /// Creates the oracle with `centroids_per_group` clusters (16 for the
    /// paper's 4-bit comparison).
    pub fn new(group_size: usize, centroids_per_group: usize) -> Self {
        IdealKMeansQuantizer {
            group_size,
            centroids_per_group,
        }
    }
}

impl FakeQuantizer for IdealKMeansQuantizer {
    fn name(&self) -> String {
        format!("Ideal-kmeans-g{}", self.group_size)
    }

    fn bits_per_element(&self, _inner_dim: usize) -> f64 {
        // log2(centroids) index bits + codebook amortized over the group.
        (self.centroids_per_group as f64).log2()
            + (self.centroids_per_group as f64 * 8.0) / self.group_size as f64
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        assert_eq!(w.cols() % self.group_size, 0, "group size must divide cols");
        let mut out = w.clone();
        for r in 0..w.rows() {
            let row = w.row(r).to_vec();
            let orow = out.row_mut(r);
            for (gin, gout) in row
                .chunks_exact(self.group_size)
                .zip(orow.chunks_exact_mut(self.group_size))
            {
                let centroids = kmeans_1d(gin, self.centroids_per_group, 25);
                for (o, &x) in gout.iter_mut().zip(gin.iter()) {
                    *o = nearest_centroid(&centroids, x);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_tensor::{mse, TensorGenerator};

    #[test]
    fn kmeans_recovers_clusters() {
        let data = [0.0f32, 0.1, -0.1, 5.0, 5.1, 4.9, -5.0, -5.1, -4.9];
        let c = kmeans_1d(&data, 3, 50);
        assert_eq!(c.len(), 3);
        assert!((c[0] + 5.0).abs() < 0.1);
        assert!(c[1].abs() < 0.1);
        assert!((c[2] - 5.0).abs() < 0.1);
    }

    #[test]
    fn kmeans_degenerate_inputs() {
        assert!(kmeans_1d(&[], 4, 10).is_empty());
        assert!(kmeans_1d(&[1.0], 0, 10).is_empty());
        // Fewer distinct values than k: returns the distinct values.
        assert_eq!(kmeans_1d(&[2.0, 2.0, 3.0], 8, 10), vec![2.0, 3.0]);
    }

    #[test]
    fn nearest_centroid_picks_closest() {
        let c = [-1.0f32, 0.0, 2.0];
        assert_eq!(nearest_centroid(&c, 0.9), 0.0);
        assert_eq!(nearest_centroid(&c, 1.1), 2.0);
        assert_eq!(nearest_centroid(&[], 5.0), 0.0);
    }

    #[test]
    fn ideal_oracle_beats_everything_reasonable() {
        // Fig. 2: per-group clustering is the accuracy-optimal method.
        let mut g = TensorGenerator::new(81);
        let w = g.group_diverse_matrix(8, 256, 64, 0.02);
        let oracle = IdealKMeansQuantizer::new(64, 16);
        let q = oracle.fake_quantize(&w);
        let err = mse(w.as_slice(), q.as_slice());
        let power = mse(w.as_slice(), &vec![0.0; w.len()]);
        assert!(err / power < 0.01, "oracle relative error {}", err / power);
    }

    #[test]
    fn ideal_effective_bits_match_paper() {
        // 16 centroids × 8 bits per 128-group ≈ 6-bit quantization (Sec. III-A).
        let q = IdealKMeansQuantizer::new(128, 16);
        assert!((q.bits_per_element(4096) - 5.0).abs() < 0.01);
        let q64 = IdealKMeansQuantizer::new(64, 16);
        assert_eq!(q64.bits_per_element(4096), 6.0);
    }
}

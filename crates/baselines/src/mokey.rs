//! Mokey (ISCA'22): the golden-dictionary codebook.
//!
//! Mokey quantizes via clustering like GOBO, but amortizes the codebook by
//! building one "golden dictionary" shared across all tensors, with each
//! quantization unit mapping onto it through a scale. The paper's Tbl. I
//! rates this *low* adaptivity: one dictionary is effectively a single data
//! type.

use mant_quant::{FakeQuantizer, Granularity};
use mant_tensor::{abs_max, Matrix};

use crate::kmeans::{kmeans_1d, nearest_centroid};

/// The Mokey quantizer.
#[derive(Clone, Debug)]
pub struct MokeyQuantizer {
    bits: u8,
    granularity: Granularity,
    dictionary: Vec<f32>,
}

impl MokeyQuantizer {
    /// Builds the golden dictionary from calibration samples (normalized to
    /// unit max) with `2^bits` entries; scales are applied per
    /// `granularity` unit at quantization time.
    pub fn from_calibration(bits: u8, granularity: Granularity, calibration: &[f32]) -> Self {
        let amax = abs_max(calibration).max(f32::MIN_POSITIVE);
        let normalized: Vec<f32> = calibration.iter().map(|&v| v / amax).collect();
        let dictionary = kmeans_1d(&normalized, 1usize << bits, 30);
        MokeyQuantizer {
            bits,
            granularity,
            dictionary,
        }
    }

    /// The shared dictionary (normalized to the calibration max).
    pub fn dictionary(&self) -> &[f32] {
        &self.dictionary
    }
}

impl FakeQuantizer for MokeyQuantizer {
    fn name(&self) -> String {
        format!("Mokey{}", self.bits)
    }

    fn bits_per_element(&self, inner_dim: usize) -> f64 {
        // Dictionary is global (amortized to ~0); scales per unit.
        f64::from(self.bits) + self.granularity.scale_bits_per_element(inner_dim, 1)
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        let dict_max = abs_max(&self.dictionary).max(f32::MIN_POSITIVE);
        let mut out = w.clone();
        let quantize_unit = |unit: &[f32], out: &mut [f32]| {
            let amax = abs_max(unit);
            if amax == 0.0 {
                out.fill(0.0);
                return;
            }
            let scale = amax / dict_max;
            for (o, &x) in out.iter_mut().zip(unit.iter()) {
                *o = nearest_centroid(&self.dictionary, x / scale) * scale;
            }
        };
        match self.granularity {
            Granularity::Tensor => {
                let unit = w.as_slice().to_vec();
                quantize_unit(&unit, out.as_mut_slice());
            }
            _ => {
                let span = self
                    .granularity
                    .span(w.cols())
                    .expect("granularity must divide inner dim");
                for r in 0..w.rows() {
                    let row = w.row(r).to_vec();
                    let orow = out.row_mut(r);
                    for (gin, gout) in row.chunks_exact(span).zip(orow.chunks_exact_mut(span)) {
                        quantize_unit(gin, gout);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::IdealKMeansQuantizer;
    use mant_tensor::{mse, DistributionKind, TensorGenerator};

    fn calibration() -> Vec<f32> {
        let mut g = TensorGenerator::new(131);
        (0..4096)
            .map(|_| g.sample(DistributionKind::Gaussian, 1.0))
            .collect()
    }

    #[test]
    fn dictionary_size_bounded() {
        let q = MokeyQuantizer::from_calibration(4, Granularity::Channel, &calibration());
        assert!(q.dictionary().len() <= 16);
        assert!(q.dictionary().len() >= 8);
    }

    #[test]
    fn single_dictionary_loses_to_per_group_clustering() {
        // Tbl. I's adaptivity story: golden dictionary < per-group k-means.
        let q = MokeyQuantizer::from_calibration(4, Granularity::Group(64), &calibration());
        let oracle = IdealKMeansQuantizer::new(64, 16);
        let mut g = TensorGenerator::new(132);
        let w = g.group_diverse_matrix(8, 256, 64, 0.02);
        let err_m = mse(w.as_slice(), q.fake_quantize(&w).as_slice());
        let err_o = mse(w.as_slice(), oracle.fake_quantize(&w).as_slice());
        assert!(err_o < err_m, "oracle {err_o} vs Mokey {err_m}");
    }

    #[test]
    fn fits_gaussian_data_well() {
        let q = MokeyQuantizer::from_calibration(4, Granularity::Channel, &calibration());
        let mut g = TensorGenerator::new(133);
        let w = g.matrix(4, 128, DistributionKind::Gaussian, 0.7);
        let err = mse(w.as_slice(), q.fake_quantize(&w).as_slice());
        let power = mse(w.as_slice(), &vec![0.0; w.len()]);
        assert!(err / power < 0.02, "relative error {}", err / power);
    }

    #[test]
    fn zero_unit_stays_zero() {
        let q = MokeyQuantizer::from_calibration(4, Granularity::Tensor, &calibration());
        let w = Matrix::zeros(2, 8);
        assert!(q.fake_quantize(&w).as_slice().iter().all(|&v| v == 0.0));
    }
}

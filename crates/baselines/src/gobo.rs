//! GOBO (MICRO'20): codebook quantization with an FP16 outlier set.
//!
//! GOBO clusters the bulk of a tensor's weights with k-means (3–4 bits of
//! centroid indices) and stores the few percent of outlier weights
//! uncompressed. High adaptivity, but dequantization is a codebook lookup
//! to FP16 before any arithmetic — the "low computation efficiency" row of
//! the paper's Tbl. I.

use mant_quant::{FakeQuantizer, Granularity};
use mant_tensor::Matrix;

use crate::kmeans::{kmeans_1d, nearest_centroid};

/// The GOBO quantizer.
#[derive(Clone, Debug)]
pub struct GoboQuantizer {
    bits: u8,
    granularity: Granularity,
    outlier_fraction: f64,
}

impl GoboQuantizer {
    /// GOBO with `bits` of centroid index (2^bits centroids) at the given
    /// clustering granularity, keeping `outlier_fraction` of the largest
    /// magnitudes in FP16 (GOBO's paper uses ~0.1–1%).
    pub fn new(bits: u8, granularity: Granularity, outlier_fraction: f64) -> Self {
        GoboQuantizer {
            bits,
            granularity,
            outlier_fraction,
        }
    }

    fn quantize_unit(&self, unit: &[f32], out: &mut [f32]) {
        let n = unit.len();
        if n == 0 {
            return;
        }
        // Split outliers by magnitude rank.
        let keep = ((n as f64 * self.outlier_fraction).ceil() as usize).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            unit[b]
                .abs()
                .partial_cmp(&unit[a].abs())
                .expect("finite weights")
        });
        let outliers: Vec<usize> = order[..keep].to_vec();
        let mut is_outlier = vec![false; n];
        for &i in &outliers {
            is_outlier[i] = true;
        }
        let bulk: Vec<f32> = unit
            .iter()
            .zip(is_outlier.iter())
            .filter(|&(_, &o)| !o)
            .map(|(&v, _)| v)
            .collect();
        let centroids = kmeans_1d(&bulk, 1usize << self.bits, 25);
        for (i, (&x, o)) in unit.iter().zip(out.iter_mut()).enumerate() {
            *o = if is_outlier[i] {
                x // stored in FP16: effectively exact here
            } else {
                nearest_centroid(&centroids, x)
            };
        }
    }
}

impl FakeQuantizer for GoboQuantizer {
    fn name(&self) -> String {
        format!("GOBO{}", self.bits)
    }

    fn bits_per_element(&self, inner_dim: usize) -> f64 {
        let span = match self.granularity.span(inner_dim) {
            Ok(s) => s,
            Err(_) => return f64::NAN,
        };
        // Index bits + amortized codebook + FP16 outliers.
        f64::from(self.bits)
            + (f64::from(1u32 << self.bits) * 16.0) / span as f64
            + self.outlier_fraction * 16.0
    }

    fn fake_quantize(&self, w: &Matrix) -> Matrix {
        let mut out = w.clone();
        match self.granularity {
            Granularity::Tensor => {
                let unit = w.as_slice().to_vec();
                self.quantize_unit(&unit, out.as_mut_slice());
            }
            _ => {
                let span = self
                    .granularity
                    .span(w.cols())
                    .expect("granularity must divide inner dim");
                for r in 0..w.rows() {
                    let row = w.row(r).to_vec();
                    let orow = out.row_mut(r);
                    for (gin, gout) in row.chunks_exact(span).zip(orow.chunks_exact_mut(span)) {
                        self.quantize_unit(gin, gout);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mant_numerics::int4_grid;
    use mant_quant::GridQuantizer;
    use mant_tensor::{mse, DistributionKind, TensorGenerator};

    #[test]
    fn outliers_survive_exactly() {
        let mut data = vec![0.1f32; 63];
        data.push(50.0);
        let w = Matrix::from_vec(1, 64, data);
        let q = GoboQuantizer::new(3, Granularity::Tensor, 0.02).fake_quantize(&w);
        assert_eq!(q[(0, 63)], 50.0);
    }

    #[test]
    fn adapts_better_than_int_on_gaussian() {
        let mut g = TensorGenerator::new(121);
        let w = g.matrix(4, 256, DistributionKind::Gaussian, 0.3);
        let gobo = GoboQuantizer::new(4, Granularity::Channel, 0.01);
        let int4 = GridQuantizer::new("int4", int4_grid(), 4, Granularity::Channel);
        let err_g = mse(w.as_slice(), gobo.fake_quantize(&w).as_slice());
        let err_i = mse(w.as_slice(), int4.fake_quantize(&w).as_slice());
        assert!(err_g < err_i, "GOBO {err_g} vs INT4 {err_i}");
    }

    #[test]
    fn storage_overhead_grows_with_granularity() {
        // Per-group codebooks are the cost the paper highlights: a 16-entry
        // FP16 codebook per 64-group doubles the effective bits.
        let per_group = GoboQuantizer::new(4, Granularity::Group(64), 0.0);
        let per_channel = GoboQuantizer::new(4, Granularity::Channel, 0.0);
        assert!(per_group.bits_per_element(4096) > per_channel.bits_per_element(4096) + 3.0);
    }

    #[test]
    fn empty_and_shape() {
        let w = Matrix::zeros(2, 32);
        let q = GoboQuantizer::new(3, Granularity::Group(16), 0.01);
        assert_eq!(q.fake_quantize(&w).shape(), (2, 32));
    }
}

//! Property-based tests of the baseline quantizers.

use mant_baselines::{
    AntQuantizer, BitFusionQuantizer, GoboQuantizer, IdealKMeansQuantizer, MxfpQuantizer,
    OliveQuantizer, TenderQuantizer,
};
use mant_quant::{FakeQuantizer, Granularity};
use mant_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn all_quantizers() -> Vec<Box<dyn FakeQuantizer>> {
    vec![
        Box::new(AntQuantizer::w4(Granularity::Group(32))),
        Box::new(OliveQuantizer::w4(Granularity::Group(32))),
        Box::new(TenderQuantizer::w4(32)),
        Box::new(GoboQuantizer::new(3, Granularity::Group(32), 0.02)),
        Box::new(BitFusionQuantizer::new(4, Granularity::Group(32))),
        Box::new(MxfpQuantizer::new(32)),
        Box::new(IdealKMeansQuantizer::new(32, 16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every baseline preserves shape and produces finite values.
    #[test]
    fn shape_and_finiteness(w in matrix(3, 64)) {
        for q in all_quantizers() {
            let out = q.fake_quantize(&w);
            prop_assert_eq!(out.shape(), w.shape(), "{}", q.name());
            prop_assert!(out.as_slice().iter().all(|v| v.is_finite()), "{}", q.name());
        }
    }

    /// No baseline inflates a group's max magnitude by more than 2×
    /// (MXFP's E8M0 rounds the scale up a binade; everything else stays
    /// within the group range).
    #[test]
    fn bounded_range(w in matrix(2, 64)) {
        for q in all_quantizers() {
            let out = q.fake_quantize(&w);
            for r in 0..w.rows() {
                for g in 0..2 {
                    let orig = &w.row(r)[g * 32..(g + 1) * 32];
                    let quant = &out.row(r)[g * 32..(g + 1) * 32];
                    let amax = orig.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    for &v in quant {
                        prop_assert!(
                            v.abs() <= amax * 2.0 + 1e-4,
                            "{}: {} exceeds 2x group max {}",
                            q.name(), v, amax
                        );
                    }
                }
            }
        }
    }

    /// Zero input stays exactly zero for every baseline.
    #[test]
    fn zero_preserved(rows in 1usize..4) {
        let w = Matrix::zeros(rows, 64);
        for q in all_quantizers() {
            let out = q.fake_quantize(&w);
            prop_assert!(out.as_slice().iter().all(|&v| v == 0.0), "{}", q.name());
        }
    }

    /// INT at more bits never increases the error (monotone precision).
    #[test]
    fn int_bits_monotone(w in matrix(2, 32)) {
        let mut last = f64::INFINITY;
        for bits in [2u8, 4, 8, 12] {
            let q = BitFusionQuantizer::new(bits, Granularity::Group(32));
            let out = q.fake_quantize(&w);
            let err = mant_tensor::mse(w.as_slice(), out.as_slice());
            prop_assert!(err <= last + 1e-12, "INT{bits}: {err} > {last}");
            last = err;
        }
    }
}

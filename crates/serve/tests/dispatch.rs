//! Kernel-dispatch equivalence: the runtime-selected SIMD tier must be an
//! invisible implementation detail. The engine's greedy token streams are
//! byte-identical whether the process runs auto-detected kernels or is
//! pinned to the scalar oracle with `MANT_FORCE_SCALAR=1` — checked by
//! re-running the same workload in a forced-scalar child process and
//! diffing the printed streams. A companion test asserts the dispatch
//! reports the tier this machine's CPU (and the env override) demand.

use std::process::Command;

use mant_model::{ActMode, KvMode, ModelConfig, TransformerModel};
use mant_numerics::{kernels, scalar_forced, KernelDispatch};
use mant_serve::{
    requests_from_trace, sequential_generate, AdmissionPolicy, ServeConfig, ServeEngine,
};
use mant_sim::{poisson_trace, LengthDist, TraceConfig};

/// One fixed serving workload that exercises every SIMD path: packed MANT
/// GEMV/GEMM (weights), INT8 activation quantization + `int8_dot`
/// (A8 mode), and the two-phase V-cache attend (MANT4 KV).
fn engine_streams() -> Vec<(u64, Vec<usize>)> {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 4242);
    let packed = model.pack_weights(64).unwrap();
    let act = ActMode::IntGroup { bits: 8, group: 64 };
    let kv = KvMode::Mant4 { group: 64 };
    let trace = poisson_trace(&TraceConfig {
        requests: 5,
        arrivals_per_iter: 0.5,
        prompt: LengthDist::Uniform { lo: 3, hi: 9 },
        output: LengthDist::Uniform { lo: 2, hi: 6 },
        seed: 0x51d,
    });
    let requests = requests_from_trace(&trace, cfg.vocab, 0xd15b);

    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 3,
            pool_blocks: 64,
            block_tokens: 64,
            act,
            kv,
            admission: AdmissionPolicy::Reserve,
            prefix_sharing: false,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), requests.len());

    // The engine must also match the sequential baseline *within* this
    // process, whatever tier is active.
    let (baseline, _) = sequential_generate(&model, &packed, act, kv, &requests);
    let mut streams: Vec<(u64, Vec<usize>)> = report
        .completions
        .iter()
        .map(|c| (c.id, c.tokens.clone()))
        .collect();
    streams.sort();
    for (id, tokens) in &streams {
        assert_eq!(tokens, &baseline[*id as usize], "request {id}");
    }
    streams
}

/// Serialises streams one request per line: `id:t0,t1,...`.
fn render(streams: &[(u64, Vec<usize>)]) -> String {
    streams
        .iter()
        .map(|(id, toks)| {
            let toks: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
            format!("{id}:{}", toks.join(","))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Child half of the cross-process check: prints this process's streams
/// between markers. Ignored by default; the parent test below runs it in a
/// subprocess with `MANT_FORCE_SCALAR=1`.
#[test]
#[ignore = "spawned as a forced-scalar subprocess by token_streams_identical_across_tiers"]
fn child_print_streams() {
    println!("STREAMS-BEGIN");
    println!("{}", render(&engine_streams()));
    println!("STREAMS-END tier={}", kernels().name());
}

/// The tentpole contract: auto-dispatched kernels (AVX2 on CI) produce
/// byte-for-byte the token streams of the scalar oracle.
#[test]
fn token_streams_identical_across_tiers() {
    let here = render(&engine_streams());

    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["--exact", "child_print_streams", "--ignored", "--nocapture"])
        .env("MANT_FORCE_SCALAR", "1")
        .output()
        .expect("spawn forced-scalar child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "forced-scalar child failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let begin = stdout.find("STREAMS-BEGIN").expect("begin marker") + "STREAMS-BEGIN\n".len();
    let end = stdout.find("STREAMS-END").expect("end marker");
    let child = stdout[begin..end].trim_end();
    assert!(
        stdout.contains("STREAMS-END tier=scalar"),
        "child must run the scalar tier, got:\n{stdout}"
    );
    assert_eq!(
        child,
        here,
        "token streams diverged between tier {} and the forced-scalar child",
        kernels().name()
    );
}

/// The dispatch must report exactly the tier this environment demands:
/// scalar when `MANT_FORCE_SCALAR` pins it, otherwise the best tier the
/// CPU supports. On CI (x86_64 AVX2 runners) the auto tier is `avx2`.
#[test]
fn dispatch_reports_expected_tier() {
    let expected = if scalar_forced() {
        KernelDispatch::Scalar
    } else {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                KernelDispatch::Avx2
            } else if std::arch::is_x86_feature_detected!("ssse3") {
                KernelDispatch::Ssse3
            } else {
                KernelDispatch::Scalar
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            KernelDispatch::Scalar
        }
    };
    assert_eq!(kernels(), expected);
    assert_eq!(kernels().is_simd(), kernels() != KernelDispatch::Scalar);
}

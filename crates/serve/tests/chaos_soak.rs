//! Chaos soak: replay a Poisson-arrival trace through the speculative
//! serving engine under a *seeded* fault plan covering every engine-side
//! injection site — forced `PoolExhausted`, induced step/speculation
//! panics, corrupted draft candidates, engine-clock skew — and hold the
//! stack to the failure-domain contract:
//!
//! * the engine drains (no hang, no dead run loop),
//! * every request ends exactly one way (completed, poisoned, expired),
//! * every **survivor's** token stream is byte-identical to the
//!   fault-free sequential baseline,
//! * both pools return to all-free at drain (the allocator invariant),
//! * report counters agree with the emitted events.
//!
//! Only compiled with `--features fault-inject`; the whole binary is
//! empty otherwise.
#![cfg(feature = "fault-inject")]

use std::collections::BTreeSet;
use std::sync::Mutex;

use mant_model::{synthesize_speculative_pair, ActMode, DraftConfig, KvMode, ModelConfig};
use mant_serve::{
    requests_from_trace, sequential_generate, AdmissionPolicy, EngineEvent, GenRequest,
    ServeConfig, ServeEngine, ServeReport, SpeculativeConfig,
};
use mant_sim::{poisson_trace, LengthDist, TraceConfig};
use mant_trace::fault::{self, site, FaultPlan, SiteRule};

/// The global fault plan is process-wide; tests in this binary must not
/// overlap.
static LOCK: Mutex<()> = Mutex::new(());

const ENGINE_SITES: [&str; 5] = [
    site::POOL_ALLOC,
    site::BATCH_STEP,
    site::SPEC_STEP,
    site::SPEC_DRAFT_CORRUPT,
    site::ENGINE_CLOCK_SKEW,
];

const VOCAB: usize = 512;
const TICK_CAP: usize = 10_000;

fn chaos_requests(seed: u64) -> Vec<GenRequest> {
    let trace = poisson_trace(&TraceConfig {
        requests: 8,
        arrivals_per_iter: 0.5,
        prompt: LengthDist::Uniform { lo: 3, hi: 10 },
        output: LengthDist::Uniform { lo: 3, hi: 8 },
        seed: seed ^ 0x5e2,
    });
    let mut requests = requests_from_trace(&trace, VOCAB, seed ^ 0x7a11);
    // Engine-clock deadlines with generous slack on a third of the
    // requests: inert in the fault-free run, but live targets for the
    // clock-skew site (which can only pull expiry *earlier*).
    for r in requests.iter_mut().skip(1).step_by(3) {
        r.deadline_iter = Some(r.arrival_iter + 40 + 4 * r.max_new_tokens as u64);
    }
    requests
}

/// Everything one soak pass observed. Assertions live in the caller so
/// they run *after* the silenced panic hook is restored.
struct Soak {
    report: ServeReport,
    events: Vec<EngineEvent>,
    ticks: usize,
    target_free: usize,
    target_total: usize,
    draft_free: usize,
    draft_total: usize,
}

fn run_soak(
    target: &mant_model::TransformerModel,
    packed: &mant_model::PackedWeights,
    draft: &mant_model::TransformerModel,
    draft_packed: &mant_model::PackedWeights,
    requests: &[GenRequest],
) -> Soak {
    let mut engine = ServeEngine::new_with_draft(
        target,
        packed,
        draft,
        draft_packed,
        ServeConfig {
            max_batch: 4,
            pool_blocks: 48,
            block_tokens: 16,
            act: ActMode::None,
            kv: KvMode::Int4 { group: 16 },
            // Watermark admission is what lets a panicked step roll the
            // whole batch back instead of quarantining it outright.
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 4,
            },
            prefix_sharing: false,
            speculative: Some(SpeculativeConfig { draft_k: 4 }),
        },
    );
    engine.enable_events();
    let target_total = engine.free_blocks();
    let draft_total = engine.draft_free_blocks().expect("draft pool exists");
    for r in requests {
        engine.submit(r.clone());
    }
    let mut events = Vec::new();
    let mut ticks = 0usize;
    while engine.pending() > 0 && ticks < TICK_CAP {
        engine.tick();
        events.extend(engine.drain_events());
        ticks += 1;
    }
    Soak {
        report: engine.report(0.0),
        events,
        ticks,
        target_free: engine.free_blocks(),
        target_total,
        draft_free: engine.draft_free_blocks().unwrap(),
        draft_total,
    }
}

/// Three seeds, each a different deterministic interleaving of faults
/// over the same trace shape. The ISSUE's acceptance bar.
#[test]
fn chaos_soak_survivors_byte_identical_across_seeds() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (target, draft) = synthesize_speculative_pair(
        &ModelConfig::sim_llama(),
        91,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    );
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();

    for seed in [7u64, 21, 1234] {
        let requests = chaos_requests(seed);
        let (baseline, _) = sequential_generate(
            &target,
            &packed,
            ActMode::None,
            KvMode::Int4 { group: 16 },
            &requests,
        );

        // Fault-free control: the trace itself must be fully servable.
        fault::clear();
        let clean = run_soak(&target, &packed, &draft, &draft_packed, &requests);
        assert!(clean.ticks < TICK_CAP, "seed {seed}: clean run hung");
        assert_eq!(
            clean.report.completions.len(),
            requests.len(),
            "seed {seed}: the fault-free run must complete every request"
        );

        // Chaos run under the seeded plan. Injected panics are caught
        // inside tick(); silence the default hook so the log isn't a
        // wall of expected backtraces.
        fault::install(FaultPlan::seeded(seed, &ENGINE_SITES));
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let soak = run_soak(&target, &packed, &draft, &draft_packed, &requests);
        drop(std::panic::take_hook());
        std::panic::set_hook(prev_hook);
        let fired: u64 = ENGINE_SITES.iter().map(|s| fault::fires(s)).sum();
        fault::clear();

        // The run loop itself survived every injection.
        assert!(soak.ticks < TICK_CAP, "seed {seed}: chaos run hung");
        assert!(fired > 0, "seed {seed}: the seeded plan never fired");

        // Every request ends exactly one way.
        let mut poisoned_events = 0usize;
        let mut killed = BTreeSet::new();
        for e in &soak.events {
            match e {
                EngineEvent::Poisoned { id } => {
                    poisoned_events += 1;
                    assert!(killed.insert(*id), "seed {seed}: id {id} killed twice");
                }
                EngineEvent::Expired { id } => {
                    assert!(killed.insert(*id), "seed {seed}: id {id} killed twice");
                }
                _ => {}
            }
        }
        let survivors: BTreeSet<u64> = soak.report.completions.iter().map(|c| c.id).collect();
        assert_eq!(
            survivors.len(),
            soak.report.completions.len(),
            "seed {seed}: duplicate completions"
        );
        assert!(
            survivors.is_disjoint(&killed),
            "seed {seed}: a request both completed and was killed"
        );
        assert_eq!(
            survivors.len() + killed.len(),
            requests.len(),
            "seed {seed}: a request vanished without completing, poisoning, or expiring \
             (survivors {survivors:?}, killed {killed:?}, poisoned={} expired={} rollbacks={})",
            soak.report.poisoned_requests,
            soak.report.expired_requests,
            soak.report.step_rollbacks,
        );

        // Survivors are byte-identical to the fault-free baseline: every
        // rollback recomputed exactly, every corrupted draft was caught
        // by verification, every quarantine left the rest untouched.
        for c in &soak.report.completions {
            assert_eq!(
                c.tokens, baseline[c.id as usize],
                "seed {seed}: survivor {} diverged from the fault-free run",
                c.id
            );
        }

        // Counters agree with events; the allocator invariant holds at
        // drain on both pools.
        assert_eq!(
            soak.report.poisoned_requests, poisoned_events,
            "seed {seed}: report/event poison mismatch"
        );
        assert_eq!(
            soak.target_free, soak.target_total,
            "seed {seed}: target pool leaked blocks"
        );
        assert_eq!(
            soak.draft_free, soak.draft_total,
            "seed {seed}: draft pool leaked blocks"
        );
    }
}

/// Corrupted draft candidates alone are *benign*: verification rejects
/// them, so nothing is poisoned, every request completes, and every
/// stream is still byte-identical — speculation only loses speed.
#[test]
fn corrupted_drafts_never_change_emitted_tokens() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (target, draft) = synthesize_speculative_pair(
        &ModelConfig::sim_llama(),
        92,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    );
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();
    let requests = chaos_requests(5);
    let (baseline, _) = sequential_generate(
        &target,
        &packed,
        ActMode::None,
        KvMode::Int4 { group: 16 },
        &requests,
    );

    fault::install(FaultPlan::new().with_site(
        site::SPEC_DRAFT_CORRUPT,
        SiteRule::every(2).with_limit(u64::MAX).with_payload(3),
    ));
    let soak = run_soak(&target, &packed, &draft, &draft_packed, &requests);
    let fired = fault::fires(site::SPEC_DRAFT_CORRUPT);
    fault::clear();

    assert!(fired > 0, "corruption site never fired");
    assert!(soak.ticks < TICK_CAP);
    assert_eq!(
        soak.report.poisoned_requests, 0,
        "corruption must be benign"
    );
    assert_eq!(soak.report.completions.len(), requests.len());
    for c in &soak.report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "corrupted draft changed survivor {}'s stream",
            c.id
        );
    }
    assert_eq!(soak.target_free, soak.target_total);
    assert_eq!(soak.draft_free, soak.draft_total);
}

//! Batch-vs-sequential equivalence: the serving stack must never change
//! what is computed, only when. A batch of N sequences — including ragged
//! joins and leaves mid-decode — produces logits **bit-identical** to N
//! independent single-sequence runs at every step, at two model sizes;
//! and the full engine's greedy outputs equal the one-request-at-a-time
//! baseline's exactly.

use mant_model::{
    run_sequence_packed, ActMode, FfnKind, KvMode, ModelConfig, SessionId, TransformerModel,
};
use mant_serve::{
    requests_from_trace, sequential_generate, AdmissionPolicy, GenRequest, ServeConfig, ServeEngine,
};
use mant_sim::{poisson_trace, LengthDist, TraceConfig};
use proptest::prelude::*;

/// A second, larger model size: 2× hidden width, one more layer than
/// `sim_llama` (matches `tests/end_to_end.rs`).
fn sim_llama_large() -> ModelConfig {
    ModelConfig {
        name: "sim-llama-large".to_owned(),
        hidden: 512,
        heads: 8,
        kv_heads: 8,
        layers: 3,
        ffn: 1024,
        vocab: 512,
        ffn_kind: FfnKind::GatedSilu,
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Drives a ragged continuous batch — staggered joins, early leaves — and
/// checks every sequence's every-step logits against an independent
/// sequential run over the same packed weights.
fn check_ragged_equivalence(cfg: &ModelConfig, model_seed: u64, stream_seed: u64) {
    let model = TransformerModel::synthesize(cfg, model_seed);
    let packed = model.pack_weights(64).unwrap();
    let kv = KvMode::Mant4 { group: 64 };

    // Four sequences with different lengths and staggered start times:
    // sequence i joins at iteration 2·i, so every join lands mid-decode of
    // the earlier ones, and shorter sequences retire while others run.
    let lens = [11usize, 6, 9, 4];
    let starts = [0usize, 2, 4, 6];
    let streams: Vec<Vec<usize>> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            (0..len)
                .map(|t| ((stream_seed as usize).wrapping_mul(31) + i * 97 + t * 37) % cfg.vocab)
                .collect()
        })
        .collect();

    let mut br = model.batch_runner(&packed, ActMode::None, kv, 96, 64);
    let mut ids: Vec<Option<SessionId>> = vec![None; streams.len()];
    let mut got: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams.len()];
    let horizon = starts
        .iter()
        .zip(lens.iter())
        .map(|(s, l)| s + l)
        .max()
        .unwrap();
    for t in 0..horizon {
        let mut batch = Vec::new();
        let mut members = Vec::new();
        for i in 0..streams.len() {
            if t == starts[i] {
                ids[i] = Some(br.create_session());
            }
            if t >= starts[i] && t < starts[i] + lens[i] {
                batch.push((ids[i].unwrap(), streams[i][t - starts[i]]));
                members.push(i);
            }
        }
        if batch.is_empty() {
            continue;
        }
        let logits = br.step(&batch);
        for (out, i) in logits.into_iter().zip(members.iter()) {
            got[*i].push(out);
        }
        for i in 0..streams.len() {
            if t + 1 == starts[i] + lens[i] {
                br.end_session(ids[i].take().unwrap());
            }
        }
    }
    for (i, stream) in streams.iter().enumerate() {
        let solo = run_sequence_packed(&model, &packed, ActMode::None, kv, stream);
        assert_eq!(got[i].len(), stream.len());
        for (t, logits) in got[i].iter().enumerate() {
            assert_eq!(
                bits(logits),
                bits(solo.row(t)),
                "model {} seq {i} step {t}: batched logits diverged from sequential",
                cfg.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Ragged continuous batches are bit-exact at the small model size.
    #[test]
    fn ragged_batches_bit_exact_sim_llama(model_seed in 1u64..1000, stream_seed in 0u64..1000) {
        check_ragged_equivalence(&ModelConfig::sim_llama(), model_seed, stream_seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Ragged continuous batches are bit-exact at the larger model size.
    #[test]
    fn ragged_batches_bit_exact_sim_llama_large(model_seed in 1u64..1000, stream_seed in 0u64..1000) {
        check_ragged_equivalence(&sim_llama_large(), model_seed, stream_seed);
    }
}

/// GQA composes with the serving stack: same bit-exact contract with
/// shared KV heads (a third shape regime).
#[test]
fn ragged_batches_bit_exact_under_gqa() {
    check_ragged_equivalence(&ModelConfig::sim_llama().with_gqa(2), 77, 5);
}

/// Full-engine parity: continuous batching with Poisson arrivals produces
/// exactly the sequential baseline's greedy token streams.
fn check_engine_matches_baseline(cfg: &ModelConfig, seed: u64) {
    let model = TransformerModel::synthesize(cfg, seed);
    let packed = model.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Mant4 { group: 64 };
    let trace = poisson_trace(&TraceConfig {
        requests: 6,
        arrivals_per_iter: 0.4,
        prompt: LengthDist::Uniform { lo: 3, hi: 10 },
        output: LengthDist::Uniform { lo: 2, hi: 6 },
        seed: seed ^ 0x5e2,
    });
    let requests = requests_from_trace(&trace, cfg.vocab, seed ^ 0x7a11);

    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 3,
            pool_blocks: 64,
            block_tokens: 64,
            act,
            kv,
            admission: AdmissionPolicy::Reserve,
            prefix_sharing: false,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), requests.len());

    let (baseline, _) = sequential_generate(&model, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "engine output for request {} diverged from the sequential baseline",
            c.id
        );
        assert!(c.first_token_iter > c.arrival_iter);
        assert!(c.finish_iter >= c.first_token_iter);
    }
    assert_eq!(
        report.generated_tokens,
        requests.iter().map(|r| r.max_new_tokens).sum::<usize>()
    );
    assert_eq!(
        report.prompt_tokens,
        requests.iter().map(|r| r.prompt.len()).sum::<usize>()
    );
    assert!(report.mean_batch_occupancy >= 1.0);
    assert!(report.ttft_percentiles().unwrap().p50 >= 1.0);
}

#[test]
fn engine_matches_sequential_baseline_sim_llama() {
    check_engine_matches_baseline(&ModelConfig::sim_llama(), 2025);
}

#[test]
fn engine_matches_sequential_baseline_sim_llama_large() {
    check_engine_matches_baseline(&sim_llama_large(), 2026);
}

/// A pool too small for every request at once throttles admission instead
/// of failing: all requests still complete, peak block usage respects the
/// reservation discipline, and outputs stay exact.
#[test]
fn tight_pool_throttles_admission_but_stays_exact() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 88);
    let packed = model.pack_weights(64).unwrap();
    let kv = KvMode::Mant4 { group: 64 };
    let requests: Vec<GenRequest> = (0..4)
        .map(|i| GenRequest {
            id: i,
            prompt: (0..5)
                .map(|t| ((i as usize) * 131 + t * 29) % cfg.vocab)
                .collect(),
            max_new_tokens: 4,
            arrival_iter: 0,
            deadline_iter: None,
        })
        .collect();
    // Each request needs layers(2) × ⌈9/64⌉ = 2 blocks; 5 blocks admit at
    // most 2 at a time even though max_batch is 4.
    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 4,
            pool_blocks: 5,
            block_tokens: 64,
            act: ActMode::None,
            kv,
            admission: AdmissionPolicy::Reserve,
            prefix_sharing: false,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), 4);
    assert!(report.peak_used_blocks <= 4, "{}", report.peak_used_blocks);
    assert!(report.mean_batch_occupancy <= 2.0 + 1e-9);
    let (baseline, _) = sequential_generate(&model, &packed, ActMode::None, kv, &requests);
    for c in &report.completions {
        assert_eq!(c.tokens, baseline[c.id as usize]);
    }
}

/// Prefix sharing: a multi-persona trace over a common system prompt is
/// served with shared CoW blocks — the engine must skip real prefill work
/// (prefix-cache hits) and still produce exactly the sequential
/// baseline's token streams.
#[test]
fn prefix_sharing_stays_byte_identical_and_hits() {
    use mant_serve::requests_from_shared_trace;
    use mant_sim::{shared_prefix_trace, SharedPrefixConfig};
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 91);
    let packed = model.pack_weights(64).unwrap();
    let act = ActMode::None;
    // Int4 KV at group 16 → 16-token blocks, so 32-token shared prefixes
    // span two shareable blocks while the test stays fast.
    let kv = KvMode::Int4 { group: 16 };
    let shared_cfg = SharedPrefixConfig {
        personas: 2,
        requests_per_persona: 2,
        system_prompt_len: 16,
        persona_prompt_len: 16,
        unique_prompt_len: LengthDist::Uniform { lo: 2, hi: 7 },
        output: LengthDist::Uniform { lo: 3, hi: 6 },
        arrivals_per_iter: 0.05, // staggered, so later arrivals can hit
        seed: 17,
    };
    let trace = shared_prefix_trace(&shared_cfg);
    let requests = requests_from_shared_trace(&shared_cfg, &trace, cfg.vocab, 18);

    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 4,
            pool_blocks: 96,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 4,
            },
            prefix_sharing: true,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), requests.len());
    assert!(
        report.prefix_cached_tokens > 0,
        "staggered same-prefix requests must hit the prefix cache"
    );
    assert!(report.prefix_hit_rate() > 0.0 && report.prefix_hit_rate() < 1.0);

    let (baseline, _) = sequential_generate(&model, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "prefix sharing changed request {}'s tokens",
            c.id
        );
        assert!(c.admitted_iter >= c.arrival_iter);
        assert!(c.first_token_iter > c.admitted_iter);
    }
}

/// Forced preemption: a pool too small for the batch's grown caches must
/// trigger evict-youngest-and-recompute — and the recomputed streams must
/// equal the sequential baseline byte for byte.
#[test]
fn forced_preemption_stays_byte_identical() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 92);
    let packed = model.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Int4 { group: 16 };
    // Each request's lifetime is 8 + 24 = 32 tokens → 2 blocks × 2 layers
    // = 4 blocks. Three requests fully grown need 12 blocks; the pool
    // holds 9, so decode growth must preempt (watermark 1 admits all
    // three during their 1-block prefills).
    let requests: Vec<GenRequest> = (0..3)
        .map(|i| GenRequest {
            id: i,
            prompt: (0..8)
                .map(|t| ((i as usize) * 101 + t * 17 + 3) % cfg.vocab)
                .collect(),
            max_new_tokens: 24,
            arrival_iter: 0,
            deadline_iter: None,
        })
        .collect();
    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 3,
            pool_blocks: 9,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 1,
            },
            prefix_sharing: false,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), 3);
    assert!(
        report.preemptions > 0,
        "a 9-block pool cannot hold three 4-block lifetimes without preempting"
    );
    assert!(
        report.recomputed_tokens > 0,
        "readmission replays the victim"
    );
    assert!(report.peak_used_blocks <= 9);

    let (baseline, _) = sequential_generate(&model, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "preemption/recompute changed request {}'s tokens",
            c.id
        );
        assert_eq!(c.tokens.len(), 24);
    }
}

/// Sharing and preemption compose: a tight pool under a shared-prompt
/// trace evicts snapshots and preempts, and every stream still matches
/// the baseline (preemption recovery may re-hit surviving prefixes).
#[test]
fn sharing_plus_preemption_stays_byte_identical() {
    use mant_serve::requests_from_shared_trace;
    use mant_sim::{shared_prefix_trace, SharedPrefixConfig};
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 93);
    let packed = model.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Int4 { group: 16 };
    let shared_cfg = SharedPrefixConfig {
        personas: 2,
        requests_per_persona: 3,
        system_prompt_len: 16,
        persona_prompt_len: 0,
        unique_prompt_len: LengthDist::Uniform { lo: 1, hi: 4 },
        output: LengthDist::Fixed(20),
        arrivals_per_iter: 0.2,
        seed: 23,
    };
    let trace = shared_prefix_trace(&shared_cfg);
    let requests = requests_from_shared_trace(&shared_cfg, &trace, cfg.vocab, 24);
    // Lifetime ≈ 16 + 4 + 20 = 40 tokens → 3 blocks × 2 layers = 6; six
    // requests would want ~36 blocks, the pool holds 14.
    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 4,
            pool_blocks: 14,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 2,
            },
            prefix_sharing: true,
            speculative: None,
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), requests.len());
    let (baseline, _) = sequential_generate(&model, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "tight-pool sharing run changed request {}'s tokens",
            c.id
        );
    }
    assert!(report.preemptions > 0 || report.prefix_cached_tokens > 0);
}

/// Speculative decoding must change *when* tokens are computed, never
/// which: the engine's greedy streams with draft-and-verify rounds equal
/// the sequential target-only baseline byte for byte, at every `draft_k`.
fn check_speculative_matches_baseline(draft_k: usize, seed: u64) {
    use mant_model::{synthesize_speculative_pair, DraftConfig};
    let cfg = ModelConfig::sim_llama();
    let (target, draft) = synthesize_speculative_pair(
        &cfg,
        seed,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    );
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Int4 { group: 16 };
    let trace = poisson_trace(&TraceConfig {
        requests: 6,
        arrivals_per_iter: 0.4,
        prompt: LengthDist::Uniform { lo: 3, hi: 10 },
        output: LengthDist::Uniform { lo: 2, hi: 9 },
        seed: seed ^ 0x5e2,
    });
    let requests = requests_from_trace(&trace, cfg.vocab, seed ^ 0x7a11);

    let mut engine = ServeEngine::new_with_draft(
        &target,
        &packed,
        &draft,
        &draft_packed,
        ServeConfig {
            max_batch: 3,
            pool_blocks: 64,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 4,
            },
            prefix_sharing: false,
            speculative: Some(mant_serve::SpeculativeConfig { draft_k }),
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), requests.len());

    let (baseline, _) = sequential_generate(&target, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "speculative decode at draft_k={draft_k} changed request {}'s tokens",
            c.id
        );
    }
    let spec = report
        .speculation
        .expect("speculative engine reports stats");
    assert!(spec.rounds > 0, "decode-phase sequences must speculate");
    // Each round drafts k_eff ∈ [1, draft_k] candidates (capped near a
    // sequence's token budget).
    assert!(spec.drafted >= spec.rounds);
    assert!(spec.drafted <= spec.rounds * draft_k as u64);
    assert!(spec.accepted <= spec.drafted);
    assert!(!spec.draft_ns.is_empty() && !spec.verify_ns.is_empty());
}

#[test]
fn speculative_decoding_stays_byte_identical_across_draft_k() {
    for (draft_k, seed) in [(1, 101u64), (2, 102), (4, 103), (8, 104)] {
        check_speculative_matches_baseline(draft_k, seed);
    }
}

/// Speculation composes with prefix sharing: shared-prompt traffic over
/// CoW blocks, draft sessions mirroring every registration, and the
/// streams still match the baseline exactly.
#[test]
fn speculative_plus_prefix_sharing_stays_byte_identical() {
    use mant_model::{synthesize_speculative_pair, DraftConfig};
    use mant_serve::requests_from_shared_trace;
    use mant_sim::{shared_prefix_trace, SharedPrefixConfig};
    let cfg = ModelConfig::sim_llama();
    let (target, draft) = synthesize_speculative_pair(
        &cfg,
        95,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    );
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Int4 { group: 16 };
    let shared_cfg = SharedPrefixConfig {
        personas: 2,
        requests_per_persona: 2,
        system_prompt_len: 16,
        persona_prompt_len: 16,
        unique_prompt_len: LengthDist::Uniform { lo: 2, hi: 7 },
        output: LengthDist::Uniform { lo: 3, hi: 8 },
        arrivals_per_iter: 0.05,
        seed: 27,
    };
    let trace = shared_prefix_trace(&shared_cfg);
    let requests = requests_from_shared_trace(&shared_cfg, &trace, cfg.vocab, 28);

    let mut engine = ServeEngine::new_with_draft(
        &target,
        &packed,
        &draft,
        &draft_packed,
        ServeConfig {
            max_batch: 4,
            pool_blocks: 96,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 4,
            },
            prefix_sharing: true,
            speculative: Some(mant_serve::SpeculativeConfig { draft_k: 4 }),
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), requests.len());
    assert!(
        report.prefix_cached_tokens > 0,
        "staggered same-prefix requests must hit the prefix cache"
    );
    let spec = report
        .speculation
        .expect("speculative engine reports stats");
    assert!(spec.rounds > 0);

    let (baseline, _) = sequential_generate(&target, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "speculation + prefix sharing changed request {}'s tokens",
            c.id
        );
    }
}

/// Speculation composes with forced preemption: a pool too small for the
/// grown caches preempts mid-speculation (both runners' sessions end and
/// replay), and the recomputed streams still match the baseline.
#[test]
fn speculative_under_forced_preemption_stays_byte_identical() {
    use mant_model::{synthesize_speculative_pair, DraftConfig};
    let cfg = ModelConfig::sim_llama();
    let (target, draft) = synthesize_speculative_pair(
        &cfg,
        96,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    );
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();
    let act = ActMode::None;
    let kv = KvMode::Int4 { group: 16 };
    // Same geometry as `forced_preemption_stays_byte_identical`: three
    // 4-block lifetimes against a 9-block target pool force preemption
    // during decode — now while rounds hold transient checkpoint blocks.
    let requests: Vec<GenRequest> = (0..3)
        .map(|i| GenRequest {
            id: i,
            prompt: (0..8)
                .map(|t| ((i as usize) * 101 + t * 17 + 3) % cfg.vocab)
                .collect(),
            max_new_tokens: 24,
            arrival_iter: 0,
            deadline_iter: None,
        })
        .collect();
    let mut engine = ServeEngine::new_with_draft(
        &target,
        &packed,
        &draft,
        &draft_packed,
        ServeConfig {
            max_batch: 3,
            pool_blocks: 9,
            block_tokens: 16,
            act,
            kv,
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 1,
            },
            prefix_sharing: false,
            speculative: Some(mant_serve::SpeculativeConfig { draft_k: 3 }),
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completions.len(), 3);
    assert!(
        report.preemptions > 0,
        "a 9-block pool cannot hold three 4-block lifetimes without preempting"
    );
    let spec = report
        .speculation
        .expect("speculative engine reports stats");
    assert!(spec.rounds > 0);

    let (baseline, _) = sequential_generate(&target, &packed, act, kv, &requests);
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "speculation + preemption changed request {}'s tokens",
            c.id
        );
        assert_eq!(c.tokens.len(), 24);
    }
}

/// In-flight duplicate request ids are rejected at submit: ids key the
/// preemption carry state, so a duplicate would cross-wire two requests'
/// progress.
#[test]
#[should_panic(expected = "already in flight")]
fn duplicate_request_id_rejected_at_submit() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 94);
    let packed = model.pack_weights(64).unwrap();
    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 2,
            pool_blocks: 16,
            block_tokens: 64,
            act: ActMode::None,
            kv: KvMode::Mant4 { group: 64 },
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 2,
            },
            prefix_sharing: false,
            speculative: None,
        },
    );
    let req = GenRequest {
        id: 5,
        prompt: vec![1, 2],
        max_new_tokens: 2,
        arrival_iter: 0,
        deadline_iter: None,
    };
    engine.submit(req.clone());
    engine.submit(req);
}

/// Oversized requests are rejected at submit (they could never be
/// admitted and would deadlock the FCFS queue).
#[test]
#[should_panic(expected = "enlarge the pool")]
fn impossible_request_rejected_at_submit() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 89);
    let packed = model.pack_weights(64).unwrap();
    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 2,
            pool_blocks: 4,
            block_tokens: 64,
            act: ActMode::None,
            kv: KvMode::Mant4 { group: 64 },
            admission: AdmissionPolicy::Reserve,
            prefix_sharing: false,
            speculative: None,
        },
    );
    engine.submit(GenRequest {
        id: 0,
        prompt: vec![1; 200],
        max_new_tokens: 100,
        arrival_iter: 0,
        deadline_iter: None,
    });
}

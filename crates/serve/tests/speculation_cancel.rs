//! Cancellation and expiry landing *between speculative rounds* must
//! unwind both runners: the target session and its lockstep draft
//! session release every block they hold on their respective pools, and
//! the surviving sequences keep producing byte-identical output.

use mant_model::{
    synthesize_speculative_pair, ActMode, DraftConfig, KvMode, ModelConfig, TransformerModel,
};
use mant_serve::{
    sequential_generate, AdmissionPolicy, GenRequest, ServeConfig, ServeEngine, SpeculativeConfig,
};

fn req(id: u64, prompt_len: usize, max_new: usize) -> GenRequest {
    GenRequest {
        id,
        prompt: (0..prompt_len)
            .map(|t| ((id as usize) * 131 + t * 29 + 1) % 512)
            .collect(),
        max_new_tokens: max_new,
        arrival_iter: 0,
        deadline_iter: None,
    }
}

fn spec_pair(seed: u64) -> (TransformerModel, TransformerModel) {
    synthesize_speculative_pair(
        &ModelConfig::sim_llama(),
        seed,
        &DraftConfig {
            layers: 1,
            tail_block_ratio: 0.02,
        },
    )
}

fn spec_engine<'m>(
    target: &'m TransformerModel,
    packed: &'m mant_model::PackedWeights,
    draft: &'m TransformerModel,
    draft_packed: &'m mant_model::PackedWeights,
) -> ServeEngine<'m> {
    ServeEngine::new_with_draft(
        target,
        packed,
        draft,
        draft_packed,
        ServeConfig {
            max_batch: 3,
            pool_blocks: 64,
            block_tokens: 16,
            act: ActMode::None,
            kv: KvMode::Int4 { group: 16 },
            admission: AdmissionPolicy::Watermark {
                watermark_blocks: 4,
            },
            prefix_sharing: false,
            speculative: Some(SpeculativeConfig { draft_k: 4 }),
        },
    )
}

/// Cancels one sequence after speculative rounds have begun: both pools
/// get its blocks back immediately, the survivors finish with streams
/// byte-identical to the sequential baseline, and draining the engine
/// returns *both* pools to their all-free baseline.
#[test]
fn cancel_mid_speculation_unwinds_both_runners() {
    let (target, draft) = spec_pair(71);
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();
    let requests = [req(0, 8, 40), req(1, 6, 40), req(2, 10, 40)];

    let mut engine = spec_engine(&target, &packed, &draft, &draft_packed);
    let target_total = engine.free_blocks();
    let draft_total = engine.draft_free_blocks().expect("draft pool exists");
    for r in &requests {
        engine.submit(r.clone());
    }
    // Past prefill and into draft-and-verify territory for everyone.
    for _ in 0..12 {
        engine.tick();
    }
    let spec_rounds = engine.report(0.0).speculation.expect("spec engine").rounds;
    assert!(spec_rounds > 0, "sequences must be mid-speculation");
    assert_eq!(engine.running(), 3);

    let free_before = engine.free_blocks();
    let draft_free_before = engine.draft_free_blocks().unwrap();
    assert!(engine.cancel(0), "request 0 is running");
    assert!(
        engine.free_blocks() > free_before,
        "cancel must release target-pool blocks at once"
    );
    assert!(
        engine.draft_free_blocks().unwrap() > draft_free_before,
        "cancel must release the lockstep draft session's blocks too"
    );

    let report = engine.run_to_completion();
    let (baseline, _) = sequential_generate(
        &target,
        &packed,
        ActMode::None,
        KvMode::Int4 { group: 16 },
        &requests,
    );
    assert_eq!(report.completions.len(), 2, "survivors only");
    for c in &report.completions {
        assert_eq!(
            c.tokens, baseline[c.id as usize],
            "cancellation mid-round perturbed survivor {}",
            c.id
        );
    }
    assert_eq!(report.cancelled_requests, 1);
    // Refcounts back to baseline on both pools: nothing leaked across
    // the speculative fork/rollback machinery.
    assert_eq!(engine.free_blocks(), target_total);
    assert_eq!(engine.draft_free_blocks().unwrap(), draft_total);
}

/// Same discipline for deadline expiry mid-speculation, exercising the
/// `expire_due` removal path instead of the caller-cancel path.
#[test]
fn expire_mid_speculation_unwinds_both_runners() {
    let (target, draft) = spec_pair(72);
    let packed = target.pack_weights(64).unwrap();
    let draft_packed = draft.pack_weights(64).unwrap();
    // Request 1's engine-clock deadline lands well after prefill but
    // before its 40-token output can finish — it dies mid-speculation.
    let mut requests = [req(0, 8, 20), req(1, 6, 40)];
    requests[1].deadline_iter = Some(12);

    let mut engine = spec_engine(&target, &packed, &draft, &draft_packed);
    let target_total = engine.free_blocks();
    let draft_total = engine.draft_free_blocks().unwrap();
    for r in &requests {
        engine.submit(r.clone());
    }
    for _ in 0..10 {
        engine.tick();
    }
    assert!(
        engine.report(0.0).speculation.expect("spec engine").rounds > 0,
        "sequences must be mid-speculation before the deadline hits"
    );

    let report = engine.run_to_completion();
    assert_eq!(report.expired_requests, 1);
    assert_eq!(report.completions.len(), 1);
    let (baseline, _) = sequential_generate(
        &target,
        &packed,
        ActMode::None,
        KvMode::Int4 { group: 16 },
        &requests,
    );
    assert_eq!(
        report.completions[0].tokens, baseline[0],
        "expiry mid-round perturbed the survivor"
    );
    assert_eq!(engine.free_blocks(), target_total);
    assert_eq!(engine.draft_free_blocks().unwrap(), draft_total);
}

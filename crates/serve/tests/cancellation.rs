//! Cancellation, deadlines, and typed submission rejection: the serving
//! engine must be able to stop paying for work nobody will read — blocks
//! return to the refcounted free list immediately, expired queued
//! requests are never ticked, and degenerate requests are refused with a
//! reason instead of admitted (or panicked on).

use mant_model::{ActMode, KvMode, ModelConfig, TransformerModel};
use mant_serve::{
    sequential_generate, AdmissionPolicy, EngineEvent, GenRequest, ServeConfig, ServeEngine,
    SubmitError,
};

fn req(id: u64, prompt_len: usize, max_new: usize) -> GenRequest {
    GenRequest {
        id,
        prompt: (0..prompt_len)
            .map(|t| ((id as usize) * 131 + t * 29 + 1) % 512)
            .collect(),
        max_new_tokens: max_new,
        arrival_iter: 0,
        deadline_iter: None,
    }
}

fn engine_cfg(prefix_sharing: bool, pool_blocks: usize) -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        pool_blocks,
        block_tokens: 16,
        act: ActMode::None,
        kv: KvMode::Int4 { group: 16 },
        admission: AdmissionPolicy::Watermark {
            watermark_blocks: 2,
        },
        prefix_sharing,
        speculative: None,
    }
}

/// Cancelling a running sequence frees its pool blocks immediately and
/// leaves the survivors' outputs byte-identical to the baseline.
#[test]
fn cancel_running_returns_blocks_to_free_list() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 41);
    let packed = model.pack_weights(64).unwrap();
    let requests = [req(0, 20, 30), req(1, 8, 6)];
    let mut engine = ServeEngine::new(&model, &packed, engine_cfg(false, 64));
    for r in &requests {
        engine.submit(r.clone());
    }
    // Run both sequences past prefill (but short of request 1's finish)
    // so request 0 holds several blocks.
    for _ in 0..10 {
        engine.tick();
    }
    assert_eq!(engine.running(), 2);
    let free_before = engine.free_blocks();
    assert!(engine.cancel(0), "request 0 is running");
    assert!(
        engine.free_blocks() > free_before,
        "cancellation must return the sequence's blocks immediately \
         ({free_before} free before, {} after)",
        engine.free_blocks()
    );
    assert!(!engine.cancel(0), "already cancelled");

    let report = engine.run_to_completion();
    assert_eq!(report.cancelled_requests, 1);
    assert_eq!(report.completions.len(), 1);
    assert_eq!(report.completions[0].id, 1);
    let (baseline, _) = sequential_generate(
        &model,
        &packed,
        ActMode::None,
        KvMode::Int4 { group: 16 },
        &requests[1..],
    );
    assert_eq!(report.completions[0].tokens, baseline[0]);
    assert_eq!(
        engine.free_blocks(),
        64,
        "all blocks return once every session ends"
    );
}

/// Under prefix sharing, cancelling one of two requests on a shared
/// prefix frees only the cancelled request's references: the survivor
/// keeps the shared blocks and still matches the baseline.
#[test]
fn cancel_is_refcount_correct_under_prefix_sharing() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 43);
    let packed = model.pack_weights(64).unwrap();
    // Identical 32-token prefix (two 16-token blocks), distinct tails.
    let shared: Vec<usize> = (0..32).map(|t| (t * 37 + 5) % cfg.vocab).collect();
    let mk = |id: u64, tail_seed: usize| GenRequest {
        id,
        prompt: shared
            .iter()
            .copied()
            .chain((0..4).map(|t| (tail_seed * 91 + t * 13) % cfg.vocab))
            .collect(),
        max_new_tokens: 12,
        arrival_iter: 0,
        deadline_iter: None,
    };
    let requests = [mk(0, 1), mk(1, 2)];
    let mut engine = ServeEngine::new(&model, &packed, engine_cfg(true, 64));
    for r in &requests {
        engine.submit(r.clone());
    }
    for _ in 0..40 {
        engine.tick();
    }
    assert_eq!(engine.running(), 2);
    let used_before = engine.used_blocks();
    assert!(engine.cancel(0));
    let used_after = engine.used_blocks();
    assert!(
        used_after < used_before,
        "the cancelled request's private blocks must free ({used_before} -> {used_after})"
    );
    assert!(
        used_after > 0,
        "the survivor (and shared prefix snapshots) must keep their blocks"
    );
    let report = engine.run_to_completion();
    assert_eq!(report.cancelled_requests, 1);
    assert_eq!(report.completions.len(), 1);
    let (baseline, _) = sequential_generate(
        &model,
        &packed,
        ActMode::None,
        KvMode::Int4 { group: 16 },
        &requests[1..],
    );
    assert_eq!(
        report.completions[0].tokens, baseline[0],
        "cancelling a prefix sibling must not perturb the survivor"
    );
}

/// A queued request whose engine-clock deadline passes is cancelled
/// without ever being ticked: no prompt token of it is ever stepped.
#[test]
fn expired_queued_request_is_cancelled_not_ticked() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 44);
    let packed = model.pack_weights(64).unwrap();
    let front = req(0, 6, 40); // occupies the single lane for ~46 iters
    let doomed = GenRequest {
        deadline_iter: Some(10),
        ..req(1, 9, 4)
    };
    let mut engine = ServeEngine::new(
        &model,
        &packed,
        ServeConfig {
            max_batch: 1,
            ..engine_cfg(false, 64)
        },
    );
    engine.submit(front.clone());
    engine.submit(doomed);
    let report = engine.run_to_completion();
    assert_eq!(report.expired_requests, 1);
    assert_eq!(report.completions.len(), 1);
    assert_eq!(report.completions[0].id, 0);
    assert_eq!(
        report.prompt_tokens,
        front.prompt.len(),
        "the expired request's prompt must never be fed to the model"
    );
}

/// A running sequence whose deadline passes mid-generation releases its
/// lane and blocks; the remaining requests finish normally.
#[test]
fn deadline_expires_running_sequence_and_frees_its_blocks() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 45);
    let packed = model.pack_weights(64).unwrap();
    let doomed = GenRequest {
        deadline_iter: Some(12),
        ..req(0, 8, 64)
    };
    let survivor = req(1, 8, 10);
    let mut engine = ServeEngine::new(&model, &packed, engine_cfg(false, 64));
    engine.submit(doomed);
    engine.submit(survivor);
    let report = engine.run_to_completion();
    assert_eq!(report.expired_requests, 1);
    assert_eq!(report.completions.len(), 1);
    assert_eq!(report.completions[0].id, 1);
    assert_eq!(report.completions[0].tokens.len(), 10);
    assert_eq!(
        engine.free_blocks(),
        64,
        "expired sequence freed its blocks"
    );
}

/// Submission rejects degenerate work with typed reasons instead of
/// panicking — the gateway turns these into HTTP error replies.
#[test]
fn try_submit_reports_typed_rejections() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 46);
    let packed = model.pack_weights(64).unwrap();
    let mut engine = ServeEngine::new(&model, &packed, engine_cfg(false, 8));

    let empty = GenRequest {
        prompt: Vec::new(),
        ..req(0, 1, 1)
    };
    assert_eq!(
        engine.try_submit(empty),
        Err(SubmitError::EmptyPrompt { id: 0 })
    );
    let zero = GenRequest {
        max_new_tokens: 0,
        ..req(1, 3, 1)
    };
    assert_eq!(
        engine.try_submit(zero),
        Err(SubmitError::ZeroNewTokens { id: 1 })
    );
    let oov = GenRequest {
        prompt: vec![1, cfg.vocab + 7],
        ..req(2, 1, 1)
    };
    assert_eq!(
        engine.try_submit(oov),
        Err(SubmitError::TokenOutOfVocab {
            id: 2,
            token: cfg.vocab + 7,
            vocab: cfg.vocab,
        })
    );
    let huge = req(3, 400, 400);
    match engine.try_submit(huge) {
        Err(SubmitError::ExceedsPool {
            id: 3,
            need,
            capacity: 8,
        }) => assert!(need > 8),
        other => panic!("expected ExceedsPool, got {other:?}"),
    }
    engine.try_submit(req(4, 3, 2)).unwrap();
    assert_eq!(
        engine.try_submit(req(4, 3, 2)),
        Err(SubmitError::DuplicateId { id: 4 })
    );
    assert_eq!(engine.queued(), 1, "rejected requests never enqueue");
}

/// With events enabled, the engine streams every token in order plus a
/// terminal event per request — the contract the gateway's SSE path
/// relies on.
#[test]
fn event_stream_matches_completions() {
    let cfg = ModelConfig::sim_llama();
    let model = TransformerModel::synthesize(&cfg, 47);
    let packed = model.pack_weights(64).unwrap();
    let mut engine = ServeEngine::new(&model, &packed, engine_cfg(false, 64));
    engine.enable_events();
    engine.submit(req(0, 5, 6));
    let report = engine.run_to_completion();
    let events = engine.drain_events();
    let tokens: Vec<usize> = events
        .iter()
        .filter_map(|e| match *e {
            EngineEvent::Token { id: 0, token } => Some(token),
            _ => None,
        })
        .collect();
    assert_eq!(tokens, report.completions[0].tokens);
    assert_eq!(*events.last().unwrap(), EngineEvent::Finished { id: 0 });
    assert!(engine.drain_events().is_empty(), "drain takes everything");
}
